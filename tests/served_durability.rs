//! Crash-exactly-once property test for the durable serving plane.
//!
//! The harness runs `fcix-served` in a child process with
//! `FCIX_WAL_KILL_AT=<offset>` — the WAL's crash-injection hook, which
//! `abort()`s the process the instant its log reaches that byte offset,
//! truncating the in-flight record when the offset lands inside one
//! (a deterministic `kill -9`). For each seeded offset:
//!
//! 1. start the server, push the 6-job example workload at it until the
//!    crash cuts the connection;
//! 2. restart against the same WAL (no kill hook) and drive the
//!    workload to completion with an idempotent client;
//! 3. assert **exactly-once**: every job has exactly one completion
//!    record in the final log, deterministic jobs reproduce the clean
//!    run's energies *bitwise*, the checkpoint-resumed resilient job
//!    matches to 1e-9, and a final replay is warning-free.
//!
//! The offsets are spread across the log's life: inside the header
//! region (crash before any record is durable), mid-submit-append,
//! between records, and mid-completion-append ("mid-result-write").

use fcix::obs::JsonValue;
use fcix::serve::{JobSpec, NetClient, Replay, Wal};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_fcix-served");

/// Seeded kill offsets (WAL byte positions). The clean 6-job log is
/// ~3.4 KiB; submit records live in roughly the first 1.5 KiB and
/// completion records in the rest, so these 9 points cover: the header
/// region, mid-first-submit, submit/submit boundaries, the dispatch
/// phase, and several mid-completion appends. The final huge offset is
/// the control: it never fires, proving the harness also passes without
/// a crash.
const KILL_OFFSETS: &[u64] = &[5, 64, 180, 420, 800, 1200, 1700, 2200, 2700, u64::MAX / 2];

fn jobs() -> Vec<JobSpec> {
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/serve_jobs6.jsonl"),
    )
    .expect("read example jobs");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| JobSpec::from_json(&JsonValue::parse(l).expect("parse")).expect("spec"))
        .collect()
}

struct Served {
    child: Child,
    addr: String,
}

fn start(dir: &Path, kill_at: Option<u64>) -> Served {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "--listen",
        "127.0.0.1:0",
        "--wal",
        dir.join("jobs.wal").to_str().expect("utf8 path"),
        "--ckpt-dir",
        dir.join("ckpt").to_str().expect("utf8 path"),
        "-w",
        "2",
        // Coalescing is load-dependent: a crash that makes one batch
        // member durable but not its sibling legally re-partitions the
        // batch on restart, and a 2-root block solve's last bits differ
        // from a single-root solve's. Unbatched, every energy is a pure
        // function of its spec — the bitwise-exactness this test pins.
        "--no-batching",
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    match kill_at {
        Some(k) => cmd.env("FCIX_WAL_KILL_AT", k.to_string()),
        None => cmd.env_remove("FCIX_WAL_KILL_AT"),
    };
    let mut child = cmd.spawn().expect("spawn fcix-served");
    let stdout = child.stdout.take().expect("stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server printed LISTENING")
            .expect("read server stdout");
        if let Some(addr) = line.strip_prefix("LISTENING ") {
            break addr.to_string();
        }
    };
    Served { child, addr }
}

fn connect(addr: &str) -> Option<NetClient> {
    NetClient::connect(addr, 20_000).ok()
}

/// Drive the workload as far as the server survives: idempotent submits,
/// then waits. Returns collected `id → energy` (partial if it crashed).
fn drive(addr: &str, jobs: &[JobSpec]) -> HashMap<String, f64> {
    let mut got = HashMap::new();
    let Some(mut client) = connect(addr) else {
        return got;
    };
    for job in jobs {
        if client.submit_idempotent(job).is_err() {
            return got; // server crashed mid-submit
        }
    }
    for job in jobs {
        loop {
            match client.wait(&job.id, 5_000) {
                Ok(resp) if resp.get("ok") == Some(&JsonValue::Bool(true)) => {
                    let energy = resp
                        .get("result")
                        .and_then(|r| r.get_f64("energy"))
                        .expect("energy");
                    got.insert(job.id.clone(), energy);
                    break;
                }
                Ok(_) => continue,    // still running; wait again
                Err(_) => return got, // server crashed mid-wait
            }
        }
    }
    got
}

fn wait_exit(mut child: Child, expect_crash: bool) {
    for _ in 0..600 {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert_eq!(
                status.success(),
                !expect_crash,
                "server exit {status:?}, expected crash={expect_crash}"
            );
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let _ = child.kill();
    panic!("server did not exit within 60 s (expected crash={expect_crash})");
}

/// Replay the final WAL and assert the exactly-once invariants.
fn assert_exactly_once(wal_path: &Path, jobs: &[JobSpec], kill: u64) -> Replay {
    let (_, replay) = Wal::open(wal_path).expect("replay final WAL");
    assert!(
        replay.is_clean(),
        "kill@{kill}: final WAL must replay clean: {:?}",
        replay.warnings
    );
    assert!(
        replay.pending.is_empty(),
        "kill@{kill}: drained server left pending jobs: {:?}",
        replay.pending.iter().map(|j| &j.id).collect::<Vec<_>>()
    );
    let mut seen = HashMap::new();
    for r in &replay.completed {
        *seen.entry(r.id.clone()).or_insert(0u32) += 1;
    }
    for job in jobs {
        assert_eq!(
            seen.get(&job.id),
            Some(&1),
            "kill@{kill}: job {} must have exactly one completion record, got {:?}",
            job.id,
            seen.get(&job.id)
        );
    }
    assert_eq!(
        replay.completed.len(),
        jobs.len(),
        "kill@{kill}: no duplicate side effects"
    );
    replay
}

#[test]
fn killed_at_seeded_wal_offsets_every_job_completes_exactly_once() {
    let jobs = jobs();
    let base = std::env::temp_dir().join(format!("fcix-durab-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Clean reference run: the bitwise ground truth.
    let refdir = base.join("ref");
    std::fs::create_dir_all(&refdir).expect("mkdir");
    let served = start(&refdir, None);
    let reference = drive(&served.addr, &jobs);
    let mut client = connect(&served.addr).expect("ref connect");
    client.drain().expect("ref drain");
    wait_exit(served.child, false);
    assert_eq!(reference.len(), jobs.len(), "reference run incomplete");
    assert_exactly_once(&refdir.join("jobs.wal"), &jobs, 0);

    let mut crashes = 0usize;
    for &kill in KILL_OFFSETS {
        let dir = base.join(format!("kill-{kill}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let wal_path: PathBuf = dir.join("jobs.wal");

        // Phase 1: run into the seeded crash.
        let served = start(&dir, Some(kill));
        let _partial = drive(&served.addr, &jobs);
        let crashed = kill < 1 << 20;
        if crashed {
            crashes += 1;
        } else {
            // Control offset: drain so the server can exit cleanly.
            let mut c = connect(&served.addr).expect("control connect");
            c.drain().expect("control drain");
        }
        wait_exit(served.child, crashed);

        // Phase 2: restart on the same WAL, finish the workload.
        let served = start(&dir, None);
        let got = drive(&served.addr, &jobs);
        let mut client = connect(&served.addr).expect("reconnect");
        client.drain().expect("drain");
        wait_exit(served.child, false);

        assert_eq!(
            got.len(),
            jobs.len(),
            "kill@{kill}: every accepted job must complete after restart"
        );
        for job in &jobs {
            let want = reference[&job.id];
            let have = got[&job.id];
            if job.resilient {
                // The checkpoint-resumed solve converges to the same
                // answer within the solver tolerance; iteration history
                // differs, so last-bit equality is not guaranteed.
                assert!(
                    (have - want).abs() <= 1e-9,
                    "kill@{kill}: resilient job {}: {have:.15} vs {want:.15}",
                    job.id
                );
            } else {
                // Deterministic solves are pure functions of the spec:
                // a re-run after any crash is bitwise identical.
                assert_eq!(
                    have.to_bits(),
                    want.to_bits(),
                    "kill@{kill}: job {}: {have:.17} vs reference {want:.17}",
                    job.id
                );
            }
        }
        assert_exactly_once(&wal_path, &jobs, kill);
    }
    assert!(
        crashes >= 8,
        "the offset set must include at least 8 real kill points, got {crashes}"
    );
    let _ = std::fs::remove_dir_all(&base);
}
