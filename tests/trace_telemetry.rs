//! End-to-end telemetry invariants: the trace written while driving the
//! simulated machine must agree — exactly, not approximately — with the
//! `RunReport` clock aggregates it was derived from, the JSONL encoding
//! must be deterministic modulo host wall-clock, and the Chrome export
//! must be well-formed JSON.

use fcix::core::{apply_sigma, random_hamiltonian, DetSpace, PoolParams, SigmaCtx, SigmaMethod};
use fcix::ddi::{Backend, Ddi};
use fcix::obs::{
    parse_collapsed, parse_jsonl, to_chrome, to_collapsed, Category, Event, EventKind, JsonValue,
    MetricsRegistry, RunSummary, TimeBase,
};
use fcix::xsim::MachineModel;

/// Deterministic case generator (same LCG as `tests/property.rs`).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Run one traced σ evaluation; return the trace and the breakdown's
/// merged report.
fn traced_sigma(
    n: usize,
    na: usize,
    nb: usize,
    nproc: usize,
    seed: u64,
    method: SigmaMethod,
) -> (Vec<Event>, fcix::xsim::RunReport) {
    let ham = random_hamiltonian(n, seed);
    let space = DetSpace::c1(n, na, nb);
    let ddi = Ddi::new(nproc, Backend::Serial);
    let tracer = fcix::obs::Tracer::in_memory();
    ddi.attach_tracer(tracer.clone());
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let c = space.guess(&ham, nproc);
    let (_sigma, bd) = apply_sigma(&ctx, &c, method);
    (tracer.events().expect("in-memory tracer"), bd.total())
}

/// The summary rebuilt from the trace equals the clock-level summary of
/// the merged `RunReport` — every field, to 1e-9.
#[test]
fn trace_summary_matches_report_summary() {
    for method in [SigmaMethod::Dgemm, SigmaMethod::Moc] {
        let (events, report) = traced_sigma(6, 3, 2, 5, 42, method);
        let from_trace = RunSummary::from_events(&events);
        let from_clocks = report.summary();
        assert_eq!(from_trace.nproc, from_clocks.nproc);
        let close = |a: f64, b: f64, what: &str| {
            assert!(
                (a - b).abs() < 1e-9,
                "{what}: trace {a} vs clocks {b} ({method:?})"
            );
        };
        for cat in Category::CLOCKED {
            close(from_trace.time(cat), from_clocks.time(cat), cat.as_str());
        }
        close(from_trace.elapsed, from_clocks.elapsed, "elapsed");
        close(from_trace.mean_busy, from_clocks.mean_busy, "mean_busy");
        close(
            from_trace.flops_dgemm,
            from_clocks.flops_dgemm,
            "flops_dgemm",
        );
        close(
            from_trace.flops_daxpy,
            from_clocks.flops_daxpy,
            "flops_daxpy",
        );
        close(from_trace.net_bytes, from_clocks.net_bytes, "net_bytes");
        close(from_trace.net_msgs, from_clocks.net_msgs, "net_msgs");
        close(
            from_trace.lock_acquires,
            from_clocks.lock_acquires,
            "lock_acquires",
        );
        close(
            from_trace.nxtval_msgs,
            from_clocks.nxtval_msgs,
            "nxtval_msgs",
        );
    }
}

/// Property: for arbitrary problem shapes, each rank's span durations sum
/// to that rank's simulated clock total within 1e-9 — the trace loses no
/// time and invents none.
#[test]
fn per_rank_span_sums_match_clock_totals() {
    let mut g = Gen::new(0x7E1E);
    let mut cases = 0;
    while cases < 10 {
        let n = g.range(3, 6);
        let na = g.range(1, 4);
        let nb = g.range(1, 4);
        let nproc = g.range(1, 7);
        let seed = g.next_u64() % 500;
        if na > n || nb > n {
            continue;
        }
        cases += 1;
        let method = if cases % 2 == 0 {
            SigmaMethod::Dgemm
        } else {
            SigmaMethod::Moc
        };
        let (events, report) = traced_sigma(n, na, nb, nproc, seed, method);
        for (rank, clock) in report.clocks.iter().enumerate() {
            let span_sum: f64 = events
                .iter()
                .filter(|e| e.kind == EventKind::Span && e.rank == Some(rank))
                .map(|e| e.sim_dur_s)
                .sum();
            assert!(
                (span_sum - clock.total()).abs() < 1e-9,
                "rank {rank}: spans {span_sum} vs clock {} (n={n} na={na} nb={nb} p={nproc})",
                clock.total()
            );
        }
    }
}

/// Drop host wall-clock fields from a serialized event (the only
/// non-deterministic part of a record).
fn strip_host(v: JsonValue) -> JsonValue {
    match v {
        JsonValue::Obj(pairs) => JsonValue::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "host_us" && k != "host_dur_us")
                .collect(),
        ),
        other => other,
    }
}

/// Two identical runs produce byte-identical JSONL once host timestamps
/// are removed, and every record survives a serialize→parse round trip.
#[test]
fn jsonl_is_deterministic_and_round_trips() {
    let (ev1, _) = traced_sigma(5, 2, 2, 3, 7, SigmaMethod::Dgemm);
    let (ev2, _) = traced_sigma(5, 2, 2, 3, 7, SigmaMethod::Dgemm);
    assert_eq!(ev1.len(), ev2.len());
    for (a, b) in ev1.iter().zip(&ev2) {
        assert_eq!(
            strip_host(a.to_json()).to_string(),
            strip_host(b.to_json()).to_string()
        );
    }
    let jsonl: String = ev1.iter().map(|e| e.to_json().to_string() + "\n").collect();
    let parsed = parse_jsonl(&jsonl).expect("own output must parse");
    assert_eq!(parsed, ev1);
}

/// Golden check: a hand-written trace aggregates to exactly the expected
/// Table-3 numbers.
#[test]
fn golden_summary_from_fixed_trace() {
    let jsonl = r#"{"ev":"span","name":"bb","cat":"dgemm","rank":0,"host_us":0,"host_dur_us":10,"sim_s":0,"sim_dur_s":2.0,"args":{"flops":8000000000}}
{"ev":"span","name":"bb","cat":"net","rank":0,"host_us":10,"host_dur_us":5,"sim_s":2.0,"sim_dur_s":0.5,"args":{"bytes":1000000,"msgs":10,"nxtval":3}}
{"ev":"span","name":"bb","cat":"dgemm","rank":1,"host_us":0,"host_dur_us":10,"sim_s":0,"sim_dur_s":1.0,"args":{"flops":4000000000}}
{"ev":"span","name":"bb","cat":"lock","rank":1,"host_us":10,"host_dur_us":2,"sim_s":1.0,"sim_dur_s":0.25,"args":{"acquires":4}}
{"ev":"instant","name":"ddi_nxtval","cat":"net","rank":1,"host_us":12,"host_dur_us":0,"sim_s":1.25,"sim_dur_s":0,"args":{"nxtval":1}}
"#;
    // Counters ride on spans; instants are annotations and must not
    // perturb any aggregate (the nxtval instant above is ignored).
    let events = parse_jsonl(jsonl).unwrap();
    let s = RunSummary::from_events(&events);
    assert_eq!(s.nproc, 2);
    assert_eq!(s.t_dgemm, 3.0);
    assert_eq!(s.t_net, 0.5);
    assert_eq!(s.t_lock, 0.25);
    assert_eq!(s.elapsed, 2.5); // rank 0 is the slowest: 2.0 + 0.5
    assert_eq!(s.mean_busy, (2.5 + 1.25) / 2.0);
    assert_eq!(s.flops_dgemm, 12e9);
    assert_eq!(s.net_bytes, 1e6);
    assert_eq!(s.net_msgs, 10.0);
    assert_eq!(s.lock_acquires, 4.0);
    assert_eq!(s.nxtval_msgs, 3.0);
    assert!((s.tflops() - 12e9 / 2.5 / 1e12).abs() < 1e-12);
    // And the JSON round trip of the summary itself is exact.
    let back = RunSummary::from_json(&s.to_json()).unwrap();
    assert_eq!(back, s);
}

/// Flamegraph export on a Table-3-style σ run: the folded output
/// round-trips through the collapsed-stack parser, conserves the total
/// simulated time of the trace (to 1 µs per span of rounding), and every
/// stack is rooted in a rank lane.
#[test]
fn flame_round_trips_on_table3_style_run() {
    let (events, report) = traced_sigma(6, 3, 2, 4, 42, SigmaMethod::Dgemm);
    let folded = to_collapsed(&events, TimeBase::Sim);
    let stacks = parse_collapsed(&folded).expect("own flame output must parse");
    assert!(!stacks.is_empty());
    for (frames, weight) in &stacks {
        assert!(
            frames.first().is_some_and(|f| f.starts_with("rank ")),
            "stack must be rooted in a rank lane: {frames:?}"
        );
        assert!(*weight > 0, "folded weights are positive: {frames:?}");
    }
    // Weights conserve the simulated busy time: each span contributes
    // its duration in µs (floor-rounded, so allow 1 µs per span).
    let folded_us: u64 = stacks.iter().map(|(_, w)| w).sum();
    let busy_us = report.clocks.iter().map(|c| c.total()).sum::<f64>() * 1e6;
    let n_spans = events.iter().filter(|e| e.kind == EventKind::Span).count() as f64;
    assert!(
        (folded_us as f64 - busy_us).abs() <= n_spans,
        "folded {folded_us} µs vs clocks {busy_us:.0} µs"
    );
    // The host time base folds and parses too. Its stack set need not
    // match exactly — a span under 1 µs in one base but not the other
    // rounds to weight 0 and is dropped from that base's fold — but
    // every host stack must name frames the trace actually contains.
    let host = parse_collapsed(&to_collapsed(&events, TimeBase::Host)).unwrap();
    assert!(!host.is_empty());
    for (frames, _) in &host {
        assert!(frames.first().is_some_and(|f| f.starts_with("rank ")));
    }
}

/// Replaying a σ trace through the metrics plane populates the span and
/// flop histograms the `fcix-trace metrics` subcommand prints.
#[test]
fn metrics_replay_covers_sigma_trace() {
    let (events, report) = traced_sigma(5, 2, 2, 3, 7, SigmaMethod::Dgemm);
    let reg = MetricsRegistry::from_events(&events);
    let n_spans = events.iter().filter(|e| e.kind == EventKind::Span).count();
    let text = reg.render_text();
    assert!(text.contains("fcix_trace_span_s"), "exposition:\n{text}");
    // Sum a metric's samples across every label set in the exposition.
    let sum_over_labels = |prefix: &str| -> f64 {
        text.lines()
            .filter(|l| {
                l.starts_with(prefix)
                    && matches!(l.as_bytes().get(prefix.len()), Some(b'{') | Some(b' '))
            })
            .filter_map(|l| l.split_whitespace().next_back()?.parse::<f64>().ok())
            .sum()
    };
    assert_eq!(
        sum_over_labels("fcix_trace_span_s_count") as usize,
        n_spans,
        "every span must be observed exactly once:\n{text}"
    );
    // The flops counter totals the report's dgemm+daxpy flops.
    let summary = report.summary();
    let flops = summary.flops_dgemm + summary.flops_daxpy;
    let got = sum_over_labels("fcix_trace_flops");
    assert!(
        (got - flops).abs() <= 1e-6 * flops.max(1.0),
        "replayed flops {got} vs clocked {flops}"
    );
}

/// The Chrome export is valid JSON with one complete ("X") record per
/// span, carried timestamps in microseconds, and rank→tid lane mapping.
#[test]
fn chrome_export_is_valid() {
    let (events, _) = traced_sigma(5, 2, 2, 3, 11, SigmaMethod::Dgemm);
    let out = to_chrome(&events);
    let v = JsonValue::parse(&out).expect("chrome export must be valid JSON");
    let arr = v.as_arr().expect("trace event array");
    let spans: Vec<&JsonValue> = arr
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .collect();
    let n_spans = events.iter().filter(|e| e.kind == EventKind::Span).count();
    assert_eq!(spans.len(), n_spans);
    for (chrome, ev) in spans
        .iter()
        .zip(events.iter().filter(|e| e.kind == EventKind::Span))
    {
        let ts = chrome.get_f64("ts").unwrap();
        let dur = chrome.get_f64("dur").unwrap();
        assert!((ts - ev.sim_s * 1e6).abs() < 1e-6);
        assert!((dur - ev.sim_dur_s * 1e6).abs() < 1e-6);
        assert_eq!(
            chrome.get_f64("tid").unwrap() as usize,
            ev.rank.unwrap_or(0)
        );
    }
}
