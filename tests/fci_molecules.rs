//! End-to-end molecular FCI: integrals → SCF → transformation → FCI,
//! validated against brute-force dense diagonalization and physical
//! invariants.

use fcix::core::{slater, solve, DetSpace, FciOptions, Hamiltonian, SigmaMethod};
use fcix::ints::{detect_point_group, overlap, BasisSet, Molecule};
use fcix::linalg::eigh;
use fcix::scf::{core_orbitals, rhf, symmetry_adapt, transform_integrals, MoIntegrals, RhfOptions};

fn h2_mo(r: f64) -> (MoIntegrals, f64) {
    let mol = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, r])], 0);
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    let mo = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        0,
        2,
    );
    (mo, scf.energy)
}

fn dense_ground(mo: &MoIntegrals, na: usize, nb: usize) -> f64 {
    let ham = Hamiltonian::new(mo);
    let space = DetSpace::for_hamiltonian(&ham, na, nb, 0);
    let h = slater::dense_h(&space, &ham);
    eigh(&h).eigenvalues[0] + mo.e_core
}

#[test]
fn h2_fci_matches_dense_diagonalization() {
    let (mo, e_scf) = h2_mo(1.4);
    let exact = dense_ground(&mo, 1, 1);
    let r = solve(&mo, 1, 1, 0, &FciOptions::default());
    assert!(r.converged);
    assert!((r.energy - exact).abs() < 1e-9, "{} vs {exact}", r.energy);
    // Correlation energy is negative and modest for H2/STO-3G (~ −20 mEh).
    let corr = r.energy - e_scf;
    assert!(corr < -0.015 && corr > -0.03, "corr = {corr}");
}

#[test]
fn h2_triplet_above_singlet() {
    let (mo, _) = h2_mo(1.4);
    let singlet = solve(&mo, 1, 1, 0, &FciOptions::default());
    let triplet = solve(&mo, 2, 0, 0, &FciOptions::default());
    assert!(triplet.converged);
    assert!(
        triplet.energy > singlet.energy + 0.1,
        "triplet {} vs singlet {}",
        triplet.energy,
        singlet.energy
    );
}

#[test]
fn helium_fci_below_scf() {
    let mol = Molecule::from_symbols_bohr(&[("He", [0.0; 3])], 0);
    let basis = BasisSet::build(&mol, "svp");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    let n = basis.n_basis();
    let mo = transform_integrals(&scf.h_ao, &scf.eri_ao, &scf.mo_coeffs, 0.0, 0, n);
    let r = solve(&mo, 1, 1, 0, &FciOptions::default());
    assert!(r.converged);
    assert!(r.energy < scf.energy);
    // He exact nonrelativistic energy is −2.9037 Eh — a strict lower
    // bound for any variational method in a finite basis.
    assert!(r.energy > -2.9037);
}

#[test]
fn h4_chain_fci_matches_dense() {
    let mol = Molecule::from_symbols_bohr(
        &[
            ("H", [0.0, 0.0, 0.0]),
            ("H", [0.0, 0.0, 1.8]),
            ("H", [0.0, 0.0, 3.6]),
            ("H", [0.0, 0.0, 5.4]),
        ],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    let mo = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        0,
        4,
    );
    let exact = dense_ground(&mo, 2, 2);
    for sigma in [SigmaMethod::Dgemm, SigmaMethod::Moc] {
        let r = solve(
            &mo,
            2,
            2,
            0,
            &FciOptions {
                sigma,
                ..Default::default()
            },
        );
        assert!(r.converged, "{sigma:?}");
        assert!(
            (r.energy - exact).abs() < 1e-8,
            "{sigma:?}: {} vs {exact}",
            r.energy
        );
    }
}

#[test]
fn water_frozen_core_fci() {
    let mol = Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.4305, 1.1092]),
            ("H", [0.0, -1.4305, 1.1092]),
        ],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    let mo = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        1,
        6,
    );
    let r = solve(&mo, 4, 4, 0, &FciOptions::default());
    assert!(r.converged);
    let exact = dense_ground(&mo, 4, 4);
    assert!((r.energy - exact).abs() < 1e-8);
    // Frozen-core correlation of water/STO-3G is a few tens of mEh.
    let corr = r.energy - scf.energy;
    assert!(corr < -0.02 && corr > -0.15, "corr = {corr}");
}

#[test]
fn symmetry_blocked_water_matches_c1() {
    let mol = Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.4305, 1.1092]),
            ("H", [0.0, -1.4305, 1.1092]),
        ],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    let pg = detect_point_group(&mol);
    assert_eq!(pg.name(), "C2v");
    let s = overlap(&basis);
    let (cad, irreps) = symmetry_adapt(&pg, &basis, &s, &scf.mo_coeffs);
    let mo_c1 = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        1,
        6,
    );
    let mo_sym = transform_integrals(&scf.h_ao, &scf.eri_ao, &cad, mol.nuclear_repulsion(), 1, 6)
        .with_symmetry(irreps[1..7].to_vec(), pg.n_irrep());
    let r_c1 = solve(&mo_c1, 4, 4, 0, &FciOptions::default());
    let r_sym = solve(&mo_sym, 4, 4, 0, &FciOptions::default());
    assert!(r_c1.converged && r_sym.converged);
    // FCI is orbital-invariant: the energies agree even though the
    // orbital sets differ; the symmetry sector is strictly smaller.
    assert!(
        (r_c1.energy - r_sym.energy).abs() < 1e-7,
        "{} vs {}",
        r_c1.energy,
        r_sym.energy
    );
    assert!(r_sym.sector_dim < r_sym.dim);
}

#[test]
fn open_shell_oxygen_like_runs() {
    // O atom (9 active electrons is too many for sto-3g n=5 after
    // freezing; use 3α+1β in the 4 valence orbitals: an O-like open shell)
    let mol = Molecule::from_symbols_bohr(&[("O", [0.0; 3])], 0);
    let basis = BasisSet::build(&mol, "sto-3g");
    let (c, _) = core_orbitals(&basis, &mol);
    let h = {
        let mut t = fcix::ints::kinetic(&basis);
        t.axpy(1.0, &fcix::ints::nuclear_attraction(&basis, &mol));
        t
    };
    let eri = fcix::ints::eri_tensor(&basis);
    let mo = transform_integrals(&h, &eri, &c, 0.0, 1, 4);
    let r = solve(&mo, 4, 2, 0, &FciOptions::default());
    assert!(r.converged);
    let exact = dense_ground(&mo, 4, 2);
    assert!((r.energy - exact).abs() < 1e-8);
}

#[test]
fn fci_invariant_under_orbital_choice() {
    // RHF orbitals vs core orbitals give the same FCI energy for H2.
    let mol = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, 1.6])], 0);
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    let mo1 = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        0,
        2,
    );
    let (c2, _) = core_orbitals(&basis, &mol);
    let mo2 = transform_integrals(&scf.h_ao, &scf.eri_ao, &c2, mol.nuclear_repulsion(), 0, 2);
    let r1 = solve(&mo1, 1, 1, 0, &FciOptions::default());
    let r2 = solve(&mo2, 1, 1, 0, &FciOptions::default());
    assert!(r1.converged && r2.converged);
    assert!(
        (r1.energy - r2.energy).abs() < 1e-9,
        "{} vs {}",
        r1.energy,
        r2.energy
    );
}
