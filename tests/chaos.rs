//! Chaos suite: full solves under seeded fault schedules.
//!
//! Every schedule drives the production solver (via
//! `solve_resilient`) through a deterministic, replayable fault plan —
//! transient comm faults, data corruption, permanent rank death,
//! kill-and-restart — and asserts the three recovery invariants:
//!
//! 1. the recovered energy matches the fault-free reference to 1e-9;
//! 2. the happens-before race detector is clean on the recovery paths
//!    (retries and recomputes replay the *same* protocol, so the trace
//!    must look like a fault-free run);
//! 3. the run telemetry accounts for the faults (injection counts,
//!    retries, recomputes all visible in the `RunSummary`).

use fci_check::RaceDetector;
use fci_core::{solve, solve_resilient, FciOptions, RecoveryOptions};
use fci_ddi::{Backend, CheckConfig, FaultConfig, RankDeath};
use fci_ints::EriTensor;
use fci_linalg::Matrix;
use fci_obs::{parse_jsonl, ObsConfig, RunSummary};
use fci_scf::MoIntegrals;
use std::path::PathBuf;
use std::sync::Arc;

fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n.saturating_sub(1) {
        h[(i, i + 1)] = -t;
        h[(i + 1, i)] = -t;
    }
    let mut eri = EriTensor::zeros(n);
    for i in 0..n {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    }
}

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fcix-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn base_opts(nproc: usize, backend: Backend) -> FciOptions {
    FciOptions {
        nproc,
        backend,
        method: fci_core::DiagMethod::Davidson,
        diag: fci_core::DiagOptions {
            max_iter: 150,
            model_space: 24,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn reference_energy(nproc: usize) -> f64 {
    let mo = hubbard(4, 1.0, 2.5);
    let r = solve(&mo, 2, 2, 0, &base_opts(nproc, Backend::Serial));
    assert!(r.converged);
    r.energy
}

/// Everything one chaos schedule produces.
struct ChaosRun {
    energy: f64,
    converged: bool,
    restarts: usize,
    stats: fci_ddi::FaultStats,
    races: Vec<fci_check::RaceReport>,
    summary: RunSummary,
}

/// Run one schedule end to end: resilient solve + race detector +
/// telemetry trace, all on.
fn run_schedule(name: &str, cfg: FaultConfig, nproc: usize, backend: Backend) -> ChaosRun {
    let mo = hubbard(4, 1.0, 2.5);
    let detector = Arc::new(RaceDetector::new());
    let trace = tmp(&format!("{name}.trace.jsonl"));
    let mut opts = base_opts(nproc, backend);
    opts.fault = Some(cfg);
    opts.check = CheckConfig::online(detector.clone());
    opts.obs = ObsConfig::to_file(&trace);
    let rec = RecoveryOptions::new(tmp(&format!("{name}.ckp")));
    let r = solve_resilient(&mo, 2, 2, 0, &opts, &rec).expect("resilient solve failed");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let summary = RunSummary::from_events(&parse_jsonl(&text).expect("trace parses"));
    ChaosRun {
        energy: r.fci.energy,
        converged: r.fci.converged,
        restarts: r.restarts,
        stats: r.fault_stats,
        races: detector.races(),
        summary,
    }
}

fn assert_recovered(name: &str, run: &ChaosRun, e_ref: f64) {
    assert!(run.converged, "{name}: did not converge");
    assert!(
        (run.energy - e_ref).abs() <= 1e-9,
        "{name}: recovered energy {} vs reference {e_ref} (err {:.3e})",
        run.energy,
        (run.energy - e_ref).abs()
    );
    assert!(
        run.races.is_empty(),
        "{name}: recovery path raced: {:?}",
        run.races
    );
}

// ---- schedule 1: control (no faults): fast path, nothing injected ----

#[test]
fn schedule_00_quiet_control() {
    let e_ref = reference_energy(3);
    let run = run_schedule("s00-quiet", FaultConfig::quiet(1), 3, Backend::Serial);
    assert_recovered("s00-quiet", &run, e_ref);
    assert_eq!(run.stats.injected(), 0);
    assert_eq!(run.stats.retries, 0);
    assert_eq!(run.summary.faults_injected, 0.0);
    assert_eq!(run.summary.retries, 0.0);
}

// ---- transient comm faults ----

#[test]
fn schedule_01_dropped_transfers() {
    let e_ref = reference_energy(3);
    let cfg = FaultConfig {
        p_drop: 0.08,
        ..FaultConfig::quiet(101)
    };
    let run = run_schedule("s01-drops", cfg, 3, Backend::Serial);
    assert_recovered("s01-drops", &run, e_ref);
    assert!(run.stats.drops > 0, "schedule never fired");
    assert!(run.stats.retries > 0, "drops were not retried");
    assert!(run.summary.faults_injected > 0.0, "telemetry missed faults");
    assert!(run.summary.retries > 0.0, "telemetry missed retries");
}

#[test]
fn schedule_02_duplicated_transfers() {
    let e_ref = reference_energy(3);
    let cfg = FaultConfig {
        p_duplicate: 0.10,
        ..FaultConfig::quiet(202)
    };
    let run = run_schedule("s02-dups", cfg, 3, Backend::Serial);
    assert_recovered("s02-dups", &run, e_ref);
    assert!(run.stats.duplicates > 0, "schedule never fired");
    assert!(
        run.stats.dup_discards > 0,
        "duplicate deliveries were not discarded"
    );
}

#[test]
fn schedule_03_stalls_and_fence_delays() {
    let e_ref = reference_energy(3);
    let cfg = FaultConfig {
        p_stall: 0.05,
        p_fence_delay: 0.05,
        ..FaultConfig::quiet(303)
    };
    let run = run_schedule("s03-stalls", cfg, 3, Backend::Serial);
    assert_recovered("s03-stalls", &run, e_ref);
    assert!(
        run.stats.stalls + run.stats.fence_delays > 0,
        "schedule never fired"
    );
}

// ---- data corruption ----

#[test]
fn schedule_04_corrupted_payloads() {
    let e_ref = reference_energy(3);
    let cfg = FaultConfig {
        p_corrupt: 0.08,
        ..FaultConfig::quiet(404)
    };
    let run = run_schedule("s04-corrupt", cfg, 3, Backend::Serial);
    assert_recovered("s04-corrupt", &run, e_ref);
    assert!(run.stats.corruptions > 0, "schedule never fired");
    assert!(run.stats.retries > 0, "corruptions were not caught by CRC");
}

#[test]
fn schedule_05_poisoned_sigma_tasks() {
    let e_ref = reference_energy(3);
    let cfg = FaultConfig {
        p_poison: 0.05,
        ..FaultConfig::quiet(505)
    };
    let run = run_schedule("s05-poison", cfg, 3, Backend::Serial);
    assert_recovered("s05-poison", &run, e_ref);
    assert!(run.stats.poisoned_tasks > 0, "schedule never fired");
    assert!(
        run.stats.recomputes > 0,
        "poisoned tasks were not recomputed"
    );
    assert!(
        run.summary.recomputes > 0.0,
        "telemetry missed the recomputes"
    );
}

// ---- permanent rank death ----

#[test]
fn schedule_06_rank_death() {
    let e_ref = reference_energy(4);
    let cfg = FaultConfig {
        rank_death: Some(RankDeath {
            rank: 2,
            after_ops: 500,
        }),
        ..FaultConfig::quiet(606)
    };
    let run = run_schedule("s06-death", cfg, 4, Backend::Serial);
    assert_recovered("s06-death", &run, e_ref);
    assert_eq!(run.stats.rank_deaths, 1);
    assert_eq!(run.restarts, 1, "death did not force a world rebuild");
}

#[test]
fn schedule_07_rank_death_with_transient_storm() {
    // The hard one: a rank dies while transient faults are also firing.
    let e_ref = reference_energy(4);
    let cfg = FaultConfig {
        p_drop: 0.05,
        p_corrupt: 0.05,
        p_duplicate: 0.05,
        rank_death: Some(RankDeath {
            rank: 1,
            after_ops: 800,
        }),
        ..FaultConfig::quiet(707)
    };
    let run = run_schedule("s07-death-storm", cfg, 4, Backend::Serial);
    assert_recovered("s07-death-storm", &run, e_ref);
    assert_eq!(run.stats.rank_deaths, 1);
    assert!(run.stats.retries > 0);
    assert!(run.summary.faults_injected > 0.0);
}

// ---- kill-and-restart ----

#[test]
fn schedule_08_kill_and_restart_under_faults() {
    // Phase 1: solve under faults, "killed" after a few iterations
    // (max_iter budget runs out before convergence).
    let e_ref = reference_energy(2);
    let mo = hubbard(4, 1.0, 2.5);
    let ckp = tmp("s08-restart.ckp");
    let faults = FaultConfig {
        p_drop: 0.06,
        p_corrupt: 0.04,
        ..FaultConfig::quiet(808)
    };
    let mut first = base_opts(2, Backend::Serial);
    first.fault = Some(faults.clone());
    first.diag.max_iter = 6;
    let partial = solve_resilient(&mo, 2, 2, 0, &first, &RecoveryOptions::new(&ckp)).unwrap();
    assert!(!partial.fci.converged, "kill point never reached");
    assert!(ckp.exists(), "no checkpoint survived the kill");

    // Phase 2: a fresh process resumes from the checkpoint, still under
    // fire, and must land on the reference energy.
    let detector = Arc::new(RaceDetector::new());
    let mut second = base_opts(2, Backend::Serial);
    second.fault = Some(faults);
    second.check = CheckConfig::online(detector.clone());
    let resumed = solve_resilient(&mo, 2, 2, 0, &second, &RecoveryOptions::new(&ckp)).unwrap();
    assert!(resumed.fci.converged);
    assert!(
        (resumed.fci.energy - e_ref).abs() <= 1e-9,
        "s08-restart: {} vs {e_ref}",
        resumed.fci.energy
    );
    let races = detector.races();
    assert!(races.is_empty(), "restart recovery raced: {races:?}");
}

// ---- threads backend: real concurrency on the recovery paths ----

#[test]
fn schedule_09_transient_storm_threads_backend() {
    let e_ref = reference_energy(4);
    let cfg = FaultConfig {
        p_drop: 0.05,
        p_duplicate: 0.05,
        p_corrupt: 0.05,
        p_poison: 0.03,
        ..FaultConfig::quiet(909)
    };
    let run = run_schedule("s09-threads", cfg, 4, Backend::Threads);
    assert_recovered("s09-threads", &run, e_ref);
    assert!(run.stats.injected() > 0, "schedule never fired");
}

#[test]
fn schedule_10_rank_death_threads_backend() {
    let e_ref = reference_energy(4);
    let cfg = FaultConfig {
        p_drop: 0.03,
        rank_death: Some(RankDeath {
            rank: 3,
            after_ops: 600,
        }),
        ..FaultConfig::quiet(1010)
    };
    let run = run_schedule("s10-death-threads", cfg, 4, Backend::Threads);
    assert_recovered("s10-death-threads", &run, e_ref);
    assert_eq!(run.stats.rank_deaths, 1);
    assert_eq!(run.restarts, 1);
}

// ---- determinism: the same seed replays the same schedule ----

#[test]
fn schedules_are_deterministic() {
    let cfg = FaultConfig {
        p_drop: 0.08,
        p_corrupt: 0.05,
        ..FaultConfig::quiet(4242)
    };
    let a = run_schedule("det-a", cfg.clone(), 3, Backend::Serial);
    let b = run_schedule("det-b", cfg, 3, Backend::Serial);
    assert_eq!(a.energy.to_bits(), b.energy.to_bits());
    assert_eq!(a.stats.drops, b.stats.drops);
    assert_eq!(a.stats.corruptions, b.stats.corruptions);
    assert_eq!(a.stats.retries, b.stats.retries);
}
