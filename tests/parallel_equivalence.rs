//! Parallel invariants: the physics must not depend on the virtual
//! processor count, the execution backend, the σ algorithm, or the task
//! pool shape — only the simulated cost may change.

use fcix::core::{
    apply_sigma, random_hamiltonian, solve, DetSpace, DiagMethod, DiagOptions, FciOptions,
    PoolParams, SigmaCtx, SigmaMethod,
};
use fcix::ddi::{Backend, Ddi};
use fcix::ints::EriTensor;
use fcix::linalg::Matrix;
use fcix::scf::MoIntegrals;
use fcix::xsim::MachineModel;

fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n - 1 {
        h[(i, i + 1)] = -t;
        h[(i + 1, i)] = -t;
    }
    let mut eri = EriTensor::zeros(n);
    for i in 0..n {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    }
}

#[test]
fn energy_invariant_across_processor_counts() {
    let mo = hubbard(6, 1.0, 4.0);
    let mut energies = Vec::new();
    // Hubbard diagonals are massively degenerate — use the subspace method
    // (the single-vector schemes presume a dominant reference determinant).
    for p in [1usize, 3, 8, 17] {
        let opts = FciOptions {
            nproc: p,
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_iter: 150,
                model_space: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&mo, 3, 3, 0, &opts);
        assert!(r.converged, "P = {p}");
        energies.push(r.energy);
    }
    for e in &energies[1..] {
        assert!((e - energies[0]).abs() < 1e-9);
    }
}

#[test]
fn threaded_backend_full_solve() {
    let mo = hubbard(5, 1.0, 2.0);
    let opts = |b: Backend| FciOptions {
        nproc: 3,
        backend: b,
        method: DiagMethod::Davidson,
        diag: DiagOptions {
            max_iter: 120,
            model_space: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let serial = solve(&mo, 2, 2, 0, &opts(Backend::Serial));
    let threads = solve(&mo, 2, 2, 0, &opts(Backend::Threads));
    assert!(serial.converged && threads.converged);
    assert!((serial.energy - threads.energy).abs() < 1e-8);
}

#[test]
fn pool_shape_does_not_change_sigma() {
    let ham = random_hamiltonian(6, 5);
    let space = DetSpace::c1(6, 3, 2);
    let model = MachineModel::cray_x1();
    let mut outs = Vec::new();
    for pool in [
        PoolParams {
            fine_per_proc: 1,
            large_per_proc: 1,
            small_per_proc: 0,
        },
        PoolParams::default(),
        PoolParams {
            fine_per_proc: 128,
            large_per_proc: 128,
            small_per_proc: 0,
        },
    ] {
        let ddi = Ddi::new(5, Backend::Serial);
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool,
        };
        let c = space.guess(&ham, 5);
        let (s, _) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        outs.push(s.to_dense());
    }
    for o in &outs[1..] {
        for (a, b) in o.iter().zip(&outs[0]) {
            assert!((a - b).abs() < 1e-11);
        }
    }
}

#[test]
fn simulated_time_scales_down_with_processors() {
    // Cost model sanity at the integration level: DGEMM σ gets faster
    // (in simulated time) with more MSPs.
    let ham = random_hamiltonian(8, 9);
    let space = DetSpace::c1(8, 3, 3);
    let model = MachineModel::cray_x1();
    let mut times = Vec::new();
    for p in [2usize, 8, 32] {
        let ddi = Ddi::new(p, Backend::Serial);
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, p);
        let (_s, bd) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        times.push(bd.total().elapsed());
    }
    assert!(times[1] < times[0], "{times:?}");
    // At 32 MSPs this small problem is latency-bound, so only require
    // monotone non-degradation beyond 8 (the large-scale behaviour is
    // covered by the Fig. 4/5 harnesses on bigger spaces).
    assert!(times[2] < 1.10 * times[1], "{times:?}");
    assert!(times[2] < times[0], "{times:?}");
}

#[test]
fn moc_same_spin_does_not_scale_but_dgemm_does() {
    // The Fig. 4 headline, as an integration-level assertion.
    let ham = random_hamiltonian(9, 1);
    let space = DetSpace::c1(9, 3, 3);
    let model = MachineModel::cray_x1();
    let mut moc = Vec::new();
    let mut dg = Vec::new();
    for p in [4usize, 32] {
        let ddi = Ddi::new(p, Backend::Serial);
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, p);
        let (_a, bd_m) = apply_sigma(&ctx, &c, SigmaMethod::Moc);
        let (_b, bd_d) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        moc.push(bd_m.beta_beta.elapsed() + bd_m.alpha_alpha.elapsed());
        dg.push(bd_d.beta_beta.elapsed() + bd_d.alpha_alpha.elapsed());
    }
    let moc_speedup = moc[0] / moc[1];
    let dg_speedup = dg[0] / dg[1];
    assert!(dg_speedup > 4.0, "DGEMM same-spin speedup {dg_speedup}");
    assert!(
        moc_speedup < 3.0,
        "MOC same-spin speedup {moc_speedup} should be Amdahl-capped"
    );
}

#[test]
fn communication_accounting_dgemm_vs_moc() {
    let ham = random_hamiltonian(8, 3);
    let space = DetSpace::c1(8, 3, 3);
    let model = MachineModel::cray_x1();
    let p = 16;
    let ddi = Ddi::new(p, Backend::Serial);
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let c = space.guess(&ham, p);
    let (_a, bd_m) = apply_sigma(&ctx, &c, SigmaMethod::Moc);
    let (_b, bd_d) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
    // Table 1: MOC mixed-spin communication exceeds DGEMM's by ~(n−Nα)·2/3.
    let ratio = bd_m.alpha_beta.total_net_bytes() / bd_d.alpha_beta.total_net_bytes();
    assert!(ratio > 2.0, "comm ratio {ratio}");
}
