//! Truncated CI (CISD/CISDT) through the excitation-filtered sector:
//! correctness against dense diagonalization of the truncated block, the
//! variational hierarchy, and the classic size-consistency failure.

use fcix::core::{slater, solve, DetSpace, DiagMethod, FciOptions, Hamiltonian};
use fcix::ints::{BasisSet, Molecule};
use fcix::linalg::{eigh, Matrix};
use fcix::scf::{rhf, transform_integrals, RhfOptions};

fn h2_mo(r: f64) -> (fcix::scf::MoIntegrals, f64) {
    let mol = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, r])], 0);
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    let mo = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        0,
        2,
    );
    (mo, scf.energy)
}

/// Two H2 molecules separated by `d` along x, bond length 1.4.
fn h2_dimer_mo(d: f64) -> fcix::scf::MoIntegrals {
    let mol = Molecule::from_symbols_bohr(
        &[
            ("H", [0.0, 0.0, 0.0]),
            ("H", [0.0, 0.0, 1.4]),
            ("H", [d, 0.0, 0.0]),
            ("H", [d, 0.0, 1.4]),
        ],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        0,
        4,
    )
}

#[test]
fn cisd_equals_fci_for_two_electrons() {
    // With 2 electrons, doubles already span the full space.
    let (mo, _) = h2_mo(1.4);
    let fci = solve(&mo, 1, 1, 0, &FciOptions::default());
    let cisd = solve(
        &mo,
        1,
        1,
        0,
        &FciOptions {
            excitation_level: Some(2),
            ..Default::default()
        },
    );
    assert!(fci.converged && cisd.converged);
    assert!((fci.energy - cisd.energy).abs() < 1e-9);
    assert_eq!(cisd.sector_dim, fci.sector_dim);
}

#[test]
fn variational_hierarchy_hf_cisd_fci() {
    let mo = h2_dimer_mo(6.0);
    let opts = |lvl: Option<u32>| FciOptions {
        excitation_level: lvl,
        method: DiagMethod::Davidson,
        ..Default::default()
    };
    let cis = solve(&mo, 2, 2, 0, &opts(Some(1)));
    let cisd = solve(&mo, 2, 2, 0, &opts(Some(2)));
    let cisdt = solve(&mo, 2, 2, 0, &opts(Some(3)));
    let fci = solve(&mo, 2, 2, 0, &opts(None));
    assert!(cis.converged && cisd.converged && cisdt.converged && fci.converged);
    // Larger variational space ⇒ lower (or equal) energy, strictly lower
    // from CIS (no correlation by Brillouin) to CISD.
    assert!(cisd.energy < cis.energy - 1e-6);
    assert!(cisdt.energy <= cisd.energy + 1e-10);
    assert!(fci.energy <= cisdt.energy + 1e-10);
    // Dimensions shrink with truncation.
    assert!(cis.sector_dim < cisd.sector_dim);
    assert!(cisd.sector_dim < fci.sector_dim);
}

#[test]
fn cisd_matches_dense_truncated_block() {
    // Reference: diagonalize H restricted to the CISD determinants.
    let mo = h2_dimer_mo(3.0);
    let ham = Hamiltonian::new(&mo);
    let cisd = solve(
        &mo,
        2,
        2,
        0,
        &FciOptions {
            excitation_level: Some(2),
            method: DiagMethod::Davidson,
            ..Default::default()
        },
    );
    assert!(cisd.converged);

    // Build the same filtered space and the dense block.
    let space0 = DetSpace::for_hamiltonian(&ham, 2, 2, 0);
    let mut best = (f64::INFINITY, 0u64, 0u64);
    for ia in 0..space0.alpha.len() {
        for ib in 0..space0.beta.len() {
            let d = ham.diagonal_element(space0.alpha.mask(ia), space0.beta.mask(ib));
            if d < best.0 {
                best = (d, space0.alpha.mask(ia), space0.beta.mask(ib));
            }
        }
    }
    let space = space0.with_excitation_limit(best.1, best.2, 2);
    let h = slater::dense_h(&space, &ham);
    let nb = space.beta.len();
    let idx: Vec<usize> = (0..space.dim())
        .filter(|&i| space.in_sector(i % nb, i / nb))
        .collect();
    assert_eq!(idx.len(), cisd.sector_dim);
    let hs = Matrix::from_fn(idx.len(), idx.len(), |i, j| h[(idx[i], idx[j])]);
    let exact = eigh(&hs).eigenvalues[0] + ham.e_core;
    assert!(
        (cisd.energy - exact).abs() < 1e-8,
        "{} vs {exact}",
        cisd.energy
    );
}

#[test]
fn cisd_size_consistency_failure() {
    // The textbook defect: E_CISD(A…B) > E_CISD(A) + E_CISD(B) for two
    // noninteracting fragments, while FCI is exactly additive.
    let (mo_single, _) = h2_mo(1.4);
    let far = 60.0;
    let mo_dimer = h2_dimer_mo(far);

    let e1_fci = solve(&mo_single, 1, 1, 0, &FciOptions::default()).energy;
    let e2_fci = solve(
        &mo_dimer,
        2,
        2,
        0,
        &FciOptions {
            method: DiagMethod::Davidson,
            ..Default::default()
        },
    )
    .energy;
    assert!(
        (e2_fci - 2.0 * e1_fci).abs() < 1e-5,
        "FCI must be size-consistent: {} vs {}",
        e2_fci,
        2.0 * e1_fci
    );

    let e1_cisd = solve(
        &mo_single,
        1,
        1,
        0,
        &FciOptions {
            excitation_level: Some(2),
            ..Default::default()
        },
    )
    .energy;
    let e2_cisd = solve(
        &mo_dimer,
        2,
        2,
        0,
        &FciOptions {
            excitation_level: Some(2),
            method: DiagMethod::Davidson,
            ..Default::default()
        },
    )
    .energy;
    let defect = e2_cisd - 2.0 * e1_cisd;
    assert!(
        defect > 1e-4,
        "CISD should NOT be size-consistent; defect = {defect}"
    );
}
