//! Property-based tests (proptest) on the core invariants:
//! σ-algorithm equivalence, kernel correctness, combinatorial tables.

use fcix::core::{apply_sigma, random_hamiltonian, slater, DetSpace, PoolParams, SigmaCtx, SigmaMethod, TaskPool};
use fcix::ddi::{Backend, Ddi};
use fcix::linalg::{dgemm, dgemm_naive, eigh, lu_solve, Matrix, Trans};
use fcix::strings::{annihilate, binomial, create, SpinStrings};
use fcix::xsim::MachineModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// σ(DGEMM) == σ(MOC) == dense Slater–Condon for arbitrary electron
    /// counts, processor counts and random (but physical) integrals.
    #[test]
    fn sigma_algorithms_agree(
        n in 3usize..6,
        na in 1usize..4,
        nb in 0usize..4,
        nproc in 1usize..7,
        seed in 0u64..1000,
    ) {
        prop_assume!(na <= n && nb <= n);
        let ham = random_hamiltonian(n, seed);
        let space = DetSpace::c1(n, na, nb);
        prop_assume!(space.dim() <= 2500);
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx { space: &space, ham: &ham, ddi: &ddi, model: &model, pool: PoolParams::default() };
        let c = space.zeros_ci(nproc);
        let mut s = seed.wrapping_mul(77).wrapping_add(13);
        c.map_inplace(|_, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let (sig_d, _) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        let (sig_m, _) = apply_sigma(&ctx, &c, SigmaMethod::Moc);
        let reference = slater::sigma_dense(&space, &ham, &c.to_dense());
        let dd = sig_d.to_dense();
        let dm = sig_m.to_dense();
        for i in 0..reference.len() {
            prop_assert!((dd[i] - reference[i]).abs() < 1e-9, "dgemm[{i}]");
            prop_assert!((dm[i] - reference[i]).abs() < 1e-9, "moc[{i}]");
        }
    }

    /// Blocked DGEMM equals the naive triple loop for arbitrary shapes,
    /// transposes and alpha/beta.
    #[test]
    fn gemm_matches_naive(
        m in 1usize..40,
        n in 1usize..40,
        k in 0usize..40,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..100,
    ) {
        let tra = if ta { Trans::Yes } else { Trans::No };
        let trb = if tb { Trans::Yes } else { Trans::No };
        let mk = |r: usize, c: usize, s: u64| {
            let mut st = s.wrapping_add(1);
            Matrix::from_fn(r, c, |_, _| {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let a = if ta { mk(k, m, seed) } else { mk(m, k, seed) };
        let b = if tb { mk(n, k, seed + 7) } else { mk(k, n, seed + 7) };
        let c0 = mk(m, n, seed + 13);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        dgemm(tra, trb, alpha, &a, &b, beta, &mut c1);
        dgemm_naive(tra, trb, alpha, &a, &b, beta, &mut c2);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-11 * (k as f64 + 1.0));
    }

    /// Jacobi eigendecomposition reconstructs the matrix.
    #[test]
    fn eigh_reconstructs(n in 1usize..12, seed in 0u64..100) {
        let mut st = seed.wrapping_add(3);
        let raw = Matrix::from_fn(n, n, |_, _| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let a = Matrix::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)]);
        let e = eigh(&a);
        // A = V diag(w) Vᵀ
        let mut recon = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += e.eigenvectors[(i, k)] * e.eigenvalues[k] * e.eigenvectors[(j, k)];
                }
                recon[(i, j)] = acc;
            }
        }
        prop_assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    /// LU solve inverts well-conditioned systems.
    #[test]
    fn lu_roundtrip(n in 1usize..15, seed in 0u64..100) {
        let mut st = seed.wrapping_add(5);
        let a = Matrix::from_fn(n, n, |i, j| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(23);
            let v = ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            v + if i == j { 3.0 } else { 0.0 }
        });
        let xt: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[(i, j)] * xt[j];
            }
        }
        let x = lu_solve(&a, &b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - xt[i]).abs() < 1e-8);
        }
    }

    /// Task pools cover every item exactly once for arbitrary shapes.
    #[test]
    fn taskpool_partition(
        nitems in 0usize..3000,
        nproc in 1usize..64,
        fine in 1usize..128,
        large in 1usize..32,
        small in 0usize..32,
    ) {
        let pool = TaskPool::aggregated(nitems, nproc, fcix::core::PoolParams {
            fine_per_proc: fine, large_per_proc: large, small_per_proc: small });
        let mut seen = vec![0u8; nitems];
        for t in 0..pool.len() {
            for i in pool.task(t) {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// String creation/annihilation anticommute and the rank/space tables
    /// are consistent.
    #[test]
    fn string_space_consistency(n in 1usize..12, ne in 0usize..6) {
        prop_assume!(ne <= n);
        let sp = SpinStrings::c1(n, ne);
        prop_assert_eq!(sp.len(), binomial(n, ne));
        for i in 0..sp.len() {
            let m = sp.mask(i);
            prop_assert_eq!(m.count_ones() as usize, ne);
            prop_assert_eq!(sp.index_of(m), Some(i));
            // a†_p a_p = n_p on any occupied p.
            if let Some(p) = (0..n).find(|&p| m & (1 << p) != 0) {
                let (s1, m1) = annihilate(m, p).unwrap();
                let (s2, m2) = create(m1, p).unwrap();
                prop_assert_eq!(m2, m);
                prop_assert_eq!(s1 * s2, 1);
            }
        }
    }

    /// The Boys function satisfies its downward recursion everywhere.
    #[test]
    fn boys_recursion(t in 0.0f64..200.0) {
        let v = fcix::ints::boys::boys_vec(6, t);
        for m in 0..6 {
            let lhs = (2 * m + 1) as f64 * v[m];
            let rhs = 2.0 * t * v[m + 1] + (-t).exp();
            prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1e-30), "m={m} t={t}");
        }
        // Bounds: 0 < F_m(T) ≤ 1/(2m+1).
        for m in 0..=6 {
            prop_assert!(v[m] > 0.0 && v[m] <= 1.0 / (2 * m + 1) as f64 + 1e-15);
        }
    }
}
