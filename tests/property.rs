//! Property-style tests on the core invariants: σ-algorithm equivalence,
//! kernel correctness, combinatorial tables. Cases are drawn from a
//! deterministic in-repo generator (no external fuzzing dependency), so
//! every run exercises the same inputs and failures are reproducible by
//! construction.

use fcix::core::{
    apply_sigma, random_hamiltonian, slater, DetSpace, PoolParams, SigmaCtx, SigmaMethod, TaskPool,
};
use fcix::ddi::{Backend, Ddi};
use fcix::linalg::{dgemm, dgemm_naive, eigh, lu_solve, Matrix, Trans};
use fcix::strings::{annihilate, binomial, create, SpinStrings};
use fcix::xsim::MachineModel;

/// Deterministic case generator (splitmix-style LCG).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    /// Uniform in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u64() as f64 / (1u64 << 53) as f64)
    }
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// σ(DGEMM) == σ(MOC) == dense Slater–Condon for arbitrary electron
/// counts, processor counts and random (but physical) integrals.
#[test]
fn sigma_algorithms_agree() {
    let mut g = Gen::new(0xFC1);
    let mut cases = 0;
    while cases < 24 {
        let n = g.range(3, 6);
        let na = g.range(1, 4);
        let nb = g.range(0, 4);
        let nproc = g.range(1, 7);
        let seed = g.next_u64() % 1000;
        if na > n || nb > n {
            continue;
        }
        let ham = random_hamiltonian(n, seed);
        let space = DetSpace::c1(n, na, nb);
        if space.dim() > 2500 {
            continue;
        }
        cases += 1;
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.zeros_ci(nproc);
        let mut s = seed.wrapping_mul(77).wrapping_add(13);
        c.map_inplace(|_, _, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let (sig_d, _) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        let (sig_m, _) = apply_sigma(&ctx, &c, SigmaMethod::Moc);
        let reference = slater::sigma_dense(&space, &ham, &c.to_dense());
        let dd = sig_d.to_dense();
        let dm = sig_m.to_dense();
        for i in 0..reference.len() {
            assert!(
                (dd[i] - reference[i]).abs() < 1e-9,
                "dgemm[{i}] n={n} na={na} nb={nb}"
            );
            assert!(
                (dm[i] - reference[i]).abs() < 1e-9,
                "moc[{i}] n={n} na={na} nb={nb}"
            );
        }
    }
}

/// Blocked DGEMM equals the naive triple loop for arbitrary shapes,
/// transposes and alpha/beta.
#[test]
fn gemm_matches_naive() {
    let mut g = Gen::new(0xD6E);
    for _ in 0..40 {
        let m = g.range(1, 40);
        let n = g.range(1, 40);
        let k = g.range(0, 40);
        let ta = g.bool();
        let tb = g.bool();
        let alpha = g.f64_in(-2.0, 2.0);
        let beta = g.f64_in(-2.0, 2.0);
        let seed = g.next_u64() % 100;
        let tra = if ta { Trans::Yes } else { Trans::No };
        let trb = if tb { Trans::Yes } else { Trans::No };
        let mk = |r: usize, c: usize, s: u64| {
            let mut st = s.wrapping_add(1);
            Matrix::from_fn(r, c, |_, _| {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let a = if ta { mk(k, m, seed) } else { mk(m, k, seed) };
        let b = if tb {
            mk(n, k, seed + 7)
        } else {
            mk(k, n, seed + 7)
        };
        let c0 = mk(m, n, seed + 13);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        dgemm(tra, trb, alpha, &a, &b, beta, &mut c1);
        dgemm_naive(tra, trb, alpha, &a, &b, beta, &mut c2);
        assert!(
            c1.max_abs_diff(&c2) < 1e-11 * (k as f64 + 1.0),
            "m={m} n={n} k={k}"
        );
    }
}

/// Jacobi eigendecomposition reconstructs the matrix.
#[test]
fn eigh_reconstructs() {
    let mut g = Gen::new(0xE16);
    for _ in 0..30 {
        let n = g.range(1, 12);
        let seed = g.next_u64() % 100;
        let mut st = seed.wrapping_add(3);
        let raw = Matrix::from_fn(n, n, |_, _| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let a = Matrix::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)]);
        let e = eigh(&a);
        // A = V diag(w) Vᵀ
        let mut recon = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += e.eigenvectors[(i, k)] * e.eigenvalues[k] * e.eigenvectors[(j, k)];
                }
                recon[(i, j)] = acc;
            }
        }
        assert!(recon.max_abs_diff(&a) < 1e-9, "n={n} seed={seed}");
    }
}

/// LU solve inverts well-conditioned systems.
#[test]
fn lu_roundtrip() {
    let mut g = Gen::new(0x107);
    for _ in 0..30 {
        let n = g.range(1, 15);
        let seed = g.next_u64() % 100;
        let mut st = seed.wrapping_add(5);
        let a = Matrix::from_fn(n, n, |i, j| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(23);
            let v = ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            v + if i == j { 3.0 } else { 0.0 }
        });
        let xt: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[(i, j)] * xt[j];
            }
        }
        let x = lu_solve(&a, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - xt[i]).abs() < 1e-8, "n={n} i={i}");
        }
    }
}

/// Task pools cover every item exactly once for arbitrary shapes.
#[test]
fn taskpool_partition() {
    let mut g = Gen::new(0x7A5);
    for _ in 0..60 {
        let nitems = g.range(0, 3000);
        let nproc = g.range(1, 64);
        let fine = g.range(1, 128);
        let large = g.range(1, 32);
        let small = g.range(0, 32);
        let pool = TaskPool::aggregated(
            nitems,
            nproc,
            PoolParams {
                fine_per_proc: fine,
                large_per_proc: large,
                small_per_proc: small,
            },
        );
        let mut seen = vec![0u8; nitems];
        for t in 0..pool.len() {
            for i in pool.task(t) {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "nitems={nitems} nproc={nproc} fine={fine} large={large} small={small}"
        );
        // The sizes() report must agree with the ranges themselves.
        let sizes = pool.sizes();
        assert_eq!(sizes.len(), pool.len());
        for (t, &sz) in sizes.iter().enumerate() {
            assert_eq!(sz, pool.task(t).len());
        }
    }
}

/// String creation/annihilation anticommute and the rank/space tables
/// are consistent.
#[test]
fn string_space_consistency() {
    let mut g = Gen::new(0x57A);
    let mut cases = 0;
    while cases < 30 {
        let n = g.range(1, 12);
        let ne = g.range(0, 6);
        if ne > n {
            continue;
        }
        cases += 1;
        let sp = SpinStrings::c1(n, ne);
        assert_eq!(sp.len(), binomial(n, ne));
        for i in 0..sp.len() {
            let m = sp.mask(i);
            assert_eq!(m.count_ones() as usize, ne);
            assert_eq!(sp.index_of(m), Some(i));
            // a†_p a_p = n_p on any occupied p.
            if let Some(p) = (0..n).find(|&p| m & (1 << p) != 0) {
                let (s1, m1) = annihilate(m, p).unwrap();
                let (s2, m2) = create(m1, p).unwrap();
                assert_eq!(m2, m);
                assert_eq!(s1 * s2, 1);
            }
        }
    }
}

/// The Boys function satisfies its downward recursion everywhere.
#[test]
fn boys_recursion() {
    let mut g = Gen::new(0xB05);
    for _ in 0..50 {
        let t = g.f64_in(0.0, 200.0);
        let v = fcix::ints::boys::boys_vec(6, t);
        for m in 0..6 {
            let lhs = (2 * m + 1) as f64 * v[m];
            let rhs = 2.0 * t * v[m + 1] + (-t).exp();
            assert!(
                (lhs - rhs).abs() < 1e-10 * lhs.abs().max(1e-30),
                "m={m} t={t}"
            );
        }
        // Bounds: 0 < F_m(T) ≤ 1/(2m+1).
        for (m, &x) in v.iter().enumerate() {
            assert!(x > 0.0 && x <= 1.0 / (2 * m + 1) as f64 + 1e-15);
        }
    }
}
