//! Property-style tests for the extension modules: graphical string
//! ranking, dipole integrals, excitation filters, spin diagnostics.
//! Cases come from a deterministic in-repo generator (see
//! `tests/property.rs`) so runs are reproducible without any external
//! fuzzing dependency.

use fcix::core::{random_hamiltonian, DetSpace, Hamiltonian};
use fcix::ints::{dipole, overlap, BasisSet, Molecule, Shell};
use fcix::strings::{binomial, rank_colex, unrank_colex};

struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u64() as f64 / (1u64 << 53) as f64)
    }
}

/// rank/unrank are mutually inverse bijections onto 0..C(n,k).
#[test]
fn rank_unrank_bijection() {
    let mut g = Gen::new(0x4A4B);
    let mut cases = 0;
    while cases < 32 {
        let n = g.range(1, 16);
        let ne = g.range(0, 16) % (n + 1);
        let total = binomial(n, ne);
        if total == 0 {
            continue;
        }
        cases += 1;
        let r = g.range(0, 10_000) % total;
        let mask = unrank_colex(n, ne, r);
        assert_eq!(mask.count_ones() as usize, ne);
        assert_eq!(rank_colex(mask), r);
    }
}

/// The dipole operator about a shifted origin differs from the
/// origin-centred one by exactly −C·S (operator identity).
#[test]
fn dipole_origin_identity() {
    let mut g = Gen::new(0xD1B0);
    for _ in 0..8 {
        let cx = g.f64_in(-2.0, 2.0);
        let cy = g.f64_in(-2.0, 2.0);
        let cz = g.f64_in(-2.0, 2.0);
        let r = g.f64_in(0.8, 3.0);
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0; 3]), ("H", [0.0, 0.0, r])], 0);
        let b = BasisSet::build(&mol, "sto-3g");
        let s = overlap(&b);
        let d0 = dipole(&b, [0.0; 3]);
        let dc = dipole(&b, [cx, cy, cz]);
        let c = [cx, cy, cz];
        for ax in 0..3 {
            for i in 0..b.n_basis() {
                for j in 0..b.n_basis() {
                    let expect = d0[ax][(i, j)] - c[ax] * s[(i, j)];
                    assert!((dc[ax][(i, j)] - expect).abs() < 1e-11);
                }
            }
        }
    }
}

/// Excitation-filtered sector sizes follow the CI-level combinatorics
/// and nest monotonically.
#[test]
fn excitation_filter_nesting() {
    let mut g = Gen::new(0xE8C);
    let mut cases = 0;
    while cases < 12 {
        let n = g.range(3, 7);
        let na = g.range(1, 4);
        let nb = g.range(1, 4);
        let seed = g.next_u64() % 50;
        if na > n || nb > n {
            continue;
        }
        cases += 1;
        let ham = random_hamiltonian(n, seed);
        let space0 = DetSpace::c1(n, na, nb);
        // Reference: lowest diagonal determinant.
        let mut best = (f64::INFINITY, 0u64, 0u64);
        for ia in 0..space0.alpha.len() {
            for ib in 0..space0.beta.len() {
                let d = ham.diagonal_element(space0.alpha.mask(ia), space0.beta.mask(ib));
                if d < best.0 {
                    best = (d, space0.alpha.mask(ia), space0.beta.mask(ib));
                }
            }
        }
        let full = space0.dim();
        let mut prev = 0usize;
        for level in 0..=(na + nb) as u32 {
            let sp = DetSpace::c1(n, na, nb).with_excitation_limit(best.1, best.2, level);
            let d = sp.sector_dim();
            assert!(d >= prev, "levels must nest");
            prev = d;
            if level == 0 {
                assert_eq!(d, 1, "level 0 = the reference alone");
            }
        }
        assert_eq!(prev, full, "max level must recover full CI");
    }
}

/// ⟨S²⟩ of any single determinant equals
/// Sz(Sz+1) + (number of unpaired β-only orbitals actually movable):
/// for a determinant, S₋S₊ counts β-occupied ∧ α-empty orbitals.
#[test]
fn s_squared_single_determinant_rule() {
    let mut g = Gen::new(0x552);
    let mut cases = 0;
    while cases < 32 {
        let n = g.range(2, 7);
        let na = g.range(1, 4);
        let nb = g.range(0, 4);
        let pick = g.range(0, 1000);
        if na > n || nb > n || na < nb {
            continue;
        }
        cases += 1;
        let space = DetSpace::c1(n, na, nb);
        let ia = pick % space.alpha.len();
        let ib = (pick / 7) % space.beta.len();
        let c = space.zeros_ci(1);
        c.set(ib, ia, 1.0);
        let s2 = fcix::core::s_squared(&space, &c);
        let sz = 0.5 * (na as f64 - nb as f64);
        let movable = (space.beta.mask(ib) & !space.alpha.mask(ia)).count_ones() as f64;
        assert!((s2 - (sz * (sz + 1.0) + movable)).abs() < 1e-10);
    }
}

/// The Hamiltonian diagonal is invariant under exchanging the α and β
/// occupations (spin-flip symmetry of the spin-free operator).
#[test]
fn diagonal_spin_flip_symmetry() {
    let mut g = Gen::new(0xD1A6);
    for _ in 0..32 {
        let n = g.range(2, 7);
        let seed = g.next_u64() % 100;
        let pick = g.range(0, 500);
        let ham = random_hamiltonian(n, seed);
        let sp = DetSpace::c1(n, 2.min(n), 1.min(n));
        let ia = pick % sp.alpha.len();
        let ib = (pick / 3) % sp.beta.len();
        let (am, bm) = (sp.alpha.mask(ia), sp.beta.mask(ib));
        let d1 = ham.diagonal_element(am, bm);
        let d2 = ham.diagonal_element(bm, am);
        assert!((d1 - d2).abs() < 1e-12);
    }
}

#[test]
fn shell_level_dipole_matches_point_charge_limit() {
    // Two tight s shells far apart: ⟨a|z|a⟩ ≈ z_a exactly, cross terms ≈ 0.
    let basis = BasisSet::from_shells(vec![
        Shell::new(0, vec![6.0], vec![1.0], [0.0, 0.0, -4.0], 0),
        Shell::new(0, vec![6.0], vec![1.0], [0.0, 0.0, 4.0], 1),
    ]);
    let d = dipole(&basis, [0.0; 3]);
    assert!((d[2][(0, 0)] + 4.0).abs() < 1e-10);
    assert!((d[2][(1, 1)] - 4.0).abs() < 1e-10);
    assert!(d[2][(0, 1)].abs() < 1e-10);
}

#[test]
fn hamiltonian_invariant_under_orbital_relabeling() {
    // Permuting orbitals (a relabeling) must leave the FCI spectrum of a
    // small dense block unchanged.
    use fcix::core::slater::dense_h;
    use fcix::ints::EriTensor;
    use fcix::linalg::{eigh, Matrix};
    use fcix::scf::MoIntegrals;

    let ham0 = random_hamiltonian(4, 77);
    // permutation: reverse the orbital order
    let n = 4;
    let perm = |p: usize| n - 1 - p;
    let mut h = Matrix::zeros(n, n);
    let mut eri = EriTensor::zeros(n);
    for p in 0..n {
        for q in 0..n {
            h[(p, q)] = ham0.h[(perm(p), perm(q))];
            for r in 0..n {
                for s in 0..n {
                    eri.set(p, q, r, s, ham0.eri.get(perm(p), perm(q), perm(r), perm(s)));
                }
            }
        }
    }
    let mo = MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    };
    let ham1 = Hamiltonian::new(&mo);
    let space = DetSpace::c1(4, 2, 1);
    let e0 = eigh(&dense_h(&space, &ham0)).eigenvalues;
    let e1 = eigh(&dense_h(&space, &ham1)).eigenvalues;
    for (a, b) in e0.iter().zip(&e1) {
        assert!((a - b).abs() < 1e-10);
    }
}
