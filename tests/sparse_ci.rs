//! Cross-validation of the sparse/selected CI engines against the dense
//! DGEMM engine: model lattices and a real molecule, ground and excited
//! states, and the thread-count reproducibility contract. (The larger
//! shared-space checks — 63k and 854k determinants — run in release mode
//! in `sparse_sweep`; these tests pin correctness at dev-profile sizes.)

use fcix::core::{slater, solve, DetSpace, DiagMethod, FciOptions, Hamiltonian, SolverKind};
use fcix::ints::{BasisSet, Molecule};
use fcix::linalg::eigh;
use fcix::scf::{rhf, transform_integrals, MoIntegrals, RhfOptions};
use fcix::sparse::{solve_cdfci, solve_selected, solve_sparse, SparseOptions};

/// Open Hubbard chain MO integrals (t = 1).
fn hubbard_mo(sites: usize, u: f64) -> MoIntegrals {
    let mut h = fcix::linalg::Matrix::zeros(sites, sites);
    for i in 0..sites - 1 {
        h[(i, i + 1)] = -1.0;
        h[(i + 1, i)] = -1.0;
    }
    let mut eri = fcix::ints::EriTensor::zeros(sites);
    for i in 0..sites {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: sites,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; sites],
        n_irrep: 1,
    }
}

/// Water / STO-3G with the oxygen 1s frozen: 225 determinants.
fn water_mo() -> MoIntegrals {
    let mol = Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.4305, 1.1092]),
            ("H", [0.0, -1.4305, 1.1092]),
        ],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        1,
        6,
    )
}

fn dense_spectrum(mo: &MoIntegrals, na: usize, nb: usize) -> Vec<f64> {
    let ham = Hamiltonian::new(mo);
    let space = DetSpace::for_hamiltonian(&ham, na, nb, 0);
    let h = slater::dense_h(&space, &ham);
    eigh(&h).eigenvalues.iter().map(|e| e + mo.e_core).collect()
}

#[test]
fn hubbard_chain_sparse_engines_match_dense_fci() {
    let mo = hubbard_mo(6, 4.0);
    let ham = Hamiltonian::new(&mo);
    let space = DetSpace::for_hamiltonian(&ham, 3, 3, 0);
    // Lattice diagonals are degenerate: the dense reference needs the
    // Davidson subspace method (see the fci-core crate docs).
    let dense = solve(
        &mo,
        3,
        3,
        0,
        &FciOptions {
            method: DiagMethod::Davidson,
            ..FciOptions::default()
        },
    );
    assert!(dense.converged);
    let cd = solve_cdfci(
        &space,
        &ham,
        &SparseOptions {
            tol: 1e-12,
            ..SparseOptions::default()
        },
    );
    let sel = solve_selected(
        &space,
        &ham,
        &SparseOptions {
            eps: 1e-10,
            tol: 1e-11,
            ..SparseOptions::default()
        },
    );
    assert!(cd.converged && sel.converged);
    assert!(
        (cd.energy() - dense.energy).abs() < 1e-6,
        "cdfci {} vs dense {}",
        cd.energy(),
        dense.energy
    );
    assert!(
        (sel.energy() - dense.energy).abs() < 1e-6,
        "selected {} vs dense {}",
        sel.energy(),
        dense.energy
    );
}

#[test]
fn water_frozen_core_sparse_matches_dense() {
    let mo = water_mo();
    let ham = Hamiltonian::new(&mo);
    let space = DetSpace::for_hamiltonian(&ham, 4, 4, 0);
    let exact = dense_spectrum(&mo, 4, 4)[0];
    // Dispatch through the SolverKind front door, as the facade and the
    // job server do.
    let cd = solve_sparse(
        &space,
        &ham,
        SolverKind::SparseCdfci,
        &SparseOptions {
            tol: 1e-12,
            ..SparseOptions::default()
        },
    );
    let sel = solve_sparse(
        &space,
        &ham,
        SolverKind::SparseSelected,
        &SparseOptions {
            eps: 1e-10,
            tol: 1e-11,
            ..SparseOptions::default()
        },
    );
    assert!(
        (cd.energy() - exact).abs() < 1e-6,
        "cdfci {} vs dense {exact}",
        cd.energy()
    );
    assert!(
        (sel.energy() - exact).abs() < 1e-6,
        "selected {} vs dense {exact}",
        sel.energy()
    );
    // A molecule, not a lattice: correlation must be negative and modest.
    let scf_like = ham.diagonal_element(0b1111, 0b1111) + mo.e_core;
    assert!(cd.energy() < scf_like);
}

#[test]
fn selected_excited_roots_match_multiroot_davidson() {
    // A symmetry-free system: selection grows the space by |H·c|, so it
    // stays inside the reference determinant's symmetry block — on water
    // the "excited roots" it finds are the block's own spectrum, not the
    // full-space one. A random C1 Hamiltonian has no hidden blocks, so
    // selected roots must match the block-Davidson multiroot solver on
    // the full space.
    let ham = fcix::core::random_hamiltonian(6, 11);
    let space = DetSpace::for_hamiltonian(&ham, 3, 3, 0);
    let nroots = 3;
    let multi = fcix::core::solve_roots_prepared(&space, &ham, &FciOptions::default(), nroots);
    let sel = solve_selected(
        &space,
        &ham,
        &SparseOptions {
            eps: 1e-10,
            tol: 1e-11,
            nroots,
            ..SparseOptions::default()
        },
    );
    assert_eq!(sel.energies.len(), nroots);
    for r in 0..nroots {
        assert!(multi.converged[r]);
        assert!(
            (sel.energies[r] - multi.energies[r]).abs() < 1e-6,
            "root {r}: selected {} vs multiroot {}",
            sel.energies[r],
            multi.energies[r]
        );
    }
}

#[test]
fn sparse_energies_bitwise_reproducible_across_thread_counts() {
    let mo = water_mo();
    let ham = Hamiltonian::new(&mo);
    let space = DetSpace::for_hamiltonian(&ham, 4, 4, 0);
    // Property: for T ∈ {1, 2, 4}, every reported energy is the same
    // *bit pattern*, and the iteration/support trajectories agree — the
    // partition of work across threads is not observable in the result.
    let run = |threads: usize, kind: SolverKind| {
        let opts = SparseOptions {
            threads,
            eps: 1e-7,
            tol: 1e-10,
            nroots: if kind == SolverKind::SparseSelected {
                2
            } else {
                1
            },
            ..SparseOptions::default()
        };
        solve_sparse(&space, &ham, kind, &opts)
    };
    for kind in [SolverKind::SparseCdfci, SolverKind::SparseSelected] {
        let r1 = run(1, kind);
        let r2 = run(2, kind);
        let r4 = run(4, kind);
        for (i, e) in r1.energies.iter().enumerate() {
            assert_eq!(
                e.to_bits(),
                r2.energies[i].to_bits(),
                "{kind:?} root {i}: T=1 vs T=2"
            );
            assert_eq!(
                e.to_bits(),
                r4.energies[i].to_bits(),
                "{kind:?} root {i}: T=1 vs T=4"
            );
        }
        assert_eq!(r1.iterations, r2.iterations, "{kind:?} iterations");
        assert_eq!(r1.iterations, r4.iterations, "{kind:?} iterations");
        assert_eq!(r1.support, r4.support, "{kind:?} support");
    }
}
