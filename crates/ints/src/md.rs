//! McMurchie–Davidson machinery: Hermite expansion (E) coefficients and
//! Hermite Coulomb (R) integrals.
//!
//! A product of two 1D Cartesian Gaussians expands in Hermite Gaussians
//! `Λ_t` centered at the Gaussian product center P:
//!
//! ```text
//! x_A^i e^{−α x_A²} · x_B^j e^{−β x_B²} = Σ_{t=0}^{i+j} E_t^{ij} Λ_t(x_P; p)
//! ```
//!
//! with `p = α + β`. The E coefficients obey two-term transfer recursions in
//! i and j; all one- and two-electron integrals then reduce to closed forms
//! in E and (for Coulomb operators) the Hermite integrals `R_{tuv}` built
//! from Boys function values.

use crate::boys::boys;

/// Table of E coefficients for one Cartesian direction of a primitive pair:
/// `e(i, j, t)` for `0 ≤ i ≤ imax`, `0 ≤ j ≤ jmax`, `0 ≤ t ≤ i + j`.
#[derive(Clone, Debug)]
pub struct ETable {
    imax: usize,
    jmax: usize,
    data: Vec<f64>,
}

impl ETable {
    /// Build the table. `a`, `b` are the exponents; `ax`, `bx` the centers
    /// along this direction.
    pub fn new(imax: usize, jmax: usize, a: f64, b: f64, ax: f64, bx: f64) -> Self {
        let p = a + b;
        let mu = a * b / p;
        let px = (a * ax + b * bx) / p;
        let xab = ax - bx;
        let xpa = px - ax;
        let xpb = px - bx;
        let tdim = imax + jmax + 1;
        let mut t = ETable {
            imax,
            jmax,
            data: vec![0.0; (imax + 1) * (jmax + 1) * tdim],
        };
        t.set(0, 0, 0, (-mu * xab * xab).exp());
        // Raise i at j = 0, then raise j at each i.
        for i in 0..imax {
            for tt in 0..=(i + 1) {
                let mut v = xpa * t.get(i, 0, tt);
                if tt > 0 {
                    v += t.get(i, 0, tt - 1) / (2.0 * p);
                }
                if tt < i {
                    v += (tt + 1) as f64 * t.get(i, 0, tt + 1);
                }
                t.set(i + 1, 0, tt, v);
            }
        }
        for i in 0..=imax {
            for j in 0..jmax {
                for tt in 0..=(i + j + 1) {
                    let mut v = xpb * t.get(i, j, tt);
                    if tt > 0 {
                        v += t.get(i, j, tt - 1) / (2.0 * p);
                    }
                    if tt < i + j {
                        v += (tt + 1) as f64 * t.get(i, j, tt + 1);
                    }
                    t.set(i, j + 1, tt, v);
                }
            }
        }
        t
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, t: usize) -> usize {
        (i * (self.jmax + 1) + j) * (self.imax + self.jmax + 1) + t
    }

    /// `E_t^{ij}`; zero for `t > i + j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, t: usize) -> f64 {
        if t > i + j {
            return 0.0;
        }
        self.data[self.idx(i, j, t)]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, t: usize, v: f64) {
        let k = self.idx(i, j, t);
        self.data[k] = v;
    }
}

/// Hermite Coulomb integrals `R_{tuv} ≡ R⁰_{tuv}(p, PC)` for all
/// `t + u + v ≤ l`, stored with stride `(l+1)` per axis.
#[derive(Clone, Debug)]
pub struct RTable {
    l: usize,
    data: Vec<f64>,
}

impl RTable {
    /// Build from the total order `l`, exponent `p` and the vector `pc`
    /// from the product center to the charge center.
    pub fn new(l: usize, p: f64, pc: [f64; 3]) -> Self {
        let r2 = pc[0] * pc[0] + pc[1] * pc[1] + pc[2] * pc[2];
        let mut f = vec![0.0; l + 1];
        boys(l, p * r2, &mut f);
        let dim = l + 1;
        let sz = dim * dim * dim;
        // work[n] holds R^n_{tuv}; we fill from n = l down to 0.
        let mut cur = vec![0.0; sz];
        let mut next = vec![0.0; sz];
        let at = |t: usize, u: usize, v: usize| (t * dim + u) * dim + v;
        for n in (0..=l).rev() {
            std::mem::swap(&mut cur, &mut next);
            cur.iter_mut().for_each(|x| *x = 0.0);
            let m2p = (-2.0 * p).powi(n as i32);
            cur[at(0, 0, 0)] = m2p * f[n];
            let order = l - n;
            for t in 0..=order {
                for u in 0..=(order - t) {
                    for v in 0..=(order - t - u) {
                        if t + u + v == 0 {
                            continue;
                        }
                        let val = if t > 0 {
                            let mut x = pc[0] * next[at(t - 1, u, v)];
                            if t > 1 {
                                x += (t - 1) as f64 * next[at(t - 2, u, v)];
                            }
                            x
                        } else if u > 0 {
                            let mut x = pc[1] * next[at(t, u - 1, v)];
                            if u > 1 {
                                x += (u - 1) as f64 * next[at(t, u - 2, v)];
                            }
                            x
                        } else {
                            let mut x = pc[2] * next[at(t, u, v - 1)];
                            if v > 1 {
                                x += (v - 1) as f64 * next[at(t, u, v - 2)];
                            }
                            x
                        };
                        cur[at(t, u, v)] = val;
                    }
                }
            }
        }
        RTable { l, data: cur }
    }

    /// `R_{tuv}`; caller must keep `t + u + v ≤ l`.
    #[inline]
    pub fn get(&self, t: usize, u: usize, v: usize) -> f64 {
        debug_assert!(t + u + v <= self.l);
        let dim = self.l + 1;
        self.data[(t * dim + u) * dim + v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e00_is_gaussian_prefactor() {
        let (a, b, ax, bx) = (0.9, 1.3, 0.0, 1.1);
        let e = ETable::new(0, 0, a, b, ax, bx);
        let mu = a * b / (a + b);
        assert!((e.get(0, 0, 0) - (-mu * (ax - bx) * (ax - bx)).exp()).abs() < 1e-15);
    }

    #[test]
    fn e_sum_rule_point_value() {
        // At any x, Σ_t E_t^{ij} Λ_t(x_P) must reproduce the 1D product
        // x_A^i exp(−α x_A²) x_B^j exp(−β x_B²).
        // Hermite Gaussians: Λ_t(x) = (∂/∂P)^t exp(−p x_P²).
        let (a, b, ax, bx) = (0.8, 0.45, -0.3, 0.9);
        let p = a + b;
        let px = (a * ax + b * bx) / p;
        let e = ETable::new(3, 2, a, b, ax, bx);
        // Λ_t(x) = (∂/∂P)^t e^{−p(x−P)²}. With u = √p (x−P) and the
        // physicists' Hermite polynomials H_t, (d/du)^t e^{−u²} =
        // (−1)^t H_t(u) e^{−u²} and ∂/∂P = −√p d/du, so
        // Λ_t(x) = p^{t/2} H_t(u) e^{−u²} — evaluated exactly.
        let lambda = |t: usize, x: f64| -> f64 {
            let u = p.sqrt() * (x - px);
            let h = match t {
                0 => 1.0,
                1 => 2.0 * u,
                2 => 4.0 * u * u - 2.0,
                3 => 8.0 * u.powi(3) - 12.0 * u,
                4 => 16.0 * u.powi(4) - 48.0 * u * u + 12.0,
                5 => 32.0 * u.powi(5) - 160.0 * u.powi(3) + 120.0 * u,
                _ => unreachable!(),
            };
            p.powf(t as f64 / 2.0) * h * (-u * u).exp()
        };
        for (i, j) in [(0usize, 0usize), (1, 0), (0, 1), (2, 1), (3, 2)] {
            for &x in &[-0.7, 0.2, 1.4] {
                let exact = (x - ax).powi(i as i32)
                    * (-a * (x - ax) * (x - ax)).exp()
                    * (x - bx).powi(j as i32)
                    * (-b * (x - bx) * (x - bx)).exp();
                let mut sum = 0.0;
                for t in 0..=(i + j) {
                    sum += e.get(i, j, t) * lambda(t, x);
                }
                assert!(
                    (sum - exact).abs() < 1e-12,
                    "E sum rule failed at i={i} j={j} x={x}: {sum} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn e_t_out_of_range_zero() {
        let e = ETable::new(2, 2, 1.0, 1.0, 0.0, 0.5);
        assert_eq!(e.get(1, 1, 3), 0.0);
        assert_eq!(e.get(0, 0, 1), 0.0);
    }

    #[test]
    fn r000_is_boys() {
        let p = 1.7;
        let pc = [0.3, -0.2, 0.5];
        let r2: f64 = pc.iter().map(|x| x * x).sum();
        let r = RTable::new(0, p, pc);
        let f0 = crate::boys::boys_vec(0, p * r2)[0];
        assert!((r.get(0, 0, 0) - f0).abs() < 1e-15);
    }

    #[test]
    fn r_derivative_consistency() {
        // R_{100}(PC) = ∂/∂PC_x R_{000}(PC); check by finite difference.
        let p = 0.9;
        let pc = [0.4, 0.1, -0.3];
        let h = 1e-5;
        let r = RTable::new(2, p, pc);
        let r0 = |pcx: f64| RTable::new(0, p, [pcx, pc[1], pc[2]]).get(0, 0, 0);
        let fd = (r0(pc[0] + h) - r0(pc[0] - h)) / (2.0 * h);
        assert!(
            (r.get(1, 0, 0) - fd).abs() < 1e-7,
            "{} vs {}",
            r.get(1, 0, 0),
            fd
        );
        // Second derivative.
        let fd2 = (r0(pc[0] + h) - 2.0 * r0(pc[0]) + r0(pc[0] - h)) / (h * h);
        assert!((r.get(2, 0, 0) - fd2).abs() < 1e-5);
    }

    #[test]
    fn r_symmetric_in_axes() {
        // Swapping the roles of x and y in PC must swap R indices.
        let p = 1.1;
        let r1 = RTable::new(3, p, [0.2, 0.7, -0.1]);
        let r2 = RTable::new(3, p, [0.7, 0.2, -0.1]);
        assert!((r1.get(2, 1, 0) - r2.get(1, 2, 0)).abs() < 1e-13);
        assert!((r1.get(0, 1, 2) - r2.get(1, 0, 2)).abs() < 1e-13);
    }
}
