#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Molecular integrals over contracted Cartesian Gaussian basis functions.
//!
//! The paper's benchmark calculations consume one- and two-electron
//! molecular integrals (`h_pq`, `(pq|rs)`) produced by a conventional
//! quantum-chemistry stack. That stack is proprietary-adjacent tooling we
//! rebuild here from scratch using the McMurchie–Davidson scheme:
//!
//! * [`molecule`] — elements, geometries, nuclear repulsion;
//! * [`basis`] — contracted Cartesian shells (s, p, d, …), embedded basis
//!   set data (STO-3G plus a programmatically derived split-valence /
//!   polarization set — see `DESIGN.md` for why we avoid transcribing
//!   larger literature sets);
//! * [`boys`] — the Boys function `F_m(T)`;
//! * [`md`] — Hermite expansion (E) coefficients and Hermite Coulomb (R)
//!   integrals;
//! * [`oneint`] / [`eri`] — overlap, kinetic, nuclear-attraction matrices
//!   and the packed 8-fold-symmetric two-electron integral tensor;
//! * [`symmetry`] — detection of abelian (D2h-subgroup) point-group
//!   operations and their signed-permutation representation in the AO
//!   basis, used to tag molecular orbitals with irreps for
//!   symmetry-blocked FCI.
//!
//! Correctness is established through internal invariants (Hermiticity,
//! translation/rotation invariance, variational bounds) rather than
//! transcription of literature tables; see the crate tests.

pub mod basis;
pub mod boys;
pub mod eri;
pub mod md;
pub mod molecule;
pub mod oneint;
pub mod symmetry;

pub use basis::{BasisSet, Shell};
pub use eri::{eri_tensor, eri_tensor_screened, EriTensor};
pub use molecule::{Atom, Molecule, ANGSTROM_TO_BOHR};
pub use oneint::{dipole, kinetic, nuclear_attraction, overlap};
pub use symmetry::{detect_point_group, mo_irreps, PointGroup, SymmetryOp};
