//! One-electron integral matrices: overlap, kinetic, nuclear attraction.

use crate::basis::BasisSet;
use crate::md::{ETable, RTable};
use crate::molecule::Molecule;
use fci_linalg::Matrix;
use std::f64::consts::PI;

/// Overlap matrix `S_{μν} = ⟨μ|ν⟩`.
pub fn overlap(basis: &BasisSet) -> Matrix {
    one_electron(basis, |sa, sb, _comps| {
        let mut block = Matrix::zeros(sa.n_cart(), sb.n_cart());
        let ca = sa.components();
        let cb = sb.components();
        for (&a, &wa) in sa.exps.iter().zip(&sa.coefs) {
            for (&b, &wb) in sb.exps.iter().zip(&sb.coefs) {
                let p = a + b;
                let pref = wa * wb * (PI / p).powf(1.5);
                let ex = ETable::new(sa.l, sb.l, a, b, sa.center[0], sb.center[0]);
                let ey = ETable::new(sa.l, sb.l, a, b, sa.center[1], sb.center[1]);
                let ez = ETable::new(sa.l, sb.l, a, b, sa.center[2], sb.center[2]);
                for (ia, &(i1, j1, k1)) in ca.iter().enumerate() {
                    let fa = sa.component_factor(i1, j1, k1);
                    for (ib, &(i2, j2, k2)) in cb.iter().enumerate() {
                        let fb = sb.component_factor(i2, j2, k2);
                        block[(ia, ib)] += pref
                            * fa
                            * fb
                            * ex.get(i1, i2, 0)
                            * ey.get(j1, j2, 0)
                            * ez.get(k1, k2, 0);
                    }
                }
            }
        }
        block
    })
}

/// Kinetic energy matrix `T_{μν} = ⟨μ| −½∇² |ν⟩`.
pub fn kinetic(basis: &BasisSet) -> Matrix {
    one_electron(basis, |sa, sb, _| {
        let mut block = Matrix::zeros(sa.n_cart(), sb.n_cart());
        let ca = sa.components();
        let cb = sb.components();
        for (&a, &wa) in sa.exps.iter().zip(&sa.coefs) {
            for (&b, &wb) in sb.exps.iter().zip(&sb.coefs) {
                let p = a + b;
                let pref = wa * wb * (PI / p).powf(1.5);
                // Tables big enough for j + 2.
                let ex = ETable::new(sa.l, sb.l + 2, a, b, sa.center[0], sb.center[0]);
                let ey = ETable::new(sa.l, sb.l + 2, a, b, sa.center[1], sb.center[1]);
                let ez = ETable::new(sa.l, sb.l + 2, a, b, sa.center[2], sb.center[2]);
                // 1D kinetic block on top of 1D overlaps:
                // t_ij = −2b² s_{i,j+2} + b(2j+1) s_{ij} − ½ j(j−1) s_{i,j−2}
                let t1 = |e: &ETable, i: usize, j: usize| -> f64 {
                    let mut v =
                        -2.0 * b * b * e.get(i, j + 2, 0) + b * (2 * j + 1) as f64 * e.get(i, j, 0);
                    if j >= 2 {
                        v -= 0.5 * (j * (j - 1)) as f64 * e.get(i, j - 2, 0);
                    }
                    v
                };
                for (ia, &(i1, j1, k1)) in ca.iter().enumerate() {
                    let fa = sa.component_factor(i1, j1, k1);
                    for (ib, &(i2, j2, k2)) in cb.iter().enumerate() {
                        let fb = sb.component_factor(i2, j2, k2);
                        let sx = ex.get(i1, i2, 0);
                        let sy = ey.get(j1, j2, 0);
                        let sz = ez.get(k1, k2, 0);
                        let v = t1(&ex, i1, i2) * sy * sz
                            + sx * t1(&ey, j1, j2) * sz
                            + sx * sy * t1(&ez, k1, k2);
                        block[(ia, ib)] += pref * fa * fb * v;
                    }
                }
            }
        }
        block
    })
}

/// Nuclear attraction matrix `V_{μν} = ⟨μ| Σ_C −Z_C/|r−R_C| |ν⟩`.
pub fn nuclear_attraction(basis: &BasisSet, molecule: &Molecule) -> Matrix {
    one_electron(basis, |sa, sb, _| {
        let mut block = Matrix::zeros(sa.n_cart(), sb.n_cart());
        let ca = sa.components();
        let cb = sb.components();
        let ltot = sa.l + sb.l;
        for (&a, &wa) in sa.exps.iter().zip(&sa.coefs) {
            for (&b, &wb) in sb.exps.iter().zip(&sb.coefs) {
                let p = a + b;
                let px = [
                    (a * sa.center[0] + b * sb.center[0]) / p,
                    (a * sa.center[1] + b * sb.center[1]) / p,
                    (a * sa.center[2] + b * sb.center[2]) / p,
                ];
                let pref = wa * wb * 2.0 * PI / p;
                let ex = ETable::new(sa.l, sb.l, a, b, sa.center[0], sb.center[0]);
                let ey = ETable::new(sa.l, sb.l, a, b, sa.center[1], sb.center[1]);
                let ez = ETable::new(sa.l, sb.l, a, b, sa.center[2], sb.center[2]);
                for atom in &molecule.atoms {
                    let pc = [
                        px[0] - atom.pos[0],
                        px[1] - atom.pos[1],
                        px[2] - atom.pos[2],
                    ];
                    let r = RTable::new(ltot, p, pc);
                    for (ia, &(i1, j1, k1)) in ca.iter().enumerate() {
                        let fa = sa.component_factor(i1, j1, k1);
                        for (ib, &(i2, j2, k2)) in cb.iter().enumerate() {
                            let fb = sb.component_factor(i2, j2, k2);
                            let mut v = 0.0;
                            for t in 0..=(i1 + i2) {
                                let et = ex.get(i1, i2, t);
                                if et == 0.0 {
                                    continue;
                                }
                                for u in 0..=(j1 + j2) {
                                    let eu = ey.get(j1, j2, u);
                                    if eu == 0.0 {
                                        continue;
                                    }
                                    for w in 0..=(k1 + k2) {
                                        v += et * eu * ez.get(k1, k2, w) * r.get(t, u, w);
                                    }
                                }
                            }
                            block[(ia, ib)] -= pref * fa * fb * (atom.z as f64) * v;
                        }
                    }
                }
            }
        }
        block
    })
}

/// Dipole-moment integral matrices `⟨μ| (r − C) |ν⟩` for the three
/// Cartesian components, about the point `origin`.
pub fn dipole(basis: &BasisSet, origin: [f64; 3]) -> [Matrix; 3] {
    let build = |axis: usize| {
        one_electron(basis, |sa, sb, _| {
            let mut block = Matrix::zeros(sa.n_cart(), sb.n_cart());
            let ca = sa.components();
            let cb = sb.components();
            for (&a, &wa) in sa.exps.iter().zip(&sa.coefs) {
                for (&b, &wb) in sb.exps.iter().zip(&sb.coefs) {
                    let p = a + b;
                    let pref = wa * wb * (PI / p).powf(1.5);
                    let pc = (a * sa.center[axis] + b * sb.center[axis]) / p - origin[axis];
                    let ex = ETable::new(sa.l, sb.l, a, b, sa.center[0], sb.center[0]);
                    let ey = ETable::new(sa.l, sb.l, a, b, sa.center[1], sb.center[1]);
                    let ez = ETable::new(sa.l, sb.l, a, b, sa.center[2], sb.center[2]);
                    let tabs = [&ex, &ey, &ez];
                    for (ia, &(i1, j1, k1)) in ca.iter().enumerate() {
                        let fa = sa.component_factor(i1, j1, k1);
                        for (ib, &(i2, j2, k2)) in cb.iter().enumerate() {
                            let fb = sb.component_factor(i2, j2, k2);
                            let ii = [(i1, i2), (j1, j2), (k1, k2)];
                            // ⟨i|x−C|j⟩₁D = E₁ + (P−C)·E₀ along `axis`,
                            // plain E₀ overlaps on the other two axes.
                            let mut v = 1.0;
                            for ax in 0..3 {
                                let (l1, l2) = ii[ax];
                                let e = tabs[ax];
                                v *= if ax == axis {
                                    e.get(l1, l2, 1) + pc * e.get(l1, l2, 0)
                                } else {
                                    e.get(l1, l2, 0)
                                };
                            }
                            block[(ia, ib)] += pref * fa * fb * v;
                        }
                    }
                }
            }
            block
        })
    };
    [build(0), build(1), build(2)]
}

/// Assemble a full AO matrix from per-shell-pair blocks, exploiting
/// Hermitian symmetry.
fn one_electron(
    basis: &BasisSet,
    block_fn: impl Fn(&crate::basis::Shell, &crate::basis::Shell, ()) -> Matrix,
) -> Matrix {
    let n = basis.n_basis();
    let mut m = Matrix::zeros(n, n);
    for sa in 0..basis.n_shells() {
        for sb in 0..=sa {
            let block = block_fn(&basis.shells()[sa], &basis.shells()[sb], ());
            let oa = basis.shell_offset(sa);
            let ob = basis.shell_offset(sb);
            for i in 0..block.nrows() {
                for j in 0..block.ncols() {
                    m[(oa + i, ob + j)] = block[(i, j)];
                    m[(ob + j, oa + i)] = block[(i, j)];
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{BasisSet, Shell};
    use crate::molecule::Molecule;

    fn h2() -> (Molecule, BasisSet) {
        let m = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, 1.4])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        (m, b)
    }

    #[test]
    fn overlap_diagonal_is_one() {
        let (_, b) = h2();
        let s = overlap(&b);
        for i in 0..b.n_basis() {
            assert!(
                (s[(i, i)] - 1.0).abs() < 1e-12,
                "S[{i}][{i}] = {}",
                s[(i, i)]
            );
        }
        assert!(s.is_symmetric(1e-14));
        // H2 at 1.4 bohr: S12 in (0,1)
        assert!(s[(0, 1)] > 0.3 && s[(0, 1)] < 0.9);
    }

    #[test]
    fn overlap_p_and_d_normalized() {
        let m = Molecule::from_symbols_bohr(&[("C", [0.1, -0.2, 0.3])], 0);
        let b = BasisSet::build(&m, "svp");
        let s = overlap(&b);
        for i in 0..b.n_basis() {
            assert!(
                (s[(i, i)] - 1.0).abs() < 1e-10,
                "S[{i}][{i}] = {}",
                s[(i, i)]
            );
        }
    }

    #[test]
    fn single_gaussian_kinetic_analytic() {
        // For a normalized 1s Gaussian with exponent a: T = 3a/2.
        let b = BasisSet::from_shells(vec![Shell::new(0, vec![0.7], vec![1.0], [0.0; 3], 0)]);
        let t = kinetic(&b);
        assert!((t[(0, 0)] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn p_gaussian_kinetic_analytic() {
        // Normalized p Gaussian, exponent a: T = 5a/2.
        let a = 1.3;
        let b = BasisSet::from_shells(vec![Shell::new(1, vec![a], vec![1.0], [0.0; 3], 0)]);
        let t = kinetic(&b);
        for i in 0..3 {
            assert!((t[(i, i)] - 2.5 * a).abs() < 1e-12);
        }
    }

    #[test]
    fn nuclear_single_center_analytic() {
        // 1s Gaussian at the nucleus: V = −Z · 2√(a/π) · ... For normalized
        // s Gaussian: V = −Z √(8a/π) / √2 = −2Z√(a/(2π))·√2 … use the known
        // closed form V = −Z·2·√(2a/π)/√π^0 : check against quadrature-free
        // expression V = −Z √(8 a / π) / √(2)?  Safer: compare to the Boys
        // limit  V = −Z · 2π/a · F₀(0) · N² (π/(2a))^{3/2}-style assembled
        // value — i.e. recompute independently here.
        let a = 0.9;
        let z = 3.0;
        let m = Molecule {
            atoms: vec![crate::molecule::Atom {
                z: 3,
                pos: [0.0; 3],
            }],
            charge: 0,
        };
        let b = BasisSet::from_shells(vec![Shell::new(0, vec![a], vec![1.0], [0.0; 3], 0)]);
        let v = nuclear_attraction(&b, &m);
        // Analytic: ⟨1s|1/r|1s⟩ for normalized Gaussian = 2√(a/π)·√2 /√π^…
        // Known result: = 2 √(2a/π) / √π × √π = 2√(2a/π). Let's verify by
        // radial quadrature instead of trusting memory.
        let nconst = (2.0 * a / PI).powf(0.75);
        let mut quad = 0.0;
        let nsteps = 200_000;
        let rmax = 20.0;
        let dr = rmax / nsteps as f64;
        for i in 1..=nsteps {
            let r = i as f64 * dr;
            // 4π r² · N² e^{−2ar²} · (1/r)
            quad += 4.0 * PI * r * (-2.0 * a * r * r).exp() * dr;
        }
        quad *= nconst * nconst;
        assert!(
            (v[(0, 0)] + z * quad).abs() < 1e-6,
            "V = {} vs quadrature {}",
            v[(0, 0)],
            -z * quad
        );
    }

    #[test]
    fn translation_invariance() {
        let (m, b) = h2();
        let t1 = kinetic(&b);
        let s1 = overlap(&b);
        let v1 = nuclear_attraction(&b, &m);
        let m2 = m.translated([1.3, -0.4, 2.2]);
        let b2 = BasisSet::build(&m2, "sto-3g");
        let t2 = kinetic(&b2);
        let s2 = overlap(&b2);
        let v2 = nuclear_attraction(&b2, &m2);
        assert!(t1.max_abs_diff(&t2) < 1e-11);
        assert!(s1.max_abs_diff(&s2) < 1e-11);
        assert!(v1.max_abs_diff(&v2) < 1e-10);
    }

    #[test]
    fn axis_permutation_invariance() {
        // Putting the H2 axis along x instead of z must leave S, T and the
        // s-block of V unchanged (full rotation invariance of the engine).
        let mz = Molecule::from_symbols_bohr(&[("O", [0.0; 3]), ("H", [0.0, 0.0, 1.8])], 0);
        let mx = Molecule::from_symbols_bohr(&[("O", [0.0; 3]), ("H", [1.8, 0.0, 0.0])], 0);
        let bz = BasisSet::build(&mz, "sto-3g");
        let bx = BasisSet::build(&mx, "sto-3g");
        let vz = nuclear_attraction(&bz, &mz);
        let vx = nuclear_attraction(&bx, &mx);
        // Compare traces (basis-ordering independent invariant).
        let trz: f64 = (0..bz.n_basis()).map(|i| vz[(i, i)]).sum();
        let trx: f64 = (0..bx.n_basis()).map(|i| vx[(i, i)]).sum();
        assert!((trz - trx).abs() < 1e-10);
        let tz = kinetic(&bz);
        let tx = kinetic(&bx);
        let ttz: f64 = (0..bz.n_basis()).map(|i| tz[(i, i)]).sum();
        let ttx: f64 = (0..bx.n_basis()).map(|i| tx[(i, i)]).sum();
        assert!((ttz - ttx).abs() < 1e-11);
    }

    #[test]
    fn dipole_of_s_function_is_its_center() {
        // ⟨s|r|s⟩ for a normalized Gaussian at R equals R (about origin).
        let center = [0.4, -1.2, 2.0];
        let b = BasisSet::from_shells(vec![Shell::new(0, vec![0.8], vec![1.0], center, 0)]);
        let d = dipole(&b, [0.0; 3]);
        for ax in 0..3 {
            assert!((d[ax][(0, 0)] - center[ax]).abs() < 1e-12);
        }
    }

    #[test]
    fn dipole_origin_shift_is_overlap_scaled() {
        // ⟨μ|r−C|ν⟩ = ⟨μ|r|ν⟩ − C·S[μ][ν].
        let (m, b) = h2();
        let _ = m;
        let s = overlap(&b);
        let d0 = dipole(&b, [0.0; 3]);
        let c = [0.3, -0.7, 1.1];
        let dc = dipole(&b, c);
        for ax in 0..3 {
            for i in 0..b.n_basis() {
                for j in 0..b.n_basis() {
                    let expect = d0[ax][(i, j)] - c[ax] * s[(i, j)];
                    assert!((dc[ax][(i, j)] - expect).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn dipole_symmetric_and_sp_coupling() {
        // ⟨s|x|px⟩ on one center is nonzero (the classic s–p transition
        // moment); ⟨s|x|py⟩ vanishes by symmetry.
        let mc = Molecule::from_symbols_bohr(&[("C", [0.0; 3])], 0);
        let b = BasisSet::build(&mc, "sto-3g");
        let d = dipole(&b, [0.0; 3]);
        // AO order: 1s, 2s, 2px, 2py, 2pz.
        assert!(d[0][(1, 2)].abs() > 1e-3, "⟨2s|x|2px⟩ = {}", d[0][(1, 2)]);
        assert!(d[0][(1, 3)].abs() < 1e-12);
        for dm in &d {
            assert!(dm.is_symmetric(1e-11));
        }
    }

    #[test]
    fn kinetic_positive_definite_diagonal() {
        let m = Molecule::from_symbols_bohr(&[("C", [0.0; 3]), ("O", [0.0, 0.0, 2.1])], 0);
        let b = BasisSet::build(&m, "svp");
        let t = kinetic(&b);
        for i in 0..b.n_basis() {
            assert!(t[(i, i)] > 0.0);
        }
        assert!(t.is_symmetric(1e-11));
    }
}
