//! Molecular geometry and nuclear data.

/// Conversion factor from Ångström to Bohr (atomic units).
pub const ANGSTROM_TO_BOHR: f64 = 1.8897259886;

/// Chemical elements supported by the embedded basis sets.
const SYMBOLS: [&str; 10] = ["H", "He", "Li", "Be", "B", "C", "N", "O", "F", "Ne"];

/// Atomic number for an element symbol (case-insensitive), if supported.
pub fn atomic_number(symbol: &str) -> Option<u32> {
    let s = symbol.trim();
    SYMBOLS
        .iter()
        .position(|&e| e.eq_ignore_ascii_case(s))
        .map(|i| (i + 1) as u32)
}

/// Element symbol for an atomic number.
pub fn element_symbol(z: u32) -> &'static str {
    SYMBOLS
        .get(z as usize - 1)
        .copied()
        .expect("unsupported element")
}

/// One atom: nuclear charge and position in Bohr.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Atomic number (= nuclear charge for all-electron calculations).
    pub z: u32,
    /// Cartesian position in Bohr.
    pub pos: [f64; 3],
}

/// A molecule: a set of atoms and a total charge.
#[derive(Clone, Debug, PartialEq)]
pub struct Molecule {
    /// The atoms, positions in Bohr.
    pub atoms: Vec<Atom>,
    /// Net molecular charge (electrons = Σ Z − charge).
    pub charge: i32,
}

impl Molecule {
    /// Build from `(symbol, [x, y, z])` pairs with coordinates in Bohr.
    pub fn from_symbols_bohr(atoms: &[(&str, [f64; 3])], charge: i32) -> Self {
        let atoms = atoms
            .iter()
            .map(|(s, pos)| Atom {
                z: atomic_number(s).unwrap_or_else(|| panic!("unknown element {s}")),
                pos: *pos,
            })
            .collect();
        Molecule { atoms, charge }
    }

    /// Build from `(symbol, [x, y, z])` pairs with coordinates in Ångström.
    pub fn from_symbols_angstrom(atoms: &[(&str, [f64; 3])], charge: i32) -> Self {
        let scaled: Vec<(&str, [f64; 3])> = atoms
            .iter()
            .map(|(s, p)| {
                (
                    *s,
                    [
                        p[0] * ANGSTROM_TO_BOHR,
                        p[1] * ANGSTROM_TO_BOHR,
                        p[2] * ANGSTROM_TO_BOHR,
                    ],
                )
            })
            .collect();
        Self::from_symbols_bohr(&scaled, charge)
    }

    /// Number of electrons.
    pub fn n_electrons(&self) -> usize {
        let zsum: i64 = self.atoms.iter().map(|a| a.z as i64).sum();
        let n = zsum - self.charge as i64;
        assert!(n >= 0, "charge exceeds total nuclear charge");
        n as usize
    }

    /// Nuclear repulsion energy `Σ_{A<B} Z_A Z_B / R_AB` in hartree.
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in 0..i {
                let a = &self.atoms[i];
                let b = &self.atoms[j];
                let r = dist(a.pos, b.pos);
                assert!(r > 1e-10, "coincident nuclei");
                e += (a.z * b.z) as f64 / r;
            }
        }
        e
    }

    /// Translate every atom by `d` (Bohr). Physics must be invariant.
    pub fn translated(&self, d: [f64; 3]) -> Molecule {
        let atoms = self
            .atoms
            .iter()
            .map(|a| Atom {
                z: a.z,
                pos: [a.pos[0] + d[0], a.pos[1] + d[1], a.pos[2] + d[2]],
            })
            .collect();
        Molecule {
            atoms,
            charge: self.charge,
        }
    }
}

pub(crate) fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_lookup() {
        assert_eq!(atomic_number("H"), Some(1));
        assert_eq!(atomic_number("o"), Some(8));
        assert_eq!(atomic_number("Ne"), Some(10));
        assert_eq!(atomic_number("Xx"), None);
        assert_eq!(element_symbol(6), "C");
    }

    #[test]
    fn h2_repulsion() {
        let m = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, 1.4])], 0);
        assert!((m.nuclear_repulsion() - 1.0 / 1.4).abs() < 1e-15);
        assert_eq!(m.n_electrons(), 2);
    }

    #[test]
    fn charge_changes_electron_count() {
        let m = Molecule::from_symbols_bohr(&[("O", [0.0; 3])], -1);
        assert_eq!(m.n_electrons(), 9);
        let m = Molecule::from_symbols_bohr(&[("C", [0.0; 3]), ("N", [0.0, 0.0, 2.2])], 1);
        assert_eq!(m.n_electrons(), 12);
    }

    #[test]
    fn translation_preserves_repulsion() {
        let m = Molecule::from_symbols_bohr(
            &[
                ("O", [0.0, 0.0, 0.0]),
                ("H", [0.0, 1.4, 1.1]),
                ("H", [0.0, -1.4, 1.1]),
            ],
            0,
        );
        let t = m.translated([2.5, -1.0, 0.3]);
        assert!((m.nuclear_repulsion() - t.nuclear_repulsion()).abs() < 1e-12);
    }

    #[test]
    fn angstrom_conversion() {
        let m = Molecule::from_symbols_angstrom(&[("H", [0.0; 3]), ("H", [0.0, 0.0, 1.0])], 0);
        let d = dist(m.atoms[0].pos, m.atoms[1].pos);
        assert!((d - ANGSTROM_TO_BOHR).abs() < 1e-12);
    }
}
