//! The Boys function `F_m(T) = ∫₀¹ t^{2m} exp(−T t²) dt`.
//!
//! Every Coulomb-type Gaussian integral reduces to Boys function values.
//! Strategy (standard and numerically safe over the whole range):
//!
//! * `T` tiny → Taylor limit `F_m(0) = 1/(2m+1)`;
//! * moderate `T` → converge the series for the *highest* needed order and
//!   fill lower orders by the stable downward recursion
//!   `F_{m−1}(T) = (2T·F_m(T) + e^{−T}) / (2m−1)`;
//! * large `T` → `F_0(T) = ½√(π/T)·erf(√T) ≈ ½√(π/T)` and the upward
//!   recursion `F_{m+1}(T) = ((2m+1)F_m(T) − e^{−T}) / (2T)`, which is
//!   stable when `2T ≫ 2m+1`.

/// Fill `out[0..=mmax]` with `F_0(T) … F_mmax(T)`.
pub fn boys(mmax: usize, t: f64, out: &mut [f64]) {
    assert!(out.len() > mmax);
    debug_assert!(t >= 0.0, "Boys argument must be non-negative");
    if t < 1e-13 {
        for (m, o) in out.iter_mut().enumerate().take(mmax + 1) {
            *o = 1.0 / (2 * m + 1) as f64;
        }
        return;
    }
    if t > 35.0 + 2.0 * mmax as f64 {
        // Asymptotic: erf(√T) = 1 to machine precision here.
        let st = t.sqrt();
        out[0] = 0.5 * (std::f64::consts::PI).sqrt() / st;
        let emt = (-t).exp();
        for m in 0..mmax {
            out[m + 1] = ((2 * m + 1) as f64 * out[m] - emt) / (2.0 * t);
        }
        return;
    }
    // Series at the top order: F_m(T) = e^{−T} Σ_{k≥0} (2T)^k / (2m+1)(2m+3)…(2m+2k+1)
    let emt = (-t).exp();
    let mut term = 1.0 / (2 * mmax + 1) as f64;
    let mut sum = term;
    let mut k = 1usize;
    loop {
        term *= 2.0 * t / (2 * mmax + 2 * k + 1) as f64;
        sum += term;
        if term < 1e-17 * sum || k > 400 {
            break;
        }
        k += 1;
    }
    out[mmax] = emt * sum;
    for m in (1..=mmax).rev() {
        out[m - 1] = (2.0 * t * out[m] + emt) / (2 * m - 1) as f64;
    }
}

/// Convenience wrapper returning a fresh vector.
pub fn boys_vec(mmax: usize, t: f64) -> Vec<f64> {
    let mut v = vec![0.0; mmax + 1];
    boys(mmax, t, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adaptive Simpson reference integration of the Boys integrand.
    fn boys_quad(m: usize, t: f64) -> f64 {
        let f = |x: f64| x.powi(2 * m as i32) * (-t * x * x).exp();
        // plain composite Simpson with many points is plenty here
        let n = 20_000;
        let h = 1.0 / n as f64;
        let mut s = f(0.0) + f(1.0);
        for i in 1..n {
            let x = i as f64 * h;
            s += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        s * h / 3.0
    }

    #[test]
    fn zero_argument_limit() {
        let v = boys_vec(4, 0.0);
        for (m, &x) in v.iter().enumerate() {
            assert!((x - 1.0 / (2 * m + 1) as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn matches_quadrature_moderate() {
        for &t in &[1e-8, 0.1, 0.5, 1.0, 3.0, 7.5, 14.0, 20.0, 33.0] {
            let v = boys_vec(6, t);
            for (m, &x) in v.iter().enumerate() {
                let q = boys_quad(m, t);
                assert!((x - q).abs() < 1e-10, "F_{m}({t}) = {x} vs quad {q}");
            }
        }
    }

    #[test]
    fn matches_quadrature_large() {
        for &t in &[40.0, 60.0, 120.0] {
            let v = boys_vec(5, t);
            for (m, &x) in v.iter().enumerate() {
                let q = boys_quad(m, t);
                assert!(
                    (x - q).abs() < 1e-12 + 1e-8 * q,
                    "F_{m}({t}) = {x} vs quad {q}"
                );
            }
        }
    }

    #[test]
    fn downward_recursion_consistency() {
        // The recursion (2m+1) F_m = 2T F_{m+1} + e^{−T} must hold exactly
        // for whatever branch produced the values.
        for &t in &[0.3, 5.0, 25.0, 50.0, 200.0] {
            let v = boys_vec(8, t);
            for m in 0..8 {
                let lhs = (2 * m + 1) as f64 * v[m];
                let rhs = 2.0 * t * v[m + 1] + (-t).exp();
                assert!((lhs - rhs).abs() < 1e-12 * lhs.max(1e-300), "t={t} m={m}");
            }
        }
    }

    #[test]
    fn monotone_in_order_and_argument() {
        // F_m decreases with m at fixed T, and with T at fixed m.
        let v = boys_vec(6, 2.0);
        for m in 0..6 {
            assert!(v[m + 1] < v[m]);
        }
        let a = boys_vec(0, 1.0)[0];
        let b = boys_vec(0, 2.0)[0];
        assert!(b < a);
    }
}
