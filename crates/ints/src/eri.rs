//! Two-electron repulsion integrals `(μν|ρσ)` (chemist's notation) with
//! 8-fold permutational symmetry, packed storage.

use crate::basis::BasisSet;
use crate::md::{ETable, RTable};
use std::f64::consts::PI;

/// Packed, 8-fold-symmetric ERI tensor.
///
/// `(pq|rs)` is stored once for the canonical ordering `p ≥ q`, `r ≥ s`,
/// `pq ≥ rs` (compound indices `pq = p(p+1)/2 + q`).
#[derive(Clone, Debug)]
pub struct EriTensor {
    n: usize,
    data: Vec<f64>,
}

#[inline]
fn pair(p: usize, q: usize) -> usize {
    if p >= q {
        p * (p + 1) / 2 + q
    } else {
        q * (q + 1) / 2 + p
    }
}

impl EriTensor {
    /// Zero tensor over `n` basis functions.
    pub fn zeros(n: usize) -> Self {
        let npair = n * (n + 1) / 2;
        EriTensor {
            n,
            data: vec![0.0; npair * (npair + 1) / 2],
        }
    }

    /// Number of basis functions.
    pub fn n_basis(&self) -> usize {
        self.n
    }

    #[inline]
    fn index(&self, p: usize, q: usize, r: usize, s: usize) -> usize {
        let pq = pair(p, q);
        let rs = pair(r, s);
        if pq >= rs {
            pq * (pq + 1) / 2 + rs
        } else {
            rs * (rs + 1) / 2 + pq
        }
    }

    /// `(pq|rs)`.
    #[inline]
    pub fn get(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        self.data[self.index(p, q, r, s)]
    }

    /// Set `(pq|rs)` (and all its permutational images).
    #[inline]
    pub fn set(&mut self, p: usize, q: usize, r: usize, s: usize, v: f64) {
        let i = self.index(p, q, r, s);
        self.data[i] = v;
    }

    /// Number of unique stored values.
    pub fn n_unique(&self) -> usize {
        self.data.len()
    }
}

/// Compute the full ERI tensor of a basis set (Schwarz-screened with a
/// lossless-at-double-precision threshold).
pub fn eri_tensor(basis: &BasisSet) -> EriTensor {
    eri_tensor_screened(basis, 1e-14).0
}

/// Compute the ERI tensor with Cauchy–Schwarz screening:
/// `|(ab|cd)| ≤ √(ab|ab) · √(cd|cd)`; shell quartets whose bound falls
/// below `threshold` are skipped. Returns the tensor and the number of
/// quartets skipped.
pub fn eri_tensor_screened(basis: &BasisSet, threshold: f64) -> (EriTensor, usize) {
    let mut eri = EriTensor::zeros(basis.n_basis());
    let ns = basis.n_shells();
    // Per-shell-pair Schwarz factors Q_ab = max over components √(ab|ab).
    let mut q = vec![0.0f64; ns * ns];
    for sa in 0..ns {
        for sb in 0..=sa {
            let block = shell_quartet(basis, sa, sb, sa, sb);
            let (na, nb) = (basis.shells()[sa].n_cart(), basis.shells()[sb].n_cart());
            let mut qmax = 0.0f64;
            for ia in 0..na {
                for ib in 0..nb {
                    // diagonal (ab|ab) element of the quartet block
                    let v = block[((ia * nb + ib) * na + ia) * nb + ib];
                    qmax = qmax.max(v.abs().sqrt());
                }
            }
            q[sa * ns + sb] = qmax;
            q[sb * ns + sa] = qmax;
        }
    }
    let mut skipped = 0usize;
    for sa in 0..ns {
        for sb in 0..=sa {
            for sc in 0..=sa {
                let sd_max = if sc == sa { sb } else { sc };
                for sd in 0..=sd_max {
                    if q[sa * ns + sb] * q[sc * ns + sd] < threshold {
                        skipped += 1;
                        continue;
                    }
                    let block = shell_quartet(basis, sa, sb, sc, sd);
                    scatter_block(basis, &mut eri, sa, sb, sc, sd, &block);
                }
            }
        }
    }
    (eri, skipped)
}

fn scatter_block(
    basis: &BasisSet,
    eri: &mut EriTensor,
    sa: usize,
    sb: usize,
    sc: usize,
    sd: usize,
    block: &[f64],
) {
    let (oa, ob, oc, od) = (
        basis.shell_offset(sa),
        basis.shell_offset(sb),
        basis.shell_offset(sc),
        basis.shell_offset(sd),
    );
    let (na, nb, nc, nd) = (
        basis.shells()[sa].n_cart(),
        basis.shells()[sb].n_cart(),
        basis.shells()[sc].n_cart(),
        basis.shells()[sd].n_cart(),
    );
    for ia in 0..na {
        for ib in 0..nb {
            for ic in 0..nc {
                for id in 0..nd {
                    let v = block[((ia * nb + ib) * nc + ic) * nd + id];
                    eri.set(oa + ia, ob + ib, oc + ic, od + id, v);
                }
            }
        }
    }
}

/// Compute one shell quartet `(sa sb | sc sd)` as a dense
/// `na×nb×nc×nd` block (row-major in that index order).
fn shell_quartet(basis: &BasisSet, sa: usize, sb: usize, sc: usize, sd: usize) -> Vec<f64> {
    let sh_a = &basis.shells()[sa];
    let sh_b = &basis.shells()[sb];
    let sh_c = &basis.shells()[sc];
    let sh_d = &basis.shells()[sd];
    let (la, lb, lc, ld) = (sh_a.l, sh_b.l, sh_c.l, sh_d.l);
    let comps_a = sh_a.components();
    let comps_b = sh_b.components();
    let comps_c = sh_c.components();
    let comps_d = sh_d.components();
    let (na, nb, nc, nd) = (comps_a.len(), comps_b.len(), comps_c.len(), comps_d.len());
    let mut block = vec![0.0; na * nb * nc * nd];

    let lbra = la + lb;
    let lket = lc + ld;
    let ltot = lbra + lket;
    let bdim = lbra + 1; // Hermite index range per axis, bra
    let kdim = lket + 1; // … ket
    let bra_sz = bdim * bdim * bdim;
    let ket_sz = kdim * kdim * kdim;

    // Hermite representations of each component pair.
    let mut hbra = vec![0.0; na * nb * bra_sz];
    let mut hket = vec![0.0; nc * nd * ket_sz];
    // G[c2][tuv] = Σ_{τνφ} Hket[c2][τνφ] (−1)^{τ+ν+φ} R[t+τ, u+ν, v+φ]
    let mut g = vec![0.0; nc * nd * bra_sz];

    for (&a, &wa) in sh_a.exps.iter().zip(&sh_a.coefs) {
        for (&b, &wb) in sh_b.exps.iter().zip(&sh_b.coefs) {
            let p = a + b;
            let pcen = [
                (a * sh_a.center[0] + b * sh_b.center[0]) / p,
                (a * sh_a.center[1] + b * sh_b.center[1]) / p,
                (a * sh_a.center[2] + b * sh_b.center[2]) / p,
            ];
            let ex1 = ETable::new(la, lb, a, b, sh_a.center[0], sh_b.center[0]);
            let ey1 = ETable::new(la, lb, a, b, sh_a.center[1], sh_b.center[1]);
            let ez1 = ETable::new(la, lb, a, b, sh_a.center[2], sh_b.center[2]);
            // Bra Hermite coefficients for every component pair.
            hbra.iter_mut().for_each(|x| *x = 0.0);
            for (ia, &(i1, j1, k1)) in comps_a.iter().enumerate() {
                let fa = sh_a.component_factor(i1, j1, k1);
                for (ib, &(i2, j2, k2)) in comps_b.iter().enumerate() {
                    let fb = sh_b.component_factor(i2, j2, k2);
                    let base = (ia * nb + ib) * bra_sz;
                    for t in 0..=(i1 + i2) {
                        let etx = ex1.get(i1, i2, t);
                        for u in 0..=(j1 + j2) {
                            let etu = etx * ey1.get(j1, j2, u);
                            for v in 0..=(k1 + k2) {
                                hbra[base + (t * bdim + u) * kidx(bdim) + v] =
                                    fa * fb * etu * ez1.get(k1, k2, v);
                            }
                        }
                    }
                }
            }

            for (&c, &wc) in sh_c.exps.iter().zip(&sh_c.coefs) {
                for (&d, &wd) in sh_d.exps.iter().zip(&sh_d.coefs) {
                    let q = c + d;
                    let qcen = [
                        (c * sh_c.center[0] + d * sh_d.center[0]) / q,
                        (c * sh_c.center[1] + d * sh_d.center[1]) / q,
                        (c * sh_c.center[2] + d * sh_d.center[2]) / q,
                    ];
                    let ex2 = ETable::new(lc, ld, c, d, sh_c.center[0], sh_d.center[0]);
                    let ey2 = ETable::new(lc, ld, c, d, sh_c.center[1], sh_d.center[1]);
                    let ez2 = ETable::new(lc, ld, c, d, sh_c.center[2], sh_d.center[2]);
                    hket.iter_mut().for_each(|x| *x = 0.0);
                    for (ic, &(i3, j3, k3)) in comps_c.iter().enumerate() {
                        let fc = sh_c.component_factor(i3, j3, k3);
                        for (id, &(i4, j4, k4)) in comps_d.iter().enumerate() {
                            let fd = sh_d.component_factor(i4, j4, k4);
                            let base = (ic * nd + id) * ket_sz;
                            for t in 0..=(i3 + i4) {
                                let etx = ex2.get(i3, i4, t);
                                for u in 0..=(j3 + j4) {
                                    let etu = etx * ey2.get(j3, j4, u);
                                    for v in 0..=(k3 + k4) {
                                        hket[base + (t * kdim + u) * kdim + v] =
                                            fc * fd * etu * ez2.get(k3, k4, v);
                                    }
                                }
                            }
                        }
                    }

                    let rho = p * q / (p + q);
                    let pq = [pcen[0] - qcen[0], pcen[1] - qcen[1], pcen[2] - qcen[2]];
                    let r = RTable::new(ltot, rho, pq);
                    let coef = wa * wb * wc * wd * 2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt());

                    // Step 2: contract ket Hermite with R.
                    g.iter_mut().for_each(|x| *x = 0.0);
                    for cket in 0..(nc * nd) {
                        let hbase = cket * ket_sz;
                        let gbase = cket * bra_sz;
                        for tau in 0..kdim {
                            for nu in 0..kdim {
                                for phi in 0..kdim {
                                    let h = hket[hbase + (tau * kdim + nu) * kdim + phi];
                                    if h == 0.0 {
                                        continue;
                                    }
                                    let sgn = if (tau + nu + phi) % 2 == 0 { 1.0 } else { -1.0 };
                                    let hs = h * sgn;
                                    // Only the simplex t+u+v ≤ lbra can
                                    // meet nonzero bra coefficients, and it
                                    // keeps the R-table access in range.
                                    for t in 0..bdim {
                                        for u in 0..(bdim - t) {
                                            for v in 0..(bdim - t - u) {
                                                g[gbase + (t * bdim + u) * bdim + v] +=
                                                    hs * r.get(t + tau, u + nu, v + phi);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }

                    // Step 3: contract bra Hermite with G.
                    for cbra in 0..(na * nb) {
                        let hbase = cbra * bra_sz;
                        for cket in 0..(nc * nd) {
                            let gbase = cket * bra_sz;
                            let mut acc = 0.0;
                            for x in 0..bra_sz {
                                acc += hbra[hbase + x] * g[gbase + x];
                            }
                            block[cbra * (nc * nd) + cket] += coef * acc;
                        }
                    }
                }
            }
        }
    }
    block
}

// Helper so the hbra indexing above reads uniformly: bra z-stride is bdim.
#[inline(always)]
fn kidx(bdim: usize) -> usize {
    bdim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{BasisSet, Shell};
    use crate::molecule::Molecule;

    /// Analytic primitive (ss|ss) integral.
    #[allow(clippy::too_many_arguments)]
    fn ssss(
        a: f64,
        b: f64,
        c: f64,
        d: f64,
        ra: [f64; 3],
        rb: [f64; 3],
        rc: [f64; 3],
        rd: [f64; 3],
    ) -> f64 {
        let p = a + b;
        let q = c + d;
        let mu_ab = a * b / p;
        let mu_cd = c * d / q;
        let ab2: f64 = (0..3).map(|i| (ra[i] - rb[i]).powi(2)).sum();
        let cd2: f64 = (0..3).map(|i| (rc[i] - rd[i]).powi(2)).sum();
        let pc: Vec<f64> = (0..3).map(|i| (a * ra[i] + b * rb[i]) / p).collect();
        let qc: Vec<f64> = (0..3).map(|i| (c * rc[i] + d * rd[i]) / q).collect();
        let pq2: f64 = (0..3).map(|i| (pc[i] - qc[i]).powi(2)).sum();
        let rho = p * q / (p + q);
        let f0 = crate::boys::boys_vec(0, rho * pq2)[0];
        let norm = crate::basis::primitive_norm(a, 0, 0, 0)
            * crate::basis::primitive_norm(b, 0, 0, 0)
            * crate::basis::primitive_norm(c, 0, 0, 0)
            * crate::basis::primitive_norm(d, 0, 0, 0);
        norm * 2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt())
            * (-mu_ab * ab2).exp()
            * (-mu_cd * cd2).exp()
            * f0
    }

    #[test]
    fn primitive_ssss_matches_analytic() {
        let ra = [0.0, 0.0, 0.0];
        let rb = [0.0, 0.0, 1.2];
        let rc = [0.5, -0.3, 0.2];
        let rd = [1.0, 1.0, 1.0];
        let (a, b, c, d) = (0.8, 1.1, 0.6, 1.9);
        let basis = BasisSet::from_shells(vec![
            Shell::new(0, vec![a], vec![1.0], ra, 0),
            Shell::new(0, vec![b], vec![1.0], rb, 1),
            Shell::new(0, vec![c], vec![1.0], rc, 2),
            Shell::new(0, vec![d], vec![1.0], rd, 3),
        ]);
        let eri = eri_tensor(&basis);
        let exact = ssss(a, b, c, d, ra, rb, rc, rd);
        assert!(
            (eri.get(0, 1, 2, 3) - exact).abs() < 1e-13,
            "{} vs {}",
            eri.get(0, 1, 2, 3),
            exact
        );
    }

    #[test]
    fn eightfold_symmetry_storage() {
        let m = Molecule::from_symbols_bohr(&[("H", [0.0; 3]), ("H", [0.0, 0.0, 1.4])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        let eri = eri_tensor(&b);
        // All 8 permutations give the same value by construction of storage.
        let v = eri.get(1, 0, 1, 1);
        for &(p, q, r, s) in &[
            (0usize, 1usize, 1usize, 1usize),
            (1, 0, 1, 1),
            (1, 1, 0, 1),
            (1, 1, 1, 0),
        ] {
            assert_eq!(eri.get(p, q, r, s), v);
        }
    }

    #[test]
    fn positivity_of_coulomb_diagonals() {
        // (pp|pp) > 0 and the Cauchy–Schwarz bound
        // (pq|pq) ≤ sqrt((pp|pp)(qq|qq)) … actually (pq|pq) ≥ 0 always.
        let m = Molecule::from_symbols_bohr(&[("O", [0.0; 3]), ("H", [0.0, 0.0, 1.8])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        let eri = eri_tensor(&b);
        let n = b.n_basis();
        for p in 0..n {
            assert!(eri.get(p, p, p, p) > 0.0);
            for q in 0..n {
                assert!(eri.get(p, q, p, q) >= -1e-14);
                let cs = (eri.get(p, p, p, p) * eri.get(q, q, q, q)).sqrt();
                assert!(eri.get(p, q, p, q) <= cs + 1e-12);
            }
        }
    }

    #[test]
    fn translation_invariance() {
        let m1 = Molecule::from_symbols_bohr(&[("H", [0.0; 3]), ("H", [0.0, 0.0, 1.4])], 0);
        let b1 = BasisSet::build(&m1, "sto-3g");
        let m2 = m1.translated([0.7, -2.0, 0.4]);
        let b2 = BasisSet::build(&m2, "sto-3g");
        let e1 = eri_tensor(&b1);
        let e2 = eri_tensor(&b2);
        for p in 0..2 {
            for q in 0..2 {
                for r in 0..2 {
                    for s in 0..2 {
                        assert!((e1.get(p, q, r, s) - e2.get(p, q, r, s)).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn separated_charges_coulomb_limit() {
        // Two tight s functions far apart: (aa|bb) → 1/R.
        let r = 20.0;
        let basis = BasisSet::from_shells(vec![
            Shell::new(0, vec![4.0], vec![1.0], [0.0; 3], 0),
            Shell::new(0, vec![4.0], vec![1.0], [0.0, 0.0, r], 1),
        ]);
        let eri = eri_tensor(&basis);
        assert!((eri.get(0, 0, 1, 1) - 1.0 / r).abs() < 1e-10);
    }

    #[test]
    fn schwarz_screening_lossless_and_effective() {
        // Two distant H2 units: cross-quartets are tiny, so screening at
        // 1e-10 must skip quartets yet change no integral beyond 1e-10.
        let m = Molecule::from_symbols_bohr(
            &[
                ("H", [0.0, 0.0, 0.0]),
                ("H", [0.0, 0.0, 1.4]),
                ("H", [0.0, 0.0, 40.0]),
                ("H", [0.0, 0.0, 41.4]),
            ],
            0,
        );
        let b = BasisSet::build(&m, "sto-3g");
        let (full, skipped_tight) = eri_tensor_screened(&b, 0.0);
        let (scr, skipped) = eri_tensor_screened(&b, 1e-10);
        assert_eq!(skipped_tight, 0);
        assert!(skipped > 0, "expected distant quartets to be screened out");
        let n = b.n_basis();
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        assert!((full.get(p, q, r, s) - scr.get(p, q, r, s)).abs() < 1e-10);
                    }
                }
            }
        }
    }

    #[test]
    fn schwarz_bound_holds() {
        // |(pq|rs)| <= sqrt((pq|pq) (rs|rs)) for every stored integral.
        let m = Molecule::from_symbols_bohr(&[("O", [0.0; 3]), ("H", [0.0, 0.0, 1.8])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        let eri = eri_tensor(&b);
        let n = b.n_basis();
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let bound = (eri.get(p, q, p, q) * eri.get(r, s, r, s)).sqrt();
                        assert!(eri.get(p, q, r, s).abs() <= bound + 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn d_shell_quartet_finite_and_symmetric() {
        let m = Molecule::from_symbols_bohr(&[("C", [0.0; 3])], 0);
        let b = BasisSet::build(&m, "svp");
        let eri = eri_tensor(&b);
        let n = b.n_basis();
        // spot-check symmetry relations on computed values
        for &(p, q, r, s) in &[
            (10usize, 3usize, 7usize, 1usize),
            (14, 14, 2, 0),
            (9, 8, 14, 13),
        ] {
            if p < n && q < n && r < n && s < n {
                let v = eri.get(p, q, r, s);
                assert!(v.is_finite());
                assert_eq!(v, eri.get(q, p, s, r));
                assert_eq!(v, eri.get(r, s, p, q));
            }
        }
    }
}
