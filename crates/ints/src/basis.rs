//! Contracted Cartesian Gaussian shells and embedded basis sets.
//!
//! A shell is a set of primitives sharing a center and angular momentum l;
//! it expands into `(l+1)(l+2)/2` Cartesian components (x^i y^j z^k with
//! i+j+k = l). Two basis sets are embedded:
//!
//! * `sto-3g` — the classic minimal set (exponents for H–F, with the
//!   universal STO-3G contraction coefficients);
//! * `svp` — a split-valence + polarization set **derived
//!   programmatically** from the STO-3G exponents (outermost valence
//!   primitive decontracted into its own shell, plus a single polarization
//!   shell). This avoids transcribing large literature tables while giving
//!   the FCI benchmarks a second, genuinely larger one-electron space; see
//!   DESIGN.md ("hardware / data substitutions").
//!
//! Even-tempered helper constructors support the hydrogen-atom variational
//! convergence tests.

use crate::molecule::Molecule;

/// Double factorial (2n−1)!! with the (−1)!! = 1 convention.
pub(crate) fn double_factorial_odd(n: i64) -> f64 {
    // computes n!! for odd n (or n = -1 / 0 -> 1)
    if n <= 0 {
        return 1.0;
    }
    let mut acc = 1.0;
    let mut k = n;
    while k > 1 {
        acc *= k as f64;
        k -= 2;
    }
    acc
}

/// Normalization constant of a primitive Cartesian Gaussian
/// `x^i y^j z^k exp(−α r²)`.
pub fn primitive_norm(alpha: f64, i: usize, j: usize, k: usize) -> f64 {
    let l = (i + j + k) as i32;
    let dfs = double_factorial_odd(2 * i as i64 - 1)
        * double_factorial_odd(2 * j as i64 - 1)
        * double_factorial_odd(2 * k as i64 - 1);
    (2.0 * alpha / std::f64::consts::PI).powf(0.75) * (4.0 * alpha).powi(l).sqrt() / dfs.sqrt()
}

/// One contracted shell.
#[derive(Clone, Debug)]
pub struct Shell {
    /// Angular momentum (0 = s, 1 = p, 2 = d, …).
    pub l: usize,
    /// Primitive exponents.
    pub exps: Vec<f64>,
    /// Contraction coefficients *including* the primitive norm of the
    /// (l,0,0) component and the overall contraction normalization.
    pub coefs: Vec<f64>,
    /// Center in Bohr.
    pub center: [f64; 3],
    /// Index of the parent atom in the molecule (usize::MAX if free).
    pub atom: usize,
}

impl Shell {
    /// Build a shell from raw contraction data, normalizing as described
    /// on the struct.
    pub fn new(
        l: usize,
        exps: Vec<f64>,
        raw_coefs: Vec<f64>,
        center: [f64; 3],
        atom: usize,
    ) -> Self {
        assert_eq!(
            exps.len(),
            raw_coefs.len(),
            "exponent/coefficient length mismatch"
        );
        assert!(!exps.is_empty(), "empty shell");
        assert!(exps.iter().all(|&a| a > 0.0), "exponents must be positive");
        // Fold the (l,0,0) primitive norms into the coefficients …
        let mut coefs: Vec<f64> = exps
            .iter()
            .zip(&raw_coefs)
            .map(|(&a, &c)| c * primitive_norm(a, l, 0, 0))
            .collect();
        // … then normalize the contracted (l,0,0) function.
        let mut s = 0.0;
        for (a, &ca) in exps.iter().zip(&coefs) {
            for (b, &cb) in exps.iter().zip(&coefs) {
                let p = a + b;
                // ⟨x^l e^{−αx²} | x^l e^{−βx²}⟩ over 3D with y,z s-type:
                s += ca
                    * cb
                    * (std::f64::consts::PI / p).powf(1.5)
                    * double_factorial_odd(2 * l as i64 - 1)
                    / (2.0 * p).powi(l as i32);
            }
        }
        let scale = 1.0 / s.sqrt();
        for c in &mut coefs {
            *c *= scale;
        }
        Shell {
            l,
            exps,
            coefs,
            center,
            atom,
        }
    }

    /// Number of Cartesian components.
    pub fn n_cart(&self) -> usize {
        (self.l + 1) * (self.l + 2) / 2
    }

    /// Cartesian powers (i, j, k) of each component, in canonical order
    /// (l,0,0), (l−1,1,0), (l−1,0,1), …, (0,0,l).
    pub fn components(&self) -> Vec<(usize, usize, usize)> {
        cartesian_components(self.l)
    }

    /// α-independent norm ratio of component (i,j,k) to (l,0,0).
    pub fn component_factor(&self, i: usize, j: usize, k: usize) -> f64 {
        let num = double_factorial_odd(2 * self.l as i64 - 1);
        let den = double_factorial_odd(2 * i as i64 - 1)
            * double_factorial_odd(2 * j as i64 - 1)
            * double_factorial_odd(2 * k as i64 - 1);
        (num / den).sqrt()
    }
}

/// Cartesian powers of angular momentum `l` in canonical order.
pub fn cartesian_components(l: usize) -> Vec<(usize, usize, usize)> {
    let mut v = Vec::with_capacity((l + 1) * (l + 2) / 2);
    for i in (0..=l).rev() {
        for j in (0..=(l - i)).rev() {
            v.push((i, j, l - i - j));
        }
    }
    v
}

/// A molecular basis: shells plus AO indexing.
#[derive(Clone, Debug)]
pub struct BasisSet {
    shells: Vec<Shell>,
    /// First AO index of each shell (len = nshell + 1).
    offsets: Vec<usize>,
}

impl BasisSet {
    /// Assemble a basis from explicit shells.
    pub fn from_shells(shells: Vec<Shell>) -> Self {
        let mut offsets = Vec::with_capacity(shells.len() + 1);
        let mut acc = 0;
        offsets.push(0);
        for s in &shells {
            acc += s.n_cart();
            offsets.push(acc);
        }
        BasisSet { shells, offsets }
    }

    /// Build the named basis (`"sto-3g"` or `"svp"`) for a molecule.
    pub fn build(molecule: &Molecule, name: &str) -> Self {
        let mut shells = Vec::new();
        for (ai, atom) in molecule.atoms.iter().enumerate() {
            for (l, exps, coefs) in element_shells(atom.z, name) {
                shells.push(Shell::new(l, exps, coefs, atom.pos, ai));
            }
        }
        Self::from_shells(shells)
    }

    /// Even-tempered s-type basis on a single center:
    /// exponents `alpha0 · beta^k`, k = 0..n, each its own shell.
    pub fn even_tempered_s(center: [f64; 3], n: usize, alpha0: f64, beta: f64) -> Self {
        let shells = (0..n)
            .map(|k| Shell::new(0, vec![alpha0 * beta.powi(k as i32)], vec![1.0], center, 0))
            .collect();
        Self::from_shells(shells)
    }

    /// The shell list.
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// Number of shells.
    pub fn n_shells(&self) -> usize {
        self.shells.len()
    }

    /// Total number of (Cartesian) basis functions.
    pub fn n_basis(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// First AO index of shell `s`.
    pub fn shell_offset(&self, s: usize) -> usize {
        self.offsets[s]
    }
}

/// Universal STO-3G contraction coefficients.
const STO3G_1S: [f64; 3] = [0.154_328_97, 0.535_328_14, 0.444_634_54];
const STO3G_2S: [f64; 3] = [-0.099_967_23, 0.399_512_83, 0.700_115_47];
const STO3G_2P: [f64; 3] = [0.155_916_27, 0.607_683_72, 0.391_957_39];

/// STO-3G exponents: (1s set, optional valence SP set) per element H..F.
fn sto3g_exponents(z: u32) -> (&'static [f64; 3], Option<&'static [f64; 3]>) {
    match z {
        1 => (&[3.425_250_91, 0.623_913_73, 0.168_855_40], None),
        2 => (&[6.362_421_39, 1.158_923_00, 0.313_649_79], None),
        3 => (
            &[16.119_574_75, 2.936_200_663, 0.794_650_487],
            Some(&[0.636_289_746_9, 0.147_860_053_3, 0.048_088_678_4]),
        ),
        4 => (
            &[30.167_870_69, 5.495_115_306, 1.487_192_653],
            Some(&[1.314_833_110, 0.305_538_938_3, 0.099_370_745_6]),
        ),
        5 => (
            &[48.791_113_18, 8.887_362_172, 2.405_267_040],
            Some(&[2.236_956_142, 0.519_820_499_9, 0.169_061_760_0]),
        ),
        6 => (
            &[71.616_837_35, 13.045_096_32, 3.530_512_160],
            Some(&[2.941_249_355, 0.683_483_096_4, 0.222_289_915_9]),
        ),
        7 => (
            &[99.106_168_96, 18.052_312_39, 4.885_660_238],
            Some(&[3.780_455_879, 0.878_496_644_9, 0.285_714_374_4]),
        ),
        8 => (
            &[130.709_321_4, 23.808_866_05, 6.443_608_313],
            Some(&[5.033_151_319, 1.169_596_125, 0.380_388_960_0]),
        ),
        9 => (
            &[166.679_134_0, 30.360_812_33, 8.216_820_672],
            Some(&[6.464_803_249, 1.502_281_245, 0.488_588_486_4]),
        ),
        _ => panic!("element Z={z} not in the embedded basis data (H..F supported)"),
    }
}

/// Shell list `(l, exponents, raw coefficients)` for an element in a basis.
fn element_shells(z: u32, name: &str) -> Vec<(usize, Vec<f64>, Vec<f64>)> {
    let (core, valence) = sto3g_exponents(z);
    match name.to_ascii_lowercase().as_str() {
        "sto-3g" => {
            let mut v = vec![(0usize, core.to_vec(), STO3G_1S.to_vec())];
            if let Some(sp) = valence {
                v.push((0, sp.to_vec(), STO3G_2S.to_vec()));
                v.push((1, sp.to_vec(), STO3G_2P.to_vec()));
            }
            v
        }
        "svp" => {
            // Split-valence + polarization, derived from the STO-3G data:
            // the most diffuse valence primitive becomes its own shell.
            let mut v = Vec::new();
            if let Some(sp) = valence {
                v.push((0usize, core.to_vec(), STO3G_1S.to_vec()));
                v.push((0, sp[..2].to_vec(), STO3G_2S[..2].to_vec()));
                v.push((0, vec![sp[2]], vec![1.0]));
                v.push((1, sp[..2].to_vec(), STO3G_2P[..2].to_vec()));
                v.push((1, vec![sp[2]], vec![1.0]));
                // Single polarization d shell (common exponent choice).
                v.push((2, vec![0.8], vec![1.0]));
            } else {
                // H / He: split the s contraction, add a p shell.
                v.push((0usize, core[..2].to_vec(), STO3G_1S[..2].to_vec()));
                v.push((0, vec![core[2]], vec![1.0]));
                v.push((1, vec![1.1], vec![1.0]));
            }
            v
        }
        other => panic!("unknown basis set {other:?} (embedded: sto-3g, svp)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::Molecule;

    #[test]
    fn double_factorials() {
        assert_eq!(double_factorial_odd(-1), 1.0);
        assert_eq!(double_factorial_odd(1), 1.0);
        assert_eq!(double_factorial_odd(3), 3.0);
        assert_eq!(double_factorial_odd(5), 15.0);
        assert_eq!(double_factorial_odd(7), 105.0);
    }

    #[test]
    fn cartesian_component_counts() {
        assert_eq!(cartesian_components(0), vec![(0, 0, 0)]);
        assert_eq!(
            cartesian_components(1),
            vec![(1, 0, 0), (0, 1, 0), (0, 0, 1)]
        );
        assert_eq!(cartesian_components(2).len(), 6);
        assert_eq!(cartesian_components(2)[0], (2, 0, 0));
        assert_eq!(cartesian_components(2)[5], (0, 0, 2));
        assert_eq!(cartesian_components(3).len(), 10);
    }

    #[test]
    fn shell_counts_sto3g() {
        let m = Molecule::from_symbols_bohr(&[("O", [0.0; 3]), ("H", [0.0, 0.0, 1.8])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        // O: 1s + 2s + 2p (5 AOs), H: 1s -> 6 AOs.
        assert_eq!(b.n_basis(), 6);
        assert_eq!(b.n_shells(), 4);
        assert_eq!(b.shell_offset(0), 0);
        assert_eq!(b.shell_offset(3), 5);
    }

    #[test]
    fn shell_counts_svp() {
        let m = Molecule::from_symbols_bohr(&[("C", [0.0; 3])], 0);
        let b = BasisSet::build(&m, "svp");
        // C svp: 1s + 2×s + 2×p(3) + d(6) = 1+1+1+3+3+6 = 15 cartesian AOs
        assert_eq!(b.n_basis(), 15);
        let mh = Molecule::from_symbols_bohr(&[("H", [0.0; 3])], 0);
        let bh = BasisSet::build(&mh, "svp");
        // H svp: s + s + p = 5
        assert_eq!(bh.n_basis(), 5);
    }

    #[test]
    fn component_factor_d_shell() {
        let sh = Shell::new(2, vec![1.0], vec![1.0], [0.0; 3], 0);
        // (2,0,0): factor 1; (1,1,0): sqrt(3!!/1) = sqrt(3)
        assert!((sh.component_factor(2, 0, 0) - 1.0).abs() < 1e-15);
        assert!((sh.component_factor(1, 1, 0) - 3.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn primitive_norm_value() {
        // s function: N = (2α/π)^{3/4}
        let a = 0.7;
        assert!(
            (primitive_norm(a, 0, 0, 0) - (2.0 * a / std::f64::consts::PI).powf(0.75)).abs()
                < 1e-15
        );
        // p function gains sqrt(4α)
        assert!(
            (primitive_norm(a, 1, 0, 0)
                - (2.0 * a / std::f64::consts::PI).powf(0.75) * (4.0 * a).sqrt())
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn even_tempered_builder() {
        let b = BasisSet::even_tempered_s([0.0; 3], 5, 0.05, 3.0);
        assert_eq!(b.n_basis(), 5);
        assert_eq!(b.shells()[4].exps[0], 0.05 * 81.0);
    }

    #[test]
    #[should_panic]
    fn unknown_basis_panics() {
        let m = Molecule::from_symbols_bohr(&[("H", [0.0; 3])], 0);
        let _ = BasisSet::build(&m, "cc-pvqz");
    }
}
