//! Seeded, wall-clock-free pseudo-random stream for fault decisions.
//!
//! Fault schedules must be *replayable*: the same seed and the same op
//! sequence must inject exactly the same faults on every run, so a chaos
//! failure can be rerun under a debugger or the schedule explorer. A
//! xorshift64* generator (Vigna, "An experimental exploration of
//! Marsaglia's xorshift generators") is tiny, has no global state, and
//! passes the statistical bar this needs — we are sampling Bernoulli
//! fault coins, not doing Monte Carlo integration.

/// xorshift64* PRNG with a splitmix64-style seed scrambler.
#[derive(Clone, Debug)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Build a generator from a seed. Any seed is fine, including 0
    /// (scrambled to a non-zero state).
    pub fn new(seed: u64) -> Self {
        // splitmix64 finalizer: decorrelates consecutive small seeds so
        // seeds 1, 2, 3... give unrelated fault schedules.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Xorshift64 {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; returns 0 for `n == 0`.
    pub fn next_index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xorshift64::new(42);
        let mut b = Xorshift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xorshift64::new(1);
        let mut b = Xorshift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds produced identical draws");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xorshift64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U(0,1) is 0.5; loose 3-sigma-ish band.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn index_respects_bound() {
        let mut r = Xorshift64::new(3);
        for _ in 0..1000 {
            assert!(r.next_index(7) < 7);
        }
        assert_eq!(r.next_index(0), 0);
    }
}
