//! The [`FaultPlan`]: a seeded, shared, replayable fault schedule.
//!
//! A plan is attached once to a `Ddi` world (and propagated to every
//! adopted `DistMatrix`); each checked DDI operation then asks the plan
//! whether this particular transfer is dropped, duplicated, corrupted,
//! stalled, or arrives at a dead rank. All decisions come from one
//! seeded xorshift stream and an op counter — no wall clock anywhere —
//! so a given `(seed, workload)` pair replays the identical fault
//! schedule on every run (exactly reproducible under the deterministic
//! serial backend; under the threads backend the op interleaving, and
//! hence the draw order, is scheduler-dependent).
//!
//! The plan also owns the recovery *policy*: the bounded
//! [`RetryPolicy`] that DDI retry loops consult, with the guarantee
//! that [`FaultPlan::on_transfer`] never injects a transient fault on
//! attempt `max_retries` or later — every retry loop terminates.

use crate::rng::Xorshift64;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which one-sided DDI primitive a transfer fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOp {
    /// `DDI_GET` of a CI column (8·n bytes on the wire).
    Get,
    /// `DDI_ACC` accumulate into a σ column (16·n bytes on the wire).
    Acc,
    /// `DDI_PUT` of a column.
    Put,
}

impl TransferOp {
    /// Short name used in trace event arguments.
    pub fn as_str(self) -> &'static str {
        match self {
            TransferOp::Get => "get",
            TransferOp::Acc => "acc",
            TransferOp::Put => "put",
        }
    }
}

/// How a corrupted payload is garbled in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// One element becomes NaN (the classic "poisoned column").
    Nan,
    /// One element's sign bit flips — numerically plausible garbage.
    SignFlip,
    /// One random bit of one element flips — a single-event upset.
    BitFlip,
}

/// The transient fault injected into one delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferFault {
    /// The message is lost; the receiver's ack timeout triggers a resend.
    Drop,
    /// The payload is garbled; the per-message CRC32 rejects it.
    Corrupt(Corruption),
    /// The message arrives twice; the duplicate is discarded by its
    /// repeated sequence number (it costs wire traffic, nothing else).
    Duplicate,
}

/// Deliberately broken DDI_ACC protocols (race-detector validation).
///
/// These are not *recoverable* faults — they exist so `fci-check` can
/// prove it catches protocol bugs. A plan carrying one routes every
/// `acc_col` through the broken protocol instead of the checked path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolFault {
    /// Accumulate without the trailing memory fence.
    SkipFence,
    /// Accumulate without holding the per-node mutex.
    SkipLock,
}

/// Permanent death of one simulated rank after a chosen number of DDI
/// ops (the op counter is the plan's monotone simulated-time proxy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankDeath {
    /// Rank that dies.
    pub rank: usize,
    /// Global DDI op count at which it dies.
    pub after_ops: u64,
}

/// Bounded retry-with-backoff policy for transient faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum resend attempts per op. The plan never faults attempt
    /// `max_retries`, so a retry loop using this policy always
    /// terminates within `max_retries + 1` attempts.
    pub max_retries: u32,
    /// Simulated seconds of backoff before the first resend.
    pub backoff_s: f64,
    /// Exponential backoff multiplier per subsequent resend.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            // An X1 remote get is ~µs-scale; back off an order of
            // magnitude above that and double each time.
            max_retries: 4,
            backoff_s: 20e-6,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff in nanoseconds charged before resend `attempt`
    /// (0-based: the wait before the first resend is `backoff_s`).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let s = self.backoff_s * self.multiplier.powi(attempt.min(30) as i32);
        (s * 1e9) as u64
    }
}

/// Knobs for one fault schedule. All probabilities are per-delivery
/// coins in `[0, 1]`; everything defaults to off.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// P(delivery dropped) per transfer attempt.
    pub p_drop: f64,
    /// P(delivery duplicated) per transfer attempt.
    pub p_duplicate: f64,
    /// P(payload corrupted) per transfer attempt.
    pub p_corrupt: f64,
    /// P(`nxtval` counter op stalls) per op.
    pub p_stall: f64,
    /// P(DDI_ACC fence delayed) per accumulate.
    pub p_fence_delay: f64,
    /// P(a σ task's local working area is poisoned with NaN) per task.
    pub p_poison: f64,
    /// Simulated seconds one stall/fence delay costs.
    pub stall_s: f64,
    /// Optional permanent rank death.
    pub rank_death: Option<RankDeath>,
    /// Optional broken-protocol mode (race-detector validation only).
    pub protocol: Option<ProtocolFault>,
    /// Retry/backoff policy for transient faults.
    pub retry: RetryPolicy,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            p_drop: 0.0,
            p_duplicate: 0.0,
            p_corrupt: 0.0,
            p_stall: 0.0,
            p_fence_delay: 0.0,
            p_poison: 0.0,
            stall_s: 50e-6,
            rank_death: None,
            protocol: None,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultConfig {
    /// A schedule with every fault disabled — attaching it must leave
    /// the numerics bitwise identical to running with no plan at all.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }
}

/// Injection counters, all monotone over a run. Returned by
/// [`FaultPlan::stats`] and reported by the chaos harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Dropped deliveries.
    pub drops: u64,
    /// Duplicated deliveries.
    pub duplicates: u64,
    /// Corrupted payloads (all caught by CRC and resent).
    pub corruptions: u64,
    /// Stalled `nxtval` ops.
    pub stalls: u64,
    /// Delayed fences.
    pub fence_delays: u64,
    /// Poisoned σ tasks.
    pub poisoned_tasks: u64,
    /// Rank deaths fired (0 or 1).
    pub rank_deaths: u64,
    /// Resends performed by DDI retry loops.
    pub retries: u64,
    /// σ tasks recomputed after failing the column guard.
    pub recomputes: u64,
    /// Duplicate deliveries discarded by the sequence check.
    pub dup_discards: u64,
}

impl FaultStats {
    /// Total faults injected (excluding the recovery actions
    /// `retries`/`recomputes`/`dup_discards`, which are *responses*).
    pub fn injected(&self) -> u64 {
        self.drops
            + self.duplicates
            + self.corruptions
            + self.stalls
            + self.fence_delays
            + self.poisoned_tasks
            + self.rank_deaths
    }
}

/// A live, shareable fault schedule. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Mutex<Xorshift64>,
    /// Global DDI op counter — the simulated-time proxy rank death keys
    /// off.
    ops: AtomicU64,
    /// Currently-dead rank (`usize::MAX` = none).
    dead: AtomicUsize,
    /// Latch: the configured death fires at most once, even after the
    /// recovery layer acknowledges it and renumbers ranks.
    death_fired: AtomicBool,
    drops: AtomicU64,
    duplicates: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
    fence_delays: AtomicU64,
    poisoned: AtomicU64,
    deaths: AtomicU64,
    retries: AtomicU64,
    recomputes: AtomicU64,
    dup_discards: AtomicU64,
}

const NO_RANK: usize = usize::MAX;

impl FaultPlan {
    /// Build a plan from a schedule.
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = Xorshift64::new(cfg.seed);
        FaultPlan {
            cfg,
            rng: Mutex::new(rng),
            ops: AtomicU64::new(0),
            dead: AtomicUsize::new(NO_RANK),
            death_fired: AtomicBool::new(false),
            drops: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            fence_delays: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            recomputes: AtomicU64::new(0),
            dup_discards: AtomicU64::new(0),
        }
    }

    /// The schedule this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The retry/backoff policy checked ops must follow.
    pub fn retry(&self) -> &RetryPolicy {
        &self.cfg.retry
    }

    /// The broken-protocol mode, if this schedule carries one.
    pub fn protocol_fault(&self) -> Option<ProtocolFault> {
        self.cfg.protocol
    }

    fn coin(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.rng.lock().unwrap().next_f64() < p
    }

    /// Count one DDI op against the simulated-time proxy and fire the
    /// configured rank death when its threshold is crossed.
    pub fn note_op(&self) {
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(d) = self.cfg.rank_death {
            if n >= d.after_ops && !self.death_fired.swap(true, Ordering::SeqCst) {
                self.dead.store(d.rank, Ordering::SeqCst);
                self.deaths.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total DDI ops seen so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Fault decision for delivery attempt `attempt` (0-based) of one
    /// transfer. Returns `None` for a clean delivery. Never returns
    /// `Drop`/`Corrupt` once `attempt >= retry.max_retries`, so bounded
    /// retry loops always converge.
    pub fn on_transfer(&self, _op: TransferOp, attempt: u32) -> Option<TransferFault> {
        if attempt >= self.cfg.retry.max_retries {
            return None;
        }
        if self.coin(self.cfg.p_drop) {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return Some(TransferFault::Drop);
        }
        if self.coin(self.cfg.p_corrupt) {
            self.corruptions.fetch_add(1, Ordering::Relaxed);
            let kind = match self.rng.lock().unwrap().next_index(3) {
                0 => Corruption::Nan,
                1 => Corruption::SignFlip,
                _ => Corruption::BitFlip,
            };
            return Some(TransferFault::Corrupt(kind));
        }
        if self.coin(self.cfg.p_duplicate) {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return Some(TransferFault::Duplicate);
        }
        None
    }

    /// Garble `buf` in place per the corruption kind; the element (and
    /// for bit flips, the bit) comes from the seeded stream.
    pub fn corrupt(&self, kind: Corruption, buf: &mut [f64]) {
        if buf.is_empty() {
            return;
        }
        let (i, bit) = {
            let mut rng = self.rng.lock().unwrap();
            (rng.next_index(buf.len()), rng.next_index(64) as u64)
        };
        match kind {
            Corruption::Nan => buf[i] = f64::NAN,
            // Flip the IEEE sign bit directly so even ±0.0 changes its
            // bit pattern and the CRC always catches it.
            Corruption::SignFlip => buf[i] = f64::from_bits(buf[i].to_bits() ^ (1u64 << 63)),
            Corruption::BitFlip => buf[i] = f64::from_bits(buf[i].to_bits() ^ (1u64 << bit)),
        }
    }

    /// Stall decision for one `nxtval` op: `Some(ns)` of simulated wait.
    pub fn on_nxtval(&self) -> Option<u64> {
        if self.coin(self.cfg.p_stall) {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            Some((self.cfg.stall_s * 1e9) as u64)
        } else {
            None
        }
    }

    /// Fence-delay decision for one accumulate: `Some(ns)` of wait.
    pub fn on_fence(&self) -> Option<u64> {
        if self.coin(self.cfg.p_fence_delay) {
            self.fence_delays.fetch_add(1, Ordering::Relaxed);
            Some((self.cfg.stall_s * 1e9) as u64)
        } else {
            None
        }
    }

    /// Poison decision for one σ task attempt. Capped like transfers:
    /// attempt `max_retries` is never poisoned, so guarded recompute
    /// loops terminate.
    pub fn poison_task(&self, attempt: u32) -> bool {
        if attempt >= self.cfg.retry.max_retries {
            return false;
        }
        if self.coin(self.cfg.p_poison) {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Simulated backoff (ns) before resend `attempt`, per the policy.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        self.cfg.retry.backoff_ns(attempt)
    }

    /// Is `rank` currently dead?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.load(Ordering::SeqCst) == rank
    }

    /// The currently-dead rank, if any.
    pub fn dead_rank(&self) -> Option<usize> {
        match self.dead.load(Ordering::SeqCst) {
            NO_RANK => None,
            r => Some(r),
        }
    }

    /// Recovery layer acknowledges the death: the world is being rebuilt
    /// over the survivors, so no rank is dead in the new numbering. The
    /// configured death has already fired its once-only latch and will
    /// not re-fire.
    pub fn acknowledge_death(&self) {
        self.dead.store(NO_RANK, Ordering::SeqCst);
    }

    /// Record one resend performed by a DDI retry loop.
    pub fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one σ task recompute after a failed column guard.
    pub fn count_recompute(&self) {
        self.recomputes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duplicate delivery discarded by the sequence check.
    pub fn count_dup_discard(&self) {
        self.dup_discards.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            drops: self.drops.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            fence_delays: self.fence_delays.load(Ordering::Relaxed),
            poisoned_tasks: self.poisoned.load(Ordering::Relaxed),
            rank_deaths: self.deaths.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recomputes: self.recomputes.load(Ordering::Relaxed),
            dup_discards: self.dup_discards.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = FaultPlan::new(FaultConfig::quiet(9));
        for i in 0..1000 {
            assert_eq!(plan.on_transfer(TransferOp::Get, 0), None);
            assert_eq!(plan.on_nxtval(), None);
            assert_eq!(plan.on_fence(), None);
            assert!(!plan.poison_task(0));
            assert!(!plan.is_dead(i % 8));
            plan.note_op();
        }
        assert_eq!(plan.stats().injected(), 0);
        assert_eq!(plan.ops(), 1000);
    }

    #[test]
    fn schedules_replay_exactly() {
        let cfg = FaultConfig {
            seed: 1234,
            p_drop: 0.2,
            p_corrupt: 0.2,
            p_duplicate: 0.1,
            ..FaultConfig::default()
        };
        let a = FaultPlan::new(cfg.clone());
        let b = FaultPlan::new(cfg);
        for _ in 0..500 {
            assert_eq!(
                a.on_transfer(TransferOp::Acc, 0),
                b.on_transfer(TransferOp::Acc, 0)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn transfers_are_clean_at_the_retry_cap() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 5,
            p_drop: 1.0,
            ..FaultConfig::default()
        });
        let cap = plan.retry().max_retries;
        for attempt in 0..cap {
            assert_eq!(
                plan.on_transfer(TransferOp::Put, attempt),
                Some(TransferFault::Drop)
            );
        }
        // The capping attempt (and anything later) must be clean.
        assert_eq!(plan.on_transfer(TransferOp::Put, cap), None);
        assert_eq!(plan.on_transfer(TransferOp::Put, cap + 7), None);
        assert!(!plan.poison_task(cap));
    }

    #[test]
    fn rank_death_fires_once_at_threshold() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 2,
            rank_death: Some(RankDeath {
                rank: 3,
                after_ops: 10,
            }),
            ..FaultConfig::default()
        });
        for _ in 0..9 {
            plan.note_op();
        }
        assert_eq!(plan.dead_rank(), None);
        plan.note_op();
        assert_eq!(plan.dead_rank(), Some(3));
        assert!(plan.is_dead(3));
        assert!(!plan.is_dead(2));
        plan.acknowledge_death();
        assert_eq!(plan.dead_rank(), None);
        // Further ops must not resurrect the death.
        for _ in 0..100 {
            plan.note_op();
        }
        assert_eq!(plan.dead_rank(), None);
        assert_eq!(plan.stats().rank_deaths, 1);
    }

    #[test]
    fn corruption_always_changes_bit_pattern() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 77,
            ..FaultConfig::default()
        });
        let base: Vec<f64> = (0..16).map(|i| i as f64 * 0.25 - 1.0).collect();
        for kind in [Corruption::Nan, Corruption::SignFlip, Corruption::BitFlip] {
            for _ in 0..200 {
                let mut buf = base.clone();
                plan.corrupt(kind, &mut buf);
                let changed = buf
                    .iter()
                    .zip(&base)
                    .any(|(a, b)| a.to_bits() != b.to_bits());
                assert!(changed, "{kind:?} left the buffer bitwise intact");
            }
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(0), 20_000);
        assert_eq!(p.backoff_ns(1), 40_000);
        assert_eq!(p.backoff_ns(2), 80_000);
        assert!(p.backoff_ns(3) > p.backoff_ns(2));
    }

    #[test]
    fn stats_track_recovery_actions() {
        let plan = FaultPlan::new(FaultConfig::quiet(1));
        plan.count_retry();
        plan.count_retry();
        plan.count_recompute();
        plan.count_dup_discard();
        let s = plan.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.recomputes, 1);
        assert_eq!(s.dup_discards, 1);
        // Recovery actions are responses, not injections.
        assert_eq!(s.injected(), 0);
    }
}
