//! fci-fault — deterministic fault injection and recovery policy for fcix.
//!
//! The paper's production runs hold hundreds of MSPs for hours; at that
//! scale a dropped one-sided message, a garbled column, or a dead rank
//! is a *when*, not an *if*. This crate is the fault plane the rest of
//! the stack tests itself against:
//!
//! * [`FaultPlan`] — a seeded, wall-clock-free schedule of transient
//!   comm faults (drop / duplicate / corrupt), `nxtval` stalls, fence
//!   delays, σ-task poisoning, and permanent rank death, shared across
//!   the DDI world and consulted by every checked operation. Same seed,
//!   same workload → same faults, every run.
//! * [`RetryPolicy`] — the bounded exponential retry/backoff contract
//!   DDI recovery loops follow; the plan guarantees the final allowed
//!   attempt is always clean, so recovery terminates by construction.
//! * [`crc32`]/[`checksum_f64s`] — the per-message CRC32 that turns an
//!   injected corruption into a detected-and-retried event instead of
//!   silent garbage (also used by the checkpoint format).
//!
//! The crate is std-only and depends on nothing, so `fci-ddi` can sit
//! on top of it without cycles: obs ← fault ← ddi ← core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod plan;
mod rng;

pub use crc::{checksum_f64s, crc32, Crc32};
pub use plan::{
    Corruption, FaultConfig, FaultPlan, FaultStats, ProtocolFault, RankDeath, RetryPolicy,
    TransferFault, TransferOp,
};
pub use rng::Xorshift64;
