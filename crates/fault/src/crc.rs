//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) message checksums.
//!
//! Every checked DDI transfer and every checkpoint payload carries a
//! CRC32: it is cheap relative to an 8·n-byte column move, and it is the
//! detection mechanism that turns an injected corruption into a *retry*
//! instead of silent garbage in the σ vector. The table is built at
//! compile time; no external crates, no allocation.

/// 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC32 state, for checksumming data read in chunks.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Absorb a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// CRC32 over the little-endian byte image of an `f64` slice — the
/// checksum a DDI message carrying a column of CI coefficients would
/// bear on the wire.
pub fn checksum_f64s(vals: &[f64]) -> u32 {
    let mut c = Crc32::new();
    for v in vals {
        c.update(&v.to_le_bytes());
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(5) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn f64_checksum_detects_single_bit_flip() {
        let vals: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let clean = checksum_f64s(&vals);
        for i in [0usize, 13, 63] {
            for bit in [0u32, 31, 52, 63] {
                let mut garbled = vals.clone();
                garbled[i] = f64::from_bits(garbled[i].to_bits() ^ (1u64 << bit));
                assert_ne!(clean, checksum_f64s(&garbled), "flip at [{i}] bit {bit}");
            }
        }
    }

    #[test]
    fn f64_checksum_detects_nan_and_sign() {
        let vals = vec![0.5, -1.25, 3.0];
        let clean = checksum_f64s(&vals);
        let mut nan = vals.clone();
        nan[1] = f64::NAN;
        assert_ne!(clean, checksum_f64s(&nan));
        let mut sign = vals.clone();
        sign[2] = -sign[2];
        assert_ne!(clean, checksum_f64s(&sign));
        // Even -0.0 vs 0.0 differs bitwise, so sign flips on zeros are
        // still caught.
        assert_ne!(checksum_f64s(&[0.0]), checksum_f64s(&[-0.0]));
    }
}
