//! Property test: the `CommStats` counters and the `fci-obs` trace are two
//! views of the same run and must agree exactly — every remote message the
//! counters charge corresponds to one trace event of the matching kind,
//! and the byte totals match the per-event `bytes` arguments.

use fci_ddi::{Backend, CommStats, Ddi, DistMatrix};
use fci_obs::Tracer;

/// Drive a representative communication pattern: every rank reads every
/// column, accumulates into every column, claims tasks off the shared
/// counter, and puts one column it owns.
fn traced_run(nproc: usize, ncols: usize) -> (Vec<CommStats>, Vec<fci_obs::Event>) {
    let nrows = 16;
    let ddi = Ddi::new(nproc, Backend::Serial);
    let tracer = Tracer::in_memory();
    ddi.attach_tracer(tracer.clone());
    let c = DistMatrix::zeros(nrows, ncols, nproc);
    let sigma = DistMatrix::zeros(nrows, ncols, nproc);
    ddi.adopt(&c);
    ddi.adopt(&sigma);
    let stats = ddi.run(|rank, st| {
        let mut buf = vec![0.0; nrows];
        for col in 0..ncols {
            c.get_col(rank, col, &mut buf, st);
            sigma.acc_col(rank, col, &buf, st);
        }
        // Each rank overwrites one (mostly remote) column.
        sigma.put_col(rank, (rank + 1) % ncols, &buf, st);
        // Task claims through the shared counter (manager/worker pattern).
        loop {
            let t = ddi.nxtval_rank(rank, st);
            if t >= 3 * nproc {
                break;
            }
        }
    });
    let events = tracer.events().expect("in-memory tracer records events");
    (stats, events)
}

fn count(events: &[fci_obs::Event], name: &str) -> u64 {
    events.iter().filter(|e| e.name == name).count() as u64
}

fn bytes(events: &[fci_obs::Event], name: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.name == name)
        .map(|e| e.arg("bytes").unwrap_or(0.0) as u64)
        .sum()
}

#[test]
fn comm_stats_agree_with_trace_events() {
    for (nproc, ncols) in [(1, 4), (2, 7), (4, 12), (5, 9)] {
        let (stats, events) = traced_run(nproc, ncols);
        let mut total = CommStats::default();
        for s in &stats {
            total.merge(s);
        }
        // One trace event per charged remote message, kind by kind.
        assert_eq!(total.get_msgs, count(&events, "ddi_get"), "nproc={nproc}");
        assert_eq!(total.acc_msgs, count(&events, "ddi_acc"), "nproc={nproc}");
        assert_eq!(total.put_msgs, count(&events, "ddi_put"), "nproc={nproc}");
        assert_eq!(
            total.nxtval_msgs,
            count(&events, "ddi_nxtval"),
            "nproc={nproc}"
        );
        // Byte totals agree with the per-event payload arguments.
        assert_eq!(total.get_bytes, bytes(&events, "ddi_get"), "nproc={nproc}");
        assert_eq!(total.acc_bytes, bytes(&events, "ddi_acc"), "nproc={nproc}");
        assert_eq!(total.put_bytes, bytes(&events, "ddi_put"), "nproc={nproc}");
        assert_eq!(
            total.total_bytes(),
            bytes(&events, "ddi_get") + bytes(&events, "ddi_acc") + bytes(&events, "ddi_put")
        );
    }
}

#[test]
fn local_operations_are_invisible_to_both_views() {
    // A single-rank world does everything locally: the counters charge no
    // remote traffic and the trace carries no remote events — the two
    // views agree on "nothing happened on the wire".
    let (stats, events) = traced_run(1, 6);
    assert_eq!(stats[0].get_msgs + stats[0].acc_msgs + stats[0].put_msgs, 0);
    assert_eq!(stats[0].total_bytes(), 0);
    assert_eq!(
        count(&events, "ddi_get") + count(&events, "ddi_acc") + count(&events, "ddi_put"),
        0
    );
    // The shared counter is still charged and still traced.
    assert!(stats[0].nxtval_msgs > 0);
    assert_eq!(stats[0].nxtval_msgs, count(&events, "ddi_nxtval"));
}
