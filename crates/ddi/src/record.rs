//! Protocol-level access recording for correctness checking.
//!
//! The paper's one-sided semantics (§3.1) decompose `DDI_ACC` into
//! *lock node → SHMEM_GET → add locally → SHMEM_PUT → fence → unlock*.
//! Whether that protocol is actually race-free is asserted, never checked,
//! in the original program. This module gives every one-sided operation a
//! place to report what it did — at protocol granularity, not just byte
//! counts — so an external happens-before checker (`fci-check`) can verify
//! the ordering instead of trusting it.
//!
//! The hooks mirror the tracer: a [`DistMatrix`](crate::DistMatrix) or
//! [`Ddi`](crate::Ddi) without an attached recorder pays one pointer load
//! and a branch per operation. Recording is strictly observational — it
//! never changes what the operation does.
//!
//! Events can also be serialized into `fci-obs` trace instants
//! ([`TraceRecorder`]) and parsed back ([`DdiAccess::from_event`]), which
//! is how the offline race detector replays a JSONL trace.

use fci_obs::{Category, Event, EventKind, Tracer};
use std::ops::Range;
use std::sync::Arc;

/// Whether an access reads or writes the target columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The access only reads the columns (`SHMEM_GET`).
    Read,
    /// The access writes the columns (`SHMEM_PUT`, local store).
    Write,
}

/// Which source-level operation produced an access — the "site" named in
/// race reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DdiSite {
    /// `DistMatrix::get_col` — one-sided `DDI_GET`.
    Get,
    /// The `SHMEM_GET` half of `DDI_ACC`.
    AccGet,
    /// The `SHMEM_PUT` half of `DDI_ACC`.
    AccPut,
    /// `DistMatrix::put_col` — one-sided `DDI_PUT`.
    Put,
    /// `DistMatrix::with_local` — direct access to the owned segment.
    WithLocal,
}

impl DdiSite {
    /// Stable numeric code used in serialized traces.
    pub fn code(self) -> u32 {
        match self {
            DdiSite::Get => 0,
            DdiSite::AccGet => 1,
            DdiSite::AccPut => 2,
            DdiSite::Put => 3,
            DdiSite::WithLocal => 4,
        }
    }

    /// Inverse of [`DdiSite::code`].
    pub fn from_code(code: u32) -> Option<DdiSite> {
        match code {
            0 => Some(DdiSite::Get),
            1 => Some(DdiSite::AccGet),
            2 => Some(DdiSite::AccPut),
            3 => Some(DdiSite::Put),
            4 => Some(DdiSite::WithLocal),
            _ => None,
        }
    }

    /// Human-readable name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DdiSite::Get => "ddi_get",
            DdiSite::AccGet => "ddi_acc.get",
            DdiSite::AccPut => "ddi_acc.put",
            DdiSite::Put => "ddi_put",
            DdiSite::WithLocal => "with_local",
        }
    }
}

/// One protocol-level event on the virtual machine.
///
/// `mat` identifies the distributed matrix (each [`DistMatrix`] gets a
/// process-unique id at construction); `owner` is the rank whose segment
/// holds the touched columns.
///
/// [`DistMatrix`]: crate::DistMatrix
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdiAccess {
    /// A read or write of a column range.
    Access {
        /// Issuing rank.
        rank: usize,
        /// Matrix id.
        mat: u32,
        /// Read or write.
        kind: AccessKind,
        /// Touched columns (global indices).
        cols: Range<usize>,
        /// Rank owning the columns.
        owner: usize,
        /// Source operation.
        site: DdiSite,
    },
    /// Acquisition of `owner`'s per-node mutex on matrix `mat`.
    Lock {
        /// Issuing rank.
        rank: usize,
        /// Matrix id.
        mat: u32,
        /// Whose node mutex.
        owner: usize,
    },
    /// Release of `owner`'s per-node mutex on matrix `mat`.
    Unlock {
        /// Issuing rank.
        rank: usize,
        /// Matrix id.
        mat: u32,
        /// Whose node mutex.
        owner: usize,
    },
    /// `SHMEM_QUIET`: all puts issued by `rank` so far are complete.
    Fence {
        /// Issuing rank.
        rank: usize,
    },
    /// `SHMEM_SWAP` on the shared task counter.
    Nxtval {
        /// Issuing rank.
        rank: usize,
        /// Task number handed out.
        value: usize,
    },
    /// A global synchronization point: collective matrix operations and
    /// the start/end of a [`Ddi::run`](crate::Ddi::run) phase.
    Barrier,
}

impl DdiAccess {
    /// The issuing rank (`None` for barriers).
    pub fn rank(&self) -> Option<usize> {
        match self {
            DdiAccess::Access { rank, .. }
            | DdiAccess::Lock { rank, .. }
            | DdiAccess::Unlock { rank, .. }
            | DdiAccess::Fence { rank }
            | DdiAccess::Nxtval { rank, .. } => Some(*rank),
            DdiAccess::Barrier => None,
        }
    }

    /// Trace event name used by [`TraceRecorder`].
    pub fn trace_name(&self) -> &'static str {
        match self {
            DdiAccess::Access { .. } => "hb_access",
            DdiAccess::Lock { .. } => "hb_lock",
            DdiAccess::Unlock { .. } => "hb_unlock",
            DdiAccess::Fence { .. } => "hb_fence",
            DdiAccess::Nxtval { .. } => "hb_nxtval",
            DdiAccess::Barrier => "hb_barrier",
        }
    }

    /// Parse an event previously written by [`TraceRecorder`]. Returns
    /// `None` for events that are not protocol records.
    pub fn from_event(ev: &Event) -> Option<DdiAccess> {
        let rank = ev.rank.unwrap_or(0);
        match ev.name.as_str() {
            "hb_access" => Some(DdiAccess::Access {
                rank,
                mat: ev.arg("mat")? as u32,
                kind: if ev.arg("write")? != 0.0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                cols: (ev.arg("col0")? as usize)..(ev.arg("col1")? as usize),
                owner: ev.arg("owner")? as usize,
                site: DdiSite::from_code(ev.arg("site")? as u32)?,
            }),
            "hb_lock" => Some(DdiAccess::Lock {
                rank,
                mat: ev.arg("mat")? as u32,
                owner: ev.arg("owner")? as usize,
            }),
            "hb_unlock" => Some(DdiAccess::Unlock {
                rank,
                mat: ev.arg("mat")? as u32,
                owner: ev.arg("owner")? as usize,
            }),
            "hb_fence" => Some(DdiAccess::Fence { rank }),
            "hb_nxtval" => Some(DdiAccess::Nxtval {
                rank,
                value: ev.arg("task")? as usize,
            }),
            "hb_barrier" => Some(DdiAccess::Barrier),
            _ => None,
        }
    }
}

/// Observer of protocol-level DDI events.
///
/// Implementations must tolerate concurrent calls (the threads backend
/// records from every rank thread) and must not call back into the matrix
/// or world being recorded.
pub trait AccessRecorder: Send + Sync {
    /// Observe one event. Called in the real interleaved order: lock and
    /// unlock records are emitted while the segment mutex is held, so the
    /// recorded lock order is the true lock order.
    fn record(&self, access: &DdiAccess);
}

/// Recorder that serializes every protocol event into an `fci-obs` trace
/// as `hb_*` instants — the input format of the offline race detector.
pub struct TraceRecorder {
    tracer: Tracer,
}

impl TraceRecorder {
    /// Record through `tracer` (which may share a sink with ordinary
    /// telemetry; `hb_*` names keep the streams separable).
    pub fn new(tracer: Tracer) -> TraceRecorder {
        TraceRecorder { tracer }
    }
}

impl AccessRecorder for TraceRecorder {
    fn record(&self, access: &DdiAccess) {
        let name = access.trace_name();
        match access {
            DdiAccess::Access {
                rank,
                mat,
                kind,
                cols,
                owner,
                site,
            } => self.tracer.instant(
                Some(*rank),
                name,
                Category::Net,
                &[
                    ("mat", f64::from(*mat)),
                    ("write", if *kind == AccessKind::Write { 1.0 } else { 0.0 }),
                    ("col0", cols.start as f64),
                    ("col1", cols.end as f64),
                    ("owner", *owner as f64),
                    ("site", f64::from(site.code())),
                ],
            ),
            DdiAccess::Lock { rank, mat, owner } | DdiAccess::Unlock { rank, mat, owner } => {
                self.tracer.instant(
                    Some(*rank),
                    name,
                    Category::Lock,
                    &[("mat", f64::from(*mat)), ("owner", *owner as f64)],
                )
            }
            DdiAccess::Fence { rank } => self.tracer.instant(Some(*rank), name, Category::Net, &[]),
            DdiAccess::Nxtval { rank, value } => {
                self.tracer
                    .instant(Some(*rank), name, Category::Net, &[("task", *value as f64)])
            }
            DdiAccess::Barrier => self.tracer.instant(None, name, Category::Other, &[]),
        }
    }
}

/// Round-trip helper for tests and the offline detector: keep only
/// protocol records of a trace, in order.
pub fn protocol_events(events: &[Event]) -> Vec<DdiAccess> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::Instant)
        .filter_map(DdiAccess::from_event)
        .collect()
}

/// Correctness-checking options, carried on `FciOptions` next to
/// `ObsConfig`. Default is fully disabled: no recorder is attached and
/// every instrumented operation costs a single branch.
#[derive(Clone, Default)]
pub struct CheckConfig {
    /// Online recorder (e.g. `fci-check`'s race detector) attached to the
    /// run's DDI world and every matrix it adopts.
    pub recorder: Option<Arc<dyn AccessRecorder>>,
}

impl CheckConfig {
    /// Checking disabled (same as `Default`).
    pub fn off() -> CheckConfig {
        CheckConfig::default()
    }

    /// Record every protocol event into `recorder` as the run executes.
    pub fn online(recorder: Arc<dyn AccessRecorder>) -> CheckConfig {
        CheckConfig {
            recorder: Some(recorder),
        }
    }

    /// Whether a recorder is attached.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }
}

impl std::fmt::Debug for CheckConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckConfig")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Recorder collecting events for assertions.
    pub struct MemoryRecorder(pub Mutex<Vec<DdiAccess>>);

    impl MemoryRecorder {
        pub fn new() -> Arc<MemoryRecorder> {
            Arc::new(MemoryRecorder(Mutex::new(Vec::new())))
        }
    }

    impl AccessRecorder for MemoryRecorder {
        fn record(&self, access: &DdiAccess) {
            self.0.lock().unwrap().push(access.clone());
        }
    }

    #[test]
    fn trace_roundtrip_preserves_protocol_events() {
        let tracer = Tracer::in_memory();
        let rec = TraceRecorder::new(tracer.clone());
        let evs = vec![
            DdiAccess::Lock {
                rank: 1,
                mat: 7,
                owner: 2,
            },
            DdiAccess::Access {
                rank: 1,
                mat: 7,
                kind: AccessKind::Read,
                cols: 3..4,
                owner: 2,
                site: DdiSite::AccGet,
            },
            DdiAccess::Access {
                rank: 1,
                mat: 7,
                kind: AccessKind::Write,
                cols: 3..4,
                owner: 2,
                site: DdiSite::AccPut,
            },
            DdiAccess::Fence { rank: 1 },
            DdiAccess::Unlock {
                rank: 1,
                mat: 7,
                owner: 2,
            },
            DdiAccess::Nxtval { rank: 0, value: 9 },
            DdiAccess::Barrier,
        ];
        for e in &evs {
            rec.record(e);
        }
        let back = protocol_events(&tracer.events().unwrap());
        assert_eq!(back, evs);
    }

    #[test]
    fn site_codes_roundtrip() {
        for site in [
            DdiSite::Get,
            DdiSite::AccGet,
            DdiSite::AccPut,
            DdiSite::Put,
            DdiSite::WithLocal,
        ] {
            assert_eq!(DdiSite::from_code(site.code()), Some(site));
        }
        assert_eq!(DdiSite::from_code(99), None);
    }

    #[test]
    fn check_config_debug_and_flags() {
        assert!(!CheckConfig::off().enabled());
        let rec: Arc<dyn AccessRecorder> = MemoryRecorder::new();
        let cfg = CheckConfig::online(rec);
        assert!(cfg.enabled());
        assert_eq!(format!("{cfg:?}"), "CheckConfig { enabled: true }");
    }
}
