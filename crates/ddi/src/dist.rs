//! Column-distributed dense matrices with one-sided access.

use crate::record::{AccessKind, AccessRecorder, DdiAccess, DdiSite};
use crate::stats::CommStats;
use fci_fault::{checksum_f64s, FaultPlan, ProtocolFault, TransferFault, TransferOp};
use fci_obs::{Category, Tracer};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide matrix id source; ids label matrices in protocol records.
static NEXT_MAT_ID: AtomicU32 = AtomicU32::new(0);

/// How `acc_col_faulty` corrupts the accumulate protocol. Exists so the
/// `fci-check` race detector can be validated against *known* ordering
/// bugs; production code must always use [`DistMatrix::acc_col`].
///
/// Legacy shim: the one fault-injection mechanism is now
/// [`fci_fault::FaultPlan`] — a plan whose
/// [`FaultConfig::protocol`](fci_fault::FaultConfig) is set routes plain
/// `acc_col` calls through the same broken protocols. This enum survives
/// only as a convenience mapping for old call sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccFault {
    /// The full, correct protocol (identical to `acc_col`).
    None,
    /// Lock, get, add, put, unlock — **no fence** before the unlock, so
    /// the remote put is not ordered before the lock release (on real
    /// hardware the next locker may read stale data).
    SkipFence,
    /// Get, add, put with **no per-node lock** spanning the
    /// read-modify-write. Under the threads backend this genuinely loses
    /// updates; under the serial backend the numbers survive but the
    /// protocol violation is still visible to a recorder.
    SkipLock,
}

impl AccFault {
    /// The [`ProtocolFault`] this legacy variant corresponds to.
    pub fn protocol(self) -> Option<ProtocolFault> {
        match self {
            AccFault::None => None,
            AccFault::SkipFence => Some(ProtocolFault::SkipFence),
            AccFault::SkipLock => Some(ProtocolFault::SkipLock),
        }
    }
}

/// A dense `nrows × ncols` matrix distributed by contiguous column blocks
/// over `nproc` virtual processors.
///
/// This mirrors the paper's layout: the CI matrix has rows indexed by β
/// strings and columns by α strings, "distributed by columns evenly among
/// all the processors" (§3.1). Each processor's segment sits behind its own
/// mutex — the same per-node lock `DDI_ACC` takes on the X1.
pub struct DistMatrix {
    nrows: usize,
    ncols: usize,
    nproc: usize,
    /// Process-unique id; names this matrix in protocol records.
    mat_id: u32,
    /// `col_offsets[p]..col_offsets[p+1]` = columns owned by rank p.
    col_offsets: Vec<usize>,
    /// Per-rank column-major segments.
    segments: Vec<Mutex<Vec<f64>>>,
    /// Optional tracer; remote one-sided ops emit events through it.
    tracer: OnceLock<Tracer>,
    /// Optional protocol recorder (see [`crate::record`]).
    recorder: OnceLock<Arc<dyn AccessRecorder>>,
    /// Optional fault plan; when attached, remote transfers run the
    /// checked (sequence + CRC32, retry-with-backoff) delivery path.
    faults: OnceLock<Arc<FaultPlan>>,
    /// Per-matrix message sequence source for checked deliveries.
    seq: AtomicU64,
    /// Highest sequence number applied per sender rank; a re-arrival
    /// bearing a seen sequence number is discarded (duplicate guard).
    last_seq: Vec<AtomicU64>,
}

impl std::fmt::Debug for DistMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistMatrix")
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nproc", &self.nproc)
            .field("mat_id", &self.mat_id)
            .field("recorder", &self.recorder.get().is_some())
            .finish()
    }
}

impl DistMatrix {
    /// Zero matrix distributed over `nproc` ranks (block column layout,
    /// remainders spread over the first ranks).
    pub fn zeros(nrows: usize, ncols: usize, nproc: usize) -> Self {
        assert!(nproc >= 1);
        let base = ncols / nproc;
        let extra = ncols % nproc;
        let mut col_offsets = Vec::with_capacity(nproc + 1);
        col_offsets.push(0);
        let mut acc = 0;
        for p in 0..nproc {
            acc += base + usize::from(p < extra);
            col_offsets.push(acc);
        }
        let segments = (0..nproc)
            .map(|p| Mutex::new(vec![0.0; nrows * (col_offsets[p + 1] - col_offsets[p])]))
            .collect();
        DistMatrix {
            nrows,
            ncols,
            nproc,
            mat_id: NEXT_MAT_ID.fetch_add(1, Ordering::Relaxed),
            col_offsets,
            segments,
            tracer: OnceLock::new(),
            recorder: OnceLock::new(),
            faults: OnceLock::new(),
            seq: AtomicU64::new(0),
            last_seq: (0..nproc).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Attach a tracer; remote `get`/`acc`/`put` and `transpose` on this
    /// matrix then emit byte-counted events. First attachment wins.
    pub fn attach_tracer(&self, tracer: Tracer) {
        let _ = self.tracer.set(tracer);
    }

    /// Attach a protocol recorder; every one-sided operation then reports
    /// its lock/get/put/fence steps. First attachment wins.
    pub fn attach_recorder(&self, recorder: Arc<dyn AccessRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// Attach a fault plan; remote one-sided ops on this matrix then run
    /// the checked delivery path (per-message sequence numbers + CRC32,
    /// bounded retry-with-backoff on injected transients). First
    /// attachment wins. With no plan attached the original fast path
    /// runs unchanged.
    pub fn attach_faults(&self, plan: Arc<FaultPlan>) {
        let _ = self.faults.set(plan);
    }

    /// Process-unique id of this matrix (stable for the lifetime of the
    /// process; used to key protocol records).
    pub fn mat_id(&self) -> u32 {
        self.mat_id
    }

    #[inline]
    fn rec(&self, access: DdiAccess) {
        if let Some(r) = self.recorder.get() {
            r.record(&access);
        }
    }

    /// Model collective / whole-matrix operations as a global
    /// synchronization point: everything before is ordered before
    /// everything after (the driver-level vector algebra is collective in
    /// the real program, bracketed by barriers).
    #[inline]
    fn rec_barrier(&self) {
        self.rec(DdiAccess::Barrier);
    }

    #[inline]
    fn trace_op(&self, rank: usize, op: &str, bytes: u64, col: usize, owner: usize) {
        if let Some(t) = self.tracer.get() {
            t.instant(
                Some(rank),
                op,
                Category::Net,
                &[
                    ("bytes", bytes as f64),
                    ("col", col as f64),
                    ("owner", owner as f64),
                ],
            );
            if let Some(m) = t.metrics() {
                // "ddi_get" → "ddi.get_bytes" etc.; transfer-size
                // distributions per one-sided op.
                let name = match op {
                    "ddi_get" => "ddi.get_bytes",
                    "ddi_acc" => "ddi.acc_bytes",
                    "ddi_put" => "ddi.put_bytes",
                    _ => "ddi.op_bytes",
                };
                m.observe(name, &[], bytes as f64);
            }
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of virtual processors the columns are distributed over.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// Owner rank of a column.
    #[inline]
    pub fn owner(&self, col: usize) -> usize {
        debug_assert!(col < self.ncols);
        // Block distribution: binary search the offsets.
        match self.col_offsets.binary_search(&col) {
            Ok(p) => p.min(self.nproc - 1),
            Err(p) => p - 1,
        }
    }

    /// Columns owned by rank `p`.
    pub fn local_cols(&self, p: usize) -> std::ops::Range<usize> {
        self.col_offsets[p]..self.col_offsets[p + 1]
    }

    /// Run `f` with rank `p`'s segment locked (column-major slab of the
    /// locally owned columns).
    ///
    /// Recorded as lock → read+write → unlock by the calling rank `p`
    /// (the closure gets `&mut`, so a write is assumed conservatively).
    pub fn with_local<R>(&self, p: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let mut seg = self.segments[p].lock().unwrap();
        self.rec(DdiAccess::Lock {
            rank: p,
            mat: self.mat_id,
            owner: p,
        });
        self.rec(DdiAccess::Access {
            rank: p,
            mat: self.mat_id,
            kind: AccessKind::Read,
            cols: self.local_cols(p),
            owner: p,
            site: DdiSite::WithLocal,
        });
        let out = f(&mut seg);
        self.rec(DdiAccess::Access {
            rank: p,
            mat: self.mat_id,
            kind: AccessKind::Write,
            cols: self.local_cols(p),
            owner: p,
            site: DdiSite::WithLocal,
        });
        self.rec(DdiAccess::Unlock {
            rank: p,
            mat: self.mat_id,
            owner: p,
        });
        out
    }

    /// One-sided `DDI_GET` of a single column into `buf`.
    ///
    /// `rank` is the calling processor; traffic is counted only when the
    /// column is remote. With a fault plan attached, remote gets run the
    /// checked delivery path: every response carries a sequence number
    /// and a CRC32, a dropped or garbled response is detected and resent
    /// (bounded by the plan's [`fci_fault::RetryPolicy`]), and the wasted
    /// traffic plus backoff wait are charged to the caller's stats.
    pub fn get_col(&self, rank: usize, col: usize, buf: &mut [f64], stats: &mut CommStats) {
        assert_eq!(buf.len(), self.nrows);
        let owner = self.owner(col);
        let local0 = col - self.col_offsets[owner];
        if let Some(plan) = self.faults.get() {
            plan.note_op();
            if owner != rank {
                return self.get_col_checked(plan, rank, col, owner, local0, buf, stats);
            }
        }
        self.get_protocol(rank, col, owner, local0, buf);
        if owner != rank {
            stats.get_msgs += 1;
            stats.get_bytes += (self.nrows * 8) as u64;
            self.trace_op(rank, "ddi_get", (self.nrows * 8) as u64, col, owner);
        }
    }

    /// Aggregated one-sided gather of a set of columns into a
    /// column-major buffer: `out[i + slot·nrows]` receives element `i`
    /// of column `cols[slot]`.
    ///
    /// Columns in one maximal run of `cols` sharing an owner are copied
    /// under a **single** lock acquisition and — when the owner is
    /// remote — charged as **one** strided `SHMEM_GET` message carrying
    /// the run's total bytes, with one trace event for the whole run.
    /// This mirrors the "one strided get per remote source rank" model
    /// of [`DistMatrix::transpose`] (the X1's vector gather hardware
    /// turns a strided remote read into a single operation) and is what
    /// lets the σ driver pay one latency charge per aggregated family
    /// instead of one per column. Bytes moved are identical to the
    /// equivalent sequence of [`DistMatrix::get_col`] calls; only the
    /// message count (and hence the latency charge) drops.
    ///
    /// Each column is still recorded individually with the protocol
    /// recorder, so `fci-check` sees the same read set either way. With
    /// a fault plan attached, the gather degrades to per-column checked
    /// deliveries (each transfer's faults inject and recover
    /// independently).
    pub fn get_cols(&self, rank: usize, cols: &[usize], out: &mut [f64], stats: &mut CommStats) {
        assert_eq!(out.len(), self.nrows * cols.len());
        if cols.is_empty() {
            return;
        }
        if self.faults.get().is_some() {
            // Checked delivery is inherently per-message; keep the
            // aggregated op semantically identical by falling back.
            for (slot, &col) in cols.iter().enumerate() {
                let buf = &mut out[slot * self.nrows..(slot + 1) * self.nrows];
                self.get_col(rank, col, buf, stats);
            }
            return;
        }
        let mut s = 0;
        while s < cols.len() {
            let owner = self.owner(cols[s]);
            let mut e = s + 1;
            while e < cols.len() && self.owner(cols[e]) == owner {
                e += 1;
            }
            {
                let seg = self.segments[owner].lock().unwrap();
                for slot in s..e {
                    let col = cols[slot];
                    let local0 = col - self.col_offsets[owner];
                    self.rec(DdiAccess::Access {
                        rank,
                        mat: self.mat_id,
                        kind: AccessKind::Read,
                        cols: col..col + 1,
                        owner,
                        site: DdiSite::Get,
                    });
                    out[slot * self.nrows..(slot + 1) * self.nrows]
                        .copy_from_slice(&seg[local0 * self.nrows..(local0 + 1) * self.nrows]);
                }
            }
            if owner != rank {
                let bytes = ((e - s) * self.nrows * 8) as u64;
                stats.get_msgs += 1;
                stats.get_bytes += bytes;
                if let Some(t) = self.tracer.get() {
                    t.instant(
                        Some(rank),
                        "ddi_get_cols",
                        Category::Net,
                        &[
                            ("bytes", bytes as f64),
                            ("ncols", (e - s) as f64),
                            ("col0", cols[s] as f64),
                            ("owner", owner as f64),
                        ],
                    );
                }
            }
            s = e;
        }
    }

    /// The unperturbed get protocol: copy the column out under the
    /// owner's lock, recording the read.
    fn get_protocol(&self, rank: usize, col: usize, owner: usize, local0: usize, buf: &mut [f64]) {
        let seg = self.segments[owner].lock().unwrap();
        self.rec(DdiAccess::Access {
            rank,
            mat: self.mat_id,
            kind: AccessKind::Read,
            cols: col..col + 1,
            owner,
            site: DdiSite::Get,
        });
        buf.copy_from_slice(&seg[local0 * self.nrows..(local0 + 1) * self.nrows]);
    }

    /// Checked remote get: delivery attempts draw faults from the plan;
    /// faulted attempts are detected (timeout for drops, CRC mismatch
    /// for corruption) and retried without touching `buf` or emitting
    /// protocol records — only the final validated delivery performs the
    /// recorded read, so the race detector sees the same protocol as the
    /// fast path.
    #[allow(clippy::too_many_arguments)]
    fn get_col_checked(
        &self,
        plan: &FaultPlan,
        rank: usize,
        col: usize,
        owner: usize,
        local0: usize,
        buf: &mut [f64],
        stats: &mut CommStats,
    ) {
        let bytes = (self.nrows * 8) as u64;
        let mut attempt: u32 = 0;
        loop {
            match plan.on_transfer(TransferOp::Get, attempt) {
                Some(TransferFault::Drop) => {
                    // The response is lost in flight; the requester's ack
                    // timeout fires and the get is reissued after backoff.
                    self.charge_retry(plan, TransferOp::Get, rank, col, bytes, attempt, stats);
                    attempt += 1;
                }
                Some(TransferFault::Corrupt(kind)) => {
                    // The response arrives garbled: its CRC32 disagrees
                    // with the checksum the owner computed, so the
                    // delivery is rejected before any data is used.
                    // lint: allow(alloc) — injected-fault recovery path; never runs in a fault-free production sweep
                    let mut wire = vec![0.0; self.nrows];
                    let sent = {
                        let seg = self.segments[owner].lock().unwrap();
                        wire.copy_from_slice(&seg[local0 * self.nrows..(local0 + 1) * self.nrows]);
                        checksum_f64s(&wire)
                    };
                    plan.corrupt(kind, &mut wire);
                    debug_assert_ne!(sent, checksum_f64s(&wire), "corruption escaped the CRC");
                    self.charge_retry(plan, TransferOp::Get, rank, col, bytes, attempt, stats);
                    attempt += 1;
                }
                fault => {
                    // Clean (possibly duplicated) delivery: the real
                    // protocol, recorded exactly once.
                    self.get_protocol(rank, col, owner, local0, buf);
                    stats.get_msgs += 1;
                    stats.get_bytes += bytes;
                    self.trace_op(rank, "ddi_get", bytes, col, owner);
                    let seq = self.next_seq(rank);
                    if fault == Some(TransferFault::Duplicate) {
                        self.discard_duplicate(plan, TransferOp::Get, rank, col, bytes, seq, stats);
                    }
                    return;
                }
            }
        }
    }

    /// One-sided `DDI_ACC`: `column += buf`.
    ///
    /// Remote accumulation counts 2× the payload bytes (fetch + write-back,
    /// exactly the SHMEM protocol the paper describes) plus one mutex
    /// acquisition. Local accumulation still takes the lock (the X1 code
    /// does too — the lock protects against concurrent remote updates) but
    /// costs no network bytes.
    pub fn acc_col(&self, rank: usize, col: usize, buf: &[f64], stats: &mut CommStats) {
        assert_eq!(buf.len(), self.nrows);
        let owner = self.owner(col);
        let local0 = col - self.col_offsets[owner];
        if let Some(plan) = self.faults.get() {
            plan.note_op();
            // A plan carrying a broken-protocol mode (race-detector
            // validation) routes every accumulate through that protocol.
            if let Some(pf) = plan.protocol_fault() {
                return self.acc_col_broken(rank, col, buf, pf, stats);
            }
            if owner != rank {
                return self.acc_col_checked(plan, rank, col, owner, local0, buf, stats);
            }
        }
        self.acc_protocol(rank, col, owner, local0, buf);
        stats.mutex_acquires += 1;
        if owner != rank {
            stats.acc_msgs += 1;
            stats.acc_bytes += (self.nrows * 16) as u64;
            self.trace_op(rank, "ddi_acc", (self.nrows * 16) as u64, col, owner);
        }
    }

    /// The protocol of §3.1, recorded step by step while the node mutex
    /// is held so the record order is the true lock order:
    /// lock → SHMEM_GET → add → SHMEM_PUT → fence → unlock.
    fn acc_protocol(&self, rank: usize, col: usize, owner: usize, local0: usize, buf: &[f64]) {
        let mut seg = self.segments[owner].lock().unwrap();
        self.rec(DdiAccess::Lock {
            rank,
            mat: self.mat_id,
            owner,
        });
        self.rec(DdiAccess::Access {
            rank,
            mat: self.mat_id,
            kind: AccessKind::Read,
            cols: col..col + 1,
            owner,
            site: DdiSite::AccGet,
        });
        let dst = &mut seg[local0 * self.nrows..(local0 + 1) * self.nrows];
        for (d, s) in dst.iter_mut().zip(buf) {
            *d += s;
        }
        self.rec(DdiAccess::Access {
            rank,
            mat: self.mat_id,
            kind: AccessKind::Write,
            cols: col..col + 1,
            owner,
            site: DdiSite::AccPut,
        });
        self.rec(DdiAccess::Fence { rank });
        self.rec(DdiAccess::Unlock {
            rank,
            mat: self.mat_id,
            owner,
        });
    }

    /// Checked remote accumulate: the update payload is CRC32-validated
    /// *before* it is applied, so a corrupted delivery never pollutes the
    /// remote column — it is rejected and resent. Only the final
    /// validated attempt runs the (recorded) lock/fence protocol.
    #[allow(clippy::too_many_arguments)]
    fn acc_col_checked(
        &self,
        plan: &FaultPlan,
        rank: usize,
        col: usize,
        owner: usize,
        local0: usize,
        buf: &[f64],
        stats: &mut CommStats,
    ) {
        let bytes = (self.nrows * 16) as u64;
        let mut attempt: u32 = 0;
        let duplicated = loop {
            match plan.on_transfer(TransferOp::Acc, attempt) {
                Some(TransferFault::Drop) => {
                    self.charge_retry(plan, TransferOp::Acc, rank, col, bytes, attempt, stats);
                    attempt += 1;
                }
                Some(TransferFault::Corrupt(kind)) => {
                    let sent = checksum_f64s(buf);
                    let mut wire = buf.to_vec();
                    plan.corrupt(kind, &mut wire);
                    debug_assert_ne!(sent, checksum_f64s(&wire), "corruption escaped the CRC");
                    self.charge_retry(plan, TransferOp::Acc, rank, col, bytes, attempt, stats);
                    attempt += 1;
                }
                Some(TransferFault::Duplicate) => break true,
                None => break false,
            }
        };
        self.acc_protocol(rank, col, owner, local0, buf);
        stats.mutex_acquires += 1;
        stats.acc_msgs += 1;
        stats.acc_bytes += bytes;
        self.trace_op(rank, "ddi_acc", bytes, col, owner);
        let seq = self.next_seq(rank);
        if duplicated {
            self.discard_duplicate(plan, TransferOp::Acc, rank, col, bytes, seq, stats);
        }
        // Injected fence delay: the accumulate's trailing memory fence
        // takes longer to drain; pure simulated wait, no reordering.
        if let Some(ns) = plan.on_fence() {
            stats.backoff_ns += ns;
            self.trace_fault(rank, "fence_delay", TransferOp::Acc, col, 0, ns);
        }
    }

    /// Stamp the next sequence number for a delivery from `rank` and
    /// record it as applied.
    fn next_seq(&self, rank: usize) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.last_seq[rank].store(seq, Ordering::Release);
        seq
    }

    /// A duplicated delivery re-arrives bearing an already-applied
    /// sequence number: it is discarded by the sequence guard, costing
    /// only the extra wire traffic.
    #[allow(clippy::too_many_arguments)]
    fn discard_duplicate(
        &self,
        plan: &FaultPlan,
        op: TransferOp,
        rank: usize,
        col: usize,
        bytes: u64,
        seq: u64,
        stats: &mut CommStats,
    ) {
        if self.last_seq[rank].load(Ordering::Acquire) >= seq {
            plan.count_dup_discard();
        }
        match op {
            TransferOp::Get => {
                stats.get_msgs += 1;
                stats.get_bytes += bytes;
            }
            TransferOp::Acc => {
                stats.acc_msgs += 1;
                stats.acc_bytes += bytes;
            }
            TransferOp::Put => {
                stats.put_msgs += 1;
                stats.put_bytes += bytes;
            }
        }
        self.trace_fault(rank, "duplicate", op, col, 0, 0);
    }

    /// Charge one failed delivery attempt: the lost/garbled message
    /// still crossed the wire, and the sender backs off before the
    /// resend. Both are folded into the caller's stats (and from there
    /// into the xsim clock).
    #[allow(clippy::too_many_arguments)]
    fn charge_retry(
        &self,
        plan: &FaultPlan,
        op: TransferOp,
        rank: usize,
        col: usize,
        bytes: u64,
        attempt: u32,
        stats: &mut CommStats,
    ) {
        match op {
            TransferOp::Get => {
                stats.get_msgs += 1;
                stats.get_bytes += bytes;
            }
            TransferOp::Acc => {
                stats.acc_msgs += 1;
                stats.acc_bytes += bytes;
            }
            TransferOp::Put => {
                stats.put_msgs += 1;
                stats.put_bytes += bytes;
            }
        }
        stats.retries += 1;
        let backoff_ns = plan.backoff_ns(attempt);
        stats.backoff_ns += backoff_ns;
        plan.count_retry();
        self.trace_fault(rank, "transient", op, col, attempt, backoff_ns);
    }

    /// Emit a `fault_injected` instant for an injected fault handled on
    /// this matrix. `backoff_ns` is the simulated delay the fault cost
    /// before the operation proceeded (0 for free faults like duplicate
    /// discards); it rides on the instant as `backoff_s` and feeds the
    /// `ddi.retry_backoff_s` histogram.
    fn trace_fault(
        &self,
        rank: usize,
        kind: &str,
        op: TransferOp,
        col: usize,
        attempt: u32,
        backoff_ns: u64,
    ) {
        if let Some(t) = self.tracer.get() {
            let opcode = match op {
                TransferOp::Get => 0.0,
                TransferOp::Acc => 1.0,
                TransferOp::Put => 2.0,
            };
            let kindcode = match kind {
                "transient" => 0.0,
                "duplicate" => 1.0,
                "fence_delay" => 2.0,
                _ => 3.0,
            };
            let backoff_s = backoff_ns as f64 / 1e9;
            // lint: allow(alloc) — fault-trace emission; runs only when a fault was injected
            let mut args = vec![
                ("op", opcode),
                ("col", col as f64),
                ("attempt", attempt as f64),
                ("kind", kindcode),
            ];
            if backoff_ns > 0 {
                // lint: allow(alloc) — fault-trace emission; runs only when a fault was injected
                args.push(("backoff_s", backoff_s));
            }
            t.instant(Some(rank), "fault_injected", Category::Other, &args);
            if let Some(m) = t.metrics() {
                m.counter_incr("fault.injected", &[("kind", kind)]);
                if backoff_ns > 0 {
                    m.observe("ddi.retry_backoff_s", &[("kind", kind)], backoff_s);
                }
            }
        }
    }

    /// `DDI_ACC` with a deliberately broken protocol — fault injection
    /// for the `fci-check` race detector. See [`ProtocolFault`] for the
    /// menu. [`DistMatrix::acc_col`] routes here automatically when the
    /// attached [`FaultPlan`] carries a protocol fault; never call this
    /// from production code.
    ///
    /// Traffic accounting matches [`DistMatrix::acc_col`], except that
    /// [`ProtocolFault::SkipLock`] charges no mutex acquisition (that is
    /// the injected bug).
    pub fn acc_col_broken(
        &self,
        rank: usize,
        col: usize,
        buf: &[f64],
        pf: ProtocolFault,
        stats: &mut CommStats,
    ) {
        assert_eq!(buf.len(), self.nrows);
        let owner = self.owner(col);
        let local0 = col - self.col_offsets[owner];
        match pf {
            ProtocolFault::SkipFence => {
                let mut seg = self.segments[owner].lock().unwrap();
                self.rec(DdiAccess::Lock {
                    rank,
                    mat: self.mat_id,
                    owner,
                });
                self.rec(DdiAccess::Access {
                    rank,
                    mat: self.mat_id,
                    kind: AccessKind::Read,
                    cols: col..col + 1,
                    owner,
                    site: DdiSite::AccGet,
                });
                let dst = &mut seg[local0 * self.nrows..(local0 + 1) * self.nrows];
                for (d, s) in dst.iter_mut().zip(buf) {
                    *d += s;
                }
                self.rec(DdiAccess::Access {
                    rank,
                    mat: self.mat_id,
                    kind: AccessKind::Write,
                    cols: col..col + 1,
                    owner,
                    site: DdiSite::AccPut,
                });
                // BUG under test: no fence — the put is not ordered
                // before the unlock that publishes it.
                self.rec(DdiAccess::Unlock {
                    rank,
                    mat: self.mat_id,
                    owner,
                });
                drop(seg);
                stats.mutex_acquires += 1;
            }
            ProtocolFault::SkipLock => {
                let range = local0 * self.nrows..(local0 + 1) * self.nrows;
                // BUG under test: the read-modify-write is not spanned by
                // the per-node lock. The two short internal borrows below
                // only keep Rust memory-safe; between them another rank
                // can update the column and its update is then lost.
                let snapshot: Vec<f64> = {
                    let seg = self.segments[owner].lock().unwrap();
                    self.rec(DdiAccess::Access {
                        rank,
                        mat: self.mat_id,
                        kind: AccessKind::Read,
                        cols: col..col + 1,
                        owner,
                        site: DdiSite::AccGet,
                    });
                    seg[range.clone()].to_vec()
                };
                let sum: Vec<f64> = snapshot.iter().zip(buf).map(|(d, s)| d + s).collect();
                {
                    let mut seg = self.segments[owner].lock().unwrap();
                    self.rec(DdiAccess::Access {
                        rank,
                        mat: self.mat_id,
                        kind: AccessKind::Write,
                        cols: col..col + 1,
                        owner,
                        site: DdiSite::AccPut,
                    });
                    seg[range].copy_from_slice(&sum);
                }
                self.rec(DdiAccess::Fence { rank });
            }
        }
        if owner != rank {
            stats.acc_msgs += 1;
            stats.acc_bytes += (self.nrows * 16) as u64;
            self.trace_op(rank, "ddi_acc", (self.nrows * 16) as u64, col, owner);
        }
    }

    /// Legacy entry point kept for old call sites: maps the [`AccFault`]
    /// shim onto the one fault-injection mechanism ([`FaultPlan`] /
    /// [`ProtocolFault`]) and delegates.
    pub fn acc_col_faulty(
        &self,
        rank: usize,
        col: usize,
        buf: &[f64],
        fault: AccFault,
        stats: &mut CommStats,
    ) {
        match fault.protocol() {
            None => self.acc_col(rank, col, buf, stats),
            Some(pf) => self.acc_col_broken(rank, col, buf, pf, stats),
        }
    }

    /// One-sided `DDI_PUT`: overwrite a column. With a fault plan
    /// attached, remote puts run the same checked (sequence + CRC32,
    /// retry-with-backoff) delivery path as [`DistMatrix::get_col`].
    pub fn put_col(&self, rank: usize, col: usize, buf: &[f64], stats: &mut CommStats) {
        assert_eq!(buf.len(), self.nrows);
        let owner = self.owner(col);
        let local0 = col - self.col_offsets[owner];
        if let Some(plan) = self.faults.get() {
            plan.note_op();
            if owner != rank {
                return self.put_col_checked(plan, rank, col, owner, local0, buf, stats);
            }
        }
        self.put_protocol(rank, col, owner, local0, buf);
        if owner != rank {
            stats.put_msgs += 1;
            stats.put_bytes += (self.nrows * 8) as u64;
            self.trace_op(rank, "ddi_put", (self.nrows * 8) as u64, col, owner);
        }
    }

    /// The unperturbed put protocol: overwrite the column under the
    /// owner's lock, recording the write.
    fn put_protocol(&self, rank: usize, col: usize, owner: usize, local0: usize, buf: &[f64]) {
        let mut seg = self.segments[owner].lock().unwrap();
        self.rec(DdiAccess::Access {
            rank,
            mat: self.mat_id,
            kind: AccessKind::Write,
            cols: col..col + 1,
            owner,
            site: DdiSite::Put,
        });
        seg[local0 * self.nrows..(local0 + 1) * self.nrows].copy_from_slice(buf);
    }

    /// Checked remote put: the payload is CRC32-validated before the
    /// overwrite is applied, so a garbled delivery never lands — it is
    /// rejected and resent, bounded by the plan's retry policy.
    #[allow(clippy::too_many_arguments)]
    fn put_col_checked(
        &self,
        plan: &FaultPlan,
        rank: usize,
        col: usize,
        owner: usize,
        local0: usize,
        buf: &[f64],
        stats: &mut CommStats,
    ) {
        let bytes = (self.nrows * 8) as u64;
        let mut attempt: u32 = 0;
        let duplicated = loop {
            match plan.on_transfer(TransferOp::Put, attempt) {
                Some(TransferFault::Drop) => {
                    self.charge_retry(plan, TransferOp::Put, rank, col, bytes, attempt, stats);
                    attempt += 1;
                }
                Some(TransferFault::Corrupt(kind)) => {
                    let sent = checksum_f64s(buf);
                    let mut wire = buf.to_vec();
                    plan.corrupt(kind, &mut wire);
                    debug_assert_ne!(sent, checksum_f64s(&wire), "corruption escaped the CRC");
                    self.charge_retry(plan, TransferOp::Put, rank, col, bytes, attempt, stats);
                    attempt += 1;
                }
                Some(TransferFault::Duplicate) => break true,
                None => break false,
            }
        };
        self.put_protocol(rank, col, owner, local0, buf);
        stats.put_msgs += 1;
        stats.put_bytes += bytes;
        self.trace_op(rank, "ddi_put", bytes, col, owner);
        let seq = self.next_seq(rank);
        if duplicated {
            self.discard_duplicate(plan, TransferOp::Put, rank, col, bytes, seq, stats);
        }
    }

    /// Zero all elements.
    pub fn fill_zero(&self) {
        self.rec_barrier();
        for s in &self.segments {
            s.lock().unwrap().iter_mut().for_each(|x| *x = 0.0);
        }
        self.rec_barrier();
    }

    /// Gather the whole matrix into a local column-major buffer
    /// (test/diagnostic helper; not part of the scalable path).
    pub fn to_dense(&self) -> Vec<f64> {
        self.rec_barrier();
        let mut out = vec![0.0; self.nrows * self.ncols];
        for p in 0..self.nproc {
            let seg = self.segments[p].lock().unwrap();
            let c0 = self.col_offsets[p];
            out[c0 * self.nrows..(c0 + seg.len() / self.nrows.max(1)) * self.nrows]
                .copy_from_slice(&seg);
        }
        out
    }

    /// Load from a local column-major buffer.
    pub fn from_dense(nrows: usize, ncols: usize, nproc: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        let m = Self::zeros(nrows, ncols, nproc);
        for p in 0..nproc {
            let mut seg = m.segments[p].lock().unwrap();
            let c0 = m.col_offsets[p];
            let n = seg.len();
            seg.copy_from_slice(&data[c0 * nrows..c0 * nrows + n]);
            drop(seg);
        }
        m
    }

    // ----- distributed vector algebra (treats the matrix as one long
    // vector; every op runs segment-local and reduces) -----

    /// Global Frobenius inner product `⟨self, other⟩`.
    ///
    /// Safe to call with `other` aliasing `self` (the per-segment mutexes
    /// are not reentrant, so the aliased case takes each lock once).
    pub fn dot(&self, other: &DistMatrix) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        assert_eq!(self.nproc, other.nproc);
        self.rec_barrier();
        other.rec_barrier();
        let aliased = std::ptr::eq(self, other);
        let mut acc = 0.0;
        for p in 0..self.nproc {
            let a = self.segments[p].lock().unwrap();
            if aliased {
                acc += a.iter().map(|x| x * x).sum::<f64>();
            } else {
                let b = other.segments[p].lock().unwrap();
                acc += a.iter().zip(b.iter()).map(|(x, y)| x * y).sum::<f64>();
            }
        }
        acc
    }

    /// Global 2-norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// `self += a · other`.
    pub fn axpy(&self, a: f64, other: &DistMatrix) {
        assert!(
            !std::ptr::eq(self, other),
            "axpy operands must not alias (non-reentrant locks)"
        );
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        assert_eq!(self.nproc, other.nproc);
        self.rec_barrier();
        other.rec_barrier();
        for p in 0..self.nproc {
            let mut x = self.segments[p].lock().unwrap();
            let y = other.segments[p].lock().unwrap();
            for (xi, yi) in x.iter_mut().zip(y.iter()) {
                *xi += a * yi;
            }
        }
        self.rec_barrier();
    }

    /// `self *= a`.
    pub fn scale(&self, a: f64) {
        self.rec_barrier();
        for p in 0..self.nproc {
            self.segments[p]
                .lock()
                .unwrap()
                .iter_mut()
                .for_each(|x| *x *= a);
        }
        self.rec_barrier();
    }

    /// Copy `other` into `self`.
    pub fn copy_from(&self, other: &DistMatrix) {
        assert!(
            !std::ptr::eq(self, other),
            "copy_from operands must not alias (non-reentrant locks)"
        );
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        assert_eq!(self.nproc, other.nproc);
        self.rec_barrier();
        other.rec_barrier();
        for p in 0..self.nproc {
            let mut x = self.segments[p].lock().unwrap();
            let y = other.segments[p].lock().unwrap();
            x.copy_from_slice(&y);
        }
        self.rec_barrier();
    }

    /// Read one element (diagnostic / small-model-space use; takes the
    /// owner's lock per call).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols);
        let p = self.owner(col);
        let local0 = col - self.col_offsets[p];
        self.segments[p].lock().unwrap()[local0 * self.nrows + row]
    }

    /// Write one element (diagnostic / small-model-space use).
    pub fn set(&self, row: usize, col: usize, v: f64) {
        assert!(row < self.nrows && col < self.ncols);
        let p = self.owner(col);
        let local0 = col - self.col_offsets[p];
        self.segments[p].lock().unwrap()[local0 * self.nrows + row] = v;
    }

    /// Weighted inner product `Σ_i w_i a_i b_i`, skipping entries whose
    /// weight is not finite (used with sector-masked diagonals, where
    /// out-of-sector weights are ∞ against structurally zero vectors).
    pub fn dot3(&self, w: &DistMatrix, other: &DistMatrix) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        assert_eq!((self.nrows, self.ncols), (w.nrows, w.ncols));
        assert_eq!(self.nproc, other.nproc);
        self.rec_barrier();
        w.rec_barrier();
        other.rec_barrier();
        // The per-segment mutexes are not reentrant — handle aliasing
        // among the three operands explicitly.
        let mut acc = 0.0;
        for p in 0..self.nproc {
            let a = self.segments[p].lock().unwrap();
            let ww = if std::ptr::eq(w, self) {
                None
            } else {
                Some(w.segments[p].lock().unwrap())
            };
            let b = if std::ptr::eq(other, self) || std::ptr::eq(other, w) {
                None
            } else {
                Some(other.segments[p].lock().unwrap())
            };
            for i in 0..a.len() {
                let wv = ww.as_ref().map_or(a[i], |s| s[i]);
                let bv = if std::ptr::eq(other, self) {
                    a[i]
                } else if std::ptr::eq(other, w) {
                    wv
                } else {
                    b.as_ref().unwrap()[i] // lint: allow(unwrap) — guarded by the aliasing branches above
                };
                if wv.is_finite() {
                    acc += wv * a[i] * bv;
                }
            }
        }
        acc
    }

    /// Elementwise map in place.
    pub fn map_inplace(&self, mut f: impl FnMut(usize, usize, f64) -> f64) {
        self.rec_barrier();
        for p in 0..self.nproc {
            let c0 = self.col_offsets[p];
            let mut seg = self.segments[p].lock().unwrap();
            for (k, v) in seg.iter_mut().enumerate() {
                let col = c0 + k / self.nrows;
                let row = k % self.nrows;
                *v = f(row, col, *v);
            }
        }
        self.rec_barrier();
    }

    /// Distributed transpose: returns a new `ncols × nrows` matrix with the
    /// same processor count. Bytes for every element whose source and
    /// destination rank differ are charged to the *destination* rank's
    /// stats entry, modelling an all-to-all built from one-sided gets.
    pub fn transpose(&self, stats: &mut [CommStats]) -> DistMatrix {
        assert_eq!(stats.len(), self.nproc);
        self.rec_barrier();
        let t = DistMatrix::zeros(self.ncols, self.nrows, self.nproc);
        let dense = self.to_dense();
        for (p, stat) in stats.iter_mut().enumerate() {
            let mut remote = 0u64;
            let mut sources = vec![false; self.nproc];
            let cols = t.local_cols(p);
            let mut seg = t.segments[p].lock().unwrap();
            for (k, newcol) in cols.clone().enumerate() {
                // New column `newcol` is old row `newcol`.
                for oldcol in 0..self.ncols {
                    seg[k * t.nrows + oldcol] = dense[newcol + oldcol * self.nrows];
                    let o = self.owner(oldcol);
                    if o != p {
                        remote += 8;
                        sources[o] = true;
                    }
                }
            }
            stat.get_bytes += remote;
            // One strided SHMEM_GET per remote source rank (the X1's
            // vector gather hardware makes strided remote reads a single
            // operation, so we do not charge per-element latency).
            let msgs = sources.iter().filter(|&&b| b).count() as u64;
            stat.get_msgs += msgs;
            if let Some(tr) = self.tracer.get() {
                tr.instant(
                    Some(p),
                    "ddi_transpose",
                    Category::Net,
                    &[("bytes", remote as f64), ("msgs", msgs as f64)],
                );
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_covers_columns() {
        let m = DistMatrix::zeros(3, 10, 4);
        // 10 cols over 4 ranks: 3,3,2,2.
        assert_eq!(m.local_cols(0), 0..3);
        assert_eq!(m.local_cols(1), 3..6);
        assert_eq!(m.local_cols(2), 6..8);
        assert_eq!(m.local_cols(3), 8..10);
        for c in 0..10 {
            let p = m.owner(c);
            assert!(m.local_cols(p).contains(&c), "col {c} owner {p}");
        }
    }

    #[test]
    fn more_ranks_than_columns() {
        let m = DistMatrix::zeros(2, 2, 5);
        assert_eq!(m.local_cols(0), 0..1);
        assert_eq!(m.local_cols(1), 1..2);
        assert_eq!(m.local_cols(4), 2..2);
        assert_eq!(m.owner(1), 1);
    }

    #[test]
    fn get_put_acc_roundtrip() {
        let m = DistMatrix::zeros(4, 6, 3);
        let mut st = CommStats::default();
        let v = [1.0, 2.0, 3.0, 4.0];
        m.put_col(0, 5, &v, &mut st); // remote put (owner = 2)
        assert_eq!(st.put_msgs, 1);
        assert_eq!(st.put_bytes, 32);
        let mut buf = [0.0; 4];
        m.get_col(0, 5, &mut buf, &mut st);
        assert_eq!(buf, v);
        assert_eq!(st.get_msgs, 1);
        m.acc_col(0, 5, &v, &mut st);
        m.get_col(2, 5, &mut buf, &mut st); // local get for owner: free
        assert_eq!(buf, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!(st.acc_msgs, 1);
        assert_eq!(st.acc_bytes, 64); // 2× payload
        assert_eq!(st.get_msgs, 1); // unchanged by the local get
    }

    #[test]
    fn local_ops_are_free() {
        let m = DistMatrix::zeros(4, 6, 3);
        let mut st = CommStats::default();
        let v = [1.0; 4];
        let own = m.owner(1);
        m.put_col(own, 1, &v, &mut st);
        m.acc_col(own, 1, &v, &mut st);
        let mut buf = [0.0; 4];
        m.get_col(own, 1, &mut buf, &mut st);
        assert_eq!(st.total_bytes(), 0);
        assert_eq!(st.get_msgs + st.acc_msgs + st.put_msgs, 0);
        assert_eq!(st.mutex_acquires, 1);
    }

    #[test]
    fn dense_roundtrip() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let m = DistMatrix::from_dense(3, 4, 3, &data);
        assert_eq!(m.to_dense(), data);
    }

    #[test]
    fn vector_algebra() {
        let a = DistMatrix::from_dense(2, 2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = DistMatrix::from_dense(2, 2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(a.dot(&b), 10.0);
        assert!((a.norm() - 30.0_f64.sqrt()).abs() < 1e-14);
        b.axpy(2.0, &a);
        assert_eq!(b.to_dense(), vec![3.0, 5.0, 7.0, 9.0]);
        b.scale(0.5);
        assert_eq!(b.to_dense(), vec![1.5, 2.5, 3.5, 4.5]);
        b.copy_from(&a);
        assert_eq!(b.to_dense(), a.to_dense());
        b.fill_zero();
        assert_eq!(b.norm(), 0.0);
    }

    #[test]
    fn transpose_correct_and_counts() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let m = DistMatrix::from_dense(3, 4, 2, &data);
        let mut stats = vec![CommStats::default(); 2];
        let t = m.transpose(&mut stats);
        assert_eq!((t.nrows(), t.ncols()), (4, 3));
        let td = t.to_dense();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(td[j + i * 4], data[i + j * 3]);
            }
        }
        // Some bytes must have moved.
        assert!(stats.iter().map(|s| s.get_bytes).sum::<u64>() > 0);
    }

    #[test]
    fn self_dot_and_norm_do_not_deadlock() {
        // Regression: norm() aliases dot(self, self); the segment mutexes
        // are non-reentrant, so aliasing must be special-cased.
        let a = DistMatrix::from_dense(2, 2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
        let w = DistMatrix::from_dense(2, 2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(a.dot3(&w, &a), 25.0);
        assert_eq!(a.dot3(&a, &a), 27.0 + 64.0);
        assert_eq!(w.dot3(&a, &a), 25.0);
    }

    #[test]
    fn quiet_plan_leaves_ops_bitwise_identical() {
        let data: Vec<f64> = (0..24).map(|x| (x as f64).sin()).collect();
        let plain = DistMatrix::from_dense(4, 6, 3, &data);
        let checked = DistMatrix::from_dense(4, 6, 3, &data);
        checked.attach_faults(Arc::new(FaultPlan::new(fci_fault::FaultConfig::quiet(7))));
        let v = [0.5, -0.25, 1.0, 2.0];
        let (mut sa, mut sb) = (CommStats::default(), CommStats::default());
        for m in [&plain, &checked] {
            let st = if std::ptr::eq(m, &plain) {
                &mut sa
            } else {
                &mut sb
            };
            m.put_col(0, 5, &v, st);
            m.acc_col(0, 5, &v, st);
            m.acc_col(2, 4, &v, st);
        }
        assert_eq!(plain.to_dense(), checked.to_dense());
        assert_eq!(sa, sb);
    }

    #[test]
    fn checked_paths_recover_exact_values_under_heavy_faults() {
        let cfg = fci_fault::FaultConfig {
            seed: 42,
            p_drop: 0.3,
            p_corrupt: 0.3,
            p_duplicate: 0.2,
            ..fci_fault::FaultConfig::default()
        };
        let m = DistMatrix::zeros(4, 6, 3);
        m.attach_faults(Arc::new(FaultPlan::new(cfg)));
        let mut st = CommStats::default();
        let v = [1.0, 2.0, 3.0, 4.0];
        for _ in 0..50 {
            m.acc_col(0, 5, &v, &mut st); // remote acc (owner = 2)
        }
        m.put_col(0, 3, &v, &mut st); // remote put (owner = 1)
        let mut buf = [0.0; 4];
        for _ in 0..50 {
            m.get_col(0, 5, &mut buf, &mut st); // remote get
        }
        // Every injected fault was detected and recovered: values exact.
        assert_eq!(buf, [50.0, 100.0, 150.0, 200.0]);
        let mut buf3 = [0.0; 4];
        m.get_col(1, 3, &mut buf3, &mut st); // owner-local get
        assert_eq!(buf3, v);
        // With these probabilities over 101 remote ops, retries are
        // statistically certain (and seeded, so deterministic).
        assert!(st.retries > 0, "no retries injected");
        assert!(st.backoff_ns > 0);
    }

    #[test]
    fn checked_path_charges_wasted_traffic() {
        // p_drop = 1.0: every attempt before the cap drops, so each get
        // costs max_retries extra messages plus the clean delivery.
        let cfg = fci_fault::FaultConfig {
            seed: 3,
            p_drop: 1.0,
            ..fci_fault::FaultConfig::default()
        };
        let cap = cfg.retry.max_retries as u64;
        let m = DistMatrix::from_dense(2, 2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let plan = Arc::new(FaultPlan::new(cfg));
        m.attach_faults(plan.clone());
        let mut st = CommStats::default();
        let mut buf = [0.0; 2];
        m.get_col(0, 1, &mut buf, &mut st);
        assert_eq!(buf, [3.0, 4.0]);
        assert_eq!(st.get_msgs, cap + 1);
        assert_eq!(st.retries, cap);
        assert_eq!(plan.stats().retries, cap);
        assert_eq!(plan.stats().drops, cap);
    }

    #[test]
    fn get_cols_matches_per_column_gets_with_fewer_messages() {
        let data: Vec<f64> = (0..40).map(|x| (x as f64).cos()).collect();
        let m = DistMatrix::from_dense(4, 10, 3, &data); // ranks own 4,3,3 cols
                                                         // Mixed-owner, non-contiguous column set as a σ family would use.
        let cols = [1usize, 2, 5, 6, 7, 9];
        let mut agg = vec![0.0; 4 * cols.len()];
        let mut st_agg = CommStats::default();
        m.get_cols(0, &cols, &mut agg, &mut st_agg);
        let mut per = vec![0.0; 4 * cols.len()];
        let mut st_per = CommStats::default();
        for (slot, &c) in cols.iter().enumerate() {
            m.get_col(0, c, &mut per[slot * 4..(slot + 1) * 4], &mut st_per);
        }
        assert_eq!(agg, per, "aggregated gather altered the data");
        assert_eq!(st_agg.get_bytes, st_per.get_bytes, "bytes must match");
        // cols 1,2 are local to rank 0 (free); 5 (rank 1 run), 6,7
        // (wait: owner layout 0..4 | 4..7 | 7..10) → runs: [1,2]@0,
        // [5,6]@1, [7,9]@2 → 2 remote messages vs 4 per-column.
        assert_eq!(st_per.get_msgs, 4);
        assert_eq!(st_agg.get_msgs, 2, "one message per remote owner-run");
    }

    #[test]
    fn get_cols_checked_fallback_recovers_exact_values() {
        let cfg = fci_fault::FaultConfig {
            seed: 11,
            p_drop: 0.4,
            p_corrupt: 0.2,
            ..fci_fault::FaultConfig::default()
        };
        let data: Vec<f64> = (0..24).map(|x| x as f64).collect();
        let m = DistMatrix::from_dense(4, 6, 3, &data);
        m.attach_faults(Arc::new(FaultPlan::new(cfg)));
        let cols = [0usize, 3, 5];
        let mut out = vec![0.0; 12];
        let mut st = CommStats::default();
        m.get_cols(0, &cols, &mut out, &mut st);
        for (slot, &c) in cols.iter().enumerate() {
            assert_eq!(&out[slot * 4..(slot + 1) * 4], &data[c * 4..(c + 1) * 4]);
        }
    }

    #[test]
    fn map_inplace_indexing() {
        let m = DistMatrix::zeros(2, 3, 2);
        m.map_inplace(|r, c, _| (r * 10 + c) as f64);
        assert_eq!(m.to_dense(), vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }
}
