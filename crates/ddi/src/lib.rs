#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Simulated Distributed Data Interface (DDI).
//!
//! The paper's program distributes the CI coefficient matrix by α-string
//! columns and performs all remote traffic through one-sided operations of
//! the Distributed Data Interface (a Global Arrays derivative), which on
//! the Cray-X1 maps onto SHMEM:
//!
//! * `DDI_GET` — one-sided remote gather of columns (`SHMEM_GET`),
//! * `DDI_ACC` — remote accumulate: acquire the target node's mutex, fetch
//!   the data (`SHMEM_GET`), add locally, write back (`SHMEM_PUT`), fence
//!   (`SHMEM_QUIET`), release. Accumulation therefore moves **twice** the
//!   bytes of a get — a property the paper calls out explicitly (§3.1) and
//!   which our communication accounting reproduces,
//! * `SHMEM_SWAP` — the atomic counter behind the dynamic load-balancing
//!   task server (`nxtval` here).
//!
//! This crate reimplements those semantics over shared memory. "Processors"
//! are virtual ranks; a [`Ddi`] world runs a closure once per rank, either
//! serially (deterministic, the default — correct because the σ algorithms
//! only ever *read* C and *accumulate* into σ, both order-insensitive) or
//! on real OS threads (used by tests to validate the locking protocol).
//! Every operation updates per-rank [`CommStats`] so harnesses can report
//! communication volumes the way Table 3 does.
//!
//! For correctness analysis, every one-sided operation can additionally
//! report its protocol steps (lock, get, put, fence, unlock, counter swap)
//! to an [`AccessRecorder`] — see [`record`] and the `fci-check` crate's
//! happens-before race detector built on top of it.
//!
//! For robustness testing, a seeded [`FaultPlan`] (from `fci-fault`) can
//! be attached to a world: remote transfers then run a checked delivery
//! path (per-message sequence numbers + CRC32) that detects injected
//! drops/duplicates/corruption and recovers by bounded
//! retry-with-backoff, with the wasted traffic and wait time charged to
//! the caller's [`CommStats`].

pub mod dist;
pub mod record;
pub mod stats;
pub mod world;

pub use dist::{AccFault, DistMatrix};
pub use fci_fault::{
    Corruption, FaultConfig, FaultPlan, FaultStats, ProtocolFault, RankDeath, RetryPolicy,
};
pub use record::{
    protocol_events, AccessKind, AccessRecorder, CheckConfig, DdiAccess, DdiSite, TraceRecorder,
};
pub use stats::CommStats;
pub use world::{Backend, Ddi};
