//! Per-rank communication statistics.

/// Counts of one-sided traffic issued by one rank.
///
/// Byte counts follow the paper's accounting: a remote `get` of n doubles
/// moves `8n` bytes; a remote `acc` moves `16n` (fetch + write-back); local
/// operations are free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Bytes fetched by remote gets.
    pub get_bytes: u64,
    /// Bytes moved by remote accumulates (2× the payload).
    pub acc_bytes: u64,
    /// Bytes written by remote puts.
    pub put_bytes: u64,
    /// Number of remote get operations.
    pub get_msgs: u64,
    /// Number of remote accumulate operations.
    pub acc_msgs: u64,
    /// Number of remote put operations.
    pub put_msgs: u64,
    /// Number of atomic counter (SHMEM_SWAP-style) operations.
    pub nxtval_msgs: u64,
    /// Number of mutex acquisitions performed for accumulates.
    pub mutex_acquires: u64,
    /// Resent deliveries: transient faults (drops, CRC-rejected
    /// corruptions) detected and retried by the checked DDI paths. The
    /// retransmitted traffic itself is already folded into the byte and
    /// message counts above.
    pub retries: u64,
    /// Simulated nanoseconds this rank spent backing off before resends
    /// and waiting out injected stalls/fence delays.
    pub backoff_ns: u64,
}

impl CommStats {
    /// Total bytes moved over the (simulated) interconnect.
    pub fn total_bytes(&self) -> u64 {
        self.get_bytes + self.acc_bytes + self.put_bytes
    }

    /// Total message count (including counter traffic).
    pub fn total_msgs(&self) -> u64 {
        self.get_msgs + self.acc_msgs + self.put_msgs + self.nxtval_msgs
    }

    /// Elementwise sum.
    pub fn merge(&mut self, other: &CommStats) {
        self.get_bytes += other.get_bytes;
        self.acc_bytes += other.acc_bytes;
        self.put_bytes += other.put_bytes;
        self.get_msgs += other.get_msgs;
        self.acc_msgs += other.acc_msgs;
        self.put_msgs += other.put_msgs;
        self.nxtval_msgs += other.nxtval_msgs;
        self.mutex_acquires += other.mutex_acquires;
        self.retries += other.retries;
        self.backoff_ns += other.backoff_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let a = CommStats {
            get_bytes: 100,
            acc_bytes: 40,
            put_bytes: 4,
            get_msgs: 2,
            acc_msgs: 1,
            put_msgs: 1,
            nxtval_msgs: 5,
            mutex_acquires: 1,
            retries: 3,
            backoff_ns: 40_000,
        };
        assert_eq!(a.total_bytes(), 144);
        assert_eq!(a.total_msgs(), 9);
        let mut b = CommStats::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.get_bytes, 200);
        assert_eq!(b.nxtval_msgs, 10);
        assert_eq!(b.retries, 6);
        assert_eq!(b.backoff_ns, 80_000);
    }
}
