//! The DDI "world": virtual processor set, execution backends, and the
//! dynamic load-balancing counter.

use crate::dist::DistMatrix;
use crate::record::{AccessRecorder, DdiAccess};
use crate::stats::CommStats;
use fci_fault::FaultPlan;
use fci_obs::{Category, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// How the per-rank closures are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Run ranks one after another on the calling thread. Deterministic;
    /// valid for the FCI σ phases because they only read shared inputs and
    /// accumulate into shared outputs (both order-insensitive).
    Serial,
    /// Run every rank on its own OS thread (std scoped threads).
    /// Exercises the real locking protocol; results are bitwise-reproducible
    /// only up to floating-point addition order in accumulations.
    Threads,
}

/// A virtual machine of `nproc` processors with a task counter.
pub struct Ddi {
    nproc: usize,
    backend: Backend,
    counter: AtomicUsize,
    tracer: OnceLock<Tracer>,
    recorder: OnceLock<Arc<dyn AccessRecorder>>,
    faults: OnceLock<Arc<FaultPlan>>,
}

impl Ddi {
    /// Create a world of `nproc` virtual processors.
    pub fn new(nproc: usize, backend: Backend) -> Self {
        assert!(nproc >= 1, "need at least one processor");
        Ddi {
            nproc,
            backend,
            counter: AtomicUsize::new(0),
            tracer: OnceLock::new(),
            recorder: OnceLock::new(),
            faults: OnceLock::new(),
        }
    }

    /// Number of virtual processors.
    pub fn nproc(&self) -> usize {
        self.nproc
    }

    /// The execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Attach a tracer; one-sided ops on this world emit events through
    /// it. First attachment wins (the world is shared immutably across
    /// phases). A disabled tracer is accepted and stays inert.
    pub fn attach_tracer(&self, tracer: Tracer) {
        let _ = self.tracer.set(tracer);
    }

    /// The attached tracer (disabled if none was attached).
    pub fn tracer(&self) -> Tracer {
        self.tracer.get().cloned().unwrap_or_default()
    }

    /// Attach a protocol recorder; `nxtval` and `run` then report counter
    /// acquire/release and barrier edges, and matrices adopted via
    /// [`Ddi::adopt`] report their one-sided protocol steps. First
    /// attachment wins.
    pub fn attach_recorder(&self, recorder: Arc<dyn AccessRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<Arc<dyn AccessRecorder>> {
        self.recorder.get().cloned()
    }

    /// Attach a fault plan; `nxtval` then draws stall faults from it,
    /// and matrices adopted via [`Ddi::adopt`] inherit it (their remote
    /// one-sided ops run the checked delivery path). First attachment
    /// wins. With no plan attached nothing changes.
    pub fn attach_faults(&self, plan: Arc<FaultPlan>) {
        let _ = self.faults.set(plan);
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults.get().cloned()
    }

    /// Wire a matrix into this world's observability and fault plane: it
    /// inherits the world's tracer, protocol recorder, and fault plan
    /// (each a no-op if unset).
    pub fn adopt(&self, m: &DistMatrix) {
        if let Some(t) = self.tracer.get() {
            m.attach_tracer(t.clone());
        }
        if let Some(r) = self.recorder.get() {
            m.attach_recorder(r.clone());
        }
        if let Some(p) = self.faults.get() {
            m.attach_faults(p.clone());
        }
    }

    #[inline]
    fn rec(&self, access: DdiAccess) {
        if let Some(r) = self.recorder.get() {
            r.record(&access);
        }
    }

    /// Reset the shared task counter (call before each dynamically
    /// balanced phase).
    pub fn reset_counter(&self) {
        self.counter.store(0, Ordering::SeqCst);
    }

    /// `SHMEM_SWAP`-style shared counter: returns the next global task
    /// number. One counter message is charged to the caller. With a
    /// fault plan attached, the op counts against the plan's simulated
    /// clock and may draw an injected stall, charged as backoff wait.
    pub fn nxtval(&self, stats: &mut CommStats) -> usize {
        stats.nxtval_msgs += 1;
        if let Some(plan) = self.faults.get() {
            plan.note_op();
            if let Some(ns) = plan.on_nxtval() {
                stats.backoff_ns += ns;
                if let Some(tracer) = self.tracer.get() {
                    tracer.instant(
                        None,
                        "fault_injected",
                        Category::Other,
                        &[("kind", 4.0), ("stall_ns", ns as f64)],
                    );
                }
            }
        }
        let t = self.counter.fetch_add(1, Ordering::SeqCst);
        if let Some(tracer) = self.tracer.get() {
            tracer.instant(None, "ddi_nxtval", Category::Net, &[("task", t as f64)]);
        }
        t
    }

    /// `nxtval` that also names the calling rank in the protocol record
    /// (the raw counter has no rank; race analysis needs one to build the
    /// release–acquire chain through the counter).
    pub fn nxtval_rank(&self, rank: usize, stats: &mut CommStats) -> usize {
        let t = self.nxtval(stats);
        self.rec(DdiAccess::Nxtval { rank, value: t });
        t
    }

    /// Execute `f(rank, &mut stats)` once per rank and return the per-rank
    /// communication statistics.
    pub fn run<F>(&self, f: F) -> Vec<CommStats>
    where
        F: Fn(usize, &mut CommStats) + Sync,
    {
        // A `run` is a parallel region bracketed by global barriers:
        // everything before it happens-before every rank's work, and all
        // ranks' work happens-before everything after.
        self.rec(DdiAccess::Barrier);
        let all = match self.backend {
            Backend::Serial => {
                let mut all = vec![CommStats::default(); self.nproc];
                for (rank, st) in all.iter_mut().enumerate() {
                    f(rank, st);
                }
                all
            }
            Backend::Threads => {
                let mut all = vec![CommStats::default(); self.nproc];
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..self.nproc)
                        .map(|rank| {
                            let f = &f;
                            scope.spawn(move || {
                                let mut st = CommStats::default();
                                f(rank, &mut st);
                                st
                            })
                        })
                        .collect();
                    for (rank, h) in handles.into_iter().enumerate() {
                        match h.join() {
                            Ok(st) => all[rank] = st,
                            Err(p) => std::panic::resume_unwind(p),
                        }
                    }
                });
                all
            }
        };
        self.rec(DdiAccess::Barrier);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistMatrix;

    #[test]
    fn counter_hands_out_unique_tasks() {
        let ddi = Ddi::new(4, Backend::Serial);
        let mut st = CommStats::default();
        let a = ddi.nxtval(&mut st);
        let b = ddi.nxtval(&mut st);
        assert_eq!((a, b), (0, 1));
        assert_eq!(st.nxtval_msgs, 2);
        ddi.reset_counter();
        assert_eq!(ddi.nxtval(&mut st), 0);
    }

    #[test]
    fn serial_run_visits_all_ranks() {
        let ddi = Ddi::new(3, Backend::Serial);
        let m = DistMatrix::zeros(1, 3, 3);
        let stats = ddi.run(|rank, st| {
            m.acc_col(rank, rank, &[(rank + 1) as f64], st);
        });
        assert_eq!(m.to_dense(), vec![1.0, 2.0, 3.0]);
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.total_bytes() == 0)); // all local
    }

    #[test]
    fn threaded_accumulation_matches_serial() {
        // Every rank accumulates into every column; the mutexes must make
        // this race-free and the result backend-independent.
        for backend in [Backend::Serial, Backend::Threads] {
            let p = 4;
            let ddi = Ddi::new(p, backend);
            let m = DistMatrix::zeros(8, 12, p);
            let stats = ddi.run(|rank, st| {
                let buf = vec![(rank + 1) as f64; 8];
                for col in 0..12 {
                    m.acc_col(rank, col, &buf, st);
                }
            });
            // Each column accumulated 1+2+3+4 = 10 in every element.
            assert!(m.to_dense().iter().all(|&x| x == 10.0), "{backend:?}");
            // Each rank did 12 accs, of which those not locally owned are
            // remote: 12 − 3 = 9 per rank.
            for s in &stats {
                assert_eq!(s.acc_msgs, 9, "{backend:?}");
                assert_eq!(s.mutex_acquires, 12);
            }
        }
    }

    #[test]
    fn threaded_counter_is_exhaustive() {
        let p = 4;
        let ntask = 1000;
        let ddi = Ddi::new(p, Backend::Threads);
        let seen = std::sync::Mutex::new(vec![false; ntask]);
        ddi.run(|_rank, st| loop {
            let t = ddi.nxtval(st);
            if t >= ntask {
                break;
            }
            let mut s = seen.lock().unwrap();
            assert!(!s[t], "task {t} handed out twice");
            s[t] = true;
        });
        assert!(seen.lock().unwrap().iter().all(|&b| b));
    }

    #[test]
    fn nxtval_emits_trace_events() {
        let ddi = Ddi::new(2, Backend::Serial);
        let tracer = Tracer::in_memory();
        ddi.attach_tracer(tracer.clone());
        let mut st = CommStats::default();
        ddi.nxtval(&mut st);
        ddi.nxtval(&mut st);
        let evs = tracer.events().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "ddi_nxtval");
        assert_eq!(evs[1].arg("task"), Some(1.0));
    }
}
