//! Sparse CI-vector storage: the packed determinant key, an
//! open-addressing coefficient map, and a compressed sorted
//! determinant-set type.
//!
//! Everything here is deterministic by construction. The [`CoefMap`]
//! table layout is a pure function of the insertion *sequence* (hash,
//! capacity schedule, and linear probing have no randomized state), so
//! two runs that insert the same keys in the same order produce
//! bit-identical slot arrays — the property the thread-count-invariant
//! solvers lean on when they scan slots in order. The [`DetSet`] keeps
//! its members sorted by [`Det`]'s lexicographic `(α, β)` order, which
//! makes union/intersection linear merges and iteration order canonical.

/// A determinant as a packed pair of occupation masks.
///
/// Ordering is lexicographic on `(a, b)` — the canonical order every
/// deterministic iteration in this crate uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Det {
    /// α-spin occupation mask.
    pub a: u64,
    /// β-spin occupation mask.
    pub b: u64,
}

impl Det {
    /// Pack the two spin masks.
    #[inline]
    pub fn new(a: u64, b: u64) -> Det {
        Det { a, b }
    }

    /// 64-bit mix of both masks (splitmix64-style finalizer on each
    /// half; the halves are combined asymmetrically so `(a, b)` and
    /// `(b, a)` collide no more than random pairs).
    #[inline]
    pub fn hash64(self) -> u64 {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        mix(self.a.wrapping_add(0x9e37_79b9_7f4a_7c15)) ^ mix(self.b).rotate_left(32)
    }
}

/// Per-slot payload of the [`CoefMap`]: `[c, b]` — the CI coefficient
/// and the matching entry of `b = H·c`. CDFCI updates both in lockstep;
/// the selected solver only uses the first lane.
pub type Pair = [f64; 2];

/// Open-addressing hash map from [`Det`] to a [`Pair`] of `f64` lanes.
///
/// Linear probing over a power-of-two table, grown at ~70% load by
/// rehashing into double the capacity. There is no deletion (sparse
/// solvers only ever add support), which keeps probing tombstone-free.
#[derive(Clone, Debug)]
pub struct CoefMap {
    /// 1 = occupied, 0 = empty. A separate byte array (rather than a
    /// sentinel key) so every `u64` mask stays a legal key.
    flags: Vec<u8>,
    keys: Vec<Det>,
    vals: Vec<Pair>,
    len: usize,
    /// `capacity − 1`; capacity is always a power of two.
    mask: usize,
}

impl CoefMap {
    /// An empty map with room for `cap` entries before the first grow.
    pub fn with_capacity(cap: usize) -> CoefMap {
        let slots = (cap.max(8) * 10 / 7).next_power_of_two();
        CoefMap {
            flags: vec![0; slots],
            keys: vec![Det::new(0, 0); slots],
            vals: vec![[0.0; 2]; slots],
            len: 0,
            mask: slots - 1,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot count of the backing table.
    pub fn capacity(&self) -> usize {
        self.flags.len()
    }

    /// Resident bytes of the backing arrays (the memory-bound metric).
    pub fn mem_bytes(&self) -> usize {
        self.flags.len() * (1 + std::mem::size_of::<Det>() + std::mem::size_of::<Pair>())
    }

    /// Slot of `key`, if present.
    #[inline]
    pub fn find(&self, key: Det) -> Option<usize> {
        let mut i = (key.hash64() as usize) & self.mask;
        loop {
            if self.flags[i] == 0 {
                return None;
            }
            if self.keys[i] == key {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Value of `key` (`[0.0, 0.0]` when absent).
    #[inline]
    pub fn get(&self, key: Det) -> Pair {
        self.find(key).map_or([0.0; 2], |i| self.vals[i])
    }

    /// Slot of `key`, inserting a zero entry if absent. Grows the table
    /// as needed; the returned slot is valid until the next insert.
    pub fn slot_or_insert(&mut self, key: Det) -> usize {
        if (self.len + 1) * 10 > self.flags.len() * 7 {
            self.grow();
        }
        let mut i = (key.hash64() as usize) & self.mask;
        loop {
            if self.flags[i] == 0 {
                self.flags[i] = 1;
                self.keys[i] = key;
                self.vals[i] = [0.0; 2];
                self.len += 1;
                return i;
            }
            if self.keys[i] == key {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_slots = self.flags.len() * 2;
        let mut next = CoefMap {
            flags: vec![0; new_slots],
            keys: vec![Det::new(0, 0); new_slots],
            vals: vec![[0.0; 2]; new_slots],
            len: 0,
            mask: new_slots - 1,
        };
        for i in 0..self.flags.len() {
            if self.flags[i] == 1 {
                let s = next.slot_or_insert(self.keys[i]);
                next.vals[s] = self.vals[i];
            }
        }
        *self = next;
    }

    /// Raw slot arrays `(flags, keys, vals)` for kernel-style scans in
    /// slot order. Slot order is deterministic (see module docs).
    pub fn slots(&self) -> (&[u8], &[Det], &[Pair]) {
        (&self.flags, &self.keys, &self.vals)
    }

    /// Mutable value lane array, paired with the immutable flags/keys.
    pub fn vals_mut(&mut self) -> &mut [Pair] {
        &mut self.vals
    }

    /// Occupied entries in canonical (sorted-key) order — the
    /// deterministic iteration the set builders use.
    pub fn sorted_entries(&self) -> Vec<(Det, Pair)> {
        let mut out: Vec<(Det, Pair)> = (0..self.flags.len())
            .filter(|&i| self.flags[i] == 1)
            .map(|i| (self.keys[i], self.vals[i]))
            .collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }
}

/// A compressed determinant set: sorted, deduplicated [`Det`]s with
/// O(log n) membership/rank and linear-merge set algebra.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DetSet {
    dets: Vec<Det>,
}

impl DetSet {
    /// The empty set.
    pub fn new() -> DetSet {
        DetSet::default()
    }

    /// Build from an arbitrary list (sorted + deduplicated here).
    pub fn from_vec(mut dets: Vec<Det>) -> DetSet {
        dets.sort_unstable();
        dets.dedup();
        DetSet { dets }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.dets.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.dets.is_empty()
    }

    /// Members in ascending order.
    pub fn as_slice(&self) -> &[Det] {
        &self.dets
    }

    /// Membership test.
    pub fn contains(&self, d: Det) -> bool {
        self.dets.binary_search(&d).is_ok()
    }

    /// Rank of `d` in the sorted order, if a member — the row index the
    /// selected-space solvers use.
    pub fn rank(&self, d: Det) -> Option<usize> {
        self.dets.binary_search(&d).ok()
    }

    /// Member at rank `i`.
    pub fn det(&self, i: usize) -> Det {
        self.dets[i]
    }

    /// Sorted-merge union.
    pub fn union(&self, other: &DetSet) -> DetSet {
        let (a, b) = (&self.dets, &other.dets);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        DetSet { dets: out }
    }

    /// Sorted-merge intersection.
    pub fn intersect(&self, other: &DetSet) -> DetSet {
        let (a, b) = (&self.dets, &other.dets);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        DetSet { dets: out }
    }

    /// Resident bytes of the backing array.
    pub fn mem_bytes(&self) -> usize {
        self.dets.len() * std::mem::size_of::<Det>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(a: u64, b: u64) -> Det {
        Det::new(a, b)
    }

    #[test]
    fn map_insert_find_get() {
        let mut m = CoefMap::with_capacity(4);
        let s = m.slot_or_insert(d(0b11, 0b101));
        m.vals_mut()[s] = [0.5, -1.0];
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(d(0b11, 0b101)), [0.5, -1.0]);
        assert_eq!(m.get(d(0b11, 0b110)), [0.0, 0.0]);
        assert_eq!(m.find(d(1, 1)), None);
    }

    #[test]
    fn map_grows_and_keeps_values() {
        let mut m = CoefMap::with_capacity(2);
        for i in 0..1000u64 {
            let s = m.slot_or_insert(d(i, i ^ 0xff));
            m.vals_mut()[s] = [i as f64, -(i as f64)];
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(d(i, i ^ 0xff)), [i as f64, -(i as f64)]);
        }
        // Load factor is bounded by the grow policy.
        assert!(m.len() * 10 <= m.capacity() * 7);
    }

    #[test]
    fn map_layout_is_a_function_of_insert_sequence() {
        let build = || {
            let mut m = CoefMap::with_capacity(3);
            for i in (0..300u64).rev() {
                let s = m.slot_or_insert(d(i * 7, i * 13));
                m.vals_mut()[s] = [i as f64, 0.0];
            }
            m
        };
        let (a, b) = (build(), build());
        let (fa, ka, va) = a.slots();
        let (fb, kb, vb) = b.slots();
        assert_eq!(fa, fb);
        assert_eq!(ka, kb);
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(vb) {
            assert_eq!(x[0].to_bits(), y[0].to_bits());
        }
    }

    #[test]
    fn sorted_entries_are_sorted_and_complete() {
        let mut m = CoefMap::with_capacity(4);
        for i in [5u64, 1, 9, 3] {
            let s = m.slot_or_insert(d(i, 0));
            m.vals_mut()[s] = [i as f64, 0.0];
        }
        let e = m.sorted_entries();
        assert_eq!(e.len(), 4);
        assert!(e.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn set_union_intersect_rank() {
        let a = DetSet::from_vec(vec![d(1, 0), d(3, 0), d(5, 0)]);
        let b = DetSet::from_vec(vec![d(3, 0), d(4, 0), d(5, 0), d(3, 0)]);
        assert_eq!(b.len(), 3);
        let u = a.union(&b);
        assert_eq!(
            u.as_slice(),
            &[d(1, 0), d(3, 0), d(4, 0), d(5, 0)],
            "union is a sorted merge"
        );
        let i = a.intersect(&b);
        assert_eq!(i.as_slice(), &[d(3, 0), d(5, 0)]);
        assert_eq!(u.rank(d(4, 0)), Some(2));
        assert_eq!(u.rank(d(2, 0)), None);
        assert!(u.contains(d(1, 0)));
    }

    #[test]
    fn det_ordering_is_lexicographic() {
        assert!(d(1, 9) < d(2, 0));
        assert!(d(1, 1) < d(1, 2));
    }
}
