//! Selected CI: importance-screened space growth + truncated Davidson.
//!
//! The variational determinant set `V` starts at the reference and grows
//! by rounds: diagonalize `H` restricted to `V`, then admit every
//! determinant `j ∉ V` with `max_i |H_ji·c_i| > ε` (the heat-bath/CIPSI
//! selection criterion, screening connections of the current wave
//! function). Each round's eigenproblem runs over an explicit CSR of
//! `H_VV` — built row-parallel from the on-the-fly connection generator
//! — with a Davidson iteration whose subspace eigenproblems go through
//! `fci_linalg::eigh` and whose warm-start block is orthonormalized by
//! CholQR² when possible (MGS fallback). Small selected spaces skip the
//! iteration entirely and call the dense `eigh`.
//!
//! Convergence: the outer loop stops when either no candidate passes the
//! threshold (the ε-selected space is exhausted — for small ε this is
//! the full sector and the energy is exact FCI) or every tracked root's
//! energy moves by less than `tol` between rounds with the inner
//! Davidson converged. Growth is hard-capped at `max_store`
//! determinants — the memory bound.
//!
//! Reachable sector: because `H` conserves spatial symmetry, growing by
//! nonzero connections from a single reference can only populate the
//! reference determinant's symmetry block. Ground states land in the
//! reference's block, but when `nroots > 1` the excited roots reported
//! here are the *block's* spectrum — full-space roots belonging to
//! other irreps are invisible by construction (water/STO-3G: selection
//! from the closed-shell A₁ reference saturates at the 65-determinant
//! A₁ block of the 225-determinant C1 space, and "root 1" is the full
//! space's root 3). Excited states of another irrep need a reference in
//! that block.
//!
//! Thread-count determinism: CSR rows and candidate weights are pure
//! per-row functions merged in row order; the candidate aggregation is a
//! per-thread max-merge whose result is order-independent, read out in
//! sorted determinant order; the Davidson recurrence itself is serial
//! apart from the row-partitioned mat-vec.

use crate::connect::{exc_element, reference_det, ConnGen, Exc};
use crate::store::{CoefMap, Det, DetSet};
use crate::{kernel, spmv, tracer_for, SparseOptions, SparseResult, SweepStat};
use fci_core::detspace::DetSpace;
use fci_core::hamiltonian::Hamiltonian;
use fci_linalg::{cholqr2, ddot, dnrm2, dscal, eigh, Matrix};
use fci_obs::Category;

/// Below this selected-space size the inner eigenproblem is solved
/// densely (exact, robust, and cheaper than iterating).
const DENSE_CUTOFF: usize = 128;

/// Selected-CI solve for `opts.nroots` roots.
pub fn solve_selected(space: &DetSpace, ham: &Hamiltonian, opts: &SparseOptions) -> SparseResult {
    let tracer = tracer_for(&opts.obs);
    let threads = opts.threads.max(1);
    let nroots = opts.nroots.max(1);
    let refdet = reference_det(space, ham);
    let mut v = DetSet::from_vec(vec![refdet]);
    let mut prev: Option<(DetSet, Vec<Vec<f64>>)> = None;
    let mut prev_e: Vec<f64> = Vec::new();
    let mut history: Vec<SweepStat> = Vec::new();
    let mut energies: Vec<f64> = vec![ham.diagonal_element(refdet.a, refdet.b) + ham.e_core];
    let mut vectors: Vec<Vec<f64>> = vec![vec![1.0]];
    let mut converged = false;
    let mut total_inner = 0usize;
    let mut peak = 0usize;
    let mut dropped = 0usize;
    tracer.instant(
        None,
        "selected_begin",
        Category::Other,
        &[("eps", opts.eps), ("nroots", nroots as f64)],
    );

    for outer in 0..opts.max_outer {
        let t0 = tracer.now_us();
        let m = v.len();
        let csr = build_csr(threads, space, ham, &v, opts.h_cut);
        let warm = scatter_warm(&prev, &v);
        let (evals, vecs, inner_conv, inner_iters) =
            davidson(threads, &csr, nroots.min(m), &warm, opts);
        total_inner += inner_iters;
        energies = evals.iter().map(|e| e + ham.e_core).collect();
        vectors = vecs;
        let bytes = csr.mem_bytes() + v.mem_bytes() + vectors.len() * m * 8;
        peak = peak.max(bytes);
        let stat = SweepStat {
            sweep: outer,
            support: m,
            energy: energies[0],
            elapsed_us: tracer.now_us() - t0,
        };
        history.push(stat);
        tracer.instant(
            None,
            "selected_outer",
            Category::Other,
            &[
                ("outer", outer as f64),
                ("support", m as f64),
                ("energy", energies[0]),
                ("nnz", csr.cols.len() as f64),
            ],
        );
        if let Some(mt) = tracer.metrics() {
            mt.gauge_set("sparse.selected.support", &[], m as f64);
            mt.gauge_set("sparse.selected.nnz", &[], csr.cols.len() as f64);
            mt.gauge_set("sparse.selected.energy", &[], energies[0]);
            mt.observe("sparse.selected.outer_us", &[], stat.elapsed_us);
        }

        // Outer convergence requires EVERY tracked root to have settled:
        // the ground state routinely stabilizes rounds before an excited
        // root's support has grown in, and stopping on root 0 alone
        // would freeze the others at wrong energies.
        let settled = outer > 0
            && prev_e.len() == energies.len()
            && energies
                .iter()
                .zip(&prev_e)
                .all(|(e, p)| (e - p).abs() < opts.tol);
        if inner_conv && settled {
            converged = true;
            break;
        }
        prev_e.clone_from(&energies);
        if m >= opts.max_store {
            break; // truncated: the memory bound stops growth
        }
        let cands = select_candidates(
            threads,
            space,
            ham,
            &v,
            &vectors,
            opts.eps,
            opts.h_cut,
            opts.max_store,
            &mut dropped,
        );
        if cands.is_empty() {
            converged = inner_conv;
            break;
        }
        let room = opts.max_store - m;
        let added: Vec<Det> = if cands.len() > room {
            // Keep the heaviest candidates; ties broken by determinant
            // order so the cut is deterministic.
            let mut ranked = cands;
            ranked.sort_unstable_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            ranked.truncate(room);
            ranked.into_iter().map(|(d, _)| d).collect()
        } else {
            cands.into_iter().map(|(d, _)| d).collect()
        };
        prev = Some((v.clone(), vectors.clone()));
        v = v.union(&DetSet::from_vec(added));
    }

    tracer.instant(
        None,
        "selected_end",
        Category::Other,
        &[
            ("support", v.len() as f64),
            ("energy", energies[0]),
            ("inner_iters", total_inner as f64),
        ],
    );
    SparseResult {
        energies,
        converged,
        iterations: total_inner,
        support: v.len(),
        formal_dim: space.alpha.len() as f64 * space.beta.len() as f64,
        peak_bytes: peak,
        dropped,
        history,
    }
}

/// CSR of the strict off-diagonal of `H` restricted to `V`, plus the
/// diagonal. Row contents depend only on the row (enumeration order of
/// the connection generator), so the row-parallel build is
/// partition-invariant and chunks concatenate in row order.
struct Csr {
    rowptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    diag: Vec<f64>,
}

impl Csr {
    fn mem_bytes(&self) -> usize {
        self.rowptr.len() * 8 + self.cols.len() * 4 + self.vals.len() * 8 + self.diag.len() * 8
    }
}

fn build_csr(threads: usize, space: &DetSpace, ham: &Hamiltonian, v: &DetSet, h_cut: f64) -> Csr {
    let m = v.len();
    let nchunks = if threads <= 1 || m < 256 { 1 } else { threads };
    let mut parts: Vec<(Vec<usize>, Vec<u32>, Vec<f64>)> = Vec::new();
    parts.resize_with(nchunks, || (Vec::new(), Vec::new(), Vec::new()));
    let mut diag = vec![0.0; m];
    std::thread::scope(|s| {
        let mut drest = diag.as_mut_slice();
        for (k, part) in parts.iter_mut().enumerate() {
            let (lo, hi) = kernel::range_of(m, nchunks, k);
            let (dhead, dtail) = drest.split_at_mut(hi - lo);
            drest = dtail;
            s.spawn(move || {
                let mut cg = ConnGen::for_space(space);
                let mut excs: Vec<Exc> = Vec::new();
                let (rlen, cols, vals) = part;
                for r in lo..hi {
                    let dr = v.det(r);
                    dhead[r - lo] = ham.diagonal_element(dr.a, dr.b);
                    cg.excitations_into(dr, &mut excs);
                    let mut cnt = 0usize;
                    for &e in &excs {
                        let j = e.apply(dr);
                        if let Some(c) = v.rank(j) {
                            let h = exc_element(ham, dr, e);
                            if h.abs() > h_cut {
                                cols.push(c as u32);
                                vals.push(h);
                                cnt += 1;
                            }
                        }
                    }
                    rlen.push(cnt);
                }
            });
        }
    });
    let mut rowptr = Vec::with_capacity(m + 1);
    rowptr.push(0usize);
    let mut total = 0usize;
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for (rlen, c, vl) in parts {
        for l in rlen {
            total += l;
            rowptr.push(total);
        }
        cols.extend_from_slice(&c);
        vals.extend_from_slice(&vl);
    }
    Csr {
        rowptr,
        cols,
        vals,
        diag,
    }
}

/// Scatter the previous round's eigenvectors into the grown space by
/// determinant rank (old members keep their coefficients, new ones zero).
fn scatter_warm(prev: &Option<(DetSet, Vec<Vec<f64>>)>, v: &DetSet) -> Vec<Vec<f64>> {
    let mut warm = Vec::new();
    if let Some((old_v, old_vecs)) = prev {
        for ov in old_vecs {
            let mut w = vec![0.0; v.len()];
            for (i, &d) in old_v.as_slice().iter().enumerate() {
                if let Some(r) = v.rank(d) {
                    w[r] = ov[i];
                }
            }
            warm.push(w);
        }
    }
    warm
}

/// Indices of the `k` lowest-diagonal rows, ties by index — the
/// deterministic unit-vector guesses.
fn lowest_diag(diag: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..diag.len()).collect();
    idx.sort_unstable_by(|&a, &b| diag[a].total_cmp(&diag[b]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Davidson over the CSR: returns (eigenvalues, eigenvectors, converged,
/// mat-vec count) for the lowest `nr` roots.
fn davidson(
    threads: usize,
    csr: &Csr,
    nr: usize,
    warm: &[Vec<f64>],
    opts: &SparseOptions,
) -> (Vec<f64>, Vec<Vec<f64>>, bool, usize) {
    let m = csr.diag.len();
    if m <= DENSE_CUTOFF {
        // Dense path: exact diagonalization of the selected block.
        let mut h = Matrix::zeros(m, m);
        for r in 0..m {
            h[(r, r)] = csr.diag[r];
            for t in csr.rowptr[r]..csr.rowptr[r + 1] {
                h[(r, csr.cols[t] as usize)] = csr.vals[t];
            }
        }
        let eig = eigh(&h);
        let mut vecs = Vec::new();
        for r in 0..nr.min(m) {
            let mut x = vec![0.0; m];
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = eig.eigenvectors[(i, r)];
            }
            vecs.push(x);
        }
        let evals = eig.eigenvalues[..nr.min(m)].to_vec();
        return (evals, vecs, true, 1);
    }

    let max_sub = (3 * nr + 9).min(m);
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut sigma: Vec<Vec<f64>> = Vec::new();
    seed_basis(&mut basis, warm, &csr.diag, nr, m);
    let mut matvecs = 0usize;
    let mut evals = vec![0.0f64; nr];
    let mut ritz: Vec<Vec<f64>> = Vec::new();
    let mut conv = false;

    for _ in 0..opts.inner_max_iter {
        while sigma.len() < basis.len() {
            let mut y = vec![0.0; m];
            spmv(
                threads,
                &csr.rowptr,
                &csr.cols,
                &csr.vals,
                &csr.diag,
                &basis[sigma.len()],
                &mut y,
            );
            sigma.push(y);
            matvecs += 1;
        }
        let k = basis.len();
        let mut gm = Matrix::zeros(k, k);
        for p in 0..k {
            for q in 0..=p {
                let g = ddot(&basis[p], &sigma[q]);
                gm[(p, q)] = g;
                gm[(q, p)] = g;
            }
        }
        let eig = eigh(&gm);
        for (r, e) in evals.iter_mut().enumerate() {
            *e = eig.eigenvalues[r];
        }
        ritz.clear();
        let mut residuals: Vec<Vec<f64>> = Vec::new();
        let mut worst = 0.0f64;
        for (r, &eval) in evals.iter().enumerate().take(nr) {
            let mut x = vec![0.0; m];
            let mut res = vec![0.0; m];
            for j in 0..k {
                let y = eig.eigenvectors[(j, r)];
                for i in 0..m {
                    x[i] += y * basis[j][i];
                    res[i] += y * sigma[j][i];
                }
            }
            for i in 0..m {
                res[i] -= eval * x[i];
            }
            worst = worst.max(dnrm2(&res));
            ritz.push(x);
            residuals.push(res);
        }
        if worst < opts.inner_tol {
            conv = true;
            break;
        }
        if k + nr > max_sub {
            // Collapse to the Ritz block and restart (σ recomputed).
            basis.clear();
            sigma.clear();
            for x in &ritz {
                push_orthonormal(&mut basis, x, &csr.diag, m);
            }
            if basis.is_empty() {
                break;
            }
            continue;
        }
        let mut grew = false;
        for (r, res) in residuals.iter().enumerate() {
            if dnrm2(res) < opts.inner_tol {
                continue;
            }
            let mut t = vec![0.0; m];
            for i in 0..m {
                let mut den = evals[r] - csr.diag[i];
                if den.abs() < 1e-8 {
                    den = if den < 0.0 { -1e-8 } else { 1e-8 };
                }
                t[i] = res[i] / den;
            }
            if push_orthonormal(&mut basis, &t, &csr.diag, m) {
                grew = true;
            }
        }
        if !grew {
            break; // stagnated — return the best Ritz data we have
        }
    }
    if ritz.is_empty() {
        // No iteration happened (degenerate); fall back to the seeds.
        ritz = basis.clone();
        ritz.truncate(nr);
    }
    (evals, ritz, conv, matvecs)
}

/// Seed the Davidson basis: warm-start block orthonormalized by CholQR²
/// (MGS fallback on rank deficiency), topped up with unit vectors on the
/// lowest-diagonal rows until `nr` vectors are in place.
fn seed_basis(basis: &mut Vec<Vec<f64>>, warm: &[Vec<f64>], diag: &[f64], nr: usize, m: usize) {
    if warm.len() > 1 {
        let mut block = Matrix::zeros(m, warm.len());
        for (j, w) in warm.iter().enumerate() {
            for (i, &wi) in w.iter().enumerate() {
                block[(i, j)] = wi;
            }
        }
        if cholqr2(&mut block).is_ok() {
            for j in 0..warm.len() {
                let mut x = vec![0.0; m];
                for (i, xi) in x.iter_mut().enumerate() {
                    *xi = block[(i, j)];
                }
                basis.push(x);
            }
        }
    }
    if basis.is_empty() {
        for w in warm {
            push_orthonormal(basis, w, diag, m);
        }
    }
    if basis.len() < nr {
        for &i in &lowest_diag(diag, m) {
            if basis.len() >= nr {
                break;
            }
            let mut u = vec![0.0; m];
            u[i] = 1.0;
            push_orthonormal(basis, &u, diag, m);
        }
    }
}

/// Two-pass MGS projection of `x` against `basis`; appends the
/// normalized remainder when it is numerically independent. Returns
/// whether a vector was added. (`diag`/`m` only break pathological
/// all-zero candidates via a deterministic unit fallback — none today.)
fn push_orthonormal(basis: &mut Vec<Vec<f64>>, x: &[f64], _diag: &[f64], m: usize) -> bool {
    let mut t = x.to_vec();
    for _ in 0..2 {
        for b in basis.iter() {
            let c = ddot(b, &t);
            for i in 0..m {
                t[i] -= c * b[i];
            }
        }
    }
    let n = dnrm2(&t);
    if n > 1e-10 {
        dscal(1.0 / n, &mut t);
        basis.push(t);
        true
    } else {
        false
    }
}

/// Candidate determinants outside `V` with `max_{r,i} |H_ji·c_i^{(r)}|`
/// above ε, as `(det, weight)` sorted by determinant. Thread-local
/// max-aggregation maps are merged by another max — associative and
/// commutative, so the result is partition-independent; the sorted
/// read-out makes the order canonical. Aggregation is bounded at
/// `2·max_store` entries per thread; overflow counts into `dropped`.
#[allow(clippy::too_many_arguments)]
fn select_candidates(
    threads: usize,
    space: &DetSpace,
    ham: &Hamiltonian,
    v: &DetSet,
    coefs: &[Vec<f64>],
    eps: f64,
    h_cut: f64,
    max_store: usize,
    dropped: &mut usize,
) -> Vec<(Det, f64)> {
    let m = v.len();
    let nchunks = if threads <= 1 || m < 256 { 1 } else { threads };
    let cap = max_store.saturating_mul(2).max(1024);
    let mut parts: Vec<(CoefMap, usize)> = Vec::new();
    parts.resize_with(nchunks, || (CoefMap::with_capacity(1024), 0));
    std::thread::scope(|s| {
        for (k, part) in parts.iter_mut().enumerate() {
            let (lo, hi) = kernel::range_of(m, nchunks, k);
            s.spawn(move || {
                let mut cg = ConnGen::for_space(space);
                let mut excs: Vec<Exc> = Vec::new();
                let (lmap, lost) = part;
                for r in lo..hi {
                    // Largest |c| over roots drives the row screen.
                    let mut cmax = 0.0f64;
                    for c in coefs {
                        cmax = cmax.max(c[r].abs());
                    }
                    if cmax < 1e-12 {
                        continue;
                    }
                    let dr = v.det(r);
                    cg.excitations_into(dr, &mut excs);
                    for &e in &excs {
                        let j = e.apply(dr);
                        if v.rank(j).is_some() {
                            continue;
                        }
                        let h = exc_element(ham, dr, e);
                        if h.abs() <= h_cut || h.abs() * cmax <= eps {
                            continue;
                        }
                        let mut w = 0.0f64;
                        for c in coefs {
                            w = w.max((h * c[r]).abs());
                        }
                        if w <= eps {
                            continue;
                        }
                        if lmap.find(j).is_none() && lmap.len() >= cap {
                            *lost += 1;
                            continue;
                        }
                        let slot = lmap.slot_or_insert(j);
                        let cur = lmap.vals_mut();
                        if w > cur[slot][0] {
                            cur[slot][0] = w;
                        }
                    }
                }
            });
        }
    });
    // Merge the per-thread maxima (order-independent) and read out in
    // canonical determinant order.
    let mut merged = CoefMap::with_capacity(parts.iter().map(|(p, _)| p.len()).sum::<usize>());
    for (lmap, lost) in &parts {
        *dropped += lost;
        for (d, w) in lmap.sorted_entries() {
            let slot = merged.slot_or_insert(d);
            let cur = merged.vals_mut();
            if w[0] > cur[slot][0] {
                cur[slot][0] = w[0];
            }
        }
    }
    merged
        .sorted_entries()
        .into_iter()
        .map(|(d, w)| (d, w[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fci_core::hamiltonian::random_hamiltonian;
    use fci_core::slater;
    use fci_linalg::eigh as dense_eigh;

    fn dense_spectrum(space: &DetSpace, ham: &Hamiltonian) -> Vec<f64> {
        let h = slater::dense_h(space, ham);
        dense_eigh(&h)
            .eigenvalues
            .iter()
            .map(|e| e + ham.e_core)
            .collect()
    }

    #[test]
    fn tight_eps_recovers_dense_fci() {
        let ham = random_hamiltonian(6, 5);
        let space = DetSpace::c1(6, 3, 2);
        let opts = SparseOptions {
            eps: 1e-10,
            tol: 1e-11,
            ..SparseOptions::default()
        };
        let res = solve_selected(&space, &ham, &opts);
        let exact = dense_spectrum(&space, &ham);
        assert!(res.converged);
        assert!(
            (res.energy() - exact[0]).abs() < 1e-8,
            "selected {} vs dense {}",
            res.energy(),
            exact[0]
        );
        // The ε-exhausted space is the full sector here.
        assert_eq!(res.support, space.sector_dim());
    }

    #[test]
    fn loose_eps_truncates_but_stays_close() {
        let ham = random_hamiltonian(6, 5);
        let space = DetSpace::c1(6, 3, 3);
        let opts = SparseOptions {
            eps: 1e-3,
            tol: 1e-10,
            ..SparseOptions::default()
        };
        let res = solve_selected(&space, &ham, &opts);
        let exact = dense_spectrum(&space, &ham);
        assert!(res.support < space.sector_dim());
        assert!((res.energy() - exact[0]).abs() < 5e-2);
    }

    #[test]
    fn multiroot_matches_dense_spectrum() {
        let ham = random_hamiltonian(5, 21);
        let space = DetSpace::c1(5, 2, 2);
        let opts = SparseOptions {
            eps: 1e-10,
            tol: 1e-11,
            nroots: 3,
            ..SparseOptions::default()
        };
        let res = solve_selected(&space, &ham, &opts);
        let exact = dense_spectrum(&space, &ham);
        assert_eq!(res.energies.len(), 3);
        for (r, e) in res.energies.iter().enumerate() {
            assert!((e - exact[r]).abs() < 1e-7, "root {r}: {e} vs {}", exact[r]);
        }
    }

    #[test]
    fn multiroot_iterative_davidson_matches_dense() {
        // 400 determinants: past DENSE_CUTOFF, so the subspace iteration
        // (not the dense fallback) carries the eigenproblem.
        let ham = random_hamiltonian(6, 21);
        let space = DetSpace::c1(6, 3, 3);
        let opts = SparseOptions {
            eps: 1e-10,
            tol: 1e-11,
            nroots: 3,
            ..SparseOptions::default()
        };
        let res = solve_selected(&space, &ham, &opts);
        let exact = dense_spectrum(&space, &ham);
        assert_eq!(res.energies.len(), 3);
        for (r, e) in res.energies.iter().enumerate() {
            assert!((e - exact[r]).abs() < 1e-7, "root {r}: {e} vs {}", exact[r]);
        }
    }

    #[test]
    fn growth_respects_max_store() {
        let ham = random_hamiltonian(6, 2);
        let space = DetSpace::c1(6, 3, 3);
        let opts = SparseOptions {
            eps: 1e-10,
            max_store: 50,
            ..SparseOptions::default()
        };
        let res = solve_selected(&space, &ham, &opts);
        assert!(res.support <= 50);
        assert!(res.history.len() >= 2, "should have grown at least once");
    }

    #[test]
    fn thread_count_is_bitwise_invariant() {
        let ham = random_hamiltonian(6, 13);
        let space = DetSpace::c1(6, 3, 2);
        let run = |threads: usize| {
            let opts = SparseOptions {
                threads,
                eps: 1e-6,
                tol: 1e-10,
                nroots: 2,
                ..SparseOptions::default()
            };
            solve_selected(&space, &ham, &opts)
        };
        let r1 = run(1);
        let r2 = run(2);
        let r4 = run(4);
        for r in 0..2 {
            assert_eq!(r1.energies[r].to_bits(), r2.energies[r].to_bits());
            assert_eq!(r1.energies[r].to_bits(), r4.energies[r].to_bits());
        }
        assert_eq!(r1.support, r2.support);
        assert_eq!(r1.support, r4.support);
        assert_eq!(r1.history.len(), r4.history.len());
    }
}
