//! Allocation-free inner kernels of the sparse engine.
//!
//! These are the per-iteration hot loops of both sparse solvers, listed
//! in `fcix-lint`'s zero-alloc set and rooted in `fcix-check`'s
//! call-graph analysis: no allocation, no `unwrap`/`expect`/`panic!`,
//! plain counted loops. Each function computes a *disjoint* output range
//! from read-only shared inputs, which is what makes the solvers
//! bitwise-reproducible at any thread count: the partition boundaries
//! never change the arithmetic performed for any single element, and the
//! (sequential) merges upstream are in fixed chunk order.

/// y[k] = Σ_j H[lo+k, j]·x[j] for the CSR row range `lo .. lo+y.len()`.
///
/// `rowptr`/`cols`/`vals` hold the strict off-diagonal entries of the
/// selected-space Hamiltonian; `diag` its diagonal. Row sums accumulate
/// left to right in index order — the result is a pure function of the
/// matrix, independent of how rows are partitioned across threads.
pub fn spmv_rows(
    rowptr: &[usize],
    cols: &[u32],
    vals: &[f64],
    diag: &[f64],
    x: &[f64],
    lo: usize,
    y: &mut [f64],
) {
    let mut k = 0;
    while k < y.len() {
        let r = lo + k;
        let mut acc = diag[r] * x[r];
        let mut t = rowptr[r];
        let end = rowptr[r + 1];
        while t < end {
            acc += vals[t] * x[cols[t] as usize];
            t += 1;
        }
        y[k] = acc;
        k += 1;
    }
}

/// Largest-|gradient| scan over the slot range `lo..hi` of a coefficient
/// store: returns `(slot, |b − E·c|)` of the best *live* slot, or
/// `(usize::MAX, -1.0)` if the range holds none.
///
/// `flags[i] != 0` marks a live slot; `vals[i] = [c_i, b_i]` with
/// `b = H·c`. Ties keep the lowest slot index (strict `>`), so merging
/// per-chunk winners in ascending chunk order reproduces the full-range
/// scan exactly — the thread partition cannot change the pick.
pub fn scan_gradient(
    flags: &[u8],
    vals: &[[f64; 2]],
    e: f64,
    lo: usize,
    hi: usize,
) -> (usize, f64) {
    let mut best_slot = usize::MAX;
    let mut best_g = -1.0f64;
    let mut i = lo;
    while i < hi {
        if flags[i] != 0 {
            let g = (vals[i][1] - e * vals[i][0]).abs();
            if g > best_g {
                best_g = g;
                best_slot = i;
            }
        }
        i += 1;
    }
    (best_slot, best_g)
}

/// Accumulate `(Σ c², Σ c·b)` over the live slots of `lo..hi` — the
/// (S, A) pair CDFCI tracks incrementally, recomputed in full for drift
/// control. Left-to-right accumulation in slot order; per-chunk partial
/// sums are merged sequentially by the caller in chunk order.
pub fn scan_norms(flags: &[u8], vals: &[[f64; 2]], lo: usize, hi: usize) -> (f64, f64) {
    let mut s = 0.0;
    let mut a = 0.0;
    let mut i = lo;
    while i < hi {
        if flags[i] != 0 {
            let c = vals[i][0];
            s += c * c;
            a += c * vals[i][1];
        }
        i += 1;
    }
    (s, a)
}

/// Evaluate the optimal CDFCI line-search step `t` for coordinate `i`:
/// minimize the Rayleigh quotient ρ(t) = (A + 2Bt + Dt²)/(S + 2ut + t²)
/// where `u = c_i`, `B = b_i = (Hc)_i`, `D = H_ii`, `S = c·c`, `A = c·b`.
/// dρ/dt = 0 reduces to the quadratic
/// `(Du − B)t² + (DS − A)t + (BS − Au) = 0`; of its real roots the one
/// with lower ρ is returned. Degenerate cases fall back to the linear
/// solution or 0.0 (no move).
pub fn cdfci_step(u: f64, b: f64, d: f64, s: f64, a: f64) -> f64 {
    let qa = d * u - b;
    let qb = d * s - a;
    let qc = b * s - a * u;
    let rho = |t: f64| (a + 2.0 * b * t + d * t * t) / (s + 2.0 * u * t + t * t);
    if qa.abs() <= 1e-300 {
        if qb.abs() <= 1e-300 {
            return 0.0;
        }
        let t = -qc / qb;
        return if rho(t) <= rho(0.0) { t } else { 0.0 };
    }
    let disc = qb * qb - 4.0 * qa * qc;
    if disc < 0.0 {
        return 0.0;
    }
    let sq = disc.sqrt();
    // Numerically stable root pair.
    let q = -0.5 * (qb + if qb >= 0.0 { sq } else { -sq });
    let t1 = q / qa;
    let t2 = if q.abs() <= 1e-300 { t1 } else { qc / q };
    if rho(t1) <= rho(t2) {
        t1
    } else {
        t2
    }
}

/// Split `n` items into `parts` contiguous ranges (first `n % parts`
/// ranges get one extra item). `range_of(n, parts, k)` returns the k-th.
pub fn range_of(n: usize, parts: usize, k: usize) -> (usize, usize) {
    let base = n / parts;
    let extra = n % parts;
    let lo = k * base + k.min(extra);
    let len = base + usize::from(k < extra);
    (lo, (lo + len).min(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_matches_dense() {
        // 3×3 symmetric: diag [1,2,3], off (0,1)=0.5, (1,2)=-0.25.
        let rowptr = [0usize, 1, 3, 4];
        let cols = [1u32, 0, 2, 1];
        let vals = [0.5, 0.5, -0.25, -0.25];
        let diag = [1.0, 2.0, 3.0];
        let x = [1.0, -2.0, 4.0];
        let mut y = [0.0; 3];
        spmv_rows(&rowptr, &cols, &vals, &diag, &x, 0, &mut y);
        assert_eq!(y, [1.0 - 1.0, 0.5 - 4.0 - 1.0, 12.0 + 0.5]);
    }

    #[test]
    fn spmv_partition_invariant_bitwise() {
        let n = 37;
        let mut rowptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut diag = vec![0.0; n];
        let mut x = vec![0.0; n];
        let mut state = 12345u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for r in 0..n {
            diag[r] = rnd();
            x[r] = rnd();
            for c in 0..n {
                if c != r && (r * 7 + c * 13) % 5 == 0 {
                    cols.push(c as u32);
                    vals.push(rnd());
                }
            }
            rowptr.push(cols.len());
        }
        let mut whole = vec![0.0; n];
        spmv_rows(&rowptr, &cols, &vals, &diag, &x, 0, &mut whole);
        for parts in [2usize, 3, 5, 8] {
            let mut pieced = vec![0.0; n];
            for k in 0..parts {
                let (lo, hi) = range_of(n, parts, k);
                spmv_rows(&rowptr, &cols, &vals, &diag, &x, lo, &mut pieced[lo..hi]);
            }
            for i in 0..n {
                assert_eq!(whole[i].to_bits(), pieced[i].to_bits());
            }
        }
    }

    #[test]
    fn gradient_scan_merge_equals_full_scan() {
        let n = 101;
        let mut flags = vec![0u8; n];
        let mut vals = vec![[0.0f64; 2]; n];
        for i in 0..n {
            flags[i] = u8::from(i % 3 != 1);
            vals[i] = [(i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()];
        }
        // Duplicate the maximum to exercise the tie-break.
        vals[40] = [0.0, 5.0];
        vals[80] = [0.0, 5.0];
        flags[40] = 1;
        flags[80] = 1;
        let e = 0.3;
        let full = scan_gradient(&flags, &vals, e, 0, n);
        assert_eq!(full.0, 40);
        for parts in [2usize, 4, 7] {
            let mut best = (usize::MAX, -1.0f64);
            for k in 0..parts {
                let (lo, hi) = range_of(n, parts, k);
                let part = scan_gradient(&flags, &vals, e, lo, hi);
                if part.1 > best.1 {
                    best = part;
                }
            }
            assert_eq!(best, full);
        }
    }

    #[test]
    fn cdfci_step_minimizes_quotient() {
        // Brute-force check against a grid for several states.
        for (u, b, d, s, a) in [
            (0.3, -0.8, -1.0, 1.2, -1.0),
            (0.2, 0.05, 1.5, 1.3, -2.0),
            (0.0, -0.3, 2.0, 1.0, -1.5),
            (-0.4, 0.0, -0.5, 2.0, 0.7),
        ] {
            let t = cdfci_step(u, b, d, s, a);
            let rho = |t: f64| (a + 2.0 * b * t + d * t * t) / (s + 2.0 * u * t + t * t);
            let here = rho(t);
            let mut g = -3.0;
            while g <= 3.0 {
                assert!(here <= rho(g) + 1e-9, "t={t} worse than grid {g}");
                g += 0.01;
            }
        }
    }

    #[test]
    fn range_partition_covers() {
        for n in [0usize, 1, 7, 100] {
            for parts in [1usize, 2, 3, 9] {
                let mut next = 0;
                for k in 0..parts {
                    let (lo, hi) = range_of(n, parts, k);
                    assert_eq!(lo, next);
                    next = hi;
                }
                assert_eq!(next, n);
            }
        }
    }
}
