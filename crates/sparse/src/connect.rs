//! On-the-fly connected-determinant generation.
//!
//! The dense σ kernels touch every determinant through GEMMs over
//! precomputed coupling tables. The sparse engine instead walks the
//! Hamiltonian *row by row*: given a pivot determinant it enumerates all
//! singles and doubles (the only determinants with a nonzero coupling),
//! evaluates each Slater–Condon element per connection, and hands the
//! `(determinant, ⟨J|H|I⟩)` pairs to a caller-supplied sink.
//!
//! Two things matter here:
//!
//! 1. **Bitwise agreement with `fci_core::slater::element`.** That routine
//!    allocates (it diffs occupation masks into `Vec`s per call), so the
//!    hot loop cannot use it directly; the specialized element functions
//!    below instead receive the excitation already identified and
//!    replicate `element`'s arithmetic *in the same order*, so the two
//!    agree bit for bit (a property the unit tests pin).
//! 2. **Deterministic enumeration order.** Connections are emitted in a
//!    fixed order — α singles, β singles, αα doubles, ββ doubles, αβ
//!    doubles, each orbital-lexicographic — independent of thread count,
//!    which the solvers rely on for reproducibility.

use crate::store::Det;
use fci_core::detspace::{DetSpace, ExcitationFilter};
use fci_core::hamiltonian::Hamiltonian;
use fci_core::slater::{double_phase, single_phase};

/// One excitation connecting a pivot determinant to a neighbour. Orbital
/// labels fit in `u8` (masks are `u64`, so ≤ 64 orbitals).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field meaning is fixed by the variant docs
pub enum Exc {
    /// α single `q → p`.
    AlphaSingle { p: u8, q: u8 },
    /// β single `q → p`.
    BetaSingle { p: u8, q: u8 },
    /// αα double `q1,q2 → p1,p2` with `p1 < p2`, `q1 < q2`.
    AlphaDouble { p1: u8, p2: u8, q1: u8, q2: u8 },
    /// ββ double `q1,q2 → p1,p2` with `p1 < p2`, `q1 < q2`.
    BetaDouble { p1: u8, p2: u8, q1: u8, q2: u8 },
    /// Simultaneous α single `qa → pa` and β single `qb → pb`.
    Mixed { pa: u8, qa: u8, pb: u8, qb: u8 },
}

impl Exc {
    /// The determinant this excitation produces from `from`.
    #[inline]
    pub fn apply(&self, from: Det) -> Det {
        match *self {
            Exc::AlphaSingle { p, q } => Det {
                a: from.a ^ (1u64 << q) ^ (1u64 << p),
                b: from.b,
            },
            Exc::BetaSingle { p, q } => Det {
                a: from.a,
                b: from.b ^ (1u64 << q) ^ (1u64 << p),
            },
            Exc::AlphaDouble { p1, p2, q1, q2 } => Det {
                a: from.a ^ (1u64 << q1) ^ (1u64 << q2) ^ (1u64 << p1) ^ (1u64 << p2),
                b: from.b,
            },
            Exc::BetaDouble { p1, p2, q1, q2 } => Det {
                a: from.a,
                b: from.b ^ (1u64 << q1) ^ (1u64 << q2) ^ (1u64 << p1) ^ (1u64 << p2),
            },
            Exc::Mixed { pa, qa, pb, qb } => Det {
                a: from.a ^ (1u64 << qa) ^ (1u64 << pa),
                b: from.b ^ (1u64 << qb) ^ (1u64 << pb),
            },
        }
    }
}

/// `⟨J|H|I⟩` where `I = from` and `J = exc.apply(from)`, replicating the
/// arithmetic order of `fci_core::slater::element` exactly (the unit
/// tests assert bitwise agreement).
pub fn exc_element(ham: &Hamiltonian, from: Det, exc: Exc) -> f64 {
    match exc {
        Exc::AlphaSingle { p, q } => single_element(ham, from.a, from.b, p as usize, q as usize),
        Exc::BetaSingle { p, q } => single_element(ham, from.b, from.a, p as usize, q as usize),
        Exc::AlphaDouble { p1, p2, q1, q2 } => same_spin_double(
            ham,
            from.a,
            p1 as usize,
            p2 as usize,
            q1 as usize,
            q2 as usize,
        ),
        Exc::BetaDouble { p1, p2, q1, q2 } => same_spin_double(
            ham,
            from.b,
            p1 as usize,
            p2 as usize,
            q1 as usize,
            q2 as usize,
        ),
        Exc::Mixed { pa, qa, pb, qb } => {
            let phase = single_phase(from.a, pa as usize, qa as usize)
                * single_phase(from.b, pb as usize, qb as usize);
            phase
                * ham
                    .eri
                    .get(pa as usize, qa as usize, pb as usize, qb as usize)
        }
    }
}

/// Single excitation `q → p` within the spin channel whose "from" mask is
/// `m_j`; `other_occ` is the opposite-spin occupation (spectators only).
#[inline]
fn single_element(ham: &Hamiltonian, m_j: u64, other_occ: u64, p: usize, q: usize) -> f64 {
    let m_i = m_j ^ (1u64 << q) ^ (1u64 << p);
    let phase = single_phase(m_j, p, q);
    let mut v = ham.h[(p, q)];
    // Same-spin spectators, ascending (matches slater::element).
    let mut m = m_j & m_i;
    while m != 0 {
        let r = m.trailing_zeros() as usize;
        m &= m - 1;
        v += ham.eri.get(p, q, r, r) - ham.eri.get(p, r, r, q);
    }
    // Opposite-spin spectators, ascending.
    let mut m = other_occ;
    while m != 0 {
        let r = m.trailing_zeros() as usize;
        m &= m - 1;
        v += ham.eri.get(p, q, r, r);
    }
    phase * v
}

#[inline]
fn same_spin_double(
    ham: &Hamiltonian,
    m_j: u64,
    p1: usize,
    p2: usize,
    q1: usize,
    q2: usize,
) -> f64 {
    let phase = double_phase(m_j, p1, p2, q1, q2);
    phase * (ham.eri.get(p1, q1, p2, q2) - ham.eri.get(p1, q2, p2, q1))
}

/// Connection generator bound to one determinant space's symmetry sector.
///
/// Holds reusable occupied/virtual scratch lists so enumeration performs
/// no per-pivot allocation after warm-up. Cheap to construct; not `Sync`
/// (each thread builds its own from the shared [`DetSpace`]).
pub struct ConnGen {
    n_orb: usize,
    orb_sym: Vec<u8>,
    target_irrep: u8,
    excitation: Option<ExcitationFilter>,
    aocc: Vec<u8>,
    avirt: Vec<u8>,
    bocc: Vec<u8>,
    bvirt: Vec<u8>,
    exc_buf: Vec<Exc>,
}

impl ConnGen {
    /// Build from a determinant space (symmetry labels, target irrep and
    /// optional excitation truncation are copied out).
    pub fn for_space(space: &DetSpace) -> Self {
        let n_orb = space.n_orb();
        let orb_sym = space.alpha.orb_sym().to_vec();
        ConnGen {
            n_orb,
            orb_sym,
            target_irrep: space.target_irrep,
            excitation: space.excitation,
            aocc: Vec::with_capacity(n_orb),
            avirt: Vec::with_capacity(n_orb),
            bocc: Vec::with_capacity(n_orb),
            bvirt: Vec::with_capacity(n_orb),
            exc_buf: Vec::new(),
        }
    }

    /// Does `det` belong to the generator's symmetry/excitation sector?
    #[inline]
    pub fn in_sector(&self, det: Det) -> bool {
        let g = fci_strings::irrep_of_mask(det.a, &self.orb_sym)
            ^ fci_strings::irrep_of_mask(det.b, &self.orb_sym);
        if g != self.target_irrep {
            return false;
        }
        match &self.excitation {
            None => true,
            Some(f) => f.level(det.a, det.b) <= f.max_level,
        }
    }

    #[inline]
    fn keeps_sector_single(&self, p: u8, q: u8) -> bool {
        self.orb_sym[p as usize] == self.orb_sym[q as usize]
    }

    #[inline]
    fn keeps_sector_quad(&self, p1: u8, p2: u8, q1: u8, q2: u8) -> bool {
        self.orb_sym[p1 as usize]
            ^ self.orb_sym[p2 as usize]
            ^ self.orb_sym[q1 as usize]
            ^ self.orb_sym[q2 as usize]
            == 0
    }

    #[inline]
    fn level_ok(&self, det: Det) -> bool {
        match &self.excitation {
            None => true,
            Some(f) => f.level(det.a, det.b) <= f.max_level,
        }
    }

    fn fill_occ_virt(&mut self, det: Det) {
        self.aocc.clear();
        self.avirt.clear();
        self.bocc.clear();
        self.bvirt.clear();
        for p in 0..self.n_orb as u8 {
            if det.a >> p & 1 == 1 {
                self.aocc.push(p);
            } else {
                self.avirt.push(p);
            }
            if det.b >> p & 1 == 1 {
                self.bocc.push(p);
            } else {
                self.bvirt.push(p);
            }
        }
    }

    /// Enumerate every in-sector excitation from `det` into `out`
    /// (cleared first), in the fixed deterministic order: α singles,
    /// β singles, αα doubles, ββ doubles, αβ doubles, each loop nest
    /// orbital-ascending. Matrix elements are *not* computed — callers
    /// evaluate [`exc_element`] themselves (possibly in parallel over
    /// disjoint chunks of `out`).
    pub fn excitations_into(&mut self, det: Det, out: &mut Vec<Exc>) {
        out.clear();
        self.fill_occ_virt(det);
        // α and β singles.
        for spin in 0..2 {
            let (occ, virt) = if spin == 0 {
                (&self.aocc, &self.avirt)
            } else {
                (&self.bocc, &self.bvirt)
            };
            for &q in occ {
                for &p in virt {
                    if !self.keeps_sector_single(p, q) {
                        continue;
                    }
                    let e = if spin == 0 {
                        Exc::AlphaSingle { p, q }
                    } else {
                        Exc::BetaSingle { p, q }
                    };
                    if self.level_ok(e.apply(det)) {
                        out.push(e);
                    }
                }
            }
        }
        // αα and ββ doubles.
        for spin in 0..2 {
            let (occ, virt) = if spin == 0 {
                (&self.aocc, &self.avirt)
            } else {
                (&self.bocc, &self.bvirt)
            };
            for (i, &q1) in occ.iter().enumerate() {
                for &q2 in occ.iter().skip(i + 1) {
                    for (j, &p1) in virt.iter().enumerate() {
                        for &p2 in virt.iter().skip(j + 1) {
                            if !self.keeps_sector_quad(p1, p2, q1, q2) {
                                continue;
                            }
                            let e = if spin == 0 {
                                Exc::AlphaDouble { p1, p2, q1, q2 }
                            } else {
                                Exc::BetaDouble { p1, p2, q1, q2 }
                            };
                            if self.level_ok(e.apply(det)) {
                                out.push(e);
                            }
                        }
                    }
                }
            }
        }
        // αβ doubles.
        for &qa in &self.aocc {
            for &pa in &self.avirt {
                for &qb in &self.bocc {
                    for &pb in &self.bvirt {
                        if !self.keeps_sector_quad(pa, qa, pb, qb) {
                            continue;
                        }
                        let e = Exc::Mixed { pa, qa, pb, qb };
                        if self.level_ok(e.apply(det)) {
                            out.push(e);
                        }
                    }
                }
            }
        }
    }

    /// Enumerate connections of `det` and hand each `(neighbour, ⟨J|H|I⟩)`
    /// with `|⟨J|H|I⟩| > cut` to `sink`, in the deterministic enumeration
    /// order. Single-threaded convenience over [`Self::excitations_into`].
    pub fn for_each_connection(
        &mut self,
        ham: &Hamiltonian,
        det: Det,
        cut: f64,
        mut sink: impl FnMut(Det, f64),
    ) {
        let mut excs = std::mem::take(&mut self.exc_buf);
        self.excitations_into(det, &mut excs);
        for &e in &excs {
            let h = exc_element(ham, det, e);
            if h.abs() > cut {
                sink(e.apply(det), h);
            }
        }
        self.exc_buf = excs;
    }

    /// Number of orbitals.
    pub fn n_orb(&self) -> usize {
        self.n_orb
    }

    /// Upper bound on the number of singles+doubles from any determinant
    /// in this space (used to pre-size buffers).
    pub fn max_connections(&self, n_alpha: usize, n_beta: usize) -> usize {
        let n = self.n_orb;
        let va = n - n_alpha;
        let vb = n - n_beta;
        let s = n_alpha * va + n_beta * vb;
        let paira = n_alpha * n_alpha.saturating_sub(1) / 2 * (va * va.saturating_sub(1) / 2);
        let pairb = n_beta * n_beta.saturating_sub(1) / 2 * (vb * vb.saturating_sub(1) / 2);
        let mixed = n_alpha * va * n_beta * vb;
        s + paira + pairb + mixed
    }
}

/// Find a good reference determinant for `space`: the in-sector
/// determinant of lowest diagonal energy. Small spaces (full product
/// dimension ≤ 4·10⁶) are scanned exactly; larger ones use a greedy
/// descent over single excitations from the first in-sector determinant —
/// deterministic, and exact on single-reference-dominated problems.
pub fn reference_det(space: &DetSpace, ham: &Hamiltonian) -> Det {
    if let Some(f) = &space.excitation {
        // With an excitation filter the reference is, by construction, the
        // filter's own reference determinant.
        return Det {
            a: f.ref_alpha,
            b: f.ref_beta,
        };
    }
    if space.dim() <= 4_000_000 {
        let mut best = (f64::INFINITY, Det { a: 0, b: 0 });
        for ia in 0..space.alpha.len() {
            for ib in 0..space.beta.len() {
                if !space.in_sector(ib, ia) {
                    continue;
                }
                let d = Det {
                    a: space.alpha.mask(ia),
                    b: space.beta.mask(ib),
                };
                let e = ham.diagonal_element(d.a, d.b);
                if e < best.0 {
                    best = (e, d);
                }
            }
        }
        assert!(
            best.0.is_finite(),
            "no determinant in the requested symmetry sector"
        );
        return best.1;
    }
    // Large space: start from the first in-sector pair and descend.
    let mut start = None;
    for ga in 0..space.alpha.n_irrep() as u8 {
        let gb = ga ^ space.target_irrep;
        if space.alpha.block_len(ga) > 0 && space.beta.block_len(gb) > 0 {
            let ra = space.alpha.block_range(ga);
            let rb = space.beta.block_range(gb);
            start = Some(Det {
                a: space.alpha.mask(ra.start),
                b: space.beta.mask(rb.start),
            });
            break;
        }
    }
    let mut cur = match start {
        Some(d) => d,
        None => panic!("no determinant in the requested symmetry sector"),
    };
    let mut cur_e = ham.diagonal_element(cur.a, cur.b);
    let mut cg = ConnGen::for_space(space);
    let mut excs = Vec::new();
    loop {
        let mut best = (cur_e, cur);
        cg.excitations_into(cur, &mut excs);
        for &e in &excs {
            // Singles only: diagonal descent over one-orbital moves.
            let single = matches!(e, Exc::AlphaSingle { .. } | Exc::BetaSingle { .. });
            if !single {
                continue;
            }
            let d = e.apply(cur);
            let ed = ham.diagonal_element(d.a, d.b);
            if ed < best.0 {
                best = (ed, d);
            }
        }
        if best.1 == cur {
            return cur;
        }
        cur = best.1;
        cur_e = best.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fci_core::hamiltonian::random_hamiltonian;
    use fci_core::slater;

    /// Every enumerated connection's element must agree *bitwise* with the
    /// reference Slater–Condon implementation.
    #[test]
    fn elements_match_slater_bitwise() {
        let ham = random_hamiltonian(6, 17);
        let space = DetSpace::c1(6, 3, 2);
        let mut cg = ConnGen::for_space(&space);
        let mut excs = Vec::new();
        for ia in [0usize, 3, 7] {
            for ib in [0usize, 2, 9] {
                let d = Det {
                    a: space.alpha.mask(ia),
                    b: space.beta.mask(ib),
                };
                cg.excitations_into(d, &mut excs);
                assert!(!excs.is_empty());
                for &e in &excs {
                    let j = e.apply(d);
                    let fast = exc_element(&ham, d, e);
                    let reference = slater::element(&ham, j.a, j.b, d.a, d.b);
                    assert_eq!(
                        fast.to_bits(),
                        reference.to_bits(),
                        "exc {e:?} from {d:?}: {fast} vs {reference}"
                    );
                }
            }
        }
    }

    /// The enumeration must produce exactly the determinants that have
    /// excitation degree 1 or 2 from the pivot — no more, no less.
    #[test]
    fn enumeration_is_complete_and_minimal() {
        let space = DetSpace::c1(5, 2, 2);
        let mut cg = ConnGen::for_space(&space);
        let d = Det {
            a: space.alpha.mask(1),
            b: space.beta.mask(4),
        };
        let mut excs = Vec::new();
        cg.excitations_into(d, &mut excs);
        let mut got: Vec<(u64, u64)> = excs
            .iter()
            .map(|e| {
                let j = e.apply(d);
                (j.a, j.b)
            })
            .collect();
        got.sort_unstable();
        let before = got.len();
        got.dedup();
        assert_eq!(before, got.len(), "duplicate connections");
        let mut expect = Vec::new();
        for ja in 0..space.alpha.len() {
            for jb in 0..space.beta.len() {
                let (ma, mb) = (space.alpha.mask(ja), space.beta.mask(jb));
                let deg = ((ma ^ d.a).count_ones() + (mb ^ d.b).count_ones()) / 2;
                if deg == 1 || deg == 2 {
                    expect.push((ma, mb));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    /// With symmetry labels, every enumerated connection stays in-sector.
    #[test]
    fn symmetry_sector_respected() {
        let sym = [0u8, 1, 0, 1, 0];
        let ham_n = 5;
        let space = DetSpace::new(ham_n, 2, 2, &sym, 2, 1);
        let mut cg = ConnGen::for_space(&space);
        // Find an in-sector pivot.
        let mut pivot = None;
        'outer: for ia in 0..space.alpha.len() {
            for ib in 0..space.beta.len() {
                if space.in_sector(ib, ia) {
                    pivot = Some(Det {
                        a: space.alpha.mask(ia),
                        b: space.beta.mask(ib),
                    });
                    break 'outer;
                }
            }
        }
        let d = pivot.unwrap();
        let mut excs = Vec::new();
        cg.excitations_into(d, &mut excs);
        assert!(!excs.is_empty());
        for &e in &excs {
            assert!(cg.in_sector(e.apply(d)), "{e:?} leaves the sector");
        }
    }

    /// Excitation filter (CISD) limits connection levels.
    #[test]
    fn excitation_filter_respected() {
        let ham = random_hamiltonian(6, 3);
        let ra = 0b000111u64;
        let rb = 0b000011u64;
        let space = DetSpace::for_hamiltonian(&ham, 3, 2, 0).with_excitation_limit(ra, rb, 2);
        let mut cg = ConnGen::for_space(&space);
        // Pivot at a single excitation: doubles from it may reach level 3,
        // which must be filtered out.
        let pivot = Det { a: 0b001011, b: rb };
        let filt = space.excitation.unwrap();
        assert_eq!(filt.level(pivot.a, pivot.b), 1);
        let mut excs = Vec::new();
        cg.excitations_into(pivot, &mut excs);
        assert!(!excs.is_empty());
        for &e in &excs {
            let j = e.apply(pivot);
            assert!(filt.level(j.a, j.b) <= 2, "{e:?} exceeds CISD");
        }
    }

    /// `reference_det` exact scan agrees with `DetSpace::guess`'s winner.
    #[test]
    fn reference_matches_exact_scan() {
        let ham = random_hamiltonian(6, 11);
        let space = DetSpace::c1(6, 3, 3);
        let r = reference_det(&space, &ham);
        let mut best = (f64::INFINITY, Det { a: 0, b: 0 });
        for ia in 0..space.alpha.len() {
            for ib in 0..space.beta.len() {
                let d = Det {
                    a: space.alpha.mask(ia),
                    b: space.beta.mask(ib),
                };
                let e = ham.diagonal_element(d.a, d.b);
                if e < best.0 {
                    best = (e, d);
                }
            }
        }
        assert_eq!(r, best.1);
    }

    /// `for_each_connection` matches enumerate-then-evaluate.
    #[test]
    fn sink_path_matches_two_phase() {
        let ham = random_hamiltonian(5, 23);
        let space = DetSpace::c1(5, 2, 2);
        let mut cg = ConnGen::for_space(&space);
        let d = Det {
            a: space.alpha.mask(0),
            b: space.beta.mask(0),
        };
        let mut sunk = Vec::new();
        cg.for_each_connection(&ham, d, 0.0, |j, h| sunk.push((j, h)));
        let mut excs = Vec::new();
        cg.excitations_into(d, &mut excs);
        let two: Vec<(Det, f64)> = excs
            .iter()
            .filter_map(|&e| {
                let h = exc_element(&ham, d, e);
                (h.abs() > 0.0).then_some((e.apply(d), h))
            })
            .collect();
        assert_eq!(sunk, two);
    }
}
