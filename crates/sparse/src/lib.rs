#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # fci-sparse — the sparse/selected CI engine
//!
//! The dense engine in `fci-core` stores the full `|Dα|×|Dβ|` CI matrix
//! and runs σ through GEMMs — unbeatable throughput, but the vector
//! itself caps the reachable problem near 10⁷ determinants. This crate
//! breaks that regime by never materializing the dense vector:
//!
//! * [`store`] — the sparse representation: [`store::CoefMap`], an
//!   open-addressing hash map keyed on packed `(α, β)` determinant pairs
//!   ([`store::Det`]) with a deterministic layout, and [`store::DetSet`],
//!   a compressed sorted determinant set with merge-based union and
//!   intersection;
//! * [`connect`] — on-the-fly connected-determinant generation: singles
//!   and doubles from a pivot in a fixed deterministic order, with
//!   per-connection Slater–Condon elements that agree bitwise with
//!   `fci_core::slater::element`;
//! * [`kernel`] — the allocation-free inner loops (CSR mat-vec,
//!   gradient scan, coordinate line search), written so every output is
//!   a pure function of the inputs regardless of thread partition;
//! * [`cdfci`] — coordinate-descent FCI: each step updates the
//!   largest-gradient coefficient and only its connections, tracking the
//!   energy estimate incrementally in O(connections) per update;
//! * [`selected`] — selected CI: grow the variational determinant set by
//!   importance screening (`|H_ji·c_i| > ε`), diagonalize in the selected
//!   space with Davidson on a CSR Hamiltonian (subspace eigenproblems go
//!   through `fci_linalg::eigh`, block orthonormalization through
//!   CholQR²).
//!
//! Both solvers are **bitwise-reproducible at any thread count**: all
//! parallel loops compute disjoint output ranges whose per-element
//! arithmetic is partition-independent, and every reduction either has
//! that property (row sums), merges fixed-size chunks in a fixed order
//! (norm recomputation), or is a max with a partition-invariant
//! tie-break (gradient scan).
//!
//! ```
//! use fci_core::{DetSpace, SolverKind};
//! use fci_core::hamiltonian::random_hamiltonian;
//! use fci_sparse::{solve_sparse, SparseOptions};
//!
//! let ham = random_hamiltonian(6, 7);
//! let space = DetSpace::c1(6, 2, 2);
//! let res = solve_sparse(&space, &ham, SolverKind::SparseSelected, &SparseOptions::default());
//! assert!(res.converged);
//! ```

pub mod cdfci;
pub mod connect;
pub mod kernel;
pub mod selected;
pub mod store;

pub use cdfci::solve_cdfci;
pub use connect::{exc_element, reference_det, ConnGen, Exc};
pub use selected::solve_selected;
pub use store::{CoefMap, Det, DetSet, Pair};

use fci_core::detspace::DetSpace;
use fci_core::hamiltonian::Hamiltonian;
use fci_core::SolverKind;
use fci_obs::ObsConfig;

/// Controls for both sparse solvers. Defaults favour the cross-validation
/// regime (small spaces, tight energies); large-scale runs raise
/// `max_store` and loosen `eps`.
#[derive(Clone, Debug)]
pub struct SparseOptions {
    /// Worker threads for element evaluation, mat-vecs and scans. Any
    /// value produces bitwise-identical results; 1 is fully serial.
    pub threads: usize,
    /// Hard cap on stored coefficients (CDFCI) / selected determinants
    /// (selected CI) — the memory bound. When reached, CDFCI stops
    /// inserting new connections (existing entries still update) and
    /// selected CI stops growing the space.
    pub max_store: usize,
    /// Importance threshold ε for selected-CI growth: a candidate `j`
    /// enters the space when `max_i |H_ji·c_i| > ε`.
    pub eps: f64,
    /// Energy convergence tolerance in hartree (per CDFCI sweep, per
    /// selected-CI outer iteration).
    pub tol: f64,
    /// CDFCI: maximum coordinate updates.
    pub max_updates: usize,
    /// Selected CI: maximum outer (space-growth) iterations.
    pub max_outer: usize,
    /// Selected CI: number of roots (CDFCI computes the ground state
    /// only and ignores this).
    pub nroots: usize,
    /// Inner Davidson residual tolerance (selected CI).
    pub inner_tol: f64,
    /// Inner Davidson iteration cap per outer iteration (selected CI).
    pub inner_max_iter: usize,
    /// Matrix elements with `|H_ij|` at or below this are treated as
    /// zero everywhere (connection emission, CSR assembly).
    pub h_cut: f64,
    /// Telemetry: spans/metrics for selection-space growth and per-sweep
    /// timings. Off by default (zero cost).
    pub obs: ObsConfig,
}

impl Default for SparseOptions {
    fn default() -> Self {
        SparseOptions {
            threads: 1,
            max_store: 2_000_000,
            eps: 1e-6,
            tol: 1e-9,
            max_updates: 2_000_000,
            max_outer: 40,
            nroots: 1,
            inner_tol: 1e-8,
            inner_max_iter: 200,
            h_cut: 1e-14,
            obs: ObsConfig::off(),
        }
    }
}

/// One point of a solver's growth/convergence history — the selection-
/// space growth curve the bench artifact records.
#[derive(Clone, Copy, Debug)]
pub struct SweepStat {
    /// CDFCI sweep number / selected-CI outer iteration.
    pub sweep: usize,
    /// Stored coefficients (CDFCI) or selected determinants.
    pub support: usize,
    /// Total energy estimate (with `E_core`) at this point.
    pub energy: f64,
    /// Host wall time spent in this sweep, µs (0 when obs is off).
    pub elapsed_us: f64,
}

/// Result of a sparse solve.
#[derive(Clone, Debug)]
pub struct SparseResult {
    /// Total energies (with `E_core`), ascending; CDFCI returns one.
    pub energies: Vec<f64>,
    /// Whether the requested tolerance was met before the caps.
    pub converged: bool,
    /// Coordinate updates (CDFCI) / cumulative inner Davidson iterations
    /// (selected CI).
    pub iterations: usize,
    /// Determinants in the final support / selected space.
    pub support: usize,
    /// Formal (dense) dimension `|Dα|·|Dβ|` of the space the solver ran
    /// in — as f64 because it may exceed what the dense path could even
    /// address.
    pub formal_dim: f64,
    /// Peak bytes of the dominant data structures (coefficient store, or
    /// selected-space CSR + vectors).
    pub peak_bytes: usize,
    /// Connection updates dropped by the `max_store` bound (CDFCI; 0 for
    /// selected CI, which caps growth instead).
    pub dropped: usize,
    /// Growth/convergence curve, one entry per sweep/outer iteration.
    pub history: Vec<SweepStat>,
}

impl SparseResult {
    /// Ground-state total energy.
    pub fn energy(&self) -> f64 {
        self.energies[0]
    }
}

/// Dispatch on [`SolverKind`]. `Dense` is not this crate's job — calling
/// it here is a programming error.
pub fn solve_sparse(
    space: &DetSpace,
    ham: &Hamiltonian,
    kind: SolverKind,
    opts: &SparseOptions,
) -> SparseResult {
    match kind {
        SolverKind::SparseCdfci => solve_cdfci(space, ham, opts),
        SolverKind::SparseSelected => solve_selected(space, ham, opts),
        SolverKind::Dense => {
            panic!("SolverKind::Dense is handled by fci-core, not fci-sparse")
        }
    }
}

/// The tracer for a solver run; falls back to disabled on I/O errors
/// (same policy as `fci_core::solver`).
pub(crate) fn tracer_for(obs: &ObsConfig) -> fci_obs::Tracer {
    match obs.tracer() {
        Ok(t) => t,
        Err(_) => fci_obs::Tracer::disabled(),
    }
}

/// Evaluate the Slater–Condon element of every excitation in `excs`
/// (all from the same pivot `from`) into `out`. Parallel over disjoint
/// chunks; each element's arithmetic is independent of the partition, so
/// the output is bitwise thread-count-invariant.
pub(crate) fn eval_elements(
    threads: usize,
    ham: &Hamiltonian,
    from: Det,
    excs: &[Exc],
    out: &mut [f64],
) {
    assert_eq!(excs.len(), out.len());
    let n = excs.len();
    if threads <= 1 || n < 1024 {
        for (o, &e) in out.iter_mut().zip(excs) {
            *o = exc_element(ham, from, e);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut rest = out;
        for k in 0..threads {
            let (lo, hi) = kernel::range_of(n, threads, k);
            let (head, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let chunk = &excs[lo..hi];
            s.spawn(move || {
                for (o, &e) in head.iter_mut().zip(chunk) {
                    *o = exc_element(ham, from, e);
                }
            });
        }
    });
}

/// Parallel largest-gradient scan over a coefficient store's slots.
/// Per-chunk winners merge with strict `>` in ascending chunk order,
/// which reproduces the serial scan for *any* partition (ties resolve to
/// the lowest slot either way) — thread-count-invariant by construction.
pub(crate) fn parallel_scan_gradient(
    threads: usize,
    flags: &[u8],
    vals: &[Pair],
    e: f64,
) -> (usize, f64) {
    let n = flags.len();
    if threads <= 1 || n < 16_384 {
        return kernel::scan_gradient(flags, vals, e, 0, n);
    }
    let mut parts = vec![(usize::MAX, -1.0f64); threads];
    std::thread::scope(|s| {
        for (k, out) in parts.iter_mut().enumerate() {
            s.spawn(move || {
                let (lo, hi) = kernel::range_of(n, threads, k);
                *out = kernel::scan_gradient(flags, vals, e, lo, hi);
            });
        }
    });
    let mut best = (usize::MAX, -1.0f64);
    for p in parts {
        if p.1 > best.1 {
            best = p;
        }
    }
    best
}

/// Number of fixed reduction chunks for norm recomputation. The chunk
/// grid is *constant* (not a function of the thread count), so partial
/// sums and their sequential merge order never change with `threads`.
const NORM_CHUNKS: usize = 64;

/// Recompute `(Σ c², Σ c·b)` over a store's live slots exactly, in
/// parallel, bitwise thread-count-invariant: partials are computed per
/// fixed chunk and merged in chunk order.
pub(crate) fn recompute_norms(threads: usize, flags: &[u8], vals: &[Pair]) -> (f64, f64) {
    let n = flags.len();
    if threads <= 1 || n < 16_384 {
        let mut s = 0.0;
        let mut a = 0.0;
        for k in 0..NORM_CHUNKS {
            let (lo, hi) = kernel::range_of(n, NORM_CHUNKS, k);
            let (ps, pa) = kernel::scan_norms(flags, vals, lo, hi);
            s += ps;
            a += pa;
        }
        return (s, a);
    }
    let mut parts = vec![(0.0f64, 0.0f64); NORM_CHUNKS];
    std::thread::scope(|sc| {
        let mut rest = parts.as_mut_slice();
        for t in 0..threads {
            let (clo, chi) = kernel::range_of(NORM_CHUNKS, threads, t);
            let (head, tail) = rest.split_at_mut(chi - clo);
            rest = tail;
            sc.spawn(move || {
                for (i, out) in head.iter_mut().enumerate() {
                    let (lo, hi) = kernel::range_of(n, NORM_CHUNKS, clo + i);
                    *out = kernel::scan_norms(flags, vals, lo, hi);
                }
            });
        }
    });
    let mut s = 0.0;
    let mut a = 0.0;
    for (ps, pa) in parts {
        s += ps;
        a += pa;
    }
    (s, a)
}

/// CSR mat-vec `y = H·x` over the selected space, rows partitioned
/// across threads (each row's sum is computed wholly by one thread — the
/// output is partition-independent).
pub(crate) fn spmv(
    threads: usize,
    rowptr: &[usize],
    cols: &[u32],
    vals: &[f64],
    diag: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    let n = y.len();
    if threads <= 1 || n < 4096 {
        kernel::spmv_rows(rowptr, cols, vals, diag, x, 0, y);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = y;
        for k in 0..threads {
            let (lo, hi) = kernel::range_of(n, threads, k);
            let (head, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            s.spawn(move || {
                kernel::spmv_rows(rowptr, cols, vals, diag, x, lo, head);
            });
        }
    });
}
