//! Coordinate-descent FCI (CDFCI).
//!
//! Minimizes the Rayleigh quotient ρ(c) = ⟨c,Hc⟩/⟨c,c⟩ one coordinate at
//! a time over an *unnormalized* sparse vector, following the
//! coordinate-descent FCI idea (Wang, Li & Lu; see the multi-coordinate
//! descent literature in PAPERS.md): alongside `c` the solver maintains
//! `b = H·c` on the set of determinants connected to `supp(c)`, so that
//!
//! * the **pick** — the coordinate with the largest gradient magnitude
//!   `|b_i − ρ·c_i|` — is a scan over the store, no Hamiltonian work;
//! * the **step** — the exact 1-D minimizer of ρ along `e_i` — is a
//!   closed-form quadratic solve ([`crate::kernel::cdfci_step`]) using
//!   the tracked scalars `S = c·c` and `A = c·b`;
//! * the **update** touches only the connections of determinant `i`:
//!   `b_j += t·H_ji`, inserting new determinants on first contact.
//!
//! `b` stays *exact* on its support by induction (a determinant absent
//! from the store has never been connected to any nonzero coefficient)
//! until the `max_store` bound bites, after which updates to unstored
//! determinants are counted as `dropped` — the documented bounded-memory
//! approximation that lets a formal dimension ≥10⁸ run in megabytes.
//!
//! Thread-count determinism: the gradient scan merges per-range winners
//! with a partition-invariant tie-break, element evaluation writes
//! disjoint ranges, the (S, A) drift-control recomputation reduces over
//! a *fixed* chunk grid, and all store mutation is single-threaded in
//! enumeration order.

use crate::connect::{reference_det, ConnGen, Exc};
use crate::kernel;
use crate::store::CoefMap;
use crate::{
    eval_elements, parallel_scan_gradient, recompute_norms, tracer_for, SparseOptions,
    SparseResult, SweepStat,
};
use fci_core::detspace::DetSpace;
use fci_core::hamiltonian::Hamiltonian;
use fci_obs::Category;

/// Coordinate updates per sweep (bookkeeping/convergence granularity).
const SWEEP: usize = 256;
/// Recompute (S, A) exactly every this many sweeps — drift control for
/// the incrementally tracked scalars.
const NORM_REFRESH_SWEEPS: usize = 64;

/// Ground-state CDFCI solve. Returns one energy; `opts.nroots` is
/// ignored (coordinate descent tracks a single state).
pub fn solve_cdfci(space: &DetSpace, ham: &Hamiltonian, opts: &SparseOptions) -> SparseResult {
    let tracer = tracer_for(&opts.obs);
    let threads = opts.threads.max(1);
    let refdet = reference_det(space, ham);
    let d_ref = ham.diagonal_element(refdet.a, refdet.b);
    let mut cg = ConnGen::for_space(space);
    let mut map = CoefMap::with_capacity(opts.max_store.min(1 << 14));
    let mut excs: Vec<Exc> = Vec::new();
    let mut hbuf: Vec<f64> = Vec::new();
    let mut dropped = 0usize;

    // c = e_ref, b = H·e_ref (reference column), S = 1, A = H_rr.
    let rs = map.slot_or_insert(refdet);
    map.vals_mut()[rs] = [1.0, d_ref];
    cg.excitations_into(refdet, &mut excs);
    hbuf.resize(excs.len(), 0.0);
    eval_elements(threads, ham, refdet, &excs, &mut hbuf);
    apply_column(&mut map, refdet, &excs, &hbuf, 1.0, opts, &mut dropped);
    let mut s_norm = 1.0f64;
    let mut a_dot = d_ref;

    tracer.instant(
        None,
        "cdfci_begin",
        Category::Other,
        &[
            ("connections", excs.len() as f64),
            ("e_ref", d_ref + ham.e_core),
        ],
    );

    // Gradient floor: ‖b − ρc‖∞ below this means the energy error
    // (quadratic in the gradient) is far below `tol`.
    let grad_floor = opts.tol.max(1e-14).sqrt() * 0.1;
    let mut history: Vec<SweepStat> = Vec::new();
    let mut converged = false;
    let mut updates = 0usize;
    let mut peak = map.mem_bytes();
    let mut e_prev_sweep = f64::INFINITY;
    let mut sweep_t0 = tracer.now_us();

    while updates < opts.max_updates {
        let e_elec = a_dot / s_norm;
        let (slot, grad) = {
            let (flags, _keys, vals) = map.slots();
            parallel_scan_gradient(threads, flags, vals, e_elec)
        };
        if slot == usize::MAX || grad < grad_floor {
            converged = true;
            break;
        }
        let (det_i, u, b_i) = {
            let (_flags, keys, vals) = map.slots();
            (keys[slot], vals[slot][0], vals[slot][1])
        };
        let d_i = ham.diagonal_element(det_i.a, det_i.b);
        let t = kernel::cdfci_step(u, b_i, d_i, s_norm, a_dot);
        if t == 0.0 {
            // The best coordinate admits no improving move: stationary.
            converged = true;
            break;
        }
        s_norm += t * (2.0 * u + t);
        a_dot += t * (2.0 * b_i + t * d_i);
        {
            let vals = map.vals_mut();
            vals[slot][0] = u + t;
            vals[slot][1] = b_i + t * d_i;
        }
        cg.excitations_into(det_i, &mut excs);
        hbuf.resize(excs.len(), 0.0);
        eval_elements(threads, ham, det_i, &excs, &mut hbuf);
        apply_column(&mut map, det_i, &excs, &hbuf, t, opts, &mut dropped);

        updates += 1;
        if updates.is_multiple_of(SWEEP) {
            let sweep_no = updates / SWEEP;
            if sweep_no.is_multiple_of(NORM_REFRESH_SWEEPS) {
                let (flags, _keys, vals) = map.slots();
                let (s2, a2) = recompute_norms(threads, flags, vals);
                s_norm = s2;
                a_dot = a2;
            }
            let e_now = a_dot / s_norm;
            let now = tracer.now_us();
            let stat = SweepStat {
                sweep: sweep_no,
                support: map.len(),
                energy: e_now + ham.e_core,
                elapsed_us: now - sweep_t0,
            };
            sweep_t0 = now;
            history.push(stat);
            peak = peak.max(map.mem_bytes());
            tracer.instant(
                None,
                "cdfci_sweep",
                Category::Other,
                &[
                    ("sweep", stat.sweep as f64),
                    ("support", stat.support as f64),
                    ("energy", stat.energy),
                ],
            );
            if let Some(m) = tracer.metrics() {
                m.gauge_set("sparse.cdfci.support", &[], stat.support as f64);
                m.gauge_set("sparse.cdfci.store_bytes", &[], map.mem_bytes() as f64);
                m.gauge_set("sparse.cdfci.dropped", &[], dropped as f64);
                m.observe("sparse.cdfci.sweep_us", &[], stat.elapsed_us);
            }
            if (e_now - e_prev_sweep).abs() < opts.tol {
                converged = true;
                break;
            }
            e_prev_sweep = e_now;
        }
    }

    let e_final = a_dot / s_norm + ham.e_core;
    tracer.instant(
        None,
        "cdfci_end",
        Category::Other,
        &[
            ("updates", updates as f64),
            ("support", map.len() as f64),
            ("energy", e_final),
        ],
    );
    SparseResult {
        energies: vec![e_final],
        converged,
        iterations: updates,
        support: map.len(),
        formal_dim: space.alpha.len() as f64 * space.beta.len() as f64,
        peak_bytes: peak.max(map.mem_bytes()),
        dropped,
        history,
    }
}

/// Apply the rank-one column update `b += t·H·e_i` over the connections
/// of `det_i` (already enumerated into `excs` with elements in `hbuf`).
/// Inserts on first contact while the store is under `max_store`;
/// afterwards only existing entries update and the rest are counted as
/// dropped. Sequential, in enumeration order — the store layout stays a
/// pure function of the update history.
fn apply_column(
    map: &mut CoefMap,
    det_i: crate::store::Det,
    excs: &[Exc],
    hbuf: &[f64],
    t: f64,
    opts: &SparseOptions,
    dropped: &mut usize,
) {
    for (&e, &h) in excs.iter().zip(hbuf) {
        if h.abs() <= opts.h_cut {
            continue;
        }
        let j = e.apply(det_i);
        if map.len() < opts.max_store {
            let sj = map.slot_or_insert(j);
            map.vals_mut()[sj][1] += t * h;
        } else if let Some(sj) = map.find(j) {
            map.vals_mut()[sj][1] += t * h;
        } else {
            *dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fci_core::hamiltonian::random_hamiltonian;
    use fci_core::slater;
    use fci_linalg::eigh;

    fn dense_ground(space: &DetSpace, ham: &Hamiltonian) -> f64 {
        let h = slater::dense_h(space, ham);
        eigh(&h).eigenvalues[0] + ham.e_core
    }

    #[test]
    fn matches_dense_ground_state() {
        let ham = random_hamiltonian(6, 5);
        let space = DetSpace::c1(6, 3, 2);
        let opts = SparseOptions {
            tol: 1e-12,
            max_updates: 200_000,
            ..SparseOptions::default()
        };
        let res = solve_cdfci(&space, &ham, &opts);
        let exact = dense_ground(&space, &ham);
        assert!(res.converged);
        assert!(
            (res.energy() - exact).abs() < 1e-8,
            "cdfci {} vs dense {}",
            res.energy(),
            exact
        );
        assert!(res.support <= space.dim());
        assert!(!res.history.is_empty());
    }

    #[test]
    fn bounded_store_still_produces_an_estimate() {
        let ham = random_hamiltonian(6, 9);
        let space = DetSpace::c1(6, 3, 3);
        let opts = SparseOptions {
            max_store: 64,
            max_updates: 20_000,
            tol: 1e-10,
            ..SparseOptions::default()
        };
        let res = solve_cdfci(&space, &ham, &opts);
        assert!(res.support <= 64);
        assert!(res.dropped > 0, "cap must have bitten");
        // The variational estimate stays above... CDFCI's quotient is not
        // strictly variational under truncation, but it must be sane:
        let exact = dense_ground(&space, &ham);
        assert!((res.energy() - exact).abs() < 0.5);
    }

    #[test]
    fn thread_count_is_bitwise_invariant() {
        let ham = random_hamiltonian(6, 3);
        let space = DetSpace::c1(6, 3, 3);
        let run = |threads: usize| {
            let opts = SparseOptions {
                threads,
                tol: 1e-11,
                max_updates: 30_000,
                ..SparseOptions::default()
            };
            solve_cdfci(&space, &ham, &opts)
        };
        let r1 = run(1);
        let r2 = run(2);
        let r4 = run(4);
        assert_eq!(r1.energy().to_bits(), r2.energy().to_bits());
        assert_eq!(r1.energy().to_bits(), r4.energy().to_bits());
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.iterations, r4.iterations);
        assert_eq!(r1.support, r4.support);
    }
}
