#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Cray-X1 machine cost model (`xsim`).
//!
//! The paper's scaling results (Figs. 4–5, Table 3) were measured on the
//! ORNL Cray-X1 — 432 multi-streaming processors (MSPs), each a 4-SSP
//! vector unit with 12.8 GFlop/s peak, connected by a high-bandwidth
//! interconnect driven through SHMEM. That hardware is unavailable, so this
//! crate substitutes a **calibrated analytic cost model**: the FCI σ
//! algorithms execute for real (bitwise-correct results) while every
//! kernel invocation charges simulated time to its virtual MSP's
//! [`Clock`]. Calibration constants come from the paper itself and the
//! X1 evaluation report it cites \[Worley & Dunigan\]:
//!
//! * DGEMM sustains 10–11 GFlop/s per MSP once matrices pass ~300×300,
//!   with a ramp below that (modelled as `peak · s/(s + s_half)` in the
//!   effective matrix size `s = (m·n·k)^{1/3}`);
//! * out-of-cache DAXPY-class (indexed multiply–add) work realizes only
//!   ~2 GFlop/s per MSP — the quantitative reason MOC loses to DGEMM;
//! * vector gather/scatter streams at a memory-bound element rate;
//! * one-sided messages pay latency + bytes/bandwidth; an accumulate
//!   additionally pays a remote mutex acquisition and moves 2× the bytes.
//!
//! The model deliberately captures *relative* behaviour (who wins, how
//! scaling bends, where load imbalance appears); absolute times are only
//! as good as the constants, which is all the reproduction needs.

pub mod clock;
pub mod model;
pub mod report;

pub use clock::Clock;
pub use model::MachineModel;
pub use report::RunReport;
