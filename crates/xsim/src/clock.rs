//! Per-MSP simulated clocks.

use crate::model::MachineModel;
use fci_obs::tracer::Segment;
use fci_obs::Category;

/// Accumulated simulated time and work of one virtual MSP.
///
/// Time is split by category so harnesses can print the Table 3 style
/// breakdown (compute vs communication vs lock wait vs I/O) and compute
/// sustained flop rates. Alongside the time split, the clock keeps event
/// *counters* (messages, lock acquisitions, nxtval traffic) so summaries
/// can report counts as well as bytes; counters never affect the time
/// accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Clock {
    /// Seconds spent in DGEMM-class compute.
    pub t_dgemm: f64,
    /// Seconds spent in DAXPY/indexed compute.
    pub t_daxpy: f64,
    /// Seconds spent in vector gather/scatter and local copies.
    pub t_gather: f64,
    /// Seconds spent in network transfers.
    pub t_net: f64,
    /// Seconds spent acquiring remote mutexes.
    pub t_lock: f64,
    /// Seconds of disk I/O.
    pub t_io: f64,
    /// Floating-point operations executed in DGEMM kernels.
    pub flops_dgemm: f64,
    /// Floating-point operations executed in DAXPY-class kernels.
    pub flops_daxpy: f64,
    /// Bytes moved over the network by this MSP.
    pub net_bytes: f64,
    /// One-sided messages sent by this MSP (including counter traffic).
    pub net_msgs: f64,
    /// Remote mutex acquisitions by this MSP.
    pub lock_acquires: f64,
    /// Atomic-counter (`nxtval`) operations issued by this MSP.
    pub nxtval_msgs: f64,
    /// Message resends performed by DDI recovery loops (fault plane).
    pub retries: f64,
}

impl Clock {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.t_dgemm + self.t_daxpy + self.t_gather + self.t_net + self.t_lock + self.t_io
    }

    /// Total flops.
    pub fn flops(&self) -> f64 {
        self.flops_dgemm + self.flops_daxpy
    }

    /// Sustained flop rate over the MSP's own busy time.
    pub fn gflops(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.flops() / t / 1e9
        }
    }

    /// Charge a `C(m×n) += A(m×k) B(k×n)` multiply (2mnk flops).
    pub fn charge_dgemm(&mut self, model: &MachineModel, m: usize, n: usize, k: usize) {
        let fl = 2.0 * m as f64 * n as f64 * k as f64;
        self.flops_dgemm += fl;
        self.t_dgemm += fl / model.dgemm_rate(m, n, k);
    }

    /// Charge `n_flops` of DAXPY-class (indexed multiply–add) work.
    pub fn charge_daxpy(&mut self, model: &MachineModel, n_flops: f64) {
        self.flops_daxpy += n_flops;
        self.t_daxpy += n_flops / model.daxpy_rate;
    }

    /// Charge `n_ops` of scalar-unit work (list generation, index
    /// arithmetic, Hamiltonian-element lookup). Not counted as flops —
    /// this is the non-vectorizable overhead that caps MOC scalability.
    pub fn charge_scalar(&mut self, model: &MachineModel, n_ops: f64) {
        self.t_daxpy += n_ops / model.scalar_rate;
    }

    /// Charge a gather/scatter of `n_elems` 8-byte elements.
    pub fn charge_gather(&mut self, model: &MachineModel, n_elems: f64) {
        self.t_gather += n_elems / model.gather_rate;
    }

    /// Charge a local memory copy of `bytes`.
    pub fn charge_memcpy(&mut self, model: &MachineModel, bytes: f64) {
        self.t_gather += bytes / model.memcpy_rate;
    }

    /// Charge `n_msgs` one-sided messages moving `bytes` in total.
    pub fn charge_net(&mut self, model: &MachineModel, bytes: u64, n_msgs: u64) {
        self.net_bytes += bytes as f64;
        self.net_msgs += n_msgs as f64;
        self.t_net += n_msgs as f64 * model.net_latency + bytes as f64 / model.net_bandwidth;
    }

    /// Charge `n` remote mutex acquisitions.
    pub fn charge_mutex(&mut self, model: &MachineModel, n: u64) {
        self.lock_acquires += n as f64;
        self.t_lock += n as f64 * model.mutex_cost;
    }

    /// Charge disk traffic.
    pub fn charge_io(&mut self, model: &MachineModel, read_bytes: f64, write_bytes: f64) {
        self.t_io += read_bytes / model.disk_read + write_bytes / model.disk_write;
    }

    /// Record `n` `nxtval` counter operations. Count only — their time is
    /// already part of the network charge (they ride `total_msgs()`).
    pub fn note_nxtval(&mut self, n: u64) {
        self.nxtval_msgs += n as f64;
    }

    /// Charge recovery wait: `ns` of simulated backoff/stall time spent
    /// waiting to resend after `n_retries` detected delivery faults. The
    /// wait itself is network time (the MSP sits on the interconnect);
    /// the resent messages' wire cost arrives separately via
    /// [`Clock::charge_net`], since CommStats already counts them.
    pub fn charge_backoff(&mut self, ns: u64, n_retries: u64) {
        self.t_net += ns as f64 * 1e-9;
        self.retries += n_retries as f64;
    }

    /// Merge another clock's charges into this one.
    pub fn merge(&mut self, other: &Clock) {
        self.t_dgemm += other.t_dgemm;
        self.t_daxpy += other.t_daxpy;
        self.t_gather += other.t_gather;
        self.t_net += other.t_net;
        self.t_lock += other.t_lock;
        self.t_io += other.t_io;
        self.flops_dgemm += other.flops_dgemm;
        self.flops_daxpy += other.flops_daxpy;
        self.net_bytes += other.net_bytes;
        self.net_msgs += other.net_msgs;
        self.lock_acquires += other.lock_acquires;
        self.nxtval_msgs += other.nxtval_msgs;
        self.retries += other.retries;
    }

    /// This clock's charges as tracer segments, in Table 3 row order.
    ///
    /// The segment durations are exactly the category fields, so a trace
    /// built from these segments reproduces [`Clock::total`] as the sum of
    /// its span durations — the invariant `tests/trace_telemetry.rs`
    /// checks to 1e-9.
    pub fn segments(&self) -> Vec<Segment> {
        vec![
            Segment::new(
                Category::Dgemm,
                self.t_dgemm,
                vec![("flops".into(), self.flops_dgemm)],
            ),
            Segment::new(
                Category::Daxpy,
                self.t_daxpy,
                vec![("flops".into(), self.flops_daxpy)],
            ),
            Segment::new(Category::Gather, self.t_gather, vec![]),
            Segment::new(
                Category::Net,
                self.t_net,
                vec![
                    ("bytes".into(), self.net_bytes),
                    ("msgs".into(), self.net_msgs),
                    ("nxtval".into(), self.nxtval_msgs),
                    ("retries".into(), self.retries),
                ],
            ),
            Segment::new(
                Category::Lock,
                self.t_lock,
                vec![("acquires".into(), self.lock_acquires)],
            ),
            Segment::new(Category::Io, self.t_io, vec![]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_charge_flops_and_rate() {
        let m = MachineModel::cray_x1();
        let mut c = Clock::default();
        c.charge_dgemm(&m, 100, 200, 50);
        assert_eq!(c.flops_dgemm, 2.0 * 100.0 * 200.0 * 50.0);
        assert!(c.t_dgemm > 0.0);
        // Sustained rate below asymptotic peak.
        assert!(c.gflops() < m.dgemm_peak / 1e9);
    }

    #[test]
    fn daxpy_charge_rate_exact() {
        let m = MachineModel::cray_x1();
        let mut c = Clock::default();
        c.charge_daxpy(&m, 4.0e9);
        assert!((c.t_daxpy - 2.0).abs() < 1e-12);
        assert!((c.gflops() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn same_flops_dgemm_faster_than_daxpy() {
        // The core premise of the paper, encoded in the model.
        let m = MachineModel::cray_x1();
        let mut a = Clock::default();
        let mut b = Clock::default();
        a.charge_dgemm(&m, 500, 500, 500);
        b.charge_daxpy(&m, 2.0 * 500.0 * 500.0 * 500.0);
        assert!(
            a.total() < b.total() / 4.0,
            "dgemm {} vs daxpy {}",
            a.total(),
            b.total()
        );
    }

    #[test]
    fn net_and_lock_charges() {
        let m = MachineModel::cray_x1();
        let mut c = Clock::default();
        c.charge_net(&m, 8_000, 2);
        assert!((c.t_net - (2.0 * m.net_latency + 8_000.0 / m.net_bandwidth)).abs() < 1e-15);
        c.charge_mutex(&m, 3);
        assert!((c.t_lock - 3.0 * m.mutex_cost).abs() < 1e-15);
        c.charge_io(&m, 293e6, 0.0);
        assert!((c.t_io - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counters_track_without_time() {
        let m = MachineModel::cray_x1();
        let mut c = Clock::default();
        c.charge_net(&m, 1_000, 5);
        c.charge_mutex(&m, 2);
        let t = c.total();
        c.note_nxtval(7);
        assert_eq!(c.net_msgs, 5.0);
        assert_eq!(c.lock_acquires, 2.0);
        assert_eq!(c.nxtval_msgs, 7.0);
        // note_nxtval is count-only.
        assert_eq!(c.total(), t);
    }

    #[test]
    fn merge_adds_everything() {
        let m = MachineModel::cray_x1();
        let mut a = Clock::default();
        a.charge_daxpy(&m, 1e9);
        a.charge_net(&m, 100, 1);
        a.note_nxtval(1);
        let mut b = a;
        b.merge(&a);
        assert!((b.total() - 2.0 * a.total()).abs() < 1e-15);
        assert_eq!(b.net_bytes, 200.0);
        assert_eq!(b.net_msgs, 2.0);
        assert_eq!(b.nxtval_msgs, 2.0);
    }

    #[test]
    fn segments_sum_to_total() {
        let m = MachineModel::cray_x1();
        let mut c = Clock::default();
        c.charge_dgemm(&m, 64, 64, 64);
        c.charge_daxpy(&m, 1e8);
        c.charge_gather(&m, 1e6);
        c.charge_net(&m, 4096, 3);
        c.charge_mutex(&m, 2);
        c.charge_io(&m, 1e6, 1e6);
        let segs = c.segments();
        let sum: f64 = segs.iter().map(|s| s.sim_s).sum();
        assert_eq!(sum, c.total());
        // Payload carried on the right rows.
        assert_eq!(segs[0].args[0].1, c.flops_dgemm);
        assert_eq!(segs[3].args[0].1, c.net_bytes);
        assert_eq!(segs[4].args[0].1, 2.0);
    }
}
