//! Aggregation of per-MSP clocks into run-level metrics.

use crate::clock::Clock;
use fci_obs::{RunSummary, Tracer};

/// The simulated-time outcome of one parallel phase (or whole iteration).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// One clock per virtual MSP.
    pub clocks: Vec<Clock>,
}

impl RunReport {
    /// Wrap a set of per-MSP clocks.
    pub fn new(clocks: Vec<Clock>) -> Self {
        RunReport { clocks }
    }

    /// Number of MSPs.
    pub fn nproc(&self) -> usize {
        self.clocks.len()
    }

    /// Wall-clock of the phase = the slowest MSP (barrier semantics).
    pub fn elapsed(&self) -> f64 {
        self.clocks.iter().map(Clock::total).fold(0.0, f64::max)
    }

    /// Mean busy time across MSPs.
    pub fn mean_busy(&self) -> f64 {
        if self.clocks.is_empty() {
            return 0.0;
        }
        self.clocks.iter().map(Clock::total).sum::<f64>() / self.clocks.len() as f64
    }

    /// Load imbalance = elapsed − mean busy time (the paper's Table 3
    /// reports exactly this kind of residual as "Load Imbalance").
    pub fn load_imbalance(&self) -> f64 {
        self.elapsed() - self.mean_busy()
    }

    /// Aggregate flops across MSPs.
    pub fn total_flops(&self) -> f64 {
        self.clocks.iter().map(Clock::flops).sum()
    }

    /// Sustained GFlop/s per MSP over the phase wall-clock.
    pub fn gflops_per_msp(&self) -> f64 {
        let t = self.elapsed();
        if t == 0.0 || self.clocks.is_empty() {
            return 0.0;
        }
        self.total_flops() / t / self.clocks.len() as f64 / 1e9
    }

    /// Aggregate sustained TFlop/s over the phase wall-clock.
    pub fn tflops(&self) -> f64 {
        let t = self.elapsed();
        if t == 0.0 {
            0.0
        } else {
            self.total_flops() / t / 1e12
        }
    }

    /// Total network bytes moved.
    pub fn total_net_bytes(&self) -> f64 {
        self.clocks.iter().map(|c| c.net_bytes).sum()
    }

    /// Total one-sided messages sent (including counter traffic).
    pub fn total_net_msgs(&self) -> f64 {
        self.clocks.iter().map(|c| c.net_msgs).sum()
    }

    /// Total remote mutex acquisitions.
    pub fn total_lock_acquires(&self) -> f64 {
        self.clocks.iter().map(|c| c.lock_acquires).sum()
    }

    /// Total `nxtval` counter operations.
    pub fn total_nxtval_msgs(&self) -> f64 {
        self.clocks.iter().map(|c| c.nxtval_msgs).sum()
    }

    /// Merge another phase's report into this one, summing per-MSP
    /// charges.
    ///
    /// If the MSP counts differ, the shorter side is padded with idle
    /// (default) clocks — the missing ranks simply did nothing in that
    /// phase. Use [`RunReport::try_merge`] to treat a mismatch as an
    /// error instead.
    pub fn merge(&mut self, other: &RunReport) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), Clock::default());
        }
        for (a, b) in self.clocks.iter_mut().zip(&other.clocks) {
            a.merge(b);
        }
    }

    /// Like [`RunReport::merge`], but fails on mismatched MSP counts
    /// (ignoring an empty side, which is the "nothing yet" accumulator).
    pub fn try_merge(&mut self, other: &RunReport) -> Result<(), String> {
        if !self.clocks.is_empty()
            && !other.clocks.is_empty()
            && self.clocks.len() != other.clocks.len()
        {
            return Err(format!(
                "mismatched MSP counts: {} vs {}",
                self.clocks.len(),
                other.clocks.len()
            ));
        }
        self.merge(other);
        Ok(())
    }

    /// Roll the report up into the Table-3-style [`RunSummary`].
    pub fn summary(&self) -> RunSummary {
        let mut s = RunSummary {
            nproc: self.nproc(),
            elapsed: self.elapsed(),
            mean_busy: self.mean_busy(),
            ..RunSummary::default()
        };
        for c in &self.clocks {
            s.t_dgemm += c.t_dgemm;
            s.t_daxpy += c.t_daxpy;
            s.t_gather += c.t_gather;
            s.t_net += c.t_net;
            s.t_lock += c.t_lock;
            s.t_io += c.t_io;
            s.flops_dgemm += c.flops_dgemm;
            s.flops_daxpy += c.flops_daxpy;
            s.net_bytes += c.net_bytes;
            s.net_msgs += c.net_msgs;
            s.lock_acquires += c.lock_acquires;
            s.nxtval_msgs += c.nxtval_msgs;
            s.retries += c.retries;
        }
        s
    }

    /// Emit this phase into a trace: one stack of category spans per MSP
    /// (derived from each rank's clock via [`Clock::segments`]), followed
    /// by the phase barrier. `host_start_us`/`host_dur_us` bound the
    /// measured host interval of the phase.
    pub fn record_to(&self, tracer: &Tracer, phase: &str, host_start_us: f64, host_dur_us: f64) {
        if !tracer.enabled() {
            return;
        }
        for (rank, clock) in self.clocks.iter().enumerate() {
            tracer.record_phase(rank, phase, &clock.segments(), host_start_us, host_dur_us);
        }
        tracer.barrier(self.nproc());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    fn clock_with_daxpy(seconds: f64) -> Clock {
        let m = MachineModel::cray_x1();
        let mut c = Clock::default();
        c.charge_daxpy(&m, seconds * m.daxpy_rate);
        c
    }

    #[test]
    fn elapsed_is_max() {
        let r = RunReport::new(vec![
            clock_with_daxpy(1.0),
            clock_with_daxpy(3.0),
            clock_with_daxpy(2.0),
        ]);
        assert!((r.elapsed() - 3.0).abs() < 1e-12);
        assert!((r.mean_busy() - 2.0).abs() < 1e-12);
        assert!((r.load_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_run_has_no_imbalance() {
        let r = RunReport::new(vec![clock_with_daxpy(2.0); 8]);
        assert!(r.load_imbalance() < 1e-12);
        // 2 GF/s per MSP sustained.
        assert!((r.gflops_per_msp() - 2.0).abs() < 1e-9);
        assert!((r.tflops() - 2.0 * 8.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_phases() {
        let mut r = RunReport::default();
        r.merge(&RunReport::new(vec![clock_with_daxpy(1.0); 4]));
        r.merge(&RunReport::new(vec![clock_with_daxpy(0.5); 4]));
        assert!((r.elapsed() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_pads_mismatched_counts() {
        // Regression: this used to assert (panic) on mismatched lengths.
        let mut r = RunReport::new(vec![clock_with_daxpy(1.0); 2]);
        r.merge(&RunReport::new(vec![clock_with_daxpy(0.5); 4]));
        assert_eq!(r.nproc(), 4);
        assert!((r.clocks[0].total() - 1.5).abs() < 1e-12);
        // Padded ranks only saw the second phase.
        assert!((r.clocks[3].total() - 0.5).abs() < 1e-12);
        // Merging a shorter report leaves trailing ranks untouched.
        let mut r2 = RunReport::new(vec![clock_with_daxpy(1.0); 4]);
        r2.merge(&RunReport::new(vec![clock_with_daxpy(0.5); 2]));
        assert_eq!(r2.nproc(), 4);
        assert!((r2.clocks[3].total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn try_merge_rejects_mismatch() {
        let mut r = RunReport::new(vec![clock_with_daxpy(1.0); 2]);
        assert!(r
            .try_merge(&RunReport::new(vec![clock_with_daxpy(0.5); 4]))
            .is_err());
        // The failed merge must not have modified the receiver.
        assert_eq!(r.nproc(), 2);
        assert!(r
            .try_merge(&RunReport::new(vec![clock_with_daxpy(0.5); 2]))
            .is_ok());
        assert!(r.try_merge(&RunReport::default()).is_ok());
        let mut empty = RunReport::default();
        assert!(empty.try_merge(&r).is_ok());
        assert_eq!(empty.nproc(), 2);
    }

    #[test]
    fn empty_report_safe() {
        let r = RunReport::default();
        assert_eq!(r.elapsed(), 0.0);
        assert_eq!(r.gflops_per_msp(), 0.0);
        assert_eq!(r.load_imbalance(), 0.0);
    }

    #[test]
    fn summary_matches_report_aggregates() {
        let m = MachineModel::cray_x1();
        let mut c0 = clock_with_daxpy(1.0);
        c0.charge_net(&m, 1000, 3);
        c0.note_nxtval(2);
        let mut c1 = clock_with_daxpy(2.0);
        c1.charge_mutex(&m, 4);
        let r = RunReport::new(vec![c0, c1]);
        let s = r.summary();
        assert_eq!(s.nproc, 2);
        assert!((s.elapsed - r.elapsed()).abs() < 1e-15);
        assert!((s.load_imbalance() - r.load_imbalance()).abs() < 1e-15);
        assert!((s.flops() - r.total_flops()).abs() < 1e-6);
        assert_eq!(s.net_msgs, 3.0);
        assert_eq!(s.lock_acquires, 4.0);
        assert_eq!(s.nxtval_msgs, 2.0);
        assert!((s.tflops() - r.tflops()).abs() < 1e-15);
    }

    #[test]
    fn record_to_reproduces_summary() {
        let m = MachineModel::cray_x1();
        let mut c0 = clock_with_daxpy(1.0);
        c0.charge_dgemm(&m, 32, 32, 32);
        c0.charge_net(&m, 512, 2);
        let c1 = clock_with_daxpy(0.25);
        let r = RunReport::new(vec![c0, c1]);

        let tracer = Tracer::in_memory();
        r.record_to(&tracer, "phase", 0.0, 0.0);
        let from_trace = RunSummary::from_events(&tracer.events().unwrap());
        let direct = r.summary();
        assert!((from_trace.t_dgemm - direct.t_dgemm).abs() < 1e-12);
        assert!((from_trace.t_daxpy - direct.t_daxpy).abs() < 1e-12);
        assert!((from_trace.t_net - direct.t_net).abs() < 1e-12);
        assert!((from_trace.elapsed - direct.elapsed).abs() < 1e-12);
        assert!((from_trace.flops() - direct.flops()).abs() < 1e-6);
        assert_eq!(from_trace.net_bytes, direct.net_bytes);
    }
}
