//! Aggregation of per-MSP clocks into run-level metrics.

use crate::clock::Clock;
use serde::{Deserialize, Serialize};

/// The simulated-time outcome of one parallel phase (or whole iteration).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// One clock per virtual MSP.
    pub clocks: Vec<Clock>,
}

impl RunReport {
    /// Wrap a set of per-MSP clocks.
    pub fn new(clocks: Vec<Clock>) -> Self {
        RunReport { clocks }
    }

    /// Number of MSPs.
    pub fn nproc(&self) -> usize {
        self.clocks.len()
    }

    /// Wall-clock of the phase = the slowest MSP (barrier semantics).
    pub fn elapsed(&self) -> f64 {
        self.clocks.iter().map(Clock::total).fold(0.0, f64::max)
    }

    /// Mean busy time across MSPs.
    pub fn mean_busy(&self) -> f64 {
        if self.clocks.is_empty() {
            return 0.0;
        }
        self.clocks.iter().map(Clock::total).sum::<f64>() / self.clocks.len() as f64
    }

    /// Load imbalance = elapsed − mean busy time (the paper's Table 3
    /// reports exactly this kind of residual as "Load Imbalance").
    pub fn load_imbalance(&self) -> f64 {
        self.elapsed() - self.mean_busy()
    }

    /// Aggregate flops across MSPs.
    pub fn total_flops(&self) -> f64 {
        self.clocks.iter().map(Clock::flops).sum()
    }

    /// Sustained GFlop/s per MSP over the phase wall-clock.
    pub fn gflops_per_msp(&self) -> f64 {
        let t = self.elapsed();
        if t == 0.0 || self.clocks.is_empty() {
            return 0.0;
        }
        self.total_flops() / t / self.clocks.len() as f64 / 1e9
    }

    /// Aggregate sustained TFlop/s over the phase wall-clock.
    pub fn tflops(&self) -> f64 {
        let t = self.elapsed();
        if t == 0.0 {
            0.0
        } else {
            self.total_flops() / t / 1e12
        }
    }

    /// Total network bytes moved.
    pub fn total_net_bytes(&self) -> f64 {
        self.clocks.iter().map(|c| c.net_bytes).sum()
    }

    /// Merge another phase's report (same MSP count) into this one,
    /// summing per-MSP charges.
    pub fn merge(&mut self, other: &RunReport) {
        if self.clocks.is_empty() {
            self.clocks = other.clocks.clone();
            return;
        }
        assert_eq!(self.clocks.len(), other.clocks.len(), "mismatched MSP counts");
        for (a, b) in self.clocks.iter_mut().zip(&other.clocks) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    fn clock_with_daxpy(seconds: f64) -> Clock {
        let m = MachineModel::cray_x1();
        let mut c = Clock::default();
        c.charge_daxpy(&m, seconds * m.daxpy_rate);
        c
    }

    #[test]
    fn elapsed_is_max() {
        let r = RunReport::new(vec![clock_with_daxpy(1.0), clock_with_daxpy(3.0), clock_with_daxpy(2.0)]);
        assert!((r.elapsed() - 3.0).abs() < 1e-12);
        assert!((r.mean_busy() - 2.0).abs() < 1e-12);
        assert!((r.load_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_run_has_no_imbalance() {
        let r = RunReport::new(vec![clock_with_daxpy(2.0); 8]);
        assert!(r.load_imbalance() < 1e-12);
        // 2 GF/s per MSP sustained.
        assert!((r.gflops_per_msp() - 2.0).abs() < 1e-9);
        assert!((r.tflops() - 2.0 * 8.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_phases() {
        let mut r = RunReport::default();
        r.merge(&RunReport::new(vec![clock_with_daxpy(1.0); 4]));
        r.merge(&RunReport::new(vec![clock_with_daxpy(0.5); 4]));
        assert!((r.elapsed() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_safe() {
        let r = RunReport::default();
        assert_eq!(r.elapsed(), 0.0);
        assert_eq!(r.gflops_per_msp(), 0.0);
        assert_eq!(r.load_imbalance(), 0.0);
    }
}
