//! Machine parameter sets.

/// Performance constants of one simulated machine.
///
/// All rates are per MSP (per virtual processor). See the crate docs for
/// the calibration sources.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Theoretical peak, flop/s (X1 MSP: 12.8e9).
    pub peak_flops: f64,
    /// Asymptotic DGEMM rate, flop/s.
    pub dgemm_peak: f64,
    /// Effective matrix size at which DGEMM runs at half `dgemm_peak`.
    pub dgemm_half_size: f64,
    /// DAXPY / indexed multiply–add rate out of cache, flop/s.
    pub daxpy_rate: f64,
    /// Scalar-unit rate, ops/s. The X1's scalar pipeline is far slower than
    /// its vector pipes; excitation-list generation and Hamiltonian-element
    /// index work run here. This is what turns the MOC algorithm's
    /// *replicated* same-spin list computation into the Amdahl bottleneck
    /// of Fig. 4.
    pub scalar_rate: f64,
    /// Vector gather/scatter rate, elements/s (8-byte words).
    pub gather_rate: f64,
    /// Local memory copy rate, bytes/s.
    pub memcpy_rate: f64,
    /// One-sided message latency, seconds.
    pub net_latency: f64,
    /// Per-MSP interconnect bandwidth, bytes/s.
    pub net_bandwidth: f64,
    /// Cost of acquiring a remote node's mutex (DDI_ACC protocol), s.
    pub mutex_cost: f64,
    /// Disk read bandwidth, bytes/s (Table 3 reports 293 MB/s read).
    pub disk_read: f64,
    /// Disk write bandwidth, bytes/s (Table 3 reports 246 MB/s write).
    pub disk_write: f64,
}

impl MachineModel {
    /// The Cray-X1 MSP model used throughout the reproduction.
    pub fn cray_x1() -> Self {
        MachineModel {
            peak_flops: 12.8e9,
            dgemm_peak: 11.5e9,
            dgemm_half_size: 38.0,
            daxpy_rate: 2.0e9,
            scalar_rate: 0.4e9,
            gather_rate: 1.2e9,
            memcpy_rate: 20e9,
            net_latency: 5.0e-6,
            net_bandwidth: 8.0e9,
            mutex_cost: 8.0e-6,
            disk_read: 293e6,
            disk_write: 246e6,
        }
    }

    /// Effective DGEMM rate (flop/s) for an `m × k · k × n` multiply.
    ///
    /// `rate = dgemm_peak · s / (s + s_half)` with `s = (m n k)^{1/3}`;
    /// at s = 300 this gives ≈ 0.89 · dgemm_peak ≈ 10.2 GFlop/s, matching
    /// the "10–11 GFlop/s beyond 300×300" calibration point.
    pub fn dgemm_rate(&self, m: usize, n: usize, k: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return self.dgemm_peak;
        }
        let s = ((m as f64) * (n as f64) * (k as f64)).cbrt();
        self.dgemm_peak * s / (s + self.dgemm_half_size)
    }

    /// Time for one one-sided transfer of `bytes`.
    pub fn msg_time(&self, bytes: u64) -> f64 {
        self.net_latency + bytes as f64 / self.net_bandwidth
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::cray_x1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_points() {
        let m = MachineModel::cray_x1();
        // Large DGEMM lands in the paper's 10–11 GF/s window.
        let r = m.dgemm_rate(300, 300, 300);
        assert!(r > 10.0e9 && r < 11.5e9, "r = {r}");
        let r = m.dgemm_rate(1000, 1000, 1000);
        assert!(r > 10.8e9);
        // Small DGEMM is much slower.
        assert!(m.dgemm_rate(10, 10, 10) < 0.25 * m.dgemm_peak);
        // DAXPY rate sits near the cited 2 GF/s.
        assert!((m.daxpy_rate - 2.0e9).abs() < 1e-9 * 2.0e9);
    }

    #[test]
    fn rate_monotone_in_size() {
        let m = MachineModel::cray_x1();
        let mut prev = 0.0;
        for s in [4usize, 16, 64, 256, 1024] {
            let r = m.dgemm_rate(s, s, s);
            assert!(r > prev);
            prev = r;
        }
        assert!(prev < m.dgemm_peak);
    }

    #[test]
    fn message_time_components() {
        let m = MachineModel::cray_x1();
        assert!((m.msg_time(0) - m.net_latency).abs() < 1e-18);
        let big = m.msg_time(8_000_000_000);
        assert!((big - (m.net_latency + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_gemm_dims() {
        let m = MachineModel::cray_x1();
        assert_eq!(m.dgemm_rate(0, 10, 10), m.dgemm_peak);
    }
}
