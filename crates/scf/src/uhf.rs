//! Unrestricted Hartree–Fock.
//!
//! Open-shell systems (the paper's O ³P / O⁻ benchmarks) need a reference
//! beyond RHF. FCI itself only requires *some* orthonormal orbital set —
//! but convergence of the iterative diagonalizer and the quality of the
//! frozen-core approximation both improve markedly with relaxed orbitals.
//! This UHF produces separate α/β orbital sets with DIIS acceleration;
//! for FCI use, the α set (which sees the majority spin field) is the
//! customary choice of a single common orbital basis.

use fci_ints::{eri_tensor, kinetic, nuclear_attraction, overlap, BasisSet, EriTensor, Molecule};
use fci_linalg::{eigh, Matrix};

use crate::rhf::{lowdin, RhfOptions};

/// Converged UHF wavefunction.
#[derive(Clone, Debug)]
pub struct UhfResult {
    /// Total UHF energy (electronic + nuclear), hartree.
    pub energy: f64,
    /// α MO coefficients (AO × MO).
    pub c_alpha: Matrix,
    /// β MO coefficients (AO × MO).
    pub c_beta: Matrix,
    /// α orbital energies.
    pub e_alpha: Vec<f64>,
    /// β orbital energies.
    pub e_beta: Vec<f64>,
    /// α electron count.
    pub n_alpha: usize,
    /// β electron count.
    pub n_beta: usize,
    /// SCF iterations used.
    pub iterations: usize,
    /// Whether the convergence threshold was met.
    pub converged: bool,
    /// ⟨S²⟩ of the UHF determinant (exact value s(s+1) + contamination).
    pub s_squared: f64,
    /// AO overlap matrix.
    pub s_ao: Matrix,
    /// AO core Hamiltonian.
    pub h_ao: Matrix,
    /// AO two-electron integrals.
    pub eri_ao: EriTensor,
}

/// Run UHF with `n_alpha` ≥ `n_beta` electrons.
pub fn uhf(
    molecule: &Molecule,
    basis: &BasisSet,
    n_alpha: usize,
    n_beta: usize,
    opts: &RhfOptions,
) -> UhfResult {
    assert_eq!(
        n_alpha + n_beta,
        molecule.n_electrons(),
        "spin occupation must match electron count"
    );
    assert!(n_alpha >= n_beta, "convention: n_alpha >= n_beta");
    let n = basis.n_basis();
    assert!(n_alpha <= n);

    let s = overlap(basis);
    let h = {
        let mut t = kinetic(basis);
        t.axpy(1.0, &nuclear_attraction(basis, molecule));
        t
    };
    let eri = eri_tensor(basis);
    let e_nuc = molecule.nuclear_repulsion();
    let x = lowdin(&s);

    // Core guess for both spins; break α/β symmetry slightly via the
    // occupation difference itself.
    let guess = {
        let hp = x.t_matmul(&h).matmul(&x);
        x.matmul(&eigh(&hp).eigenvectors)
    };
    let mut ca = guess.clone();
    let mut cb = guess;
    let mut ea = vec![0.0; n];
    let mut eb = vec![0.0; n];
    let mut energy = 0.0;
    let mut converged = false;
    let mut iterations = 0;

    let density = |c: &Matrix, nocc: usize| -> Matrix {
        let mut d = Matrix::zeros(n, n);
        for i in 0..nocc {
            for mu in 0..n {
                for nu in 0..n {
                    d[(mu, nu)] += c[(mu, i)] * c[(nu, i)];
                }
            }
        }
        d
    };

    let mut diis_f: Vec<(Matrix, Matrix)> = Vec::new();
    let mut diis_e: Vec<Matrix> = Vec::new();

    for it in 0..opts.max_iter {
        iterations = it + 1;
        let da = density(&ca, n_alpha);
        let db = density(&cb, n_beta);
        let dt = {
            let mut t = da.clone();
            t.axpy(1.0, &db);
            t
        };
        // Fock builds: F_σ = h + J[Dt] − K[D_σ].
        let mut fa = h.clone();
        let mut fb = h.clone();
        for mu in 0..n {
            for nu in 0..=mu {
                let mut j = 0.0;
                let mut ka = 0.0;
                let mut kb = 0.0;
                for la in 0..n {
                    for sg in 0..n {
                        let v = eri.get(mu, nu, la, sg);
                        j += dt[(la, sg)] * v;
                        let vx = eri.get(mu, la, nu, sg);
                        ka += da[(la, sg)] * vx;
                        kb += db[(la, sg)] * vx;
                    }
                }
                let va = fa[(mu, nu)] + j - ka;
                let vb = fb[(mu, nu)] + j - kb;
                fa[(mu, nu)] = va;
                fa[(nu, mu)] = va;
                fb[(mu, nu)] = vb;
                fb[(nu, mu)] = vb;
            }
        }
        // Energy: ½ Σ [Dt·h + Da·Fa + Db·Fb]
        let mut e_el = 0.0;
        for mu in 0..n {
            for nu in 0..n {
                e_el += 0.5
                    * (dt[(mu, nu)] * h[(mu, nu)]
                        + da[(mu, nu)] * fa[(mu, nu)]
                        + db[(mu, nu)] * fb[(mu, nu)]);
            }
        }
        energy = e_el + e_nuc;

        // Combined DIIS error.
        let err_of = |f: &Matrix, d: &Matrix| -> Matrix {
            let fds = f.matmul(d).matmul(&s);
            let sdf = s.matmul(d).matmul(f);
            let mut e = fds;
            e.axpy(-1.0, &sdf);
            x.t_matmul(&e).matmul(&x)
        };
        let ea_m = err_of(&fa, &da);
        let eb_m = err_of(&fb, &db);
        let err_norm = (ea_m.dot(&ea_m) + eb_m.dot(&eb_m)).sqrt();
        if err_norm < opts.conv {
            converged = true;
            let esa = eigh(&x.t_matmul(&fa).matmul(&x));
            ca = x.matmul(&esa.eigenvectors);
            ea = esa.eigenvalues;
            let esb = eigh(&x.t_matmul(&fb).matmul(&x));
            cb = x.matmul(&esb.eigenvectors);
            eb = esb.eigenvalues;
            break;
        }

        // DIIS over the stacked (Fa, Fb) pair.
        let (fa_use, fb_use) = if opts.diis_depth >= 2 {
            // error vector = concat of both spins (represented by summing
            // the pairwise dots, which is what the B matrix needs).
            let mut err = Matrix::zeros(2 * n, n);
            for i in 0..n {
                for j2 in 0..n {
                    err[(i, j2)] = ea_m[(i, j2)];
                    err[(n + i, j2)] = eb_m[(i, j2)];
                }
            }
            diis_f.push((fa.clone(), fb.clone()));
            diis_e.push(err);
            if diis_f.len() > opts.diis_depth {
                diis_f.remove(0);
                diis_e.remove(0);
            }
            if diis_f.len() >= 2 {
                match diis_mix(&diis_f, &diis_e) {
                    Some(p) => p,
                    None => (fa, fb),
                }
            } else {
                (fa, fb)
            }
        } else {
            (fa, fb)
        };

        let esa = eigh(&x.t_matmul(&fa_use).matmul(&x));
        ca = x.matmul(&esa.eigenvectors);
        ea = esa.eigenvalues;
        let esb = eigh(&x.t_matmul(&fb_use).matmul(&x));
        cb = x.matmul(&esb.eigenvectors);
        eb = esb.eigenvalues;
    }

    // ⟨S²⟩ = Sz(Sz+1) + Nβ − Σ_{ij} |⟨φᵅᵢ|φᵝⱼ⟩|².
    let sz = 0.5 * (n_alpha as f64 - n_beta as f64);
    let mut overlap2 = 0.0;
    let sab = ca.t_matmul(&s).matmul(&cb);
    for i in 0..n_alpha {
        for j in 0..n_beta {
            overlap2 += sab[(i, j)] * sab[(i, j)];
        }
    }
    let s_squared = sz * (sz + 1.0) + n_beta as f64 - overlap2;

    UhfResult {
        energy,
        c_alpha: ca,
        c_beta: cb,
        e_alpha: ea,
        e_beta: eb,
        n_alpha,
        n_beta,
        iterations,
        converged,
        s_squared,
        s_ao: s,
        h_ao: h,
        eri_ao: eri,
    }
}

fn diis_mix(focks: &[(Matrix, Matrix)], errs: &[Matrix]) -> Option<(Matrix, Matrix)> {
    let m = focks.len();
    let mut b = Matrix::zeros(m + 1, m + 1);
    for i in 0..m {
        for j in 0..m {
            b[(i, j)] = errs[i].dot(&errs[j]);
        }
        b[(i, m)] = -1.0;
        b[(m, i)] = -1.0;
    }
    let mut rhs = vec![0.0; m + 1];
    rhs[m] = -1.0;
    let coef = fci_linalg::lu_solve(&b, &rhs).ok()?;
    let (nr, nc) = focks[0].0.shape();
    let mut fa = Matrix::zeros(nr, nc);
    let mut fb = Matrix::zeros(nr, nc);
    for i in 0..m {
        fa.axpy(coef[i], &focks[i].0);
        fb.axpy(coef[i], &focks[i].1);
    }
    Some((fa, fb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhf::rhf;

    #[test]
    fn closed_shell_uhf_equals_rhf() {
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0; 3]), ("H", [0.0, 0.0, 1.4])], 0);
        let basis = BasisSet::build(&mol, "sto-3g");
        let r = rhf(&mol, &basis, &RhfOptions::default());
        let u = uhf(&mol, &basis, 1, 1, &RhfOptions::default());
        assert!(u.converged);
        assert!(
            (u.energy - r.energy).abs() < 1e-8,
            "{} vs {}",
            u.energy,
            r.energy
        );
        assert!(u.s_squared.abs() < 1e-8);
    }

    #[test]
    fn hydrogen_atom_exact_limit() {
        // One electron: UHF is exact within the basis; big even-tempered
        // set → E → −0.5 Eh, ⟨S²⟩ = 0.75 exactly (a pure doublet).
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0; 3])], 0);
        let basis = BasisSet::even_tempered_s([0.0; 3], 10, 0.02, 2.5);
        let u = uhf(&mol, &basis, 1, 0, &RhfOptions::default());
        assert!(u.converged);
        assert!(u.energy > -0.5 && u.energy < -0.499, "E = {}", u.energy);
        assert!((u.s_squared - 0.75).abs() < 1e-10);
    }

    #[test]
    fn oxygen_triplet_ground_state() {
        let mol = Molecule::from_symbols_bohr(&[("O", [0.0; 3])], 0);
        let basis = BasisSet::build(&mol, "sto-3g");
        let u = uhf(
            &mol,
            &basis,
            5,
            3,
            &RhfOptions {
                max_iter: 200,
                ..Default::default()
            },
        );
        assert!(
            u.converged,
            "O atom UHF failed in {} iterations",
            u.iterations
        );
        // Physical window for UHF/STO-3G O (literature RHF-class values
        // sit near −73.8 Eh⁻¹ scale — accept a broad bracket).
        assert!(u.energy < -73.0 && u.energy > -75.5, "E = {}", u.energy);
        // ⟨S²⟩ close to 2 (triplet), small contamination allowed.
        assert!((u.s_squared - 2.0).abs() < 0.1, "S² = {}", u.s_squared);
        // α orbitals lower than β for the majority spin (exchange).
        assert!(u.e_alpha[4] < u.e_beta[4]);
    }

    #[test]
    fn uhf_below_or_equal_rhf_for_stretched_h2() {
        // At stretch, breaking spin symmetry lowers the energy (the
        // Coulson–Fischer point is near 2.3 a0 for H2).
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0; 3]), ("H", [0.0, 0.0, 4.0])], 0);
        let basis = BasisSet::build(&mol, "sto-3g");
        let r = rhf(&mol, &basis, &RhfOptions::default());
        // Break symmetry by seeding from an asymmetric β occupation swap:
        // the core guess is symmetric, so help it with a tiny field trick —
        // here simply accept either outcome but require E_UHF ≤ E_RHF + ε.
        let u = uhf(
            &mol,
            &basis,
            1,
            1,
            &RhfOptions {
                max_iter: 300,
                ..Default::default()
            },
        );
        assert!(u.converged);
        assert!(u.energy <= r.energy + 1e-8);
    }
}
