//! Symmetry adaptation of molecular orbitals.
//!
//! Eigenvectors of a symmetric operator within a *degenerate* level (e.g.
//! the πx/πy pair of a linear molecule) come out in an arbitrary mixture
//! of irreps, which breaks the per-orbital irrep labelling the
//! symmetry-blocked FCI needs. This module projects each orbital onto the
//! abelian group's irreps, assigns it to its dominant irrep, and
//! re-orthonormalizes — after which [`fci_ints::mo_irreps`] succeeds.

use fci_ints::{BasisSet, PointGroup};
use fci_linalg::Matrix;

/// Projection-based symmetry cleanup of an orbital set.
///
/// * `c` — MO coefficients (AO × MO), assumed S-orthonormal;
/// * `s` — AO overlap.
///
/// Returns `(c_adapted, irreps)`. Orbitals are reordered so degenerate
/// partners stay adjacent but the energetic ordering of the input is
/// otherwise preserved. Panics if projection collapses an orbital (the
/// input did not span whole irrep sectors — should not happen for
/// eigenvectors of symmetric operators).
pub fn symmetry_adapt(
    pg: &PointGroup,
    basis: &BasisSet,
    s: &Matrix,
    c: &Matrix,
) -> (Matrix, Vec<u8>) {
    let nao = c.nrows();
    let nmo = c.ncols();
    let nops = pg.ops.len();
    let reps: Vec<Vec<(usize, f64)>> = pg.ops.iter().map(|op| op.ao_rep(basis)).collect();

    // Project every orbital onto each irrep; pick the dominant one.
    let mut adapted = Matrix::zeros(nao, nmo);
    let mut irreps = vec![0u8; nmo];
    let mut buf = vec![0.0f64; nao];
    for m in 0..nmo {
        let cm = c.col(m);
        let mut best = (0.0f64, 0u8, vec![0.0; nao]);
        for g in 0..nops as u8 {
            // P_g c = (1/|G|) Σ_op χ_g(op) R_op c
            buf.iter_mut().for_each(|x| *x = 0.0);
            for (oi, rep) in reps.iter().enumerate() {
                let chi = pg.character(g, oi);
                for (mu, &(img, sgn)) in rep.iter().enumerate() {
                    buf[img] += chi * sgn * cm[mu];
                }
            }
            buf.iter_mut().for_each(|x| *x /= nops as f64);
            // Weight = ⟨P c | S | P c⟩.
            let mut w = 0.0;
            for i in 0..nao {
                let mut t = 0.0;
                for j in 0..nao {
                    t += s[(i, j)] * buf[j];
                }
                w += buf[i] * t;
            }
            if w > best.0 {
                best = (w, g, buf.clone());
            }
        }
        assert!(best.0 > 1e-6, "orbital {m} has no dominant irrep component");
        irreps[m] = best.1;
        let nrm = best.0.sqrt();
        for i in 0..nao {
            adapted[(i, m)] = best.2[i] / nrm;
        }
    }

    // Re-orthonormalize within each irrep by Gram–Schmidt in the S metric
    // (projections of different irreps are already S-orthogonal).
    for g in 0..nops as u8 {
        let members: Vec<usize> = (0..nmo).filter(|&m| irreps[m] == g).collect();
        for (k, &m) in members.iter().enumerate() {
            // Subtract overlap with previous same-irrep orbitals.
            for &m2 in &members[..k] {
                let mut ov = 0.0;
                for i in 0..nao {
                    let mut t = 0.0;
                    for j in 0..nao {
                        t += s[(i, j)] * adapted[(j, m2)];
                    }
                    ov += adapted[(i, m)] * t;
                }
                for i in 0..nao {
                    let sub = ov * adapted[(i, m2)];
                    adapted[(i, m)] -= sub;
                }
            }
            let mut nn = 0.0;
            for i in 0..nao {
                let mut t = 0.0;
                for j in 0..nao {
                    t += s[(i, j)] * adapted[(j, m)];
                }
                nn += adapted[(i, m)] * t;
            }
            assert!(
                nn > 1e-8,
                "orbital {m} collapsed during re-orthogonalization"
            );
            let nrm = nn.sqrt();
            for i in 0..nao {
                adapted[(i, m)] /= nrm;
            }
        }
    }
    (adapted, irreps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhf::core_orbitals;
    use fci_ints::{detect_point_group, mo_irreps, overlap, Molecule};

    #[test]
    fn n2_core_orbitals_adapt_to_d2h() {
        let m =
            Molecule::from_symbols_bohr(&[("N", [0.0, 0.0, -1.05]), ("N", [0.0, 0.0, 1.05])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        let s = overlap(&b);
        let (c, _e) = core_orbitals(&b, &m);
        let pg = detect_point_group(&m);
        assert_eq!(pg.n_irrep(), 8);
        let (cad, irreps) = symmetry_adapt(&pg, &b, &s, &c);
        // Adapted orbitals must now pass the strict irrep detector and
        // agree with the labels we assigned.
        let detected = mo_irreps(&pg, &b, &s, &cad, 1e-7).expect("adapted orbitals must be clean");
        assert_eq!(detected, irreps);
        // Orthonormality retained.
        let ctsc = cad.t_matmul(&s).matmul(&cad);
        assert!(ctsc.max_abs_diff(&Matrix::eye(c.ncols())) < 1e-9);
        // A linear molecule must show π-type (degenerate) irreps ≠ 0.
        let distinct: std::collections::HashSet<u8> = irreps.iter().copied().collect();
        assert!(
            distinct.len() >= 4,
            "expected several irreps, got {distinct:?}"
        );
    }

    #[test]
    fn c1_molecule_all_totally_symmetric() {
        let m = Molecule::from_symbols_bohr(
            &[
                ("O", [0.0; 3]),
                ("H", [0.0, 1.43, 1.11]),
                ("F", [0.3, -1.0, 0.7]),
            ],
            0,
        );
        let b = BasisSet::build(&m, "sto-3g");
        let s = overlap(&b);
        let (c, _) = core_orbitals(&b, &m);
        let pg = detect_point_group(&m);
        let (_, irreps) = symmetry_adapt(&pg, &b, &s, &c);
        assert!(irreps.iter().all(|&g| g == 0));
    }

    #[test]
    fn characters_multiply_correctly() {
        let m = Molecule::from_symbols_bohr(&[("C", [0.0, 0.0, -1.2]), ("C", [0.0, 0.0, 1.2])], 0);
        let pg = detect_point_group(&m);
        // χ_g is a homomorphism: χ(op1)χ(op2) = χ(op1∘op2).
        for g in 0..pg.n_irrep() as u8 {
            for i in 0..pg.ops.len() {
                for j in 0..pg.ops.len() {
                    let prod_mask = pg.ops[i].flips ^ pg.ops[j].flips;
                    let k = pg.ops.iter().position(|o| o.flips == prod_mask).unwrap();
                    assert_eq!(
                        pg.character(g, i) * pg.character(g, j),
                        pg.character(g, k),
                        "irrep {g}, ops {i},{j}"
                    );
                }
            }
        }
    }
}
