//! Restricted Hartree–Fock with DIIS.

use fci_ints::{eri_tensor, kinetic, nuclear_attraction, overlap, BasisSet, EriTensor, Molecule};
use fci_linalg::{eigh, lu_solve, Matrix};

/// Löwdin symmetric orthogonalizer `X = S^{−1/2}` (so `Xᵀ S X = 1`).
///
/// Panics if the overlap has eigenvalues below `1e-10` (linear dependence).
pub fn lowdin(s: &Matrix) -> Matrix {
    let e = eigh(s);
    let n = s.nrows();
    for &w in &e.eigenvalues {
        assert!(
            w > 1e-10,
            "overlap matrix is (numerically) singular: eigenvalue {w}"
        );
    }
    // X = U diag(w^{-1/2}) Uᵀ
    let mut us = Matrix::zeros(n, n);
    for j in 0..n {
        let f = 1.0 / e.eigenvalues[j].sqrt();
        for i in 0..n {
            us[(i, j)] = e.eigenvectors[(i, j)] * f;
        }
    }
    us.matmul_t(&e.eigenvectors)
}

/// Eigenvectors of the core Hamiltonian in an orthonormalized AO basis —
/// a cheap, symmetry-clean orbital set for open-shell FCI runs.
pub fn core_orbitals(basis: &BasisSet, molecule: &Molecule) -> (Matrix, Vec<f64>) {
    let s = overlap(basis);
    let h = {
        let mut t = kinetic(basis);
        t.axpy(1.0, &nuclear_attraction(basis, molecule));
        t
    };
    let x = lowdin(&s);
    let hp = x.t_matmul(&h).matmul(&x);
    let e = eigh(&hp);
    (x.matmul(&e.eigenvectors), e.eigenvalues)
}

/// RHF options.
#[derive(Clone, Debug)]
pub struct RhfOptions {
    /// Maximum SCF iterations.
    pub max_iter: usize,
    /// Convergence threshold on the DIIS error norm.
    pub conv: f64,
    /// Number of Fock matrices kept for DIIS (0 disables DIIS).
    pub diis_depth: usize,
}

impl Default for RhfOptions {
    fn default() -> Self {
        RhfOptions {
            max_iter: 100,
            conv: 1e-9,
            diis_depth: 8,
        }
    }
}

/// Converged RHF wavefunction.
#[derive(Clone, Debug)]
pub struct RhfResult {
    /// Total RHF energy (electronic + nuclear repulsion), hartree.
    pub energy: f64,
    /// Nuclear repulsion energy.
    pub e_nuc: f64,
    /// MO coefficients (AO × MO), all orbitals, ascending orbital energy.
    pub mo_coeffs: Matrix,
    /// Orbital energies.
    pub mo_energies: Vec<f64>,
    /// Number of doubly occupied orbitals.
    pub n_occ: usize,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the convergence threshold was met.
    pub converged: bool,
    /// AO overlap matrix (kept for symmetry analysis downstream).
    pub s_ao: Matrix,
    /// AO core Hamiltonian.
    pub h_ao: Matrix,
    /// AO two-electron integrals.
    pub eri_ao: EriTensor,
}

/// Run closed-shell RHF. Panics if the electron count is odd.
pub fn rhf(molecule: &Molecule, basis: &BasisSet, opts: &RhfOptions) -> RhfResult {
    let nelec = molecule.n_electrons();
    assert!(
        nelec.is_multiple_of(2),
        "RHF requires an even electron count (got {nelec})"
    );
    let nocc = nelec / 2;
    let n = basis.n_basis();
    assert!(
        nocc <= n,
        "not enough basis functions for {nelec} electrons"
    );

    let s = overlap(basis);
    let h = {
        let mut t = kinetic(basis);
        t.axpy(1.0, &nuclear_attraction(basis, molecule));
        t
    };
    let eri = eri_tensor(basis);
    let e_nuc = molecule.nuclear_repulsion();
    let x = lowdin(&s);

    // Core guess.
    let mut c = {
        let hp = x.t_matmul(&h).matmul(&x);
        let e = eigh(&hp);
        x.matmul(&e.eigenvectors)
    };
    let mut mo_energies = vec![0.0; n];
    let mut energy = 0.0;
    let mut converged = false;
    let mut iterations = 0;

    let mut diis_focks: Vec<Matrix> = Vec::new();
    let mut diis_errs: Vec<Matrix> = Vec::new();

    for it in 0..opts.max_iter {
        iterations = it + 1;
        // Density D_{μν} = 2 Σ_occ C_{μi} C_{νi}.
        let mut d = Matrix::zeros(n, n);
        for i in 0..nocc {
            for mu in 0..n {
                for nu in 0..n {
                    d[(mu, nu)] += 2.0 * c[(mu, i)] * c[(nu, i)];
                }
            }
        }
        // Fock build.
        let mut f = h.clone();
        for mu in 0..n {
            for nu in 0..=mu {
                let mut j = 0.0;
                let mut k = 0.0;
                for la in 0..n {
                    for sg in 0..n {
                        let dls = d[(la, sg)];
                        if dls == 0.0 {
                            continue;
                        }
                        j += dls * eri.get(mu, nu, la, sg);
                        k += dls * eri.get(mu, la, nu, sg);
                    }
                }
                let v = f[(mu, nu)] + j - 0.5 * k;
                f[(mu, nu)] = v;
                f[(nu, mu)] = v;
            }
        }
        // Energy.
        let mut e_el = 0.0;
        for mu in 0..n {
            for nu in 0..n {
                e_el += 0.5 * d[(mu, nu)] * (h[(mu, nu)] + f[(mu, nu)]);
            }
        }
        energy = e_el + e_nuc;

        // DIIS error e = X ᵀ(FDS − SDF) X.
        let fds = f.matmul(&d).matmul(&s);
        let sdf = s.matmul(&d).matmul(&f);
        let mut err = fds;
        err.axpy(-1.0, &sdf);
        let err = x.t_matmul(&err).matmul(&x);
        let err_norm = err.norm();

        if err_norm < opts.conv {
            converged = true;
            // Final orbitals from this Fock matrix.
            let fp = x.t_matmul(&f).matmul(&x);
            let e = eigh(&fp);
            c = x.matmul(&e.eigenvectors);
            mo_energies = e.eigenvalues;
            break;
        }

        // DIIS extrapolation.
        let f_use = if opts.diis_depth >= 2 {
            diis_focks.push(f.clone());
            diis_errs.push(err);
            if diis_focks.len() > opts.diis_depth {
                diis_focks.remove(0);
                diis_errs.remove(0);
            }
            if diis_focks.len() >= 2 {
                diis_extrapolate(&diis_focks, &diis_errs).unwrap_or(f)
            } else {
                f
            }
        } else {
            f
        };

        let fp = x.t_matmul(&f_use).matmul(&x);
        let e = eigh(&fp);
        c = x.matmul(&e.eigenvectors);
        mo_energies = e.eigenvalues;
    }

    RhfResult {
        energy,
        e_nuc,
        mo_coeffs: c,
        mo_energies,
        n_occ: nocc,
        iterations,
        converged,
        s_ao: s,
        h_ao: h,
        eri_ao: eri,
    }
}

/// Solve the DIIS linear system and mix the stored Fock matrices.
fn diis_extrapolate(focks: &[Matrix], errs: &[Matrix]) -> Option<Matrix> {
    let m = focks.len();
    // B matrix with the Lagrange constraint row/column.
    let mut b = Matrix::zeros(m + 1, m + 1);
    for i in 0..m {
        for j in 0..m {
            b[(i, j)] = errs[i].dot(&errs[j]);
        }
        b[(i, m)] = -1.0;
        b[(m, i)] = -1.0;
    }
    let mut rhs = vec![0.0; m + 1];
    rhs[m] = -1.0;
    let coef = lu_solve(&b, &rhs).ok()?;
    let (nr, nc) = focks[0].shape();
    let mut f = Matrix::zeros(nr, nc);
    for i in 0..m {
        f.axpy(coef[i], &focks[i]);
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h2(r: f64) -> (Molecule, BasisSet) {
        let m = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, r])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        (m, b)
    }

    #[test]
    fn lowdin_orthogonalizes() {
        let (_, b) = h2(1.4);
        let s = overlap(&b);
        let x = lowdin(&s);
        let i = x.t_matmul(&s).matmul(&x);
        assert!(i.max_abs_diff(&Matrix::eye(b.n_basis())) < 1e-12);
    }

    #[test]
    fn h2_sto3g_energy() {
        // Literature RHF/STO-3G energy of H2 at R = 1.4 a0 is ≈ −1.1167 Eh.
        let (m, b) = h2(1.4);
        let res = rhf(&m, &b, &RhfOptions::default());
        assert!(res.converged, "SCF did not converge");
        assert!(
            (res.energy + 1.1167).abs() < 2e-3,
            "E = {} (expected ≈ −1.1167)",
            res.energy
        );
        assert_eq!(res.n_occ, 1);
        // Orbital ordering: bonding below antibonding.
        assert!(res.mo_energies[0] < res.mo_energies[1]);
    }

    #[test]
    fn he_sto3g_energy() {
        // Literature RHF/STO-3G He energy ≈ −2.8078 Eh.
        let m = Molecule::from_symbols_bohr(&[("He", [0.0; 3])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        let res = rhf(&m, &b, &RhfOptions::default());
        assert!(res.converged);
        assert!((res.energy + 2.8078).abs() < 2e-3, "E = {}", res.energy);
    }

    #[test]
    fn mo_orthonormality() {
        let (m, b) = h2(1.4);
        let res = rhf(&m, &b, &RhfOptions::default());
        let ctsc = res.mo_coeffs.t_matmul(&res.s_ao).matmul(&res.mo_coeffs);
        assert!(ctsc.max_abs_diff(&Matrix::eye(b.n_basis())) < 1e-10);
    }

    #[test]
    fn water_scf_converges() {
        let m = Molecule::from_symbols_bohr(
            &[
                ("O", [0.0, 0.0, 0.0]),
                ("H", [0.0, 1.43, 1.11]),
                ("H", [0.0, -1.43, 1.11]),
            ],
            0,
        );
        let b = BasisSet::build(&m, "sto-3g");
        let res = rhf(&m, &b, &RhfOptions::default());
        assert!(
            res.converged,
            "water SCF failed after {} iterations",
            res.iterations
        );
        // Literature RHF/STO-3G water energies sit near −74.96 Eh for
        // geometries in this range; accept a broad physical window.
        assert!(
            res.energy < -74.0 && res.energy > -76.0,
            "E = {}",
            res.energy
        );
        assert_eq!(res.n_occ, 5);
    }

    #[test]
    fn diis_beats_plain_iteration() {
        let m = Molecule::from_symbols_bohr(
            &[
                ("O", [0.0, 0.0, 0.0]),
                ("H", [0.0, 1.43, 1.11]),
                ("H", [0.0, -1.43, 1.11]),
            ],
            0,
        );
        let b = BasisSet::build(&m, "sto-3g");
        let with = rhf(
            &m,
            &b,
            &RhfOptions {
                diis_depth: 8,
                ..Default::default()
            },
        );
        let without = rhf(
            &m,
            &b,
            &RhfOptions {
                diis_depth: 0,
                max_iter: 300,
                ..Default::default()
            },
        );
        assert!(with.converged && without.converged);
        assert!((with.energy - without.energy).abs() < 1e-7);
        assert!(with.iterations <= without.iterations);
    }

    #[test]
    fn hydrogen_atom_core_orbitals_variational() {
        // Core-Hamiltonian ground state of H atom = exact RHF for 1 e⁻;
        // with an even-tempered basis the energy approaches −0.5 from above.
        let small = BasisSet::even_tempered_s([0.0; 3], 4, 0.1, 3.0);
        let big = BasisSet::even_tempered_s([0.0; 3], 10, 0.02, 2.5);
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0; 3])], 0);
        let (_, e_small) = core_orbitals(&small, &mol);
        let (_, e_big) = core_orbitals(&big, &mol);
        assert!(e_small[0] > -0.5);
        assert!(e_big[0] > -0.5);
        assert!(e_big[0] < e_small[0], "bigger basis must be lower");
        assert!(
            e_big[0] < -0.499,
            "10-term even-tempered should be near-exact: {}",
            e_big[0]
        );
    }

    #[test]
    fn svp_lower_than_sto3g() {
        // Bigger basis, lower RHF energy (variational in basis size when
        // the smaller set's span is nearly contained — holds for H2).
        let (m, b1) = h2(1.4);
        let b2 = BasisSet::build(&m, "svp");
        let e1 = rhf(&m, &b1, &RhfOptions::default());
        let e2 = rhf(&m, &b2, &RhfOptions::default());
        assert!(e2.converged);
        assert!(
            e2.energy < e1.energy,
            "svp {} !< sto-3g {}",
            e2.energy,
            e1.energy
        );
    }
}
