//! AO→MO integral transformation and frozen-core folding.
//!
//! Produces the [`MoIntegrals`] record the FCI driver consumes: an active
//! window of `n_orb` orbitals with the effective one-electron matrix
//! `h_pq`, the chemist's-notation two-electron tensor `(pq|rs)` and a core
//! energy constant folding in both the nuclear repulsion and any frozen
//! doubly occupied orbitals.

use fci_ints::EriTensor;
use fci_linalg::Matrix;

/// Molecular-orbital integrals over an active orbital window.
#[derive(Clone, Debug)]
pub struct MoIntegrals {
    /// Number of active orbitals.
    pub n_orb: usize,
    /// Effective one-electron integrals `h_pq` (n_orb × n_orb).
    pub h: Matrix,
    /// Two-electron integrals `(pq|rs)` over active orbitals.
    pub eri: EriTensor,
    /// Constant: nuclear repulsion + frozen-core energy.
    pub e_core: f64,
    /// Irrep of each active orbital (all zero when symmetry is off).
    pub orb_sym: Vec<u8>,
    /// Number of irreps (1, 2, 4, or 8).
    pub n_irrep: usize,
}

impl MoIntegrals {
    /// Assign orbital symmetry labels after construction.
    pub fn with_symmetry(mut self, orb_sym: Vec<u8>, n_irrep: usize) -> Self {
        assert_eq!(orb_sym.len(), self.n_orb);
        assert!(matches!(n_irrep, 1 | 2 | 4 | 8));
        assert!(orb_sym.iter().all(|&g| (g as usize) < n_irrep));
        self.orb_sym = orb_sym;
        self.n_irrep = n_irrep;
        self
    }
}

/// Transform AO integrals to the MO basis and fold a frozen core.
///
/// * `h_ao`, `eri_ao` — AO integrals;
/// * `c` — MO coefficients (AO × MO), e.g. from [`crate::rhf`];
/// * `e_nuc` — nuclear repulsion;
/// * `n_frozen` — number of lowest MOs folded into the core as doubly
///   occupied;
/// * `n_active` — number of MOs after the frozen ones to keep (pass
///   `c.ncols() - n_frozen` for "all the rest").
pub fn transform_integrals(
    h_ao: &Matrix,
    eri_ao: &EriTensor,
    c: &Matrix,
    e_nuc: f64,
    n_frozen: usize,
    n_active: usize,
) -> MoIntegrals {
    let nao = h_ao.nrows();
    let nmo = c.ncols();
    assert_eq!(h_ao.ncols(), nao);
    assert_eq!(c.nrows(), nao);
    assert!(n_frozen + n_active <= nmo, "window exceeds MO count");

    let nw = n_frozen + n_active;
    // Window coefficients: frozen + active MOs only (saves transform work).
    let cw = Matrix::from_fn(nao, nw, |i, j| c[(i, j)]);

    // One-electron: h_MO = Cᵀ h C over the window.
    let h_mo = cw.t_matmul(h_ao).matmul(&cw);

    // Two-electron quarter transforms, O(N⁵):
    // t1[p, ν, λ, σ] = Σ_μ C_{μp}(μν|λσ), etc. Store as nested Vec of
    // matrices to keep the index juggling readable; windows are small.
    let full = |p: usize, q: usize, r: usize, s: usize| eri_ao.get(p, q, r, s);
    // Stage 1+2: (pq|λσ) for window p ≥ q.
    let npair_w = nw * (nw + 1) / 2;
    let mut half = vec![Matrix::zeros(nao, nao); npair_w];
    {
        // tmp[ν][λσ] per p: t(ν,λ,σ) = Σ_μ C_{μp} (μν|λσ)
        let mut t = vec![0.0; nao * nao * nao];
        for p in 0..nw {
            t.iter_mut().for_each(|x| *x = 0.0);
            for mu in 0..nao {
                let cmp = cw[(mu, p)];
                if cmp == 0.0 {
                    continue;
                }
                for nu in 0..nao {
                    for la in 0..nao {
                        for sg in 0..=la {
                            let v = cmp * full(mu, nu, la, sg);
                            t[(nu * nao + la) * nao + sg] += v;
                            if la != sg {
                                t[(nu * nao + sg) * nao + la] += v;
                            }
                        }
                    }
                }
            }
            for q in 0..=p {
                let hm = &mut half[p * (p + 1) / 2 + q];
                for la in 0..nao {
                    for sg in 0..nao {
                        let mut acc = 0.0;
                        for nu in 0..nao {
                            acc += cw[(nu, q)] * t[(nu * nao + la) * nao + sg];
                        }
                        hm[(la, sg)] = acc;
                    }
                }
            }
        }
    }
    // Stages 3+4: (pq|rs) = Cᵀ half[pq] C.
    let mut eri_w = EriTensor::zeros(nw);
    for p in 0..nw {
        for q in 0..=p {
            let m = cw.t_matmul(&half[p * (p + 1) / 2 + q]).matmul(&cw);
            for r in 0..nw {
                for s in 0..=r {
                    if p * (p + 1) / 2 + q >= r * (r + 1) / 2 + s {
                        eri_w.set(p, q, r, s, m[(r, s)]);
                    }
                }
            }
        }
    }

    // Frozen-core folding over window indices [0, n_frozen).
    let mut e_core = e_nuc;
    for i in 0..n_frozen {
        e_core += 2.0 * h_mo[(i, i)];
        for j in 0..n_frozen {
            e_core += 2.0 * eri_w.get(i, i, j, j) - eri_w.get(i, j, j, i);
        }
    }
    let mut h_act = Matrix::zeros(n_active, n_active);
    for p in 0..n_active {
        for q in 0..n_active {
            let (pp, qq) = (p + n_frozen, q + n_frozen);
            let mut v = h_mo[(pp, qq)];
            for i in 0..n_frozen {
                v += 2.0 * eri_w.get(pp, qq, i, i) - eri_w.get(pp, i, i, qq);
            }
            h_act[(p, q)] = v;
        }
    }
    let mut eri_act = EriTensor::zeros(n_active);
    for p in 0..n_active {
        for q in 0..=p {
            for r in 0..=p {
                for s in 0..=r {
                    eri_act.set(
                        p,
                        q,
                        r,
                        s,
                        eri_w.get(p + n_frozen, q + n_frozen, r + n_frozen, s + n_frozen),
                    );
                }
            }
        }
    }

    MoIntegrals {
        n_orb: n_active,
        h: h_act,
        eri: eri_act,
        e_core,
        orb_sym: vec![0; n_active],
        n_irrep: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhf::{rhf, RhfOptions};
    use fci_ints::{BasisSet, Molecule};

    fn h2_scf() -> (crate::rhf::RhfResult, f64) {
        let m = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, 1.4])], 0);
        let b = BasisSet::build(&m, "sto-3g");
        let res = rhf(&m, &b, &RhfOptions::default());
        let e_nuc = m.nuclear_repulsion();
        (res, e_nuc)
    }

    #[test]
    fn identity_transform_is_identity() {
        let (res, e_nuc) = h2_scf();
        let n = res.h_ao.nrows();
        let c = Matrix::eye(n);
        let mo = transform_integrals(&res.h_ao, &res.eri_ao, &c, e_nuc, 0, n);
        assert!(mo.h.max_abs_diff(&res.h_ao) < 1e-12);
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        assert!(
                            (mo.eri.get(p, q, r, s) - res.eri_ao.get(p, q, r, s)).abs() < 1e-12
                        );
                    }
                }
            }
        }
        assert!((mo.e_core - e_nuc).abs() < 1e-15);
    }

    #[test]
    fn hf_energy_from_mo_integrals() {
        // E_RHF = e_nuc + 2Σ_i h_ii + Σ_ij [2(ii|jj) − (ij|ji)]
        // must reproduce the SCF energy when evaluated in the MO basis.
        let (res, e_nuc) = h2_scf();
        let n = res.h_ao.nrows();
        let mo = transform_integrals(&res.h_ao, &res.eri_ao, &res.mo_coeffs, e_nuc, 0, n);
        let mut e = mo.e_core;
        for i in 0..res.n_occ {
            e += 2.0 * mo.h[(i, i)];
            for j in 0..res.n_occ {
                e += 2.0 * mo.eri.get(i, i, j, j) - mo.eri.get(i, j, j, i);
            }
        }
        assert!((e - res.energy).abs() < 1e-9, "{e} vs {}", res.energy);
    }

    #[test]
    fn freezing_all_occupied_gives_hf_core_energy() {
        let (res, e_nuc) = h2_scf();
        let mo = transform_integrals(&res.h_ao, &res.eri_ao, &res.mo_coeffs, e_nuc, res.n_occ, 1);
        assert!((mo.e_core - res.energy).abs() < 1e-9);
        assert_eq!(mo.n_orb, 1);
    }

    #[test]
    fn mo_eri_brillouin_symmetries() {
        let (res, e_nuc) = h2_scf();
        let n = res.h_ao.nrows();
        let mo = transform_integrals(&res.h_ao, &res.eri_ao, &res.mo_coeffs, e_nuc, 0, n);
        // 8-fold symmetry holds by storage; h is symmetric.
        assert!(mo.h.is_symmetric(1e-10));
        assert_eq!(mo.eri.get(0, 1, 0, 1), mo.eri.get(1, 0, 1, 0));
    }

    #[test]
    fn water_frozen_core_window() {
        let m = Molecule::from_symbols_bohr(
            &[
                ("O", [0.0, 0.0, 0.0]),
                ("H", [0.0, 1.43, 1.11]),
                ("H", [0.0, -1.43, 1.11]),
            ],
            0,
        );
        let b = BasisSet::build(&m, "sto-3g");
        let res = rhf(&m, &b, &RhfOptions::default());
        let mo = transform_integrals(
            &res.h_ao,
            &res.eri_ao,
            &res.mo_coeffs,
            m.nuclear_repulsion(),
            1,
            6,
        );
        assert_eq!(mo.n_orb, 6);
        // The frozen 1s core contributes a large negative constant.
        assert!(mo.e_core < m.nuclear_repulsion());
        assert!(mo.h.is_symmetric(1e-9));
    }
}
