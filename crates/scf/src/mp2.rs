//! Canonical closed-shell MP2.
//!
//! Second-order Møller–Plesset perturbation theory is the cheapest
//! correlated method; it serves here as an *independent cross-check* of
//! the FCI machinery: for weakly correlated closed-shell systems the MP2
//! correlation energy must land in the same ballpark as (and for
//! two-electron systems, below in magnitude than) the FCI correlation
//! energy, using nothing but the SCF orbitals and the transformed
//! integrals.

use crate::motran::transform_integrals;
use crate::rhf::RhfResult;

/// MP2 correlation energy (hartree) from a converged RHF result.
///
/// `E² = Σ_{ijab} (ia|jb) [2(ia|jb) − (ib|ja)] / (εᵢ + εⱼ − εₐ − ε_b)`
/// with i,j doubly occupied and a,b virtual canonical orbitals.
pub fn mp2_correlation(scf: &RhfResult) -> f64 {
    assert!(scf.converged, "MP2 requires a converged RHF reference");
    let nmo = scf.mo_coeffs.ncols();
    let nocc = scf.n_occ;
    let nvirt = nmo - nocc;
    assert!(nvirt > 0, "no virtual orbitals — MP2 is identically zero");
    let mo = transform_integrals(&scf.h_ao, &scf.eri_ao, &scf.mo_coeffs, 0.0, 0, nmo);
    let e = &scf.mo_energies;
    let mut e2 = 0.0;
    for i in 0..nocc {
        for j in 0..nocc {
            for a in nocc..nmo {
                for b in nocc..nmo {
                    let iajb = mo.eri.get(i, a, j, b);
                    let ibja = mo.eri.get(i, b, j, a);
                    let denom = e[i] + e[j] - e[a] - e[b];
                    debug_assert!(denom < 0.0, "non-aufbau orbital ordering");
                    e2 += iajb * (2.0 * iajb - ibja) / denom;
                }
            }
        }
    }
    e2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhf::{rhf, RhfOptions};
    use fci_ints::{BasisSet, Molecule};

    #[test]
    fn h2_mp2_matches_explicit_two_level_formula() {
        // Minimal-basis H2 has exactly one occupied (g) and one virtual
        // (u) orbital: E2 = (gu|gu)² · (2 − 1) / (2εg − 2εu).
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0; 3]), ("H", [0.0, 0.0, 1.4])], 0);
        let basis = BasisSet::build(&mol, "sto-3g");
        let scf = rhf(&mol, &basis, &RhfOptions::default());
        let mo = transform_integrals(&scf.h_ao, &scf.eri_ao, &scf.mo_coeffs, 0.0, 0, 2);
        let k = mo.eri.get(0, 1, 0, 1);
        let expect = k * k / (2.0 * (scf.mo_energies[0] - scf.mo_energies[1]));
        let got = mp2_correlation(&scf);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
        assert!(got < 0.0);
    }

    #[test]
    fn mp2_bounded_by_fci_for_two_electrons() {
        // For a two-electron closed-shell system, |E2| < |E_corr(FCI)|
        // does not hold in general, but the two must agree within ~50 %
        // near equilibrium — a sanity corridor for the whole pipeline.
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0; 3]), ("H", [0.0, 0.0, 1.4])], 0);
        let basis = BasisSet::build(&mol, "sto-3g");
        let scf = rhf(&mol, &basis, &RhfOptions::default());
        let e2 = mp2_correlation(&scf);
        // FCI correlation of H2/STO-3G at 1.4 a0 is ≈ −0.0206 Eh.
        assert!(e2 < -0.005 && e2 > -0.05, "E2 = {e2}");
    }

    #[test]
    fn water_mp2_physical_window() {
        let mol = Molecule::from_symbols_bohr(
            &[
                ("O", [0.0, 0.0, 0.0]),
                ("H", [0.0, 1.43, 1.11]),
                ("H", [0.0, -1.43, 1.11]),
            ],
            0,
        );
        let basis = BasisSet::build(&mol, "sto-3g");
        let scf = rhf(&mol, &basis, &RhfOptions::default());
        let e2 = mp2_correlation(&scf);
        // Minimal-basis water MP2 correlation sits in the tens of mEh.
        assert!(e2 < -0.01 && e2 > -0.2, "E2 = {e2}");
    }
}
