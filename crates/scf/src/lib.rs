#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Self-consistent field and integral transformation layer.
//!
//! The FCI program consumes *molecular orbital* integrals. This crate turns
//! the raw AO integrals from `fci-ints` into that form:
//!
//! * [`lowdin`] — symmetric (Löwdin) orthogonalization `X = S^{−1/2}`;
//! * [`rhf`] — restricted Hartree–Fock with DIIS convergence acceleration
//!   (closed-shell reference orbitals; also the baseline energy the FCI
//!   correlation energy is measured against);
//! * [`core_orbitals`] — core-Hamiltonian eigenvectors in the Löwdin basis,
//!   used as FCI orbitals for open-shell systems (the FCI energy is
//!   invariant to orthogonal rotations of the orbital set, so any
//!   orthonormal set spanning the AO space is exact — only the *rate of
//!   convergence* of the iterative diagonalizer changes);
//! * [`motran`] — the O(n⁵) quarter-transform AO→MO four-index
//!   transformation and frozen-core folding, producing the
//!   [`MoIntegrals`] consumed by `fci-core`.

pub mod motran;
pub mod mp2;
pub mod rhf;
pub mod symadapt;
pub mod uhf;

pub use motran::{transform_integrals, MoIntegrals};
pub use mp2::mp2_correlation;
pub use rhf::{core_orbitals, lowdin, rhf, RhfOptions, RhfResult};
pub use symadapt::symmetry_adapt;
pub use uhf::{uhf, UhfResult};
