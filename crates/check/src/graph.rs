//! Workspace call graph + transitive hot-path analyses.
//!
//! A lightweight item parser over the [`crate::lex`] token stream finds
//! every `fn` item (free functions and `impl` methods, with body token
//! ranges) and every call site inside those bodies. Call sites are
//! resolved by name/path heuristics — this is *not* type inference, so
//! the resolver is deliberately conservative and keeps an explicit
//! **unresolved bucket** instead of guessing:
//!
//! * `path::f(…)` / `Type::f(…)` — resolved by impl-type + name, or by
//!   the module/crate the qualifier names;
//! * bare `f(…)` — same file, then same crate, then workspace-unique;
//!   capitalized non-matches are treated as tuple-struct/enum
//!   constructors and ignored;
//! * `.f(…)` method calls — resolved only when `f` is defined exactly
//!   once across all workspace impls *and* is not a common std method
//!   name ([`STD_METHODS`]); everything else lands in the unresolved
//!   bucket.
//!
//! On top of the graph sit two transitive analyses rooted at the σ-task
//! and GEMM kernels ([`DEFAULT_ROOTS`]): **allocation-freedom** (`vec!`,
//! `Vec::new`, `Vec::with_capacity`, `Box::new`, `format!`, `.to_vec()`,
//! `.collect()`, `.reserve(`, `.push(`, `.extend(`, `.to_string()`) and
//! **panic-freedom** (`.unwrap()` outside the `.lock().unwrap()` idiom,
//! `.expect(`, `panic!`, `todo!`, `unimplemented!`). A helper added
//! three calls below `dgemm` can no longer silently reintroduce heap
//! traffic or a panic into the zero-alloc hot path. Slice indexing
//! without `get` is tracked as a *soft* third category (counted, not
//! failing, unless `--strict-index`): the `Matrix` index operator is the
//! idiomatic access path throughout the kernels and panics only on
//! out-of-bounds, which the dimension checks exclude.
//!
//! Sites are suppressed by the same `lint: allow(alloc)` /
//! `lint: allow(unwrap)` / `lint: allow(index)` waivers the lint rules
//! honor, so one reviewed comment covers both engines.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::lex::TokKind;
use crate::lint::FileCtx;
use fci_obs::JsonValue;

/// Hot-path roots the transitive analyses start from: the σ-task body
/// and the GEMM dispatch/macro/micro kernels.
pub const DEFAULT_ROOTS: [&str; 9] = [
    "process_task_into",
    "dgemm",
    "packed_dgemm",
    "small_dgemm",
    "run_item",
    "micro_8x4",
    "micro_edge",
    // The sparse engine's per-iteration kernels (crates/sparse).
    "spmv_rows",
    "scan_gradient",
];

/// Method names resolved to std/core rather than workspace impls; calls
/// to these never create graph edges and are not reported as unresolved.
pub(crate) const STD_METHODS: [&str; 112] = [
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_mut_ptr",
    "as_ptr",
    "as_ref",
    "as_secs_f64",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "capacity",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "chunks_exact",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "div_ceil",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_unchecked",
    "get_unchecked_mut",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_none_or",
    "is_ok",
    "is_some",
    "is_some_and",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "next",
    "ok",
    "parse",
    "position",
    "powi",
    "push",
    "remove",
    "reserve",
    "resize",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "sort_unstable",
    "splice",
    "split",
    "sqrt",
    "starts_with",
    "store",
    "sum",
    "swap_remove",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "zip",
];

/// Identifiers that look like calls but are control flow or bindings.
const KEYWORDS: [&str; 22] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "fn",
    "move", "ref", "in", "as", "dyn", "unsafe", "const", "static", "await", "box", "yield",
];

/// One `fn` item in the workspace.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Crate the file belongs to (directory under `crates/`, or the
    /// root package name for `src/`).
    pub krate: String,
    /// Workspace-relative file path with forward slashes.
    pub file: String,
    /// Enclosing `impl` type, if the fn is a method/associated fn.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `#[cfg(test)]` region or a `tests/` file — excluded from
    /// resolution so test helpers never shadow production fns.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` or bare `name` for display.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// What a finding inside a fn body is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Heap-allocation site.
    Alloc,
    /// Panic site.
    Panic,
    /// Slice/matrix indexing without `get` (soft category).
    Index,
}

/// One alloc/panic/index site inside a fn body.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Category.
    pub kind: FindingKind,
    /// The matched construct (e.g. `vec!`, `.push(`, `.unwrap()`).
    pub what: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// How a call site was written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `f(…)`.
    Bare,
    /// `qual::f(…)`.
    Path,
    /// `.f(…)`.
    Method,
}

/// A call site that could not be resolved to a unique workspace fn.
#[derive(Clone, Debug)]
pub struct UnresolvedCall {
    /// Index of the calling fn in [`CallGraph::fns`].
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Path qualifier, for `qual::f` calls.
    pub qual: Option<String>,
    /// Syntactic form.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: u32,
    /// Why resolution gave up: `"unknown"` (no candidate) or
    /// `"ambiguous"` (several).
    pub reason: &'static str,
}

/// The workspace call graph plus per-fn local findings.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All fn items, in file order.
    pub fns: Vec<FnItem>,
    /// Resolved callee indices per fn (deduplicated).
    pub edges: Vec<Vec<usize>>,
    /// Call sites without a unique target.
    pub unresolved: Vec<UnresolvedCall>,
    /// Alloc/panic/index sites per fn (waived sites excluded).
    pub findings: Vec<Vec<Finding>>,
}

/// Raw call site before resolution.
struct RawCall {
    name: String,
    qual: Option<String>,
    kind: CallKind,
    line: u32,
    /// Code-token index of the callee name (for innermost-fn lookup).
    ci: usize,
}

/// Per-file parse product.
struct FileItems {
    /// (fn metadata, body code-token range).
    fns: Vec<(FnItem, Option<(usize, usize)>)>,
    calls: Vec<RawCall>,
    findings: Vec<(usize, Finding)>,
}

fn crate_of(relpath: &str) -> String {
    let mut parts = relpath.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("?").to_string(),
        Some("src") => "fcix".to_string(),
        Some(other) => other.to_string(),
        None => "?".to_string(),
    }
}

fn is_test_path(relpath: &str) -> bool {
    relpath.contains("/tests/") || relpath.starts_with("tests/")
}

/// Skip a balanced `<…>` group starting at the `<` at code index `ci`;
/// returns the index one past the matching `>`.
pub(crate) fn skip_angles(ctx: &FileCtx, mut ci: usize) -> usize {
    let mut depth = 0i64;
    while ci < ctx.code.len() {
        match ctx.ctext(ci) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return ci + 1;
                }
            }
            ";" | "{" => return ci, // malformed / not generics — bail
            _ => {}
        }
        ci += 1;
    }
    ci
}

/// Parse one file: fn items with body ranges, call sites, findings.
fn parse_file(ctx: &FileCtx, relpath: &str) -> FileItems {
    let krate = crate_of(relpath);
    let test_file = is_test_path(relpath);
    let mut out = FileItems {
        fns: Vec::new(),
        calls: Vec::new(),
        findings: Vec::new(),
    };

    // Pass 1: impl scopes and fn items.
    let mut depth = 0i64;
    let mut impl_stack: Vec<(Option<String>, i64)> = Vec::new();
    let mut pending_impl: Option<Option<String>> = None;
    let n = ctx.code.len();
    let mut ci = 0;
    while ci < n {
        let text = ctx.ctext(ci);
        match text {
            "{" => {
                depth += 1;
                if let Some(ty) = pending_impl.take() {
                    impl_stack.push((ty, depth));
                }
            }
            "}" => {
                if let Some((_, d)) = impl_stack.last() {
                    if *d == depth {
                        impl_stack.pop();
                    }
                }
                depth -= 1;
            }
            "impl" if ctx.ctok(ci).kind == TokKind::Ident => {
                pending_impl = Some(parse_impl_type(ctx, ci + 1));
            }
            "fn" if ctx.ctok(ci).kind == TokKind::Ident
                && ctx.code.get(ci + 1).is_some()
                && ctx.ctok(ci + 1).kind == TokKind::Ident =>
            {
                let name_tok = ctx.ctext(ci + 1).to_string();
                let line = ctx.ctok(ci).line;
                let body = fn_body_range(ctx, ci + 2);
                let in_test_region = ctx.in_test.get(line as usize - 1).copied().unwrap_or(false);
                out.fns.push((
                    FnItem {
                        krate: krate.clone(),
                        file: relpath.to_string(),
                        impl_type: impl_stack.last().and_then(|(t, _)| t.clone()),
                        name: name_tok,
                        line,
                        is_test: test_file || in_test_region,
                    },
                    body,
                ));
            }
            _ => {}
        }
        ci += 1;
    }

    // Pass 2: call sites and findings over the whole token stream; the
    // caller attribution (innermost enclosing fn body) happens later.
    scan_calls_and_findings(ctx, relpath, &mut out);
    out
}

/// The impl'd type name: last path segment before the opening `{`,
/// taking the `for` side when present (`impl Trait for Type`).
pub(crate) fn parse_impl_type(ctx: &FileCtx, mut ci: usize) -> Option<String> {
    let mut candidate: Option<String> = None;
    while ci < ctx.code.len() {
        let text = ctx.ctext(ci);
        match text {
            "{" | ";" => break,
            "<" => ci = skip_angles(ctx, ci),
            "for" => {
                candidate = None;
                ci += 1;
            }
            _ => {
                if ctx.ctok(ci).kind == TokKind::Ident && text != "dyn" && text != "mut" {
                    candidate = Some(text.to_string());
                }
                ci += 1;
            }
        }
    }
    candidate
}

/// Body code-token range of a fn whose signature starts at `ci` (just
/// after the name): `(open_brace_idx, close_brace_idx)` inclusive, or
/// `None` for a trait method ending in `;`.
pub(crate) fn fn_body_range(ctx: &FileCtx, mut ci: usize) -> Option<(usize, usize)> {
    let n = ctx.code.len();
    let mut paren = 0i64;
    while ci < n {
        match ctx.ctext(ci) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "<" if paren == 0 => {
                ci = skip_angles(ctx, ci);
                continue;
            }
            ";" if paren == 0 => return None,
            "{" if paren == 0 => {
                let open = ci;
                let mut depth = 0i64;
                while ci < n {
                    match ctx.ctext(ci) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((open, ci));
                            }
                        }
                        _ => {}
                    }
                    ci += 1;
                }
                return Some((open, n.saturating_sub(1)));
            }
            _ => {}
        }
        ci += 1;
    }
    None
}

fn scan_calls_and_findings(ctx: &FileCtx, relpath: &str, out: &mut FileItems) {
    let n = ctx.code.len();
    let mut push_finding = |ci: usize, kind: FindingKind, what: &str, rule: &str| {
        let line = ctx.ctok(ci).line;
        if !ctx.waived(line as usize, rule) {
            out.findings.push((
                ci,
                Finding {
                    kind,
                    what: what.to_string(),
                    file: relpath.to_string(),
                    line,
                },
            ));
        }
    };

    for ci in 0..n {
        let tok = ctx.ctok(ci);
        let text = ctx.ctext(ci);
        match tok.kind {
            TokKind::Ident => {
                // Macros: alloc/panic macros are findings, never calls.
                if ctx.ctext(ci + 1) == "!" {
                    match text {
                        "vec" | "format" => {
                            push_finding(ci, FindingKind::Alloc, &format!("{text}!"), "alloc")
                        }
                        "panic" | "todo" | "unimplemented" => {
                            push_finding(ci, FindingKind::Panic, &format!("{text}!"), "unwrap")
                        }
                        _ => {}
                    }
                    continue;
                }
                // Path constructors that allocate.
                if (text == "Vec" || text == "Box") && ctx.seq_at(ci + 1, &[":", ":"]) {
                    let tail = ctx.ctext(ci + 3);
                    if tail == "new" || (text == "Vec" && tail == "with_capacity") {
                        push_finding(ci, FindingKind::Alloc, &format!("{text}::{tail}"), "alloc");
                    }
                }
                // Call shapes: `name(`, `qual::name(`, `name::<T>(`.
                let prev = if ci > 0 { ctx.ctext(ci - 1) } else { "" };
                if call_paren_after(ctx, ci + 1).is_none() {
                    continue;
                }
                if KEYWORDS.contains(&text) || prev == "fn" || prev == "." {
                    // Method calls are handled at the `.` token below.
                    continue;
                }
                let is_path = ci >= 2 && prev == ":" && ctx.ctext(ci - 2) == ":";
                if is_path {
                    let qual = if ci >= 3 && ctx.ctok(ci - 3).kind == TokKind::Ident {
                        Some(ctx.ctext(ci - 3).to_string())
                    } else {
                        None
                    };
                    // Walk to the path root: `std::array::from_fn` must
                    // not resolve to a workspace `from_fn` by name.
                    let mut seg = ci;
                    while seg >= 3
                        && ctx.ctext(seg - 1) == ":"
                        && ctx.ctext(seg - 2) == ":"
                        && ctx.ctok(seg - 3).kind == TokKind::Ident
                    {
                        seg -= 3;
                    }
                    if matches!(ctx.ctext(seg), "std" | "core" | "alloc") {
                        continue;
                    }
                    out.calls.push(RawCall {
                        name: text.to_string(),
                        qual,
                        kind: CallKind::Path,
                        line: tok.line,
                        ci,
                    });
                } else {
                    out.calls.push(RawCall {
                        name: text.to_string(),
                        qual: None,
                        kind: CallKind::Bare,
                        line: tok.line,
                        ci,
                    });
                }
            }
            TokKind::Punct if text == "." => {
                let name = ctx.ctext(ci + 1);
                if ctx
                    .code
                    .get(ci + 1)
                    .is_none_or(|&i| ctx.toks[i].kind != TokKind::Ident)
                {
                    continue;
                }
                if call_paren_after(ctx, ci + 2).is_none() {
                    continue;
                }
                // Findings on method names, idiom-aware.
                match name {
                    "unwrap" if ctx.ctext(ci + 3) == ")" => {
                        let lock_idiom = ci >= 4 && ctx.seq_at(ci - 4, &[".", "lock", "(", ")"]);
                        if !lock_idiom {
                            push_finding(ci, FindingKind::Panic, ".unwrap()", "unwrap");
                        }
                    }
                    "expect" => push_finding(ci, FindingKind::Panic, ".expect(", "unwrap"),
                    "to_vec" | "to_string" if ctx.ctext(ci + 3) == ")" => {
                        push_finding(ci, FindingKind::Alloc, &format!(".{name}()"), "alloc")
                    }
                    "collect" => push_finding(ci, FindingKind::Alloc, ".collect(", "alloc"),
                    "reserve" | "push" | "extend" => {
                        push_finding(ci, FindingKind::Alloc, &format!(".{name}("), "alloc")
                    }
                    _ => {}
                }
                if STD_METHODS.contains(&name) {
                    continue;
                }
                out.calls.push(RawCall {
                    name: name.to_string(),
                    qual: None,
                    kind: CallKind::Method,
                    line: ctx.ctok(ci + 1).line,
                    ci: ci + 1,
                });
            }
            // Indexing without `get`: `expr[` where expr ends in an
            // identifier, `)`, or `]` (soft category).
            TokKind::Punct if text == "[" && ci > 0 => {
                let prev = ctx.ctok(ci - 1);
                let pt = ctx.ctext(ci - 1);
                let indexing = (prev.kind == TokKind::Ident && !KEYWORDS.contains(&pt))
                    || pt == ")"
                    || pt == "]";
                if indexing {
                    push_finding(ci, FindingKind::Index, "[...]", "index");
                }
            }
            _ => {}
        }
    }
}

/// If a call's argument list opens at `ci` (allowing one `::<…>`
/// turbofish), return the index of the `(`.
fn call_paren_after(ctx: &FileCtx, ci: usize) -> Option<usize> {
    if ctx.ctext(ci) == "(" {
        return Some(ci);
    }
    if ctx.seq_at(ci, &[":", ":", "<"]) {
        let after = skip_angles(ctx, ci + 2);
        if ctx.ctext(after) == "(" {
            return Some(after);
        }
    }
    None
}

/// Build the call graph for every `.rs` file under `root`.
pub fn build_workspace_graph(root: &Path) -> std::io::Result<CallGraph> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();

    let mut g = CallGraph::default();
    // Per file: (body lo, body hi, fn index) for caller attribution.
    let mut bodies: Vec<Vec<(usize, usize, usize)>> = Vec::new();
    let mut raw_calls: Vec<(usize, RawCall)> = Vec::new();
    let mut raw_findings: Vec<(usize, usize, Finding)> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        let src = std::fs::read_to_string(f)?;
        let relpath = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileCtx::new(&src);
        let items = parse_file(&ctx, &relpath);
        let mut file_bodies = Vec::new();
        for (item, body) in items.fns {
            let id = g.fns.len();
            if let Some((lo, hi)) = body {
                file_bodies.push((lo, hi, id));
            }
            g.fns.push(item);
        }
        bodies.push(file_bodies);
        for c in items.calls {
            raw_calls.push((fi, c));
        }
        for (ci, fnd) in items.findings {
            raw_findings.push((fi, ci, fnd));
        }
    }
    g.findings = vec![Vec::new(); g.fns.len()];

    // Innermost enclosing fn for a code-token index.
    let enclosing = |fi: usize, ci: usize| -> Option<usize> {
        bodies[fi]
            .iter()
            .filter(|(lo, hi, _)| *lo <= ci && ci <= *hi)
            .min_by_key(|(lo, hi, _)| hi - lo)
            .map(|&(_, _, id)| id)
    };

    // Resolution indexes over non-test fns.
    let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
    let mut by_type_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (id, f) in g.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        by_name.entry(f.name.clone()).or_default().push(id);
        if let Some(t) = &f.impl_type {
            methods_by_name.entry(f.name.clone()).or_default().push(id);
            by_type_name
                .entry((t.clone(), f.name.clone()))
                .or_default()
                .push(id);
        }
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); g.fns.len()];
    let mut unresolved = Vec::new();
    for (fi, call) in raw_calls {
        let Some(caller) = enclosing(fi, call.ci) else {
            continue; // top-level (const init) — not part of any fn
        };
        let caller_file = g.fns[caller].file.clone();
        let caller_crate = g.fns[caller].krate.clone();
        let target: Result<Option<usize>, &'static str> = match call.kind {
            CallKind::Method => match methods_by_name.get(call.name.as_str()) {
                Some(c) if c.len() == 1 => Ok(Some(c[0])),
                Some(_) => Err("ambiguous"),
                None => Err("unknown"),
            },
            CallKind::Path => {
                let qual = call.qual.clone().unwrap_or_default();
                if let Some(c) = by_type_name.get(&(qual.clone(), call.name.clone())) {
                    if c.len() == 1 {
                        Ok(Some(c[0]))
                    } else {
                        Err("ambiguous")
                    }
                } else {
                    // Module-qualified: prefer candidates whose path
                    // mentions the qualifier as a module or crate.
                    let cands = by_name.get(call.name.as_str()).cloned().unwrap_or_default();
                    let module_hit: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let f = &g.fns[id];
                            f.file.contains(&format!("/{qual}.rs"))
                                || f.file.contains(&format!("/{qual}/"))
                                || f.krate == qual
                                || format!("fci_{}", f.krate.replace('-', "_")) == qual
                        })
                        .collect();
                    let pick = if module_hit.len() == 1 {
                        Some(module_hit[0])
                    } else if cands.len() == 1 {
                        Some(cands[0])
                    } else {
                        None
                    };
                    match pick {
                        Some(id) => Ok(Some(id)),
                        None if cands.is_empty() => Err("unknown"),
                        None => Err("ambiguous"),
                    }
                }
            }
            CallKind::Bare => {
                let cands = by_name.get(call.name.as_str()).cloned().unwrap_or_default();
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| g.fns[id].file == caller_file)
                    .collect();
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| g.fns[id].krate == caller_crate)
                    .collect();
                if same_file.len() == 1 {
                    Ok(Some(same_file[0]))
                } else if same_file.is_empty() && same_crate.len() == 1 {
                    Ok(Some(same_crate[0]))
                } else if same_file.is_empty() && same_crate.is_empty() && cands.len() == 1 {
                    Ok(Some(cands[0]))
                } else if cands.is_empty() {
                    // Tuple-struct / enum-variant constructors, or
                    // closure invocations (`sink(…)`): closures are
                    // lowercase, so only capitalized names are silently
                    // treated as constructors.
                    if call.name.chars().next().is_some_and(char::is_uppercase) {
                        Ok(None)
                    } else {
                        Err("unknown")
                    }
                } else {
                    Err("ambiguous")
                }
            }
        };
        match target {
            Ok(Some(callee)) => {
                if !edges[caller].contains(&callee) {
                    edges[caller].push(callee);
                }
            }
            Ok(None) => {}
            Err(reason) => unresolved.push(UnresolvedCall {
                caller,
                name: call.name,
                qual: call.qual,
                kind: call.kind,
                line: call.line,
                reason,
            }),
        }
    }
    for (fi, ci, fnd) in raw_findings {
        if let Some(id) = enclosing(fi, ci) {
            g.findings[id].push(fnd);
        }
    }
    g.edges = edges;
    g.unresolved = unresolved;
    Ok(g)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A finding attributed to a root via its call chain.
#[derive(Clone, Debug)]
pub struct AttributedFinding {
    /// The site itself.
    pub finding: Finding,
    /// Qualified name of the fn containing the site.
    pub in_fn: String,
    /// Call chain from the root to that fn (`root → … → fn`).
    pub chain: Vec<String>,
}

/// Transitive analysis result for one root.
#[derive(Clone, Debug)]
pub struct HotPathReport {
    /// Root fn name.
    pub root: String,
    /// Number of reachable fns (including the root).
    pub reachable: usize,
    /// Allocation sites reachable from the root.
    pub alloc: Vec<AttributedFinding>,
    /// Panic sites reachable from the root.
    pub panic: Vec<AttributedFinding>,
    /// Soft count of index-without-get sites.
    pub index_sites: usize,
    /// Unresolved call sites inside reachable fns.
    pub unresolved: usize,
}

impl CallGraph {
    /// Resolve a fn by bare name (must be unique among non-test fns).
    pub fn find_fn(&self, name: &str) -> Option<usize> {
        let hits: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.name == name)
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            0 => None,
            1 => Some(hits[0]),
            _ => {
                // Bin targets carry local helpers (reference kernels in
                // the bench sweeps) that may shadow a library fn of the
                // same name; hot-path roots mean the library one.
                let lib: Vec<usize> = hits
                    .iter()
                    .copied()
                    .filter(|&i| !self.fns[i].file.contains("/bin/"))
                    .collect();
                match lib.len() {
                    1 => Some(lib[0]),
                    _ => None,
                }
            }
        }
    }

    /// BFS the graph from `root_name` and attribute every reachable
    /// alloc/panic/index finding with its call chain.
    pub fn hot_path_report(&self, root_name: &str) -> Option<HotPathReport> {
        let root = self.find_fn(root_name)?;
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut order = vec![root];
        let mut seen: std::collections::HashSet<usize> = order.iter().copied().collect();
        let mut qi = 0;
        while qi < order.len() {
            let u = order[qi];
            qi += 1;
            for &v in &self.edges[u] {
                if seen.insert(v) {
                    parent.insert(v, u);
                    order.push(v);
                }
            }
        }
        let chain_to = |mut id: usize| -> Vec<String> {
            let mut chain = vec![self.fns[id].qual_name()];
            while let Some(&p) = parent.get(&id) {
                chain.push(self.fns[p].qual_name());
                id = p;
            }
            chain.reverse();
            chain
        };
        let mut report = HotPathReport {
            root: root_name.to_string(),
            reachable: order.len(),
            alloc: Vec::new(),
            panic: Vec::new(),
            index_sites: 0,
            unresolved: 0,
        };
        for &id in &order {
            for f in &self.findings[id] {
                let att = AttributedFinding {
                    finding: f.clone(),
                    in_fn: self.fns[id].qual_name(),
                    chain: chain_to(id),
                };
                match f.kind {
                    FindingKind::Alloc => report.alloc.push(att),
                    FindingKind::Panic => report.panic.push(att),
                    FindingKind::Index => report.index_sites += 1,
                }
            }
        }
        report.unresolved = self
            .unresolved
            .iter()
            .filter(|u| order.contains(&u.caller))
            .count();
        Some(report)
    }

    /// Graph-level summary JSON: sizes and the unresolved bucket.
    pub fn to_json(&self) -> JsonValue {
        let edge_count: usize = self.edges.iter().map(Vec::len).sum();
        JsonValue::obj(vec![
            ("tool", JsonValue::Str("fcix-check graph".into())),
            ("fns", JsonValue::Num(self.fns.len() as f64)),
            ("edges", JsonValue::Num(edge_count as f64)),
            ("unresolved", JsonValue::Num(self.unresolved.len() as f64)),
        ])
    }
}

impl HotPathReport {
    /// Hard findings (alloc + panic); index sites are soft.
    pub fn is_clean(&self) -> bool {
        self.alloc.is_empty() && self.panic.is_empty()
    }

    /// JSON form used by `fcix-check graph --format json`.
    pub fn to_json(&self) -> JsonValue {
        let att = |list: &[AttributedFinding]| {
            JsonValue::Arr(
                list.iter()
                    .map(|a| {
                        JsonValue::obj(vec![
                            ("what", JsonValue::Str(a.finding.what.clone())),
                            ("file", JsonValue::Str(a.finding.file.clone())),
                            ("line", JsonValue::Num(a.finding.line as f64)),
                            ("fn", JsonValue::Str(a.in_fn.clone())),
                            (
                                "chain",
                                JsonValue::Arr(
                                    a.chain.iter().map(|c| JsonValue::Str(c.clone())).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            )
        };
        JsonValue::obj(vec![
            ("root", JsonValue::Str(self.root.clone())),
            ("reachable", JsonValue::Num(self.reachable as f64)),
            ("alloc", att(&self.alloc)),
            ("panic", att(&self.panic)),
            ("index_sites", JsonValue::Num(self.index_sites as f64)),
            ("unresolved", JsonValue::Num(self.unresolved as f64)),
            ("clean", JsonValue::Bool(self.is_clean())),
        ])
    }
}

/// Build the graph and run the transitive analyses for the given root
/// names (use [`DEFAULT_ROOTS`] for the standard set).
pub fn analyze_hot_paths(
    root: &Path,
    roots: &[&str],
) -> std::io::Result<(CallGraph, Vec<HotPathReport>)> {
    let g = build_workspace_graph(root)?;
    let reports = roots
        .iter()
        .filter_map(|r| g.hot_path_report(r))
        .collect::<Vec<_>>();
    Ok((g, reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(sources: &[(&str, &str)]) -> CallGraph {
        let dir = std::env::temp_dir().join(format!(
            "fcix-graph-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, src) in sources {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(&p, src).expect("write");
        }
        let g = build_workspace_graph(&dir).expect("graph");
        let _ = std::fs::remove_dir_all(&dir);
        g
    }

    #[test]
    fn parses_free_fns_and_methods() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn free() {}\nstruct S;\nimpl S {\n    pub fn m(&self) { free(); }\n}\n\
             impl Drop for S {\n    fn drop(&mut self) {}\n}\n",
        )]);
        let names: Vec<String> = g.fns.iter().map(FnItem::qual_name).collect();
        assert!(names.contains(&"free".to_string()), "{names:?}");
        assert!(names.contains(&"S::m".to_string()), "{names:?}");
        assert!(names.contains(&"S::drop".to_string()), "{names:?}");
        let m = g.find_fn("m").expect("m");
        let free = g.find_fn("free").expect("free");
        assert!(g.edges[m].contains(&free), "bare call resolved");
    }

    #[test]
    fn resolves_path_and_method_calls() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub struct T;\nimpl T {\n    pub fn build() -> T { T }\n    \
                 pub fn work(&self) {}\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn driver(t: &fci_a::T) {\n    let x = fci_a::T::build();\n    \
                 t.work();\n    x.work();\n}\n",
            ),
        ]);
        let driver = g.find_fn("driver").expect("driver");
        let build = g.find_fn("build").expect("build");
        let work = g.find_fn("work").expect("work");
        assert!(g.edges[driver].contains(&build), "T::build resolved");
        assert!(g.edges[driver].contains(&work), "unique method resolved");
    }

    #[test]
    fn ambiguous_methods_land_in_unresolved_bucket() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub struct A;\npub struct B;\nimpl A { pub fn go(&self) {} }\n\
             impl B { pub fn go(&self) {} }\n\
             pub fn f(a: &A) { a.go(); }\n",
        )]);
        let f = g.find_fn("f").expect("f");
        assert!(g.edges[f].is_empty(), "ambiguous method must not edge");
        assert!(g
            .unresolved
            .iter()
            .any(|u| u.name == "go" && u.reason == "ambiguous"));
    }

    #[test]
    fn std_methods_are_ignored_not_unresolved() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn f(v: &[f64]) -> usize { v.iter().count() + v.len() }\n",
        )]);
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn transitive_alloc_and_panic_findings() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { mid(); }\nfn mid() { deep(); }\n\
             fn deep() {\n    let v = vec![1];\n    let x: Option<i32> = None;\n    \
             x.unwrap();\n}\n\
             pub fn unrelated() { let v = vec![2]; }\n",
        )]);
        let r = g.hot_path_report("root").expect("report");
        assert_eq!(r.reachable, 3);
        assert_eq!(r.alloc.len(), 1, "{:?}", r.alloc);
        assert_eq!(r.panic.len(), 1, "{:?}", r.panic);
        assert_eq!(r.alloc[0].chain, vec!["root", "mid", "deep"]);
        assert!(!r.is_clean());
        // The unrelated fn's vec! does not leak into the root's report.
        let names: Vec<&str> = r.alloc.iter().map(|a| a.in_fn.as_str()).collect();
        assert!(!names.contains(&"unrelated"));
    }

    #[test]
    fn lock_unwrap_idiom_and_waivers_are_respected() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn root() {\n    M.lock().unwrap();\n    \
             // lint: allow(alloc) — warm-up only\n    buf.push(1);\n}\n",
        )]);
        let r = g.hot_path_report("root").expect("report");
        assert!(r.is_clean(), "alloc={:?} panic={:?}", r.alloc, r.panic);
    }

    #[test]
    fn test_fns_are_excluded_from_resolution() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { helper(); }\npub fn helper() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { let v = vec![9]; }\n}\n",
        )]);
        let r = g.hot_path_report("root").expect("report");
        assert!(
            r.alloc.is_empty(),
            "test helper must not shadow: {:?}",
            r.alloc
        );
    }

    #[test]
    fn index_sites_are_soft() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn root(v: &[f64]) -> f64 { v[0] + v[1] }\n",
        )]);
        let r = g.hot_path_report("root").expect("report");
        assert_eq!(r.index_sites, 2);
        assert!(r.is_clean(), "index is informational");
    }

    #[test]
    fn json_shapes_parse() {
        let g = graph_of(&[("crates/a/src/lib.rs", "pub fn root() {}\n")]);
        let r = g.hot_path_report("root").expect("report");
        let parsed = JsonValue::parse(&r.to_json().to_string()).expect("valid");
        assert_eq!(parsed.get("clean"), Some(&JsonValue::Bool(true)));
        let gs = JsonValue::parse(&g.to_json().to_string()).expect("valid");
        assert!(gs.get_f64("fns").unwrap() >= 1.0);
    }
}
