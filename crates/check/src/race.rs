//! Vector-clock happens-before race detection for the DDI protocol.
//!
//! # The happens-before model
//!
//! Every rank `r` carries two clocks:
//!
//! * `vc[r]` — the **knowledge clock**: everything rank `r` knows
//!   happened-before its current point. Each access bumps the rank's own
//!   component (`vc[r][r] += 1`) and the access is stamped with the
//!   resulting clock.
//! * `completed[r]` — the **completion clock**: the subset of `vc[r]` that
//!   rank `r` is allowed to *publish* to other ranks. Reads and local
//!   writes (issuing rank owns the segment) complete immediately; a
//!   **remote** write (`SHMEM_PUT`) stays pending until the rank's next
//!   fence (`SHMEM_QUIET`), which sets `completed[r] = vc[r]`.
//!
//! Synchronization edges:
//!
//! * **Lock/Unlock** on a per-node mutex: unlock publishes the rank's
//!   *completion* clock into the lock's clock; lock joins the lock's clock
//!   into the acquirer's knowledge. Publishing `completed` rather than `vc`
//!   is exactly what makes a missing fence detectable — an unfenced remote
//!   put is simply not carried by the lock hand-off, so the next critical
//!   section is not ordered after it.
//! * **Nxtval** (`SHMEM_SWAP` on the task counter) is a release–acquire
//!   pair through the counter's clock, again publishing `completed`.
//! * **Barrier** (collective ops, start/end of a parallel region) joins
//!   everything into everything and clears the access history — nothing
//!   before a barrier can race with anything after it.
//!
//! A **race** is two accesses to overlapping columns of the same matrix
//! from different ranks, at least one a write, where the earlier access's
//! stamp is not `≤` the later access's knowledge clock. Reports name both
//! protocol sites (`ddi_acc.put`, `with_local`, …), the ranks, and the
//! column, which is enough to find the offending call in the source.
//!
//! The detector is an [`AccessRecorder`], so it can run **online**
//! (attached to a live `Ddi` world through `CheckConfig`) or **offline**
//! over protocol events parsed back out of an `fci-obs` JSONL trace
//! ([`analyze`], [`analyze_trace_events`]).
//!
//! # The Eraser lockset plane
//!
//! Alongside happens-before, the detector keeps an Eraser-style
//! **lockset** per `(matrix, column)`: the intersection of the
//! `(matrix, owner)` segment mutexes held at every access. A column
//! written from two or more ranks whose candidate set is empty has no
//! *consistent* lock protecting it — a discipline violation the
//! vector-clock analysis can miss when a fortuitous nxtval/barrier edge
//! happens to order the particular interleaving observed. Read-only and
//! single-rank columns are exempt (no discipline required), and a
//! [`DdiAccess::Barrier`] clears candidate state along with the access
//! history. Lock acquisitions also record the **dynamic lock-order
//! edges** (`held → acquired`) that the static `fcix-check locks` graph
//! predicts. Both planes are informational accessors on
//! [`RaceDetector`] ([`RaceDetector::lockset_violations`],
//! [`RaceDetector::dynamic_lock_edges`]); races stay the failing
//! signal.

use fci_ddi::{protocol_events, AccessKind, AccessRecorder, DdiAccess, DdiSite};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// A growable vector clock: component `r` counts rank `r`'s accesses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// Component for `rank` (0 if never touched).
    pub fn get(&self, rank: usize) -> u64 {
        self.c.get(rank).copied().unwrap_or(0)
    }

    /// Bump `rank`'s own component, returning its new value.
    pub fn tick(&mut self, rank: usize) -> u64 {
        if self.c.len() <= rank {
            self.c.resize(rank + 1, 0);
        }
        self.c[rank] += 1;
        self.c[rank]
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.c.len() < other.c.len() {
            self.c.resize(other.c.len(), 0);
        }
        for (a, b) in self.c.iter_mut().zip(&other.c) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ≤ other` pointwise (the happens-before order).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.c.iter().enumerate().all(|(r, &v)| v <= other.get(r))
    }
}

/// One side of a race: where and what the access was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceSite {
    /// Issuing rank.
    pub rank: usize,
    /// Source-level operation.
    pub site: DdiSite,
    /// Read or write.
    pub kind: AccessKind,
    /// The rank's access number at the time (its own clock component).
    pub epoch: u64,
    /// Columns the access touched (the full range, not just the overlap).
    pub cols: std::ops::Range<usize>,
}

impl fmt::Display for RaceSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} {} ({:?}) cols {}..{} [epoch {}]",
            self.rank,
            self.site.as_str(),
            self.kind,
            self.cols.start,
            self.cols.end,
            self.epoch
        )
    }
}

/// A detected pair of unordered conflicting accesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Matrix the accesses touched.
    pub mat: u32,
    /// A column in the overlap (reports are deduplicated per site pair, so
    /// this is the first overlapping column seen).
    pub col: usize,
    /// The earlier access (in recorded order).
    pub first: RaceSite,
    /// The later access, not ordered after `first`.
    pub second: RaceSite,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RACE on mat {} col {}: {} is unordered with later {} \
             — no lock/fence/barrier edge connects them",
            self.mat, self.col, self.first, self.second
        )
    }
}

/// A stamped access held in the per-column frontier.
#[derive(Clone, Debug)]
struct Stamped {
    rank: usize,
    site: DdiSite,
    kind: AccessKind,
    epoch: u64,
    cols: std::ops::Range<usize>,
    stamp: VectorClock,
}

impl Stamped {
    fn race_site(&self) -> RaceSite {
        RaceSite {
            rank: self.rank,
            site: self.site,
            kind: self.kind,
            epoch: self.epoch,
            cols: self.cols.clone(),
        }
    }
}

/// A `(matrix, owner)` segment mutex, as the lockset plane names locks.
pub type SegLock = (u32, usize);

/// Eraser-style candidate-lockset state for one `(matrix, column)`.
#[derive(Clone, Debug, Default)]
struct ColLockset {
    /// Intersection of locks held at every access so far; `None` until
    /// the first access initializes it to that access's held set.
    candidates: Option<Vec<SegLock>>,
    /// Ranks that have touched the column.
    ranks: std::collections::BTreeSet<usize>,
    /// Whether any access was a write.
    written: bool,
    /// Site of the first access that emptied the candidate set (kept for
    /// the report even though later accesses keep intersecting).
    first_empty: Option<(usize, DdiSite)>,
}

/// A column written by several ranks with no consistent protecting lock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocksetViolation {
    /// Matrix the column belongs to.
    pub mat: u32,
    /// The unprotected column.
    pub col: usize,
    /// Ranks that touched it (sorted).
    pub ranks: Vec<usize>,
    /// Rank and site of the access that emptied the candidate set.
    pub rank: usize,
    /// Protocol site of that access.
    pub site: DdiSite,
}

impl fmt::Display for LocksetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LOCKSET on mat {} col {}: ranks {:?} share it with at least \
             one write, but no single lock is held across every access \
             (candidate set emptied at rank {} {})",
            self.mat,
            self.col,
            self.ranks,
            self.rank,
            self.site.as_str()
        )
    }
}

#[derive(Default)]
struct State {
    /// Knowledge clock per rank.
    vc: Vec<VectorClock>,
    /// Completion (publishable) clock per rank.
    completed: Vec<VectorClock>,
    /// Per-(matrix, owner-mutex) lock clock.
    locks: HashMap<(u32, usize), VectorClock>,
    /// The task counter's release–acquire clock.
    counter: VectorClock,
    /// Access frontier per (matrix, column).
    frontier: HashMap<(u32, usize), Vec<Stamped>>,
    /// Races found so far; deduplicated by site pair.
    races: Vec<RaceReport>,
    seen: std::collections::HashSet<(u32, usize, DdiSite, usize, DdiSite)>,
    /// Total protocol events processed.
    nevents: u64,
    /// Locks each rank currently holds, in acquisition order.
    held: HashMap<usize, Vec<SegLock>>,
    /// Eraser candidate lockset per (matrix, column).
    colsets: HashMap<(u32, usize), ColLockset>,
    /// Dynamic lock-order edges (held → acquired), deduplicated.
    lock_edges: Vec<(SegLock, SegLock)>,
    edge_seen: std::collections::HashSet<(SegLock, SegLock)>,
}

impl State {
    fn rank_mut(&mut self, rank: usize) -> (&mut VectorClock, &mut VectorClock) {
        if self.vc.len() <= rank {
            self.vc.resize_with(rank + 1, VectorClock::new);
            self.completed.resize_with(rank + 1, VectorClock::new);
        }
        (&mut self.vc[rank], &mut self.completed[rank])
    }

    fn apply(&mut self, access: &DdiAccess) {
        self.nevents += 1;
        match access {
            DdiAccess::Access {
                rank,
                mat,
                kind,
                cols,
                owner,
                site,
            } => self.access(*rank, *mat, *kind, cols.clone(), *owner, *site),
            DdiAccess::Lock { rank, mat, owner } => {
                let key = (*mat, *owner);
                if let Some(l) = self.locks.get(&key) {
                    let l = l.clone();
                    self.rank_mut(*rank).0.join(&l);
                }
                // Lockset plane: record dynamic order edges from every
                // lock the rank already holds, then push.
                let held = self.held.entry(*rank).or_default();
                for &h in held.iter() {
                    if h != key && self.edge_seen.insert((h, key)) {
                        self.lock_edges.push((h, key));
                    }
                }
                if !held.contains(&key) {
                    held.push(key);
                }
            }
            DdiAccess::Unlock { rank, mat, owner } => {
                let (_, completed) = self.rank_mut(*rank);
                let c = completed.clone();
                match self.locks.entry((*mat, *owner)) {
                    Entry::Occupied(mut e) => e.get_mut().join(&c),
                    Entry::Vacant(e) => {
                        e.insert(c);
                    }
                }
                if let Some(held) = self.held.get_mut(rank) {
                    held.retain(|&h| h != (*mat, *owner));
                }
            }
            DdiAccess::Fence { rank } => {
                let (vc, completed) = self.rank_mut(*rank);
                let v = vc.clone();
                completed.join(&v);
            }
            DdiAccess::Nxtval { rank, .. } => {
                // Release–acquire through the shared counter: acquire the
                // counter's clock, then publish our completed clock to it.
                let n = self.counter.clone();
                let (vc, completed) = self.rank_mut(*rank);
                vc.join(&n);
                let c = completed.clone();
                self.counter.join(&c);
            }
            DdiAccess::Barrier => {
                let mut all = self.counter.clone();
                for v in &self.vc {
                    all.join(v);
                }
                for l in self.locks.values() {
                    all.join(l);
                }
                for v in self.vc.iter_mut() {
                    v.join(&all);
                }
                for c in self.completed.iter_mut() {
                    c.join(&all);
                }
                for l in self.locks.values_mut() {
                    l.join(&all);
                }
                self.counter.join(&all);
                // Everything before the barrier is ordered before
                // everything after — the history can never race again.
                self.frontier.clear();
                // The lockset plane restarts too: accesses in different
                // barrier epochs need no common lock. Held locks and the
                // order-edge record survive (a lock held across a barrier
                // is still held; ordering facts do not expire).
                self.colsets.clear();
            }
        }
    }

    fn access(
        &mut self,
        rank: usize,
        mat: u32,
        kind: AccessKind,
        cols: std::ops::Range<usize>,
        owner: usize,
        site: DdiSite,
    ) {
        let (vc, completed) = self.rank_mut(rank);
        let epoch = vc.tick(rank);
        let stamp = vc.clone();
        // Reads and locally-owned writes complete immediately; a remote
        // put is pending until the next fence.
        if kind == AccessKind::Read || rank == owner {
            completed.join(&stamp);
        }
        let new = Stamped {
            rank,
            site,
            kind,
            epoch,
            cols: cols.clone(),
            stamp,
        };
        let held = self.held.get(&rank).cloned().unwrap_or_default();
        for col in cols.clone() {
            let cs = self.colsets.entry((mat, col)).or_default();
            cs.ranks.insert(rank);
            cs.written |= kind == AccessKind::Write;
            match &mut cs.candidates {
                None => cs.candidates = Some(held.clone()),
                Some(set) => set.retain(|l| held.contains(l)),
            }
            if cs.first_empty.is_none() && cs.candidates.as_ref().is_some_and(|s| s.is_empty()) {
                cs.first_empty = Some((rank, site));
            }
        }
        for col in cols {
            let slot = self.frontier.entry((mat, col)).or_default();
            for old in slot.iter() {
                let conflicting = old.rank != new.rank
                    && (old.kind == AccessKind::Write || new.kind == AccessKind::Write);
                if conflicting && !old.stamp.le(&new.stamp) {
                    let key = (mat, old.rank, old.site, new.rank, new.site);
                    if self.seen.insert(key) {
                        self.races.push(RaceReport {
                            mat,
                            col,
                            first: old.race_site(),
                            second: new.race_site(),
                        });
                    }
                }
            }
            // Frontier pruning: any old access ordered before the new one
            // can be dropped for this column — a future access racing with
            // it necessarily races with the new one too (transitivity).
            slot.retain(|old| !old.stamp.le(&new.stamp));
            slot.push(new.clone());
        }
    }
}

/// Online/offline happens-before race detector. Implements
/// [`AccessRecorder`], so it plugs straight into
/// `CheckConfig::online(Arc::new(RaceDetector::new()))`.
#[derive(Default)]
pub struct RaceDetector {
    state: Mutex<State>,
}

impl RaceDetector {
    /// Fresh detector with empty state.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Races found so far (deduplicated by site pair).
    pub fn races(&self) -> Vec<RaceReport> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .races
            .clone()
    }

    /// Number of protocol events processed.
    pub fn nevents(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).nevents
    }

    /// Eraser lockset discipline violations: columns touched by ≥ 2 ranks
    /// with at least one write whose candidate lockset is empty. Sorted by
    /// (matrix, column). Informational — a violation with no accompanying
    /// race means the observed interleaving was ordered by luck (e.g. a
    /// nxtval edge), not by a consistent lock.
    pub fn lockset_violations(&self) -> Vec<LocksetViolation> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<LocksetViolation> = st
            .colsets
            .iter()
            .filter_map(|(&(mat, col), cs)| {
                let (rank, site) = cs.first_empty?;
                if cs.ranks.len() < 2 || !cs.written {
                    return None;
                }
                Some(LocksetViolation {
                    mat,
                    col,
                    ranks: cs.ranks.iter().copied().collect(),
                    rank,
                    site,
                })
            })
            .collect();
        out.sort_by_key(|v| (v.mat, v.col));
        out
    }

    /// Dynamic lock-order edges (held → acquired) observed so far, in
    /// first-seen order. Cross-check these against the static
    /// `fcix-check locks` graph: every observed edge should be predicted.
    pub fn dynamic_lock_edges(&self) -> Vec<(SegLock, SegLock)> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lock_edges
            .clone()
    }
}

impl AccessRecorder for RaceDetector {
    fn record(&self, access: &DdiAccess) {
        // A poisoned lock means a sibling rank thread panicked mid-record;
        // the state is still well-formed (every apply() is atomic under
        // the lock), so keep analyzing.
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .apply(access);
    }
}

/// Offline analysis of a protocol event sequence (e.g. replayed from a
/// trace). The sequence order must be a real interleaving — which it is
/// for anything produced by a recorder, since lock/unlock records are
/// emitted under the segment mutex.
pub fn analyze(events: &[DdiAccess]) -> Vec<RaceReport> {
    let det = RaceDetector::new();
    for e in events {
        det.record(e);
    }
    det.races()
}

/// Offline analysis straight from `fci-obs` events (instants named
/// `hb_*`); non-protocol events are ignored.
pub fn analyze_trace_events(events: &[fci_obs::Event]) -> Vec<RaceReport> {
    analyze(&protocol_events(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc_protocol(
        rank: usize,
        mat: u32,
        col: usize,
        owner: usize,
        fence: bool,
    ) -> Vec<DdiAccess> {
        let mut v = vec![
            DdiAccess::Lock { rank, mat, owner },
            DdiAccess::Access {
                rank,
                mat,
                kind: AccessKind::Read,
                cols: col..col + 1,
                owner,
                site: DdiSite::AccGet,
            },
            DdiAccess::Access {
                rank,
                mat,
                kind: AccessKind::Write,
                cols: col..col + 1,
                owner,
                site: DdiSite::AccPut,
            },
        ];
        if fence {
            v.push(DdiAccess::Fence { rank });
        }
        v.push(DdiAccess::Unlock { rank, mat, owner });
        v
    }

    #[test]
    fn clock_algebra() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.tick(0);
        a.tick(0);
        b.tick(3);
        assert!(!a.le(&b) && !b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j) && b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(3), 1);
        assert_eq!(j.get(7), 0);
    }

    #[test]
    fn correct_protocol_is_race_free() {
        // Two ranks accumulate into the same remote column with the full
        // lock/fence protocol: ordered through the lock clock.
        let mut evs = acc_protocol(0, 0, 5, 2, true);
        evs.extend(acc_protocol(1, 0, 5, 2, true));
        assert!(analyze(&evs).is_empty());
    }

    #[test]
    fn missing_fence_is_flagged() {
        // Rank 0's remote put is never fenced, so the unlock does not
        // publish it; rank 1's critical section is unordered with it.
        let mut evs = acc_protocol(0, 0, 5, 2, false);
        evs.extend(acc_protocol(1, 0, 5, 2, true));
        let races = analyze(&evs);
        assert!(!races.is_empty(), "skip-fence must race");
        let r = &races[0];
        assert_eq!(r.first.rank, 0);
        assert_eq!(r.first.site, DdiSite::AccPut);
        assert_eq!(r.second.rank, 1);
        let text = r.to_string();
        assert!(text.contains("ddi_acc.put"), "{text}");
        assert!(text.contains("rank 0"), "{text}");
        assert!(text.contains("rank 1"), "{text}");
    }

    #[test]
    fn local_write_needs_no_fence() {
        // with_local-style: the owner writes its own segment; completion
        // is immediate, so lock hand-off alone orders the ranks.
        let mat = 0;
        let evs = vec![
            DdiAccess::Lock {
                rank: 2,
                mat,
                owner: 2,
            },
            DdiAccess::Access {
                rank: 2,
                mat,
                kind: AccessKind::Write,
                cols: 4..8,
                owner: 2,
                site: DdiSite::WithLocal,
            },
            DdiAccess::Unlock {
                rank: 2,
                mat,
                owner: 2,
            },
            DdiAccess::Lock {
                rank: 0,
                mat,
                owner: 2,
            },
            DdiAccess::Access {
                rank: 0,
                mat,
                kind: AccessKind::Read,
                cols: 5..6,
                owner: 2,
                site: DdiSite::Get,
            },
            DdiAccess::Unlock {
                rank: 0,
                mat,
                owner: 2,
            },
        ];
        assert!(analyze(&evs).is_empty());
    }

    #[test]
    fn missing_lock_is_flagged() {
        // Two ranks read-modify-write the same column with fences but no
        // lock at all: nothing orders them.
        let mat = 0;
        let rmw = |rank: usize| {
            vec![
                DdiAccess::Access {
                    rank,
                    mat,
                    kind: AccessKind::Read,
                    cols: 3..4,
                    owner: 1,
                    site: DdiSite::AccGet,
                },
                DdiAccess::Access {
                    rank,
                    mat,
                    kind: AccessKind::Write,
                    cols: 3..4,
                    owner: 1,
                    site: DdiSite::AccPut,
                },
                DdiAccess::Fence { rank },
            ]
        };
        let mut evs = rmw(0);
        evs.extend(rmw(1));
        let races = analyze(&evs);
        assert!(!races.is_empty(), "skip-lock must race");
        // The first conflict seen is rank 0's write vs rank 1's read.
        assert_eq!(races[0].first.kind, AccessKind::Write);
        assert_eq!(races[0].second.rank, 1);
    }

    #[test]
    fn barrier_orders_everything() {
        let mut evs = vec![DdiAccess::Access {
            rank: 0,
            mat: 0,
            kind: AccessKind::Write,
            cols: 0..1,
            owner: 1,
            site: DdiSite::Put,
        }];
        evs.push(DdiAccess::Barrier);
        evs.push(DdiAccess::Access {
            rank: 1,
            mat: 0,
            kind: AccessKind::Read,
            cols: 0..1,
            owner: 1,
            site: DdiSite::Get,
        });
        assert!(analyze(&evs).is_empty());
        // Without the barrier the same pair races.
        let racy: Vec<_> = evs
            .iter()
            .filter(|e| !matches!(e, DdiAccess::Barrier))
            .cloned()
            .collect();
        assert_eq!(analyze(&racy).len(), 1);
    }

    #[test]
    fn nxtval_chain_orders_counter_clients() {
        // Rank 0 writes (fenced), then takes a task; rank 1's later task
        // acquisition orders it after rank 0's write.
        let mat = 0;
        let evs = vec![
            DdiAccess::Access {
                rank: 0,
                mat,
                kind: AccessKind::Write,
                cols: 0..1,
                owner: 0,
                site: DdiSite::WithLocal,
            },
            DdiAccess::Nxtval { rank: 0, value: 0 },
            DdiAccess::Nxtval { rank: 1, value: 1 },
            DdiAccess::Access {
                rank: 1,
                mat,
                kind: AccessKind::Read,
                cols: 0..1,
                owner: 0,
                site: DdiSite::Get,
            },
        ];
        assert!(analyze(&evs).is_empty());
    }

    fn detect(events: &[DdiAccess]) -> RaceDetector {
        let det = RaceDetector::new();
        for e in events {
            det.record(e);
        }
        det
    }

    #[test]
    fn locked_protocol_keeps_nonempty_lockset() {
        let mut evs = acc_protocol(0, 0, 5, 2, true);
        evs.extend(acc_protocol(1, 0, 5, 2, true));
        let det = detect(&evs);
        assert!(det.lockset_violations().is_empty());
    }

    #[test]
    fn unlocked_shared_write_violates_lockset_even_when_ordered() {
        // Rank 0 writes (fenced), hands off through nxtval; rank 1 reads.
        // Happens-before says race-free — but no lock protects the
        // column, which the lockset plane surfaces.
        let mat = 0;
        let evs = vec![
            DdiAccess::Access {
                rank: 0,
                mat,
                kind: AccessKind::Write,
                cols: 3..4,
                owner: 0,
                site: DdiSite::WithLocal,
            },
            DdiAccess::Nxtval { rank: 0, value: 0 },
            DdiAccess::Nxtval { rank: 1, value: 1 },
            DdiAccess::Access {
                rank: 1,
                mat,
                kind: AccessKind::Read,
                cols: 3..4,
                owner: 0,
                site: DdiSite::Get,
            },
        ];
        let det = detect(&evs);
        assert!(det.races().is_empty(), "hb-ordered by the nxtval chain");
        let viols = det.lockset_violations();
        assert_eq!(viols.len(), 1, "{viols:?}");
        assert_eq!((viols[0].mat, viols[0].col), (0, 3));
        assert_eq!(viols[0].ranks, vec![0, 1]);
        assert!(viols[0].to_string().contains("LOCKSET on mat 0 col 3"));
    }

    #[test]
    fn single_rank_and_read_only_columns_are_exempt() {
        let mat = 0;
        let evs = vec![
            // Col 0: one rank writes it repeatedly, no lock — private.
            DdiAccess::Access {
                rank: 0,
                mat,
                kind: AccessKind::Write,
                cols: 0..1,
                owner: 0,
                site: DdiSite::WithLocal,
            },
            DdiAccess::Access {
                rank: 0,
                mat,
                kind: AccessKind::Write,
                cols: 0..1,
                owner: 0,
                site: DdiSite::WithLocal,
            },
            // Col 1: two ranks read it, no lock — immutable sharing.
            DdiAccess::Barrier,
            DdiAccess::Access {
                rank: 0,
                mat,
                kind: AccessKind::Read,
                cols: 1..2,
                owner: 1,
                site: DdiSite::Get,
            },
            DdiAccess::Access {
                rank: 1,
                mat,
                kind: AccessKind::Read,
                cols: 1..2,
                owner: 1,
                site: DdiSite::Get,
            },
        ];
        let det = detect(&evs);
        assert!(det.lockset_violations().is_empty());
    }

    #[test]
    fn barrier_resets_lockset_epochs() {
        // Each rank writes the column in its own barrier epoch, no lock:
        // no discipline needed across a collective.
        let mat = 0;
        let w = |rank: usize| DdiAccess::Access {
            rank,
            mat,
            kind: AccessKind::Write,
            cols: 7..8,
            owner: 0,
            site: DdiSite::WithLocal,
        };
        let det = detect(&[w(0), DdiAccess::Barrier, w(1)]);
        assert!(det.lockset_violations().is_empty());
        // Same accesses without the barrier do violate.
        let det = detect(&[w(0), w(1)]);
        assert_eq!(det.lockset_violations().len(), 1);
    }

    #[test]
    fn nested_locks_record_dynamic_order_edges() {
        let mat = 0;
        let evs = vec![
            DdiAccess::Lock {
                rank: 0,
                mat,
                owner: 0,
            },
            DdiAccess::Lock {
                rank: 0,
                mat,
                owner: 1,
            },
            DdiAccess::Unlock {
                rank: 0,
                mat,
                owner: 1,
            },
            DdiAccess::Unlock {
                rank: 0,
                mat,
                owner: 0,
            },
            // Repeat: the edge is deduplicated.
            DdiAccess::Lock {
                rank: 0,
                mat,
                owner: 0,
            },
            DdiAccess::Lock {
                rank: 0,
                mat,
                owner: 1,
            },
            DdiAccess::Unlock {
                rank: 0,
                mat,
                owner: 1,
            },
            DdiAccess::Unlock {
                rank: 0,
                mat,
                owner: 0,
            },
            // Non-nested acquisition: no edge.
            DdiAccess::Lock {
                rank: 1,
                mat,
                owner: 1,
            },
            DdiAccess::Unlock {
                rank: 1,
                mat,
                owner: 1,
            },
        ];
        let det = detect(&evs);
        assert_eq!(det.dynamic_lock_edges(), vec![((mat, 0), (mat, 1))]);
    }

    #[test]
    fn reports_deduplicate_by_site_pair() {
        let mut evs = Vec::new();
        for col in 0..10 {
            evs.extend(acc_protocol(0, 0, col, 1, false));
            evs.extend(acc_protocol(1, 0, col, 1, true));
        }
        let races = analyze(&evs);
        // Ten racy columns, but the (rank0 put, rank1 get) site pair is
        // reported once; the symmetric pairs likewise.
        assert!(!races.is_empty());
        assert!(races.len() <= 4, "got {}", races.len());
    }
}
