//! Static and dynamic correctness checks:
//! `fcix-check <race|explore|graph|locks> [options]`.
//!
//! ```text
//! fcix-check race --fault none        # correct DDI_ACC protocol → expects 0 races
//! fcix-check race --fault skip-fence  # injected bug → expects the detector to flag it
//! fcix-check race --fault skip-lock   # injected bug → expects the detector to flag it
//! fcix-check race --solve             # online-check a small FCI solve (must be clean)
//! fcix-check race --trace run.jsonl   # offline-analyze an fci-obs trace
//! fcix-check explore --seeds 8        # schedule explorer: σ/energy must be bitwise equal
//! fcix-check graph [--format json] [--strict-index] [--root NAME]...
//!                                     # call graph + transitive no-alloc/no-panic
//! fcix-check locks [--format json] [--dynamic] [--path DIR]...
//!                                     # static lock-order / deadlock analysis
//! ```
//!
//! Exit code 0 means the check passed: for `--fault none`, `--solve` and
//! `--trace` that means no races; for the injected faults it means the
//! detector *caught* the bug (a silent pass there is the failure); for
//! `graph` it means every hot-path root is free of reachable
//! allocation/panic sites; for `locks` it means the lock-order graph is
//! cycle-free with no condvar hazards (and, with `--dynamic`, that every
//! observed runtime lock-order edge is predicted by the static graph).

use fci_check::{analyze_trace_events, explore_mixed, ExploreConfig, RaceDetector};
use fci_ddi::{AccFault, Backend, CheckConfig, Ddi, DistMatrix};
use fci_ints::EriTensor;
use fci_linalg::Matrix;
use fci_scf::MoIntegrals;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fcix-check race [--fault none|skip-fence|skip-lock] [--solve] [--trace FILE]"
    );
    eprintln!("       fcix-check explore [--seeds K]");
    eprintln!("       fcix-check graph [--format json] [--strict-index] [--root NAME]...");
    eprintln!("       fcix-check locks [--format json] [--dynamic] [--path DIR]...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("race") => race(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("graph") => graph(&args[1..]),
        Some("locks") => locks(&args[1..]),
        _ => usage(),
    }
}

/// Workspace root: the nearest ancestor of the current directory with a
/// `Cargo.toml` containing `[workspace]`, else the current directory.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// `fcix-check graph`: build the workspace call graph and verify the
/// σ-task / GEMM hot paths are transitively allocation- and panic-free.
fn graph(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut strict_index = false;
    let mut roots: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            "--strict-index" => strict_index = true,
            "--root" => match it.next() {
                Some(r) => roots.push(r.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root_names: Vec<&str> = if roots.is_empty() {
        fci_check::graph::DEFAULT_ROOTS.to_vec()
    } else {
        roots.iter().map(String::as_str).collect()
    };
    let ws = workspace_root();
    let (g, reports) = match fci_check::graph::analyze_hot_paths(&ws, &root_names) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("fcix-check graph: cannot scan {}: {e}", ws.display());
            return ExitCode::FAILURE;
        }
    };
    let mut ok = reports.len() == root_names.len();
    if reports.len() != root_names.len() {
        eprintln!(
            "fcix-check graph: {} of {} roots not found/unique in the workspace",
            root_names.len() - reports.len(),
            root_names.len()
        );
    }
    for r in &reports {
        ok &= r.is_clean() && (!strict_index || r.index_sites == 0);
    }
    if json {
        let doc = fci_obs::JsonValue::obj(vec![
            ("graph", g.to_json()),
            (
                "roots",
                fci_obs::JsonValue::Arr(reports.iter().map(|r| r.to_json()).collect()),
            ),
            ("clean", fci_obs::JsonValue::Bool(ok)),
        ]);
        println!("{doc}");
    } else {
        println!(
            "fcix-check graph: {} fns, {} edges, {} unresolved call sites",
            g.fns.len(),
            g.edges.iter().map(Vec::len).sum::<usize>(),
            g.unresolved.len()
        );
        for r in &reports {
            println!(
                "  root {}: {} reachable fns, {} alloc, {} panic, {} index sites, {} unresolved",
                r.root,
                r.reachable,
                r.alloc.len(),
                r.panic.len(),
                r.index_sites,
                r.unresolved
            );
            for a in r.alloc.iter().chain(&r.panic) {
                println!(
                    "    {}:{}: {} in {} (via {})",
                    a.finding.file,
                    a.finding.line,
                    a.finding.what,
                    a.in_fn,
                    a.chain.join(" -> ")
                );
            }
        }
        println!(
            "fcix-check graph: {}",
            if ok { "PASS (hot paths clean)" } else { "FAIL" }
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `fcix-check locks`: static lock-order / condvar analysis over the
/// serve and obs layers, optionally cross-checked against the dynamic
/// lockset witness of an in-process serve workload.
fn locks(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut dynamic = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            "--dynamic" => dynamic = true,
            "--path" => match it.next() {
                Some(p) => paths.push(p.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let ws = workspace_root();
    let scan: Vec<&str> = if paths.is_empty() {
        fci_check::locks::DEFAULT_LOCK_PATHS.to_vec()
    } else {
        paths.iter().map(String::as_str).collect()
    };
    let report = match fci_check::locks::analyze_locks(&ws, &scan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fcix-check locks: cannot scan {}: {e}", ws.display());
            return ExitCode::FAILURE;
        }
    };
    let dynamic_report = if dynamic {
        Some(fci_check::locks::dynamic_cross_check(&report))
    } else {
        None
    };
    let mut ok = report.is_clean();
    if let Some(d) = &dynamic_report {
        ok &= d.consistent;
    }
    if json {
        let mut pairs = vec![("static", report.to_json())];
        if let Some(d) = &dynamic_report {
            pairs.push(("dynamic", d.to_json()));
        }
        pairs.push(("clean", fci_obs::JsonValue::Bool(ok)));
        println!("{}", fci_obs::JsonValue::obj(pairs));
    } else {
        print!("{}", report.render_text());
        if let Some(d) = &dynamic_report {
            print!("{}", d.render_text());
        }
        println!(
            "fcix-check locks: {}",
            if ok {
                "PASS (lock graph cycle-free)"
            } else {
                "FAIL"
            }
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Hubbard-style synthetic integrals (hopping −t, on-site U): the
/// standard small exactly-solvable case used across the test suite.
fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n.saturating_sub(1) {
        h[(i, i + 1)] = -t;
        h[(i + 1, i)] = -t;
    }
    let mut eri = EriTensor::zeros(n);
    for i in 0..n {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    }
}

fn race(args: &[String]) -> ExitCode {
    let mut fault: Option<AccFault> = None;
    let mut solve = false;
    let mut trace: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fault" => match it.next().map(String::as_str) {
                Some("none") => fault = Some(AccFault::None),
                Some("skip-fence") => fault = Some(AccFault::SkipFence),
                Some("skip-lock") => fault = Some(AccFault::SkipLock),
                _ => return usage(),
            },
            "--solve" => solve = true,
            "--trace" => match it.next() {
                Some(f) => trace = Some(f.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if let Some(f) = trace {
        return race_trace(&f);
    }
    if solve {
        return race_solve();
    }
    race_fault(fault.unwrap_or(AccFault::None))
}

/// Replay the DDI_ACC protocol (optionally with an injected bug) under
/// the threads backend with the happens-before detector attached.
fn race_fault(fault: AccFault) -> ExitCode {
    let nproc = 4;
    let detector = Arc::new(RaceDetector::new());
    let ddi = Ddi::new(nproc, Backend::Threads);
    ddi.attach_recorder(detector.clone());
    let m = DistMatrix::zeros(32, 8, nproc);
    ddi.adopt(&m);
    // Every rank accumulates into every column: maximal contention on the
    // per-node locks, exactly the σ-accumulation pattern of the paper.
    ddi.run(|rank, stats| {
        let buf = vec![1.0 + rank as f64; 32];
        for col in 0..8 {
            m.acc_col_faulty(rank, col, &buf, fault, stats);
        }
    });
    let races = detector.races();
    for r in &races {
        println!("{r}");
    }
    let expect_races = !matches!(fault, AccFault::None);
    println!(
        "fcix-check race: fault={fault:?}, {} protocol events, {} race report(s)",
        detector.nevents(),
        races.len()
    );
    let caught = !races.is_empty();
    if expect_races == caught {
        println!(
            "fcix-check race: PASS ({})",
            if expect_races {
                "injected bug detected"
            } else {
                "correct protocol is race-free"
            }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "fcix-check race: FAIL ({})",
            if expect_races {
                "injected bug NOT detected"
            } else {
                "false positive on correct protocol"
            }
        );
        ExitCode::FAILURE
    }
}

/// Online-check a full small FCI solve; the production protocol must be
/// race-free.
fn race_solve() -> ExitCode {
    let nproc = 4;
    let detector = Arc::new(RaceDetector::new());
    let mo = hubbard(4, 1.0, 2.0);
    let opts = fci_core::FciOptions {
        nproc,
        backend: Backend::Threads,
        method: fci_core::DiagMethod::Davidson,
        check: CheckConfig::online(detector.clone()),
        ..Default::default()
    };
    let r = fci_core::solve(&mo, 2, 2, 0, &opts);
    let races = detector.races();
    for rep in &races {
        println!("{rep}");
    }
    println!(
        "fcix-check race --solve: E = {:.10} ({} iters, converged={}), {} protocol events, {} race report(s)",
        r.energy,
        r.iterations,
        r.converged,
        detector.nevents(),
        races.len()
    );
    if races.is_empty() && r.converged {
        println!("fcix-check race --solve: PASS");
        ExitCode::SUCCESS
    } else {
        println!("fcix-check race --solve: FAIL");
        ExitCode::FAILURE
    }
}

/// Offline analysis of an fci-obs JSONL trace.
fn race_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fcix-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match fci_obs::parse_jsonl(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("fcix-check: cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let races = analyze_trace_events(&events);
    for r in &races {
        println!("{r}");
    }
    println!(
        "fcix-check race --trace: {} events, {} race report(s)",
        events.len(),
        races.len()
    );
    if races.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explore(args: &[String]) -> ExitCode {
    let mut cfg = ExploreConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(k) if k >= 1 => cfg.seeds = (1..=k).collect(),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let report = explore_mixed(&cfg);
    println!("{}", report.summary());
    if report.identical {
        println!("fcix-check explore: PASS (σ and energy bitwise identical across schedules)");
        ExitCode::SUCCESS
    } else {
        println!("fcix-check explore: FAIL (schedule-dependent result)");
        ExitCode::FAILURE
    }
}
