//! Workspace source lint: `fcix-lint [root] [--format text|json]`.
//!
//! Scans every `.rs` file under `root` (default: current directory) for
//! the repo conventions documented in `fci_check::lint` and prints one
//! line per violation. `--format json` emits the machine-readable
//! report (violations plus per-rule waiver counts) for CI artifact
//! upload. Exit code 0 iff the tree is clean — wire it into CI next to
//! `clippy`.

use fci_check::lint::{lint_workspace_report, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("fcix-lint: bad --format {other:?} (want text|json)");
                    return ExitCode::FAILURE;
                }
            },
            _ => root = PathBuf::from(a),
        }
    }
    let cfg = LintConfig::new(root);
    match lint_workspace_report(&cfg) {
        Ok(report) => {
            let clean = report.violations.is_empty();
            if json {
                println!("{}", report.to_json());
            } else if clean {
                println!("fcix-lint: clean");
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!("fcix-lint: {} violation(s)", report.violations.len());
            }
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fcix-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
