//! Workspace source lint: `fcix-lint [root]`.
//!
//! Scans every `.rs` file under `root` (default: current directory) for
//! the repo conventions documented in `fci_check::lint` and prints one
//! line per violation. Exit code 0 iff the tree is clean — wire it into
//! CI next to `clippy`.

use fci_check::{lint_workspace, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let cfg = LintConfig::new(root);
    match lint_workspace(&cfg) {
        Ok(violations) if violations.is_empty() => {
            println!("fcix-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("fcix-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fcix-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
