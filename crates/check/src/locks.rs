//! Static lock-order / condvar analysis for the serve and obs layers.
//!
//! The serve layer is the one place in the stack where multiple locks
//! coexist (`Server.state`, `Server.results`, `Server.rejected`, the
//! `ArtifactCache` pair, plus the obs-side sink/cursor/shard mutexes its
//! workers touch while holding queue state). This module proves, from
//! tokens alone, that those locks cannot deadlock:
//!
//! 1. **Lock inventory** — every struct field whose type mentions
//!    `Mutex`/`TrackedMutex`/`Condvar`/`TrackedCondvar` (and every
//!    `static` mutex) becomes a lock id `Struct.field`.
//! 2. **Guard scopes** — per fn body, a symbolic walk tracks live
//!    guards: let-bound guards die at end of block, `drop(g)`, or
//!    shadowing; temporary guards (`x.lock().f()`) die at end of
//!    statement. Receivers resolve through field names (disambiguated
//!    by the enclosing `impl` type) and one-level `let` aliases
//!    (`let shard = &self.store.shards[i]; shard.lock()`).
//! 3. **Lock-order graph** — acquiring `B` with `A` held adds edge
//!    `A → B`; calling `f()` with `A` held adds `A → b` for every lock
//!    in `f`'s transitive *may-acquire* set (a fixpoint over the call
//!    names in the scanned set; same-name candidates are unioned, so
//!    the approximation errs toward reporting). Any cycle in the graph
//!    is a potential deadlock and fails the check.
//! 4. **Condvar hazards** — `cv.wait(guard)` releases exactly one
//!    mutex; waiting while a *second* lock is held blocks every other
//!    thread needing it, and a condvar that is waited on but never
//!    notified anywhere in the scanned set parks its waiters forever.
//!
//! Resolution limits are explicit: `.lock()` calls whose receiver
//! cannot be mapped to an inventoried lock are counted in
//! `unresolved_sites` (reported, never silently dropped). The dynamic
//! half — [`fci_obs::lockwitness`] edges recorded under a live serve
//! workload — is checked against this graph by [`dynamic_cross_check`]:
//! every observed edge must be predicted.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use crate::graph::{fn_body_range, parse_impl_type, skip_angles, STD_METHODS};
use crate::lex::TokKind;
use crate::lint::FileCtx;
use fci_obs::JsonValue;

/// Directories `fcix-check locks` scans by default (workspace-relative).
pub const DEFAULT_LOCK_PATHS: [&str; 3] =
    ["crates/serve/src", "crates/obs/src", "crates/sparse/src"];

/// What kind of synchronization primitive a field is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex` / `TrackedMutex`.
    Mutex,
    /// `Condvar` / `TrackedCondvar`.
    Condvar,
}

/// One inventoried lock: a struct field or a `static` mutex.
#[derive(Clone, Debug)]
pub struct LockDecl {
    /// Lock id: `Struct.field`, or the bare name for a `static`.
    pub id: String,
    /// Mutex or condvar.
    pub kind: LockKind,
    /// Workspace-relative file of the declaration.
    pub file: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One lock-order edge: `to` acquired (or acquirable) while `from` held.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Held lock.
    pub from: String,
    /// Acquired lock.
    pub to: String,
    /// File of the acquisition (or call) site.
    pub file: String,
    /// 1-based line of the site.
    pub line: u32,
    /// For interprocedural edges, the callee whose may-acquire set
    /// contributed `to`.
    pub via: Option<String>,
}

/// A condvar misuse pattern.
#[derive(Clone, Debug)]
pub enum CondvarHazard {
    /// `cv.wait(g)` releases only `g`'s mutex; these other locks stay
    /// held across the park.
    WaitWhileHolding {
        /// The condvar waited on.
        condvar: String,
        /// The mutex the wait releases (when the guard resolved).
        released: Option<String>,
        /// Locks still held across the wait.
        held: Vec<String>,
        /// Site file.
        file: String,
        /// Site line.
        line: u32,
    },
    /// The condvar is waited on but no `notify_one`/`notify_all` site
    /// exists anywhere in the scanned set.
    NeverNotified {
        /// The condvar.
        condvar: String,
        /// A wait site file.
        file: String,
        /// A wait site line.
        line: u32,
    },
}

impl CondvarHazard {
    fn describe(&self) -> String {
        match self {
            CondvarHazard::WaitWhileHolding {
                condvar,
                released,
                held,
                file,
                line,
            } => format!(
                "{file}:{line}: wait on {condvar} (releases {}) while still holding [{}]",
                released.as_deref().unwrap_or("?"),
                held.join(", ")
            ),
            CondvarHazard::NeverNotified {
                condvar,
                file,
                line,
            } => format!("{file}:{line}: {condvar} is waited on but never notified"),
        }
    }
}

/// Result of the static analysis.
#[derive(Debug, Default)]
pub struct LockReport {
    /// Inventoried locks.
    pub locks: Vec<LockDecl>,
    /// Lock-order edges (deduplicated by `(from, to, via)`).
    pub edges: Vec<LockEdge>,
    /// Deadlock cycles (each a lock-id sequence; first entry repeats
    /// implicitly).
    pub cycles: Vec<Vec<String>>,
    /// Condvar hazards.
    pub hazards: Vec<CondvarHazard>,
    /// `(file, line)` of `.lock()`/`.wait()` sites whose receiver could
    /// not be mapped to an inventoried lock.
    pub unresolved_sites: Vec<(String, u32)>,
}

impl LockReport {
    /// No deadlock cycles and no condvar hazards.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty() && self.hazards.is_empty()
    }

    /// JSON form used by `fcix-check locks --format json`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("tool", JsonValue::Str("fcix-check locks".into())),
            (
                "locks",
                JsonValue::Arr(
                    self.locks
                        .iter()
                        .map(|l| {
                            JsonValue::obj(vec![
                                ("id", JsonValue::Str(l.id.clone())),
                                (
                                    "kind",
                                    JsonValue::Str(
                                        match l.kind {
                                            LockKind::Mutex => "mutex",
                                            LockKind::Condvar => "condvar",
                                        }
                                        .into(),
                                    ),
                                ),
                                ("file", JsonValue::Str(l.file.clone())),
                                ("line", JsonValue::Num(l.line as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "edges",
                JsonValue::Arr(
                    self.edges
                        .iter()
                        .map(|e| {
                            JsonValue::obj(vec![
                                ("from", JsonValue::Str(e.from.clone())),
                                ("to", JsonValue::Str(e.to.clone())),
                                ("file", JsonValue::Str(e.file.clone())),
                                ("line", JsonValue::Num(e.line as f64)),
                                (
                                    "via",
                                    match &e.via {
                                        Some(v) => JsonValue::Str(v.clone()),
                                        None => JsonValue::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cycles",
                JsonValue::Arr(
                    self.cycles
                        .iter()
                        .map(|c| {
                            JsonValue::Arr(c.iter().map(|n| JsonValue::Str(n.clone())).collect())
                        })
                        .collect(),
                ),
            ),
            (
                "hazards",
                JsonValue::Arr(
                    self.hazards
                        .iter()
                        .map(|h| JsonValue::Str(h.describe()))
                        .collect(),
                ),
            ),
            (
                "unresolved_sites",
                JsonValue::Num(self.unresolved_sites.len() as f64),
            ),
            ("clean", JsonValue::Bool(self.is_clean())),
        ])
    }

    /// Human-readable rendering for `fcix-check locks`.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "fcix-check locks: {} locks, {} order edges, {} unresolved sites\n",
            self.locks.len(),
            self.edges.len(),
            self.unresolved_sites.len()
        ));
        for e in &self.edges {
            s.push_str(&format!(
                "  {} -> {} at {}:{}{}\n",
                e.from,
                e.to,
                e.file,
                e.line,
                match &e.via {
                    Some(v) => format!(" (via {v})"),
                    None => String::new(),
                }
            ));
        }
        for c in &self.cycles {
            s.push_str(&format!(
                "  DEADLOCK CYCLE: {} -> {}\n",
                c.join(" -> "),
                c[0]
            ));
        }
        for h in &self.hazards {
            s.push_str(&format!("  CONDVAR HAZARD: {}\n", h.describe()));
        }
        s
    }
}

/// A live guard during the symbolic body walk.
struct Guard {
    lock: String,
    binding: Option<String>,
    /// Brace depth the guard was bound at; dies when the block closes.
    depth: i64,
    /// `drop(g)` seen at this (deeper) depth: the drop is *conditional*
    /// on the enclosing branch, so the guard is only suppressed until
    /// that block closes, then resurrected (over-holding can only add
    /// edges — the approximation errs toward reporting). A drop at the
    /// binding depth retires the guard outright.
    dropped_at: Option<i64>,
    /// For temporaries: code-index one past the owning statement.
    temp_end: Option<usize>,
}

/// Per-fn scan product.
struct FnScan {
    name: String,
    file: String,
    direct: HashSet<String>,
    /// Every callee name in the body (for may-acquire propagation).
    all_calls: Vec<String>,
    /// `(held locks, callee, line)` — call sites under a lock.
    holds_at_call: Vec<(Vec<String>, String, u32)>,
}

/// Whole-scan accumulator.
#[derive(Default)]
struct Scan {
    locks: Vec<LockDecl>,
    edges: Vec<LockEdge>,
    hazards: Vec<CondvarHazard>,
    unresolved: Vec<(String, u32)>,
    fns: Vec<FnScan>,
    /// Condvars with at least one wait site: id → first site.
    waited: HashMap<String, (String, u32)>,
    notified: HashSet<String>,
}

impl Scan {
    fn lock_kind(&self, id: &str) -> Option<LockKind> {
        self.locks.iter().find(|l| l.id == id).map(|l| l.kind)
    }

    /// Resolve a field name to a lock id: unique across the inventory,
    /// or disambiguated by the enclosing impl type.
    fn resolve_field(&self, field: &str, impl_type: Option<&str>) -> Option<String> {
        let cands: Vec<&LockDecl> = self
            .locks
            .iter()
            .filter(|l| l.id.split('.').nth(1) == Some(field))
            .collect();
        match cands.len() {
            0 => None,
            1 => Some(cands[0].id.clone()),
            _ => impl_type.and_then(|t| {
                let prefix = format!("{t}.");
                let hits: Vec<&&LockDecl> =
                    cands.iter().filter(|l| l.id.starts_with(&prefix)).collect();
                if hits.len() == 1 {
                    Some(hits[0].id.clone())
                } else {
                    None
                }
            }),
        }
    }

    fn is_static_lock(&self, name: &str) -> bool {
        self.locks
            .iter()
            .any(|l| l.id == name && !l.id.contains('.'))
    }
}

/// Pass 1 over one file: inventory struct lock fields and static locks.
fn inventory_locks(ctx: &FileCtx, relpath: &str, scan: &mut Scan) {
    let n = ctx.code.len();
    let mut ci = 0;
    while ci < n {
        let text = ctx.ctext(ci);
        if text == "struct"
            && ctx.ctok(ci).kind == TokKind::Ident
            && ctx.code.get(ci + 1).is_some()
            && ctx.ctok(ci + 1).kind == TokKind::Ident
        {
            let sname = ctx.ctext(ci + 1).to_string();
            // Find the `{` opening the field block (skip generics; a `;`
            // first means a unit/tuple struct — no named fields).
            let mut j = ci + 2;
            while j < n && !matches!(ctx.ctext(j), "{" | ";" | "(") {
                if ctx.ctext(j) == "<" {
                    j = skip_angles(ctx, j);
                } else {
                    j += 1;
                }
            }
            if j >= n || ctx.ctext(j) != "{" {
                ci += 1;
                continue;
            }
            // Walk fields: segments split at `,` with all depths flat.
            let mut k = j + 1;
            let (mut brace, mut paren, mut angle) = (0i64, 0i64, 0i64);
            let mut seg: Vec<usize> = Vec::new();
            while k < n {
                let t = ctx.ctext(k);
                match t {
                    "{" => brace += 1,
                    "}" => {
                        if brace == 0 {
                            break;
                        }
                        brace -= 1;
                    }
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "<" => angle += 1,
                    ">" if k > 0 && ctx.ctext(k - 1) != "-" => angle -= 1,
                    _ => {}
                }
                if t == "," && brace == 0 && paren == 0 && angle <= 0 {
                    field_from_segment(ctx, &seg, &sname, relpath, scan);
                    seg.clear();
                    angle = 0;
                } else {
                    seg.push(k);
                }
                k += 1;
            }
            field_from_segment(ctx, &seg, &sname, relpath, scan);
            ci = k;
            continue;
        }
        // `static NAME: …Mutex…` (and lazy wrappers around one).
        if text == "static" && ctx.ctok(ci).kind == TokKind::Ident {
            let mut j = ci + 1;
            if ctx.ctext(j) == "mut" {
                j += 1;
            }
            if j < n && ctx.ctok(j).kind == TokKind::Ident && ctx.ctext(j + 1) == ":" {
                let name = ctx.ctext(j).to_string();
                let mut kind = None;
                let mut k = j + 2;
                while k < n && !matches!(ctx.ctext(k), "=" | ";") {
                    match ctx.ctext(k) {
                        "Mutex" | "TrackedMutex" => kind = Some(LockKind::Mutex),
                        "Condvar" | "TrackedCondvar" => kind = Some(LockKind::Condvar),
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(kind) = kind {
                    scan.locks.push(LockDecl {
                        id: name,
                        kind,
                        file: relpath.to_string(),
                        line: ctx.ctok(ci).line,
                    });
                }
            }
        }
        ci += 1;
    }
}

/// One struct-field segment: `pub? name : Type…` → inventory if the
/// type mentions a lock primitive.
fn field_from_segment(ctx: &FileCtx, seg: &[usize], sname: &str, relpath: &str, scan: &mut Scan) {
    let mut it = seg.iter().copied().peekable();
    // Skip visibility: `pub`, `pub(crate)`, `pub(super)`, …
    if it.peek().is_some_and(|&i| ctx.ctext(i) == "pub") {
        it.next();
        if it.peek().is_some_and(|&i| ctx.ctext(i) == "(") {
            for i in it.by_ref() {
                if ctx.ctext(i) == ")" {
                    break;
                }
            }
        }
    }
    let Some(name_i) = it.next() else { return };
    if ctx.ctok(name_i).kind != TokKind::Ident {
        return;
    }
    if it.next().is_none_or(|i| ctx.ctext(i) != ":") {
        return;
    }
    let mut kind = None;
    for i in it {
        match ctx.ctext(i) {
            "Mutex" | "TrackedMutex" => kind = Some(LockKind::Mutex),
            "Condvar" | "TrackedCondvar" => kind = Some(LockKind::Condvar),
            _ => {}
        }
    }
    if let Some(kind) = kind {
        scan.locks.push(LockDecl {
            id: format!("{sname}.{}", ctx.ctext(name_i)),
            kind,
            file: relpath.to_string(),
            line: ctx.ctok(name_i).line,
        });
    }
}

/// Resolve the receiver of a `.lock()`/`.wait()`/`.notify_*()` whose `.`
/// is at code-index `dot`: the field (or alias / static) the call is on.
fn resolve_receiver(
    ctx: &FileCtx,
    dot: usize,
    impl_type: Option<&str>,
    aliases: &HashMap<String, String>,
    scan: &Scan,
) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    // Skip one indexing group: `shards[i].lock()`.
    if ctx.ctext(j) == "]" {
        let mut depth = 0i64;
        loop {
            match ctx.ctext(j) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if ctx.ctok(j).kind != TokKind::Ident {
        return None;
    }
    let name = ctx.ctext(j);
    if j > 0 && ctx.ctext(j - 1) == "." {
        // Field access: resolve by field name.
        scan.resolve_field(name, impl_type)
    } else if let Some(id) = aliases.get(name) {
        Some(id.clone())
    } else if scan.is_static_lock(name) {
        Some(name.to_string())
    } else {
        None
    }
}

/// Keywords that start statements but are not callees.
fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "fn"
            | "move"
            | "in"
            | "as"
            | "unsafe"
            | "const"
            | "static"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

/// What one fn-body walk produces.
struct BodyScan {
    fs: FnScan,
    edges: Vec<LockEdge>,
    hazards: Vec<CondvarHazard>,
    unresolved: Vec<(String, u32)>,
    waited: Vec<(String, (String, u32))>,
    notified: Vec<String>,
}

/// Symbolic walk of one fn body (`lo..=hi` are the body braces).
fn scan_fn_body(
    ctx: &FileCtx,
    lo: usize,
    hi: usize,
    fn_name: &str,
    impl_type: Option<&str>,
    relpath: &str,
    scan_locks: &Scan,
) -> BodyScan {
    let mut fs = FnScan {
        name: fn_name.to_string(),
        file: relpath.to_string(),
        direct: HashSet::new(),
        all_calls: Vec::new(),
        holds_at_call: Vec::new(),
    };
    let mut edges = Vec::new();
    let mut hazards = Vec::new();
    let mut unresolved = Vec::new();
    let mut waited: Vec<(String, (String, u32))> = Vec::new();
    let mut notified: Vec<String> = Vec::new();

    let mut guards: Vec<Guard> = Vec::new();
    let mut aliases: HashMap<String, String> = HashMap::new();
    // Method names chained directly on a `.lock()` guard — they act on
    // the inner data, which cannot re-acquire its own lock, so a
    // same-name user fn must not be unioned in as a callee
    // (`self.writer.lock().unwrap().flush()` is `io::Write::flush`,
    // not `JsonlSink::flush`).
    let mut chain_skip: HashSet<usize> = HashSet::new();
    let mut depth = 0i64;
    let mut ci = lo;
    while ci <= hi {
        // Retire temporaries whose statement ended.
        guards.retain(|g| g.temp_end.is_none_or(|e| ci < e));
        let text = ctx.ctext(ci);
        let line = ctx.ctok(ci).line;
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                // The branch holding a conditional drop has closed: the
                // other path still holds the guard.
                for g in &mut guards {
                    if g.dropped_at.is_some_and(|d| d > depth) {
                        g.dropped_at = None;
                    }
                }
            }
            "drop"
                if ctx.seq_at(ci + 1, &["("])
                    && ctx.ctok(ci).kind == TokKind::Ident
                    && ctx.code.get(ci + 2).is_some()
                    && ctx.ctok(ci + 2).kind == TokKind::Ident
                    && ctx.ctext(ci + 3) == ")" =>
            {
                let victim = ctx.ctext(ci + 2).to_string();
                // A drop at the guard's own depth is unconditional; one
                // in a nested block only suppresses the guard until that
                // branch closes.
                guards.retain(|g| g.binding.as_deref() != Some(victim.as_str()) || depth > g.depth);
                for g in &mut guards {
                    if g.binding.as_deref() == Some(victim.as_str()) {
                        g.dropped_at = Some(depth);
                    }
                }
            }
            "let" if ctx.ctok(ci).kind == TokKind::Ident => {
                // One-level alias: `let x = …field…;` with no `.lock(`
                // on the rhs, where `field` is an inventoried lock.
                let end = ctx.stmt_end(ci);
                let mut has_lock_call = false;
                let mut alias_target = None;
                let mut k = ci;
                while k + 2 < end {
                    if ctx.seq_at(k, &[".", "lock", "("]) || ctx.seq_at(k, &[".", "wait", "("]) {
                        has_lock_call = true;
                        break;
                    }
                    k += 1;
                }
                if !has_lock_call {
                    for k in ci + 1..end {
                        if ctx.ctok(k).kind == TokKind::Ident && k > 0 && ctx.ctext(k - 1) == "." {
                            if let Some(id) = scan_locks.resolve_field(ctx.ctext(k), impl_type) {
                                alias_target = Some(id);
                            }
                        }
                    }
                    if let Some(id) = alias_target {
                        let mut k = ci + 1;
                        if ctx.ctext(k) == "mut" {
                            k += 1;
                        }
                        if ctx.ctok(k).kind == TokKind::Ident && ctx.ctext(k + 1) == "=" {
                            aliases.insert(ctx.ctext(k).to_string(), id);
                        }
                    }
                }
            }
            "." if ctx.ctok(ci).kind == TokKind::Punct => {
                let mname =
                    if ctx.code.get(ci + 1).is_some() && ctx.ctok(ci + 1).kind == TokKind::Ident {
                        ctx.ctext(ci + 1)
                    } else {
                        ""
                    };
                let is_call = !mname.is_empty() && ctx.ctext(ci + 2) == "(";
                if is_call && mname == "lock" {
                    match resolve_receiver(ctx, ci, impl_type, &aliases, scan_locks) {
                        Some(id) if scan_locks.lock_kind(&id) == Some(LockKind::Mutex) => {
                            fs.direct.insert(id.clone());
                            for g in guards.iter().filter(|g| g.dropped_at.is_none()) {
                                edges.push(LockEdge {
                                    from: g.lock.clone(),
                                    to: id.clone(),
                                    file: relpath.to_string(),
                                    line,
                                    via: None,
                                });
                            }
                            // Binding shape decides the guard's lifetime.
                            let s = ctx.stmt_start(ci);
                            let (binding, temp_end) = binding_of(ctx, s, ci);
                            if let Some(b) = &binding {
                                // Shadowing / reassignment replaces.
                                guards.retain(|g| g.binding.as_deref() != Some(b.as_str()));
                            }
                            guards.push(Guard {
                                lock: id,
                                binding,
                                depth,
                                temp_end,
                                dropped_at: None,
                            });
                            let mut k = close_paren(ctx, ci + 2, hi);
                            while ctx.ctext(k + 1) == "."
                                && ctx.code.get(k + 2).is_some()
                                && ctx.ctok(k + 2).kind == TokKind::Ident
                                && ctx.ctext(k + 3) == "("
                            {
                                chain_skip.insert(k + 2);
                                k = close_paren(ctx, k + 3, hi);
                            }
                        }
                        _ => unresolved.push((relpath.to_string(), line)),
                    }
                } else if is_call && matches!(mname, "wait" | "wait_timeout" | "wait_while") {
                    match resolve_receiver(ctx, ci, impl_type, &aliases, scan_locks) {
                        Some(cv) if scan_locks.lock_kind(&cv) == Some(LockKind::Condvar) => {
                            waited.push((cv.clone(), (relpath.to_string(), line)));
                            // The guard argument: first ident inside `(…)`.
                            let arg = if ctx.code.get(ci + 3).is_some()
                                && ctx.ctok(ci + 3).kind == TokKind::Ident
                            {
                                Some(ctx.ctext(ci + 3).to_string())
                            } else {
                                None
                            };
                            let released = arg.as_ref().and_then(|a| {
                                guards
                                    .iter()
                                    .find(|g| g.binding.as_deref() == Some(a.as_str()))
                                    .map(|g| g.lock.clone())
                            });
                            let still_held: Vec<String> = guards
                                .iter()
                                .filter(|g| g.dropped_at.is_none())
                                .filter(|g| match (&released, &g.binding, &arg) {
                                    (Some(_), Some(b), Some(a)) => b != a,
                                    _ => released.is_none(),
                                })
                                .map(|g| g.lock.clone())
                                .collect();
                            if !still_held.is_empty() {
                                hazards.push(CondvarHazard::WaitWhileHolding {
                                    condvar: cv,
                                    released,
                                    held: still_held,
                                    file: relpath.to_string(),
                                    line,
                                });
                            }
                        }
                        Some(_) => {} // `.wait()` on a non-condvar (e.g. a future)
                        None => unresolved.push((relpath.to_string(), line)),
                    }
                } else if is_call && matches!(mname, "notify_all" | "notify_one") {
                    if let Some(cv) = resolve_receiver(ctx, ci, impl_type, &aliases, scan_locks) {
                        notified.push(cv);
                    }
                } else if is_call
                    && !STD_METHODS.contains(&mname)
                    && !chain_skip.contains(&(ci + 1))
                {
                    fs.all_calls.push(mname.to_string());
                    let held: Vec<String> = guards
                        .iter()
                        .filter(|g| g.dropped_at.is_none())
                        .map(|g| g.lock.clone())
                        .collect();
                    if !held.is_empty() {
                        fs.holds_at_call.push((held, mname.to_string(), line));
                    }
                    ci += 1; // skip the name so it isn't re-seen as bare
                }
            }
            // Bare or path call; constructors (capitalized) skipped.
            _ if ctx.ctok(ci).kind == TokKind::Ident
                && ctx.ctext(ci + 1) == "("
                && !is_keyword(text)
                && text != "drop"
                && !(ci > lo && matches!(ctx.ctext(ci - 1), "." | "fn"))
                && text.chars().next().is_some_and(char::is_lowercase) =>
            {
                fs.all_calls.push(text.to_string());
                let held: Vec<String> = guards
                    .iter()
                    .filter(|g| g.dropped_at.is_none())
                    .map(|g| g.lock.clone())
                    .collect();
                if !held.is_empty() {
                    fs.holds_at_call.push((held, text.to_string(), line));
                }
            }
            _ => {}
        }
        ci += 1;
    }
    BodyScan {
        fs,
        edges,
        hazards,
        unresolved,
        waited,
        notified,
    }
}

/// Code-index of the `)` matching the `(` at `open` (clamped to `hi`).
fn close_paren(ctx: &FileCtx, open: usize, hi: usize) -> usize {
    let mut bal = 0i64;
    let mut k = open;
    while k <= hi {
        match ctx.ctext(k) {
            "(" => bal += 1,
            ")" => {
                bal -= 1;
                if bal == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    hi
}

/// `(binding, temp_end)` for a guard acquired in the statement starting
/// at code-index `s`: `let [mut] name = …` binds for the block;
/// `name = …` rebinds; anything else is a temporary living to the end
/// of the statement.
fn binding_of(ctx: &FileCtx, s: usize, ci: usize) -> (Option<String>, Option<usize>) {
    if ctx.ctext(s) == "let" {
        let mut k = s + 1;
        if ctx.ctext(k) == "mut" {
            k += 1;
        }
        if ctx.ctok(k).kind == TokKind::Ident && ctx.ctext(k + 1) == "=" {
            return (Some(ctx.ctext(k).to_string()), None);
        }
        // `let (a, b) = …`, `let Some(x) = …`: keep it held for the
        // block (conservative — over-holding can only add edges).
        return (None, None);
    }
    if ctx.ctok(s).kind == TokKind::Ident && ctx.ctext(s + 1) == "=" {
        return (Some(ctx.ctext(s).to_string()), None);
    }
    (None, Some(ctx.stmt_end(ci)))
}

/// Analyze in-memory sources (`(workspace-relative path, text)` pairs).
/// The core the path-walking front end and the tests share.
pub fn analyze_lock_sources(sources: &[(String, String)]) -> LockReport {
    let mut scan = Scan::default();
    let ctxs: Vec<(String, FileCtx)> = sources
        .iter()
        .map(|(p, s)| (p.clone(), FileCtx::new(s)))
        .collect();

    // Pass 1: lock inventory over every file.
    for (p, ctx) in &ctxs {
        inventory_locks(ctx, p, &mut scan);
    }

    // Pass 2: per-fn symbolic walk.
    for (p, ctx) in &ctxs {
        let n = ctx.code.len();
        let mut depth = 0i64;
        let mut impl_stack: Vec<(Option<String>, i64)> = Vec::new();
        let mut pending_impl: Option<Option<String>> = None;
        let mut ci = 0;
        while ci < n {
            let text = ctx.ctext(ci);
            match text {
                "{" => {
                    depth += 1;
                    if let Some(ty) = pending_impl.take() {
                        impl_stack.push((ty, depth));
                    }
                }
                "}" => {
                    if let Some((_, d)) = impl_stack.last() {
                        if *d == depth {
                            impl_stack.pop();
                        }
                    }
                    depth -= 1;
                }
                "impl" if ctx.ctok(ci).kind == TokKind::Ident => {
                    pending_impl = Some(parse_impl_type(ctx, ci + 1));
                }
                "fn" if ctx.ctok(ci).kind == TokKind::Ident
                    && ctx.code.get(ci + 1).is_some()
                    && ctx.ctok(ci + 1).kind == TokKind::Ident =>
                {
                    let fn_name = ctx.ctext(ci + 1).to_string();
                    let fn_line = ctx.ctok(ci).line as usize;
                    let in_test = ctx.in_test.get(fn_line - 1).copied().unwrap_or(false)
                        || p.contains("/tests/");
                    if let Some((lo, hi)) = fn_body_range(ctx, ci + 2) {
                        if !in_test {
                            let impl_type = impl_stack.last().and_then(|(t, _)| t.as_deref());
                            let body = scan_fn_body(ctx, lo, hi, &fn_name, impl_type, p, &scan);
                            scan.edges.extend(body.edges);
                            scan.hazards.extend(body.hazards);
                            scan.unresolved.extend(body.unresolved);
                            for (cv, site) in body.waited {
                                scan.waited.entry(cv).or_insert(site);
                            }
                            scan.notified.extend(body.notified);
                            scan.fns.push(body.fs);
                        }
                        ci = hi; // skip the body either way
                    }
                }
                _ => {}
            }
            ci += 1;
        }
    }

    // Interprocedural may-acquire fixpoint over callee names.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in scan.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut may: Vec<HashSet<String>> = scan.fns.iter().map(|f| f.direct.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..scan.fns.len() {
            let mut add: Vec<String> = Vec::new();
            for callee in &scan.fns[i].all_calls {
                if let Some(js) = by_name.get(callee.as_str()) {
                    for &j in js {
                        for l in &may[j] {
                            if !may[i].contains(l) {
                                add.push(l.clone());
                            }
                        }
                    }
                }
            }
            for l in add {
                changed |= may[i].insert(l);
            }
        }
        if !changed {
            break;
        }
    }
    let mut inter_edges = Vec::new();
    for f in &scan.fns {
        for (held, callee, line) in &f.holds_at_call {
            let Some(js) = by_name.get(callee.as_str()) else {
                continue;
            };
            let mut acq: Vec<&String> = js.iter().flat_map(|&j| may[j].iter()).collect();
            acq.sort();
            acq.dedup();
            for to in acq {
                for from in held {
                    inter_edges.push(LockEdge {
                        from: from.clone(),
                        to: to.clone(),
                        file: f.file.clone(),
                        line: *line,
                        via: Some(callee.clone()),
                    });
                }
            }
        }
    }
    scan.edges.extend(inter_edges);

    // Dedup edges by (from, to, via), keeping the first site.
    let mut seen: HashSet<(String, String, Option<String>)> = HashSet::new();
    scan.edges
        .retain(|e| seen.insert((e.from.clone(), e.to.clone(), e.via.clone())));

    // Missed-notify hazards.
    let mut hazards = std::mem::take(&mut scan.hazards);
    for (cv, (file, line)) in &scan.waited {
        if !scan.notified.contains(cv) {
            hazards.push(CondvarHazard::NeverNotified {
                condvar: cv.clone(),
                file: file.clone(),
                line: *line,
            });
        }
    }

    // Cycle detection over the mutex-order graph.
    let cycles = find_cycles(&scan.edges);

    LockReport {
        locks: scan.locks,
        edges: scan.edges,
        cycles,
        hazards,
        unresolved_sites: scan.unresolved,
    }
}

/// All elementary cycles in the edge set (deduplicated by canonical
/// rotation). Small graphs only — the lock inventory is a handful of
/// nodes.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e.to.as_str());
    }
    let mut found: HashSet<Vec<String>> = HashSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS bounded by path; collects cycles returning to `start`.
        let mut stack: Vec<(&str, Vec<String>)> = vec![(start, vec![start.to_string()])];
        while let Some((u, path)) = stack.pop() {
            for &v in adj.get(u).map(Vec::as_slice).unwrap_or(&[]) {
                if v == start {
                    found.insert(canonical_cycle(&path));
                } else if !path.iter().any(|p| p == v) && path.len() < 16 {
                    let mut next = path.clone();
                    next.push(v.to_string());
                    stack.push((v, next));
                }
            }
        }
    }
    let mut out: Vec<Vec<String>> = found.into_iter().collect();
    out.sort();
    out
}

/// Rotate a cycle so its lexicographically smallest node leads.
fn canonical_cycle(path: &[String]) -> Vec<String> {
    let min = path
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(path.len());
    out.extend_from_slice(&path[min..]);
    out.extend_from_slice(&path[..min]);
    out
}

/// Analyze every `.rs` file under `root`-relative `paths`
/// (`lockwitness.rs` itself is excluded — its wrappers *are* the
/// dynamic instrument, not subjects).
pub fn analyze_locks(root: &Path, paths: &[&str]) -> std::io::Result<LockReport> {
    let mut sources = Vec::new();
    for p in paths {
        let dir = root.join(p);
        let mut files = Vec::new();
        collect_rs(&dir, &mut files)?;
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            if rel.ends_with("lockwitness.rs") {
                continue;
            }
            sources.push((rel, std::fs::read_to_string(&f)?));
        }
    }
    Ok(analyze_lock_sources(&sources))
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if dir.is_file() {
        out.push(dir.to_path_buf());
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Dynamic cross-check result: lockwitness edges vs the static graph.
#[derive(Debug)]
pub struct DynamicReport {
    /// Edges the witness observed (`held → acquired`).
    pub observed: Vec<(String, String)>,
    /// Observed edges the static graph did not predict.
    pub unpredicted: Vec<(String, String)>,
    /// Total tracked-lock acquisitions during the workload.
    pub acquisitions: u64,
    /// `observed ⊆ static`.
    pub consistent: bool,
}

impl DynamicReport {
    /// JSON form for `fcix-check locks --dynamic --format json`.
    pub fn to_json(&self) -> JsonValue {
        let pairs = |v: &[(String, String)]| {
            JsonValue::Arr(
                v.iter()
                    .map(|(a, b)| {
                        JsonValue::obj(vec![
                            ("from", JsonValue::Str(a.clone())),
                            ("to", JsonValue::Str(b.clone())),
                        ])
                    })
                    .collect(),
            )
        };
        JsonValue::obj(vec![
            ("observed", pairs(&self.observed)),
            ("unpredicted", pairs(&self.unpredicted)),
            ("acquisitions", JsonValue::Num(self.acquisitions as f64)),
            ("consistent", JsonValue::Bool(self.consistent)),
        ])
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "dynamic witness: {} acquisitions, {} distinct edges\n",
            self.acquisitions,
            self.observed.len()
        );
        for (a, b) in &self.observed {
            s.push_str(&format!("  observed {a} -> {b}\n"));
        }
        for (a, b) in &self.unpredicted {
            s.push_str(&format!("  UNPREDICTED EDGE: {a} -> {b}\n"));
        }
        s
    }
}

/// Run a small in-process serve workload under the
/// [`fci_obs::lockwitness`] and check every observed lock-order edge is
/// predicted by `static_report`.
pub fn dynamic_cross_check(static_report: &LockReport) -> DynamicReport {
    use fci_serve::{serve, JobSpec, ProblemSpec, ServeConfig};

    fci_obs::lockwitness::reset_witness();
    fci_obs::lockwitness::set_witness_enabled(true);
    let cfg = ServeConfig {
        workers: 3,
        checkpoint_dir: std::env::temp_dir().join("fcix-locks-dynamic"),
        ..ServeConfig::default()
    };
    let problem = |sites: usize| ProblemSpec::Hubbard {
        sites,
        t: 1.0,
        u: 4.0,
        periodic: false,
    };
    let mut jobs = Vec::new();
    for i in 0..6 {
        let mut j = JobSpec::new(format!("dyn-{i}"), problem(4), 2, 2);
        j.tenant = if i % 2 == 0 { "a" } else { "b" }.to_string();
        jobs.push(j);
    }
    // One duplicate id and one oversized job exercise the reject path
    // (Server.rejected) too.
    jobs.push(JobSpec::new("dyn-0", problem(4), 2, 2));
    let report = serve(cfg, jobs);
    fci_obs::lockwitness::set_witness_enabled(false);
    assert!(report.summary.jobs_done > 0, "workload must run jobs");

    let observed = fci_obs::lockwitness::witness_edges();
    let acquisitions: u64 = fci_obs::lockwitness::witness_acquisitions()
        .iter()
        .map(|(_, c)| c)
        .sum();
    let predicted: HashSet<(String, String)> = static_report
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    let unpredicted: Vec<(String, String)> = observed
        .iter()
        .filter(|e| !predicted.contains(*e))
        .cloned()
        .collect();
    DynamicReport {
        consistent: unpredicted.is_empty(),
        observed,
        unpredicted,
        acquisitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_of(files: &[(&str, &str)]) -> LockReport {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_lock_sources(&sources)
    }

    const AB_DECL: &str = "pub struct P {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n";

    #[test]
    fn inventory_finds_fields_and_statics() {
        let r = report_of(&[(
            "crates/x/src/lib.rs",
            "struct S {\n    pub state: TrackedMutex<Q>,\n    work: TrackedCondvar,\n    plain: usize,\n    nested: Vec<Mutex<u8>>,\n}\nstatic POOL: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n",
        )]);
        let ids: Vec<&str> = r.locks.iter().map(|l| l.id.as_str()).collect();
        assert_eq!(ids, vec!["S.state", "S.work", "S.nested", "POOL"]);
        assert_eq!(r.locks[1].kind, LockKind::Condvar);
        assert_eq!(r.locks[0].kind, LockKind::Mutex);
    }

    #[test]
    fn nested_acquisition_makes_an_edge_and_opposite_order_a_cycle() {
        let src = format!(
            "{AB_DECL}impl P {{\n    fn ab(&self) {{\n        let ga = self.a.lock();\n        let gb = self.b.lock();\n        drop(gb);\n        drop(ga);\n    }}\n    fn ba(&self) {{\n        let gb = self.b.lock();\n        let ga = self.a.lock();\n        drop(ga);\n        drop(gb);\n    }}\n}}\n"
        );
        let r = report_of(&[("crates/x/src/lib.rs", &src)]);
        assert!(r.edges.iter().any(|e| e.from == "P.a" && e.to == "P.b"));
        assert!(r.edges.iter().any(|e| e.from == "P.b" && e.to == "P.a"));
        assert_eq!(r.cycles.len(), 1, "{:?}", r.cycles);
        assert_eq!(r.cycles[0], vec!["P.a".to_string(), "P.b".to_string()]);
        assert!(!r.is_clean());
    }

    #[test]
    fn drop_releases_the_guard_before_the_second_lock() {
        let src = format!(
            "{AB_DECL}impl P {{\n    fn sequential(&self) {{\n        let ga = self.a.lock();\n        drop(ga);\n        let gb = self.b.lock();\n        drop(gb);\n    }}\n}}\n"
        );
        let r = report_of(&[("crates/x/src/lib.rs", &src)]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
        assert!(r.is_clean());
    }

    #[test]
    fn block_scope_ends_a_guard() {
        let src = format!(
            "{AB_DECL}impl P {{\n    fn scoped(&self) {{\n        {{\n            let ga = self.a.lock();\n            let _x = *ga;\n        }}\n        let gb = self.b.lock();\n        drop(gb);\n    }}\n}}\n"
        );
        let r = report_of(&[("crates/x/src/lib.rs", &src)]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn temporary_guard_lives_only_for_its_statement() {
        let src = format!(
            "{AB_DECL}impl P {{\n    fn temp(&self) {{\n        *self.a.lock() += 1;\n        let gb = self.b.lock();\n        drop(gb);\n    }}\n    fn same_stmt(&self) -> u32 {{\n        *self.a.lock() + *self.b.lock()\n    }}\n}}\n"
        );
        let r = report_of(&[("crates/x/src/lib.rs", &src)]);
        // The += statement's guard is gone before b is taken…
        assert!(!r
            .edges
            .iter()
            .any(|e| e.from == "P.a" && e.to == "P.b" && e.line == 8));
        // …but two temporaries in one expression do overlap.
        assert!(
            r.edges.iter().any(|e| e.from == "P.a" && e.to == "P.b"),
            "{:?}",
            r.edges
        );
    }

    #[test]
    fn method_chained_on_guard_is_not_a_reentrant_callee() {
        // `self.a.lock().flush()` calls the *inner* value's flush, not
        // `P::flush` — no self-edge, no cycle.
        let src = format!(
            "{AB_DECL}impl P {{\n    fn write(&self) {{\n        let _ = self.a.lock().flush();\n    }}\n    fn flush(&self) {{\n        let ga = self.a.lock();\n        drop(ga);\n    }}\n}}\n"
        );
        let r = report_of(&[("crates/x/src/lib.rs", &src)]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
        assert!(r.cycles.is_empty(), "{:?}", r.cycles);
    }

    #[test]
    fn interprocedural_edges_through_a_callee() {
        let src = format!(
            "{AB_DECL}impl P {{\n    fn outer(&self) {{\n        let ga = self.a.lock();\n        self.helper();\n        drop(ga);\n    }}\n    fn helper(&self) {{\n        let gb = self.b.lock();\n        drop(gb);\n    }}\n}}\n"
        );
        let r = report_of(&[("crates/x/src/lib.rs", &src)]);
        let e = r
            .edges
            .iter()
            .find(|e| e.from == "P.a" && e.to == "P.b")
            .expect("interprocedural edge");
        assert_eq!(e.via.as_deref(), Some("helper"));
        assert!(r.is_clean(), "one-directional nesting is fine");
    }

    #[test]
    fn condvar_wait_holding_second_lock_is_a_hazard() {
        let src = "pub struct S {\n    state: Mutex<u32>,\n    other: Mutex<u32>,\n    cv: Condvar,\n}\nimpl S {\n    fn bad(&self) {\n        let go = self.other.lock();\n        let mut st = self.state.lock().unwrap();\n        st = self.cv.wait(st).unwrap();\n        drop(st);\n        drop(go);\n    }\n    fn wake(&self) {\n        self.cv.notify_all();\n    }\n}\n";
        let r = report_of(&[("crates/x/src/lib.rs", src)]);
        assert!(
            r.hazards.iter().any(|h| matches!(
                h,
                CondvarHazard::WaitWhileHolding { condvar, held, .. }
                    if condvar == "S.cv" && held.contains(&"S.other".to_string())
            )),
            "{:?}",
            r.hazards
        );
    }

    #[test]
    fn condvar_wait_with_only_its_own_mutex_is_fine() {
        let src = "pub struct S {\n    state: Mutex<u32>,\n    cv: Condvar,\n}\nimpl S {\n    fn park(&self) {\n        let mut st = self.state.lock().unwrap();\n        while *st == 0 {\n            st = self.cv.wait(st).unwrap();\n        }\n        drop(st);\n    }\n    fn wake(&self) {\n        self.cv.notify_all();\n    }\n}\n";
        let r = report_of(&[("crates/x/src/lib.rs", src)]);
        assert!(r.is_clean(), "{:?} {:?}", r.hazards, r.cycles);
    }

    #[test]
    fn never_notified_condvar_is_flagged() {
        let src = "pub struct S {\n    state: Mutex<u32>,\n    cv: Condvar,\n}\nimpl S {\n    fn park(&self) {\n        let mut st = self.state.lock().unwrap();\n        st = self.cv.wait(st).unwrap();\n        drop(st);\n    }\n}\n";
        let r = report_of(&[("crates/x/src/lib.rs", src)]);
        assert!(
            r.hazards.iter().any(
                |h| matches!(h, CondvarHazard::NeverNotified { condvar, .. } if condvar == "S.cv")
            ),
            "{:?}",
            r.hazards
        );
    }

    #[test]
    fn field_name_collision_resolved_by_impl_type() {
        let src = "pub struct A {\n    state: Mutex<u32>,\n}\npub struct B {\n    state: Mutex<u32>,\n    aux: Mutex<u32>,\n}\nimpl A {\n    fn f(&self) {\n        let g = self.state.lock();\n        drop(g);\n    }\n}\nimpl B {\n    fn f(&self) {\n        let g = self.state.lock();\n        let h = self.aux.lock();\n        drop(h);\n        drop(g);\n    }\n}\n";
        let r = report_of(&[("crates/x/src/lib.rs", src)]);
        assert!(r.unresolved_sites.is_empty(), "{:?}", r.unresolved_sites);
        assert!(
            r.edges
                .iter()
                .any(|e| e.from == "B.state" && e.to == "B.aux"),
            "{:?}",
            r.edges
        );
        assert!(!r.edges.iter().any(|e| e.from == "A.state"));
    }

    #[test]
    fn one_level_alias_resolves_indexed_shard() {
        let src = "pub struct Store {\n    shards: Vec<Mutex<u32>>,\n}\nimpl Store {\n    fn touch(&self, i: usize) {\n        let shard = &self.shards[i];\n        let mut s = shard.lock().unwrap();\n        *s += 1;\n    }\n    fn direct(&self, i: usize) {\n        let mut s = self.shards[i].lock().unwrap();\n        *s += 1;\n    }\n}\n";
        let r = report_of(&[("crates/x/src/lib.rs", src)]);
        assert!(r.unresolved_sites.is_empty(), "{:?}", r.unresolved_sites);
    }

    #[test]
    fn unresolved_receivers_are_counted_not_dropped() {
        let src = "pub struct S {\n    state: Mutex<u32>,\n}\nimpl S {\n    fn f(&self, foreign: &std::sync::Mutex<u32>) {\n        let g = foreign.lock();\n        drop(g);\n    }\n}\n";
        let r = report_of(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(r.unresolved_sites.len(), 1);
    }

    #[test]
    fn test_fns_are_skipped() {
        let src = "pub struct P {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n#[cfg(test)]\nmod tests {\n    fn scramble(p: &super::P) {\n        let gb = p.b.lock();\n        let ga = p.a.lock();\n        drop(ga);\n        drop(gb);\n    }\n}\n";
        let r = report_of(&[("crates/x/src/lib.rs", src)]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn json_report_parses() {
        let src = format!(
            "{AB_DECL}impl P {{\n    fn ab(&self) {{\n        let ga = self.a.lock();\n        let gb = self.b.lock();\n        drop(gb);\n        drop(ga);\n    }}\n}}\n"
        );
        let r = report_of(&[("crates/x/src/lib.rs", &src)]);
        let parsed = JsonValue::parse(&r.to_json().to_string()).expect("valid json");
        assert_eq!(parsed.get("clean"), Some(&JsonValue::Bool(true)));
        assert!(parsed.get_f64("unresolved_sites").is_some());
    }
}
