//! Deterministic schedule exploration for the mixed-spin task pool.
//!
//! The paper's manager/worker self-scheduling (Fig. 3) means the order in
//! which `DDI_ACC` updates land on a σ column depends on the schedule —
//! and floating-point addition is not associative, so the *raw* σ is only
//! reproducible up to accumulation order. What must NOT depend on the
//! schedule is the **set of per-task contributions**: every interleaving
//! has to produce bitwise-identical column updates, and therefore a
//! bitwise-identical σ once the contributions are folded in a canonical
//! order.
//!
//! This module replays the mixed-spin phase of a small FCI case under K
//! seeded adversarial schedules. A schedule varies two real degrees of
//! freedom of the machine:
//!
//! * **assignment** — which worker claims each task from the counter
//!   (workers keep their scratch buffers across tasks, so a wrong
//!   assignment exposes stale-buffer contamination), and
//! * **interleaving** — the global order in which per-worker task streams
//!   execute, i.e. the order accumulates hit σ.
//!
//! For every schedule the explorer records each α-column contribution
//! tagged `(column, Kα, sequence)`, folds them in sorted tag order into a
//! canonical σ, and digests the bits. All schedules must agree bitwise on
//! the canonical σ and on the variational energy ⟨c,σ⟩/⟨c,c⟩; the
//! *raw* (execution-order) σ is digested too as a negative control — it
//! is expected to differ between schedules, which is exactly why the
//! canonical fold is the right invariant to check.
//!
//! A bounded DPOR-lite pass then re-explores around detected conflicts:
//! for task pairs that update a common column it constructs the two
//! schedules that flip the pair's execution order and verifies the
//! canonical σ is unchanged.
//!
//! What this proves: the task decomposition is correct (no contribution
//! depends on schedule, worker identity, or buffer history) for the
//! explored case. What it does not prove: absence of races in the DDI
//! protocol itself — that is the race detector's job ([`crate::race`]).

use fci_core::detspace::DetSpace;
use fci_core::hamiltonian::random_hamiltonian;
use fci_core::sigma::mixed::{mixed_spin_dgemm, MixedWorker};
use fci_core::sigma::SigmaCtx;
use fci_core::taskpool::{PoolParams, TaskPool};
use fci_ddi::{Backend, Ddi, DistMatrix};
use fci_xsim::MachineModel;
use std::collections::HashMap;

/// xorshift64* — deterministic, seedable, no external state.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// FNV-1a over the bit patterns of a float slice.
fn digest(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What to explore.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Orbitals of the synthetic FCI case.
    pub n_orb: usize,
    /// α electrons.
    pub n_alpha: usize,
    /// β electrons.
    pub n_beta: usize,
    /// Virtual processors / workers.
    pub nproc: usize,
    /// Hamiltonian seed (any value; fixed per exploration).
    pub ham_seed: u64,
    /// One schedule is generated and replayed per seed.
    pub seeds: Vec<u64>,
    /// Maximum conflicting task pairs to flip in the DPOR-lite pass.
    pub dpor_pairs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            n_orb: 6,
            n_alpha: 3,
            n_beta: 3,
            nproc: 4,
            ham_seed: 17,
            seeds: (1..=8).collect(),
            dpor_pairs: 4,
        }
    }
}

/// Result of replaying one schedule.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Human-readable schedule label (`seed 3`, `dpor 1↔4 flipped`, …).
    pub label: String,
    /// FNV digest of the canonically folded σ bits.
    pub folded_digest: u64,
    /// FNV digest of the raw execution-order σ bits (negative control).
    pub raw_digest: u64,
    /// Variational energy ⟨c,σ⟩/⟨c,c⟩ of the folded σ.
    pub energy: f64,
}

/// Aggregate verdict of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Tasks in the pool.
    pub ntasks: usize,
    /// Task pairs updating a common column (conflicts).
    pub conflict_pairs: usize,
    /// All replayed schedules (seeded + DPOR flips).
    pub outcomes: Vec<ExploreOutcome>,
    /// Whether every schedule's canonical σ and energy are bitwise equal.
    pub identical: bool,
    /// Whether at least two schedules disagree on the *raw* σ — evidence
    /// the explored schedules genuinely permuted the accumulation order.
    pub raw_order_varied: bool,
    /// Max |folded σ − reference σ| against the production serial path.
    pub max_dev_from_reference: f64,
}

impl ExploreReport {
    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "explored {} schedules over {} tasks ({} conflicting pairs): \
             canonical σ/energy {}identical{}; max deviation from \
             production path {:.3e}",
            self.outcomes.len(),
            self.ntasks,
            self.conflict_pairs,
            if self.identical { "bitwise " } else { "NOT " },
            if self.raw_order_varied {
                " (raw accumulation order did vary)"
            } else {
                " (raw accumulation order never varied)"
            },
            self.max_dev_from_reference,
        )
    }
}

/// One α-column update, tagged for canonical folding.
struct Contribution {
    col: usize,
    ka: usize,
    seq: usize,
    vals: Vec<f64>,
}

/// Replay one schedule: execute tasks in `exec_order` (a task id sequence
/// consistent with each worker's claim order), with `assignment[t]` naming
/// the worker of task `t`. Returns the tagged contributions and the raw
/// execution-order σ.
fn run_schedule(
    ctx: &SigmaCtx,
    c: &DistMatrix,
    pool: &TaskPool,
    nproc: usize,
    assignment: &[usize],
    exec_order: &[usize],
) -> (Vec<Contribution>, Vec<f64>) {
    let nb = ctx.space.beta.len();
    let na = ctx.space.alpha.len();
    let mut workers: Vec<MixedWorker> = (0..nproc).map(|_| MixedWorker::new(ctx)).collect();
    let mut contribs: Vec<Contribution> = Vec::new();
    let mut raw = vec![0.0; na * nb];
    for &t in exec_order {
        let rank = assignment[t];
        for ka in pool.task(t) {
            let mut seq = 0usize;
            let contribs = &mut contribs;
            let raw = &mut raw;
            workers[rank].run_task(ctx, c, ka, rank, &mut |col, vals, _stats| {
                for (i, v) in vals.iter().enumerate() {
                    raw[col * nb + i] += v;
                }
                contribs.push(Contribution {
                    col,
                    ka,
                    seq,
                    vals: vals.to_vec(),
                });
                seq += 1;
            });
        }
    }
    (contribs, raw)
}

/// Fold contributions in canonical `(column, Kα, sequence)` order — a
/// schedule-independent accumulation order, hence bitwise-deterministic.
fn fold(contribs: &mut [Contribution], na: usize, nb: usize) -> Vec<f64> {
    contribs.sort_by_key(|c| (c.col, c.ka, c.seq));
    let mut out = vec![0.0; na * nb];
    for c in contribs.iter() {
        for (i, v) in c.vals.iter().enumerate() {
            out[c.col * nb + i] += v;
        }
    }
    out
}

/// Rayleigh quotient ⟨c,σ⟩/⟨c,c⟩ in a fixed summation order.
fn rayleigh(c: &[f64], sigma: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in c.iter().zip(sigma) {
        num += a * b;
        den += a * a;
    }
    num / den
}

/// Explore the mixed-spin task pool of a synthetic FCI case under the
/// configured schedules. See the module docs for what is (and is not)
/// being proven.
pub fn explore_mixed(cfg: &ExploreConfig) -> ExploreReport {
    let ham = random_hamiltonian(cfg.n_orb, cfg.ham_seed);
    let space = DetSpace::c1(cfg.n_orb, cfg.n_alpha, cfg.n_beta);
    let ddi = Ddi::new(cfg.nproc, Backend::Serial);
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let nb = space.beta.len();
    let na = space.alpha.len();

    // Deterministic pseudo-random CI vector.
    let c = space.zeros_ci(cfg.nproc);
    let mut lcg = cfg
        .ham_seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3);
    c.map_inplace(|_, _, _| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((lcg >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    });
    let c_dense = c.to_dense();

    // Production serial path as the numerical reference.
    let sigma_ref = space.zeros_ci(cfg.nproc);
    mixed_spin_dgemm(&ctx, &c, &sigma_ref);
    let ref_dense = sigma_ref.to_dense();

    let pool = TaskPool::aggregated(space.alpha_nm1.len(), cfg.nproc, ctx.pool);
    let ntasks = pool.len();

    // Columns each task updates — pure pool/space metadata, used to find
    // conflicting task pairs for the DPOR pass.
    let task_cols: Vec<Vec<usize>> = (0..ntasks)
        .map(|t| {
            let mut cols: Vec<usize> = pool
                .task(t)
                .flat_map(|ka| space.alpha_nm1.of(ka).iter().map(|e| e.to as usize))
                .collect();
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect();

    let mut outcomes: Vec<ExploreOutcome> = Vec::new();
    let mut max_dev = 0.0f64;

    let mut replay = |label: String, assignment: &[usize], exec_order: &[usize]| {
        let (mut contribs, raw) = run_schedule(&ctx, &c, &pool, cfg.nproc, assignment, exec_order);
        let folded = fold(&mut contribs, na, nb);
        let outcome = ExploreOutcome {
            label,
            folded_digest: digest(&folded),
            raw_digest: digest(&raw),
            energy: rayleigh(&c_dense, &folded),
        };
        for (a, b) in folded.iter().zip(&ref_dense) {
            max_dev = max_dev.max((a - b).abs());
        }
        outcomes.push(outcome);
    };

    // K seeded adversarial schedules.
    for &seed in &cfg.seeds {
        let mut rng = Rng::new(seed);
        let assignment: Vec<usize> = (0..ntasks).map(|_| rng.below(cfg.nproc)).collect();
        // Interleave the per-worker streams: repeatedly run the head task
        // of a randomly chosen nonempty worker queue.
        let mut queues: Vec<std::collections::VecDeque<usize>> =
            vec![std::collections::VecDeque::new(); cfg.nproc];
        for (t, &r) in assignment.iter().enumerate() {
            queues[r].push_back(t);
        }
        let mut exec_order = Vec::with_capacity(ntasks);
        while exec_order.len() < ntasks {
            let nonempty: Vec<usize> = (0..cfg.nproc).filter(|&r| !queues[r].is_empty()).collect();
            let r = nonempty[rng.below(nonempty.len())];
            if let Some(t) = queues[r].pop_front() {
                exec_order.push(t);
            }
        }
        replay(format!("seed {seed}"), &assignment, &exec_order);
    }

    // DPOR-lite: for conflicting task pairs, replay both flip orders on a
    // dedicated two-worker assignment.
    let mut col_tasks: HashMap<usize, Vec<usize>> = HashMap::new();
    for (t, cols) in task_cols.iter().enumerate() {
        for &col in cols {
            col_tasks.entry(col).or_default().push(t);
        }
    }
    let mut seen_pairs = std::collections::HashSet::new();
    for tasks in col_tasks.values() {
        for i in 0..tasks.len() {
            for j in i + 1..tasks.len() {
                seen_pairs.insert((tasks[i].min(tasks[j]), tasks[i].max(tasks[j])));
            }
        }
    }
    let conflict_pairs = seen_pairs.len();
    let mut pairs: Vec<(usize, usize)> = seen_pairs.into_iter().collect();
    pairs.sort_unstable();
    for &(t1, t2) in pairs.iter().take(cfg.dpor_pairs) {
        if cfg.nproc < 2 {
            break;
        }
        // t1 on worker 0, t2 on worker 1, everything else round-robin.
        let assignment: Vec<usize> = (0..ntasks)
            .map(|t| {
                if t == t1 {
                    0
                } else if t == t2 {
                    1
                } else {
                    t % cfg.nproc
                }
            })
            .collect();
        for flip in [false, true] {
            let mut exec_order: Vec<usize> = (0..ntasks).collect();
            if flip {
                exec_order.swap(t1, t2);
            }
            replay(
                format!("dpor {t1}<->{t2}{}", if flip { " flipped" } else { "" }),
                &assignment,
                &exec_order,
            );
        }
    }

    let identical = outcomes.windows(2).all(|w| {
        w[0].folded_digest == w[1].folded_digest && w[0].energy.to_bits() == w[1].energy.to_bits()
    });
    let raw_order_varied = outcomes
        .iter()
        .any(|o| o.raw_digest != outcomes[0].raw_digest);

    ExploreReport {
        ntasks,
        conflict_pairs,
        outcomes,
        identical,
        raw_order_varied,
        max_dev_from_reference: max_dev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn digest_sensitive_to_last_bit() {
        let a = [1.0f64, 2.0, 3.0];
        let mut b = a;
        b[2] = f64::from_bits(b[2].to_bits() ^ 1);
        assert_ne!(digest(&a), digest(&b));
        assert_eq!(digest(&a), digest(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn small_case_is_schedule_invariant() {
        let cfg = ExploreConfig {
            n_orb: 5,
            n_alpha: 2,
            n_beta: 2,
            nproc: 3,
            ham_seed: 7,
            seeds: vec![1, 2, 3, 4],
            dpor_pairs: 2,
        };
        let rep = explore_mixed(&cfg);
        assert!(rep.identical, "{}", rep.summary());
        assert!(rep.max_dev_from_reference < 1e-10, "{}", rep.summary());
        assert!(rep.ntasks >= 2, "need at least two tasks to explore");
    }
}
