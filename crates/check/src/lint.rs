//! `fcix-lint`: a std-only source-convention scanner.
//!
//! No external parser crates are available in this environment, so the
//! scanner is a hand-rolled character state machine: it splits every
//! source file into per-line **code text** (string literals blanked, so
//! patterns inside strings never match) and **comment text** (where
//! `SAFETY:` justifications and waivers live), tracks `#[cfg(test)]`
//! regions by brace depth, and then applies line-local rules:
//!
//! | rule       | requirement |
//! |------------|-------------|
//! | `unsafe`   | every `unsafe` or `get_unchecked[_mut]` token is covered by a `// SAFETY:` comment on the same line or within the 3 lines above (the covering `unsafe` block may open far from the unchecked access, so each access justifies itself) |
//! | `wallclock`| no `Instant::now` / `SystemTime` outside `crates/obs` (simulated time must come from the cost model; real time only via the tracer) |
//! | `unwrap`   | no `.unwrap()` / `.expect(` in hot-path or recovery code (`crates/ddi/src`, `crates/linalg/src`, `crates/core/src/sigma`, `crates/fault/src`, `crates/core/src/recovery.rs`, `crates/core/src/checkpoint.rs`, `crates/serve/src` — a scheduler that panics takes every queued tenant down with it); the mutex idiom `.lock().unwrap()` is allowed |
//! | `println`  | no `println!` outside bins, tests, and the bench harness (library output goes through the tracer or return values) |
//! | `alloc`    | no heap allocation (`vec!`, `Vec::new`, `Vec::with_capacity`, `Box::new`, `.to_vec()`, `.collect()`, `.reserve(`) in the zero-alloc GEMM modules (`crates/linalg/src/gemm.rs`, `crates/linalg/src/arena.rs`) outside tests — the σ hot path must not touch the heap after warm-up |
//! | `metric-name` | literal metric names passed to the metrics plane (`.observe("…")`, `.counter_add(`, `.counter_incr(`, `.gauge_set(`, `.incr(`) must match `[a-z0-9_.]+` — the text exposition mangles anything else, and two spellings of one metric split its series |
//! | `metric-wallclock` | on simulated-path crates (`crates/ddi`, `crates/core`, `crates/fault`, `crates/xsim`), a metric-recording call must not read host time (`now_us(`, `Instant::now`, `SystemTime`) in the same expression — simulated metrics must come from the cost model, or the histogram mixes host jitter into X1 numbers |
//!
//! A violation can be waived in place with a trailing comment
//! `lint: allow(<rule>)` on the offending line or the line above — the
//! waiver is greppable, reviewable, and local.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`unsafe`, `wallclock`, `unwrap`, `println`,
    /// `alloc`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Scanner configuration. The defaults encode this repository's layout;
/// tests point `root` at fixture directories.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Directory whose `.rs` files are scanned (recursively).
    pub root: PathBuf,
    /// Path fragments where `.unwrap()`/`.expect(` are forbidden.
    pub hot_paths: Vec<String>,
    /// Path fragment where wall-clock reads are allowed.
    pub clock_crate: String,
    /// Path fragments (files or directories) where heap allocation is
    /// forbidden outside tests — the zero-alloc GEMM hot path.
    pub zero_alloc_paths: Vec<String>,
    /// Path fragments running under the simulated clock, where metric
    /// recording must not read host time in the same expression.
    pub sim_paths: Vec<String>,
}

impl LintConfig {
    /// Defaults for a workspace rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            hot_paths: vec![
                "crates/ddi/src".into(),
                "crates/linalg/src".into(),
                "crates/core/src/sigma".into(),
                // Recovery code must not panic: a fault plane that
                // unwraps its way out of a fault defeats the point.
                "crates/fault/src".into(),
                "crates/core/src/recovery.rs".into(),
                "crates/core/src/checkpoint.rs".into(),
                // The serving layer runs many tenants' jobs in one
                // process; a panic in the scheduler or cache is a
                // multi-tenant outage, not a single failed solve.
                "crates/serve/src".into(),
            ],
            clock_crate: "crates/obs".into(),
            zero_alloc_paths: vec![
                "crates/linalg/src/gemm.rs".into(),
                "crates/linalg/src/arena.rs".into(),
            ],
            sim_paths: vec![
                "crates/ddi/src".into(),
                "crates/core/src".into(),
                "crates/fault/src".into(),
                "crates/xsim/src".into(),
            ],
        }
    }
}

/// Call tokens that record into the metrics plane; the first argument is
/// the metric name.
const METRIC_CALLS: [&str; 5] = [
    ".observe(",
    ".counter_add(",
    ".counter_incr(",
    ".gauge_set(",
    ".incr(",
];

/// Literal metric names on one raw source line (strings intact) that
/// violate the `[a-z0-9_.]+` naming rule. Dynamic names (non-literal
/// first argument) are skipped — the registry can't be linted statically.
fn bad_metric_names(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    for call in METRIC_CALLS {
        let mut from = 0;
        while let Some(p) = raw[from..].find(call) {
            let after = from + p + call.len();
            from = after;
            let rest = raw[after..].trim_start();
            let Some(lit) = rest.strip_prefix('"') else {
                continue;
            };
            let Some(end) = lit.find('"') else { continue };
            let name = &lit[..end];
            let ok = !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.');
            if !ok {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// One source line, split into its code and comment parts.
struct ScanLine {
    /// Code with string/char literals blanked out.
    code: String,
    /// Concatenated comment text of the line.
    comment: String,
    /// Inside a `#[cfg(test)]` item.
    in_test: bool,
}

/// Character state machine: strip literals, collect comments, per line.
fn scan_source(src: &str) -> Vec<ScanLine> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut lines: Vec<ScanLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(ScanLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    code.push(' ');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) && !prev_is_ident(&code) => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        code.push(' ');
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                // Char literal vs lifetime: 'x' or '\…' is a literal,
                // 'ident is a lifetime.
                '\'' if next == Some('\\') || chars.get(i + 2) == Some(&'\'') => {
                    st = St::Char;
                    code.push(' ');
                    i += 1;
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            St::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(ScanLine {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark every line inside an item annotated `#[cfg(test)]` (tracked by
/// brace depth from the attribute's following `{`).
fn mark_test_regions(lines: &mut [ScanLine]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the annotated item.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].code.clone().chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Whether a token occurrence at `pos` is preceded by an identifier char
/// (`eprintln!` must not match `println!`).
fn boundary_before(code: &str, pos: usize) -> bool {
    pos == 0
        || !code[..pos]
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Whether the char after the match is an identifier char
/// (`unsafe_code` must not match `unsafe`).
fn boundary_after(code: &str, end: usize) -> bool {
    !code[end..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Token occurrences of `needle` in `code` respecting identifier
/// boundaries on both sides.
fn token_positions(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(needle) {
        let pos = from + p;
        if boundary_before(code, pos) && boundary_after(code, pos + needle.len()) {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

fn waived(lines: &[ScanLine], idx: usize, rule: &str) -> bool {
    let tag = format!("lint: allow({rule})");
    lines[idx].comment.contains(&tag) || (idx > 0 && lines[idx - 1].comment.contains(&tag))
}

fn safety_covered(lines: &[ScanLine], idx: usize) -> bool {
    let lo = idx.saturating_sub(3);
    lines[lo..=idx]
        .iter()
        .any(|l| l.comment.contains("SAFETY:"))
}

/// Normalize a path to forward slashes relative to `root` (best effort).
fn rel(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn is_test_context(relpath: &str) -> bool {
    relpath.contains("/tests/") || relpath.starts_with("tests/")
}

fn println_allowed(relpath: &str) -> bool {
    relpath.contains("/bin/")
        || relpath.starts_with("src/bin/")
        || is_test_context(relpath)
        || relpath.contains("/benches/")
        || relpath.contains("/examples/")
        || relpath.starts_with("examples/")
        || relpath.starts_with("crates/bench/")
        || relpath.ends_with("build.rs")
}

/// Lint one file's contents. `relpath` is the `/`-separated path relative
/// to the workspace root, which selects which rules apply.
pub fn lint_source(cfg: &LintConfig, relpath: &str, src: &str) -> Vec<Violation> {
    let lines = scan_source(src);
    let mut out = Vec::new();
    let file = PathBuf::from(relpath);
    let hot = cfg
        .hot_paths
        .iter()
        .any(|h| relpath.starts_with(h.as_str()));
    let clock_ok = relpath.starts_with(cfg.clock_crate.as_str());
    let println_ok = println_allowed(relpath);
    let zero_alloc = cfg
        .zero_alloc_paths
        .iter()
        .any(|h| relpath.starts_with(h.as_str()));
    let sim = cfg
        .sim_paths
        .iter()
        .any(|h| relpath.starts_with(h.as_str()));
    // Raw lines (strings intact) for the metric-name rule: the scanner
    // blanks string literals, but metric names *are* string literals.
    let raw_lines: Vec<&str> = src.lines().collect();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;

        // Rule: unsafe needs SAFETY.
        for _pos in token_positions(code, "unsafe") {
            if waived(&lines, idx, "unsafe") || safety_covered(&lines, idx) {
                continue;
            }
            out.push(Violation {
                file: file.clone(),
                line: lineno,
                rule: "unsafe",
                message: "`unsafe` without a `// SAFETY:` comment on this line or the 3 above"
                    .into(),
            });
        }

        // Rule: unchecked indexing needs its own SAFETY — the covering
        // `unsafe` block may open many lines earlier, so each access
        // must carry (or sit under) a local justification.
        for needle in ["get_unchecked", "get_unchecked_mut"] {
            for _pos in token_positions(code, needle) {
                if waived(&lines, idx, "unsafe") || safety_covered(&lines, idx) {
                    continue;
                }
                out.push(Violation {
                    file: file.clone(),
                    line: lineno,
                    rule: "unsafe",
                    message: format!(
                        "`{needle}` without a `// SAFETY:` comment on this line or the 3 above"
                    ),
                });
            }
        }

        // Rule: no heap allocation in the zero-alloc GEMM modules
        // (tests exempt; the arena's pool-growth site is waived inline).
        if zero_alloc && !line.in_test && !is_test_context(relpath) {
            for needle in ["vec!", "Vec::new", "Vec::with_capacity", "Box::new"] {
                for _pos in token_positions(code, needle) {
                    if waived(&lines, idx, "alloc") {
                        continue;
                    }
                    out.push(Violation {
                        file: file.clone(),
                        line: lineno,
                        rule: "alloc",
                        message: format!(
                            "`{needle}` in a zero-alloc GEMM module — pack into \
                             `arena::acquire` scratch instead"
                        ),
                    });
                }
            }
            let collapsed: String = code.chars().filter(|c| !c.is_whitespace()).collect();
            for needle in [".to_vec()", ".collect()", ".reserve("] {
                if collapsed.contains(needle) && !waived(&lines, idx, "alloc") {
                    out.push(Violation {
                        file: file.clone(),
                        line: lineno,
                        rule: "alloc",
                        message: format!(
                            "`{needle}` in a zero-alloc GEMM module — pack into \
                             `arena::acquire` scratch instead"
                        ),
                    });
                }
            }
        }

        // Rule: wall-clock reads only in the obs crate.
        if !clock_ok {
            for needle in ["Instant::now", "SystemTime"] {
                for _pos in token_positions(code, needle) {
                    if waived(&lines, idx, "wallclock") {
                        continue;
                    }
                    out.push(Violation {
                        file: file.clone(),
                        line: lineno,
                        rule: "wallclock",
                        message: format!(
                            "`{needle}` outside crates/obs — simulated code must take time \
                             from the cost model, host time from the tracer"
                        ),
                    });
                }
            }
        }

        // Rule: no unwrap/expect on hot paths (tests exempt).
        if hot && !line.in_test && !is_test_context(relpath) {
            let collapsed: String = code.chars().filter(|c| !c.is_whitespace()).collect();
            let prev_code: String = if idx > 0 {
                lines[idx - 1]
                    .code
                    .chars()
                    .filter(|c| !c.is_whitespace())
                    .collect()
            } else {
                String::new()
            };
            let mut from = 0;
            while let Some(p) = collapsed[from..].find(".unwrap()") {
                let pos = from + p;
                let lock_idiom = collapsed[..pos].ends_with(".lock()")
                    || (pos == 0 && prev_code.ends_with(".lock()"));
                if !lock_idiom && !waived(&lines, idx, "unwrap") {
                    out.push(Violation {
                        file: file.clone(),
                        line: lineno,
                        rule: "unwrap",
                        message: "`.unwrap()` in hot-path code — handle the error or use \
                                  `unwrap_or_else`/`total_cmp`; `.lock().unwrap()` is the \
                                  only allowed form"
                            .into(),
                    });
                }
                from = pos + ".unwrap()".len();
            }
            if collapsed.contains(".expect(") && !waived(&lines, idx, "unwrap") {
                out.push(Violation {
                    file: file.clone(),
                    line: lineno,
                    rule: "unwrap",
                    message: "`.expect(…)` in hot-path code — propagate or handle the error".into(),
                });
            }
        }

        // Rules on metric-recording calls. The call token is looked up in
        // the blanked code text (so a token inside a doc string does not
        // count), the name itself in the raw line.
        let records_metric = METRIC_CALLS.iter().any(|c| code.contains(c));
        if records_metric && !line.in_test && !is_test_context(relpath) {
            // Rule: literal metric names match [a-z0-9_.]+.
            if !waived(&lines, idx, "metric-name") {
                for name in raw_lines
                    .get(idx)
                    .map_or(Vec::new(), |r| bad_metric_names(r))
                {
                    out.push(Violation {
                        file: file.clone(),
                        line: lineno,
                        rule: "metric-name",
                        message: format!(
                            "metric name `{name}` — names must match [a-z0-9_.]+ so the \
                             text exposition and series labels stay stable"
                        ),
                    });
                }
            }
            // Rule: simulated-path metrics must not read host time in the
            // recording expression.
            if sim && !waived(&lines, idx, "metric-wallclock") {
                let clocky = ["now_us(", "Instant::now", "SystemTime"]
                    .iter()
                    .find(|n| code.contains(*n));
                if let Some(n) = clocky {
                    out.push(Violation {
                        file: file.clone(),
                        line: lineno,
                        rule: "metric-wallclock",
                        message: format!(
                            "`{n}` inside a metric-recording expression on a simulated \
                             path — record cost-model time, or split the host read onto \
                             its own audited line"
                        ),
                    });
                }
            }
        }

        // Rule: no stray println!.
        if !println_ok && !line.in_test {
            for _pos in token_positions(code, "println!") {
                if waived(&lines, idx, "println") {
                    continue;
                }
                out.push(Violation {
                    file: file.clone(),
                    line: lineno,
                    rule: "println",
                    message: "`println!` outside bins/tests — libraries report through \
                              return values or the tracer"
                        .into(),
                });
            }
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, skipping build output and
/// VCS internals.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the given files (paths may be absolute; rule selection uses their
/// path relative to `cfg.root`).
pub fn lint_paths(cfg: &LintConfig, files: &[PathBuf]) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(f)?;
        let relpath = rel(&cfg.root, f);
        out.extend(lint_source(cfg, &relpath, &src));
    }
    Ok(out)
}

/// Lint every `.rs` file under `cfg.root`.
pub fn lint_workspace(cfg: &LintConfig) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs(&cfg.root, &mut files)?;
    files.sort();
    lint_paths(cfg, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::new(".")
    }

    fn lint(relpath: &str, src: &str) -> Vec<Violation> {
        lint_source(&cfg(), relpath, src)
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        let v = lint("crates/linalg/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe");
        let good = "// SAFETY: bounds checked above.\nfn f() { unsafe { g() } }\n";
        assert!(lint("crates/linalg/src/x.rs", good).is_empty());
        // `forbid(unsafe_code)` is not an unsafe token.
        assert!(lint("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn unsafe_in_string_does_not_count() {
        let src = "fn f() { let s = \"unsafe { }\"; }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        let raw = "fn f() { let s = r#\"unsafe\"#; }\n";
        assert!(lint("crates/core/src/x.rs", raw).is_empty());
    }

    #[test]
    fn get_unchecked_requires_local_safety_comment() {
        // The block-level SAFETY covers the `unsafe` keyword but sits
        // too far above the access itself.
        let bad = "// SAFETY: block argument.\nunsafe {\n    let a = 1;\n    let b = 2;\n    \
                   let c = 3;\n    let x = *p.get_unchecked(0);\n}\n";
        let v = lint("crates/linalg/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe");
        assert_eq!(v[0].line, 6);
        let good = "// SAFETY: block argument.\nunsafe {\n    // SAFETY: idx < len by loop \
                    bound.\n    let x = *p.get_unchecked_mut(0);\n}\n";
        assert!(lint("crates/linalg/src/x.rs", good).is_empty());
    }

    #[test]
    fn alloc_forbidden_in_gemm_modules() {
        let src = "fn f() { let v = vec![0.0; 8]; }\n";
        assert_eq!(lint("crates/linalg/src/gemm.rs", src).len(), 1);
        assert_eq!(lint("crates/linalg/src/gemm.rs", src)[0].rule, "alloc");
        assert_eq!(lint("crates/linalg/src/arena.rs", src).len(), 1);
        // Other modules may allocate freely.
        assert!(lint("crates/linalg/src/matrix.rs", src).is_empty());
        let collect = "fn f() { let v: Vec<f64> = it.collect(); }\n";
        assert_eq!(lint("crates/linalg/src/gemm.rs", collect).len(), 1);
        let grow = "fn f() { buf.reserve(n); }\n";
        assert_eq!(lint("crates/linalg/src/arena.rs", grow).len(), 1);
        let waived =
            "// One-time pool growth.\n// lint: allow(alloc)\nfn f() { buf.reserve(n); }\n";
        assert!(lint("crates/linalg/src/arena.rs", waived).is_empty());
        // Tests inside the module are exempt.
        let test = "#[cfg(test)]\nmod tests {\n    fn g() { let v = vec![1]; }\n}\n";
        assert!(lint("crates/linalg/src/gemm.rs", test).is_empty());
    }

    #[test]
    fn wallclock_only_in_obs() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
        assert!(lint("crates/obs/src/tracer.rs", src).is_empty());
        let waived =
            "// lint: allow(wallclock) — real timing harness\nfn f() { let t = Instant::now(); }\n";
        assert!(lint("crates/bench/src/harness.rs", waived).is_empty());
    }

    #[test]
    fn unwrap_rules_on_hot_paths() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint("crates/ddi/src/dist.rs", src).len(), 1);
        // Recovery paths are hot too: they run *because* something broke.
        assert_eq!(lint("crates/fault/src/plan.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/recovery.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/checkpoint.rs", src).len(), 1);
        // The multi-tenant serving layer must not panic either.
        assert_eq!(lint("crates/serve/src/server.rs", src).len(), 1);
        // Cold paths are free to unwrap.
        assert!(lint("crates/core/src/solver.rs", src).is_empty());
        // The mutex idiom is allowed, including rustfmt's line split.
        let lock = "fn f() { m.lock().unwrap(); }\n";
        assert!(lint("crates/ddi/src/dist.rs", lock).is_empty());
        let split = "fn f() {\n    m\n        .lock()\n        .unwrap();\n}\n";
        assert!(lint("crates/ddi/src/dist.rs", split).is_empty());
        let expect = "fn f() { x.expect(\"boom\"); }\n";
        assert_eq!(lint("crates/linalg/src/gemm.rs", expect).len(), 1);
        // Tests inside the hot file are exempt.
        let test = "#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(lint("crates/ddi/src/dist.rs", test).is_empty());
    }

    #[test]
    fn println_rules() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
        assert!(lint("src/bin/fcix.rs", src).is_empty());
        assert!(lint("crates/check/src/bin/fcix-lint.rs", src).is_empty());
        assert!(lint("crates/core/tests/t.rs", src).is_empty());
        // eprintln is fine anywhere.
        let e = "fn f() { eprintln!(\"x\"); }\n";
        assert!(lint("crates/core/src/x.rs", e).is_empty());
    }

    #[test]
    fn metric_names_must_be_lowercase_dotted() {
        let bad = "fn f() { m.observe(\"Sigma Phase-S\", &[], x); }\n";
        let v = lint("crates/core/src/phase.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "metric-name");
        assert!(v[0].message.contains("Sigma Phase-S"));
        let good = "fn f() { m.observe(\"sigma.phase_s\", &[], x); }\n";
        assert!(lint("crates/core/src/phase.rs", good).is_empty());
        // All recording entry points are covered.
        for call in ["counter_add", "counter_incr", "gauge_set", "incr"] {
            let src = format!("fn f() {{ m.{call}(\"BAD!\", &[]); }}\n");
            assert_eq!(lint("crates/serve/src/server.rs", &src).len(), 1, "{call}");
        }
        // Dynamic names and non-metric calls are skipped.
        let dynamic = "fn f() { m.observe(name, &[], x); }\n";
        assert!(lint("crates/core/src/phase.rs", dynamic).is_empty());
        // A doc-comment mention is not a recording call.
        let doc = "/// e.g. `.observe(\"NOT A NAME\")` would be wrong\nfn f() {}\n";
        assert!(lint("crates/core/src/phase.rs", doc).is_empty());
        // Waivers work; tests are exempt.
        let waived = "fn f() { m.incr(\"WAT\"); } // lint: allow(metric-name)\n";
        assert!(lint("crates/core/src/phase.rs", waived).is_empty());
        assert!(lint("crates/core/tests/t.rs", bad).is_empty());
    }

    #[test]
    fn metric_recording_must_not_read_host_time_on_sim_paths() {
        let bad = "fn f() { m.observe(\"davidson.iter_s\", &[], t.now_us()); }\n";
        let v = lint("crates/core/src/diag.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "metric-wallclock");
        // Cost-model time is fine.
        let good = "fn f() { m.observe(\"davidson.iter_s\", &[], ck.total()); }\n";
        assert!(lint("crates/core/src/diag.rs", good).is_empty());
        // Host-side crates (serve, bench, bins) may mix freely.
        assert!(lint("crates/serve/src/server.rs", bad).is_empty());
        // A host read on its own line does not trip this rule (the plain
        // wallclock rule still covers Instant::now).
        let split = "fn f() { let t0 = t.now_us(); m.observe(\"a.b\", &[], x); }\n";
        assert_eq!(
            lint("crates/ddi/src/dist.rs", split)
                .iter()
                .filter(|v| v.rule == "metric-wallclock")
                .count(),
            1,
            "same-line mixing is still one expression"
        );
        let two_lines = "fn f() {\n    let dt = t.now_us() - t0;\n    \
                         m.observe(\"a.b\", &[], dt); // lint: allow(metric-wallclock)\n}\n";
        assert!(lint("crates/ddi/src/dist.rs", two_lines)
            .iter()
            .all(|v| v.rule != "metric-wallclock"));
    }

    #[test]
    fn waiver_on_preceding_line() {
        let src = "// lint: allow(unwrap) — guarded above\nfn f() { x.unwrap(); }\n";
        assert!(lint("crates/ddi/src/dist.rs", src).is_empty());
        let trailing = "fn f() { x.unwrap() } // lint: allow(unwrap)\n";
        assert!(lint("crates/ddi/src/dist.rs", trailing).is_empty());
    }

    #[test]
    fn char_literals_do_not_break_scanning() {
        let src = "fn f() { let c = '\"'; let d = '\\n'; x.unwrap(); }\n";
        assert_eq!(lint("crates/ddi/src/dist.rs", src).len(), 1);
        let lifetime = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        assert!(lint("crates/ddi/src/dist.rs", lifetime).is_empty());
    }

    #[test]
    fn block_comments_and_nesting() {
        let src = "/* unsafe { } */\nfn f() {}\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        let nested = "/* a /* unsafe */ b */\nfn f() {}\n";
        assert!(lint("crates/core/src/x.rs", nested).is_empty());
    }
}
