//! `fcix-lint`: a std-only source-convention scanner.
//!
//! v2: every rule runs on the lossless token stream from [`crate::lex`]
//! instead of the old per-line character state machine. Tokens carry
//! byte spans and line numbers, so rules see across lines (a `.expect(`
//! split by rustfmt, a metric call whose name sits on the next line),
//! never match text inside string literals or comments, and can reason
//! about **statement spans** — the unit the SAFETY rule now binds to.
//!
//! | rule       | requirement |
//! |------------|-------------|
//! | `unsafe`   | every `unsafe` or `get_unchecked[_mut]` token is covered by a `// SAFETY:` comment attached to its enclosing statement: on a line of the statement itself, or in the contiguous comment block immediately above the statement (the covering `unsafe` block may open far from the unchecked access, so each access justifies itself) |
//! | `wallclock`| no `Instant::now` / `SystemTime` outside `crates/obs` (simulated time must come from the cost model; real time only via the tracer) |
//! | `unwrap`   | no `.unwrap()` / `.expect(` in hot-path or recovery code (`crates/ddi/src`, `crates/linalg/src`, `crates/core/src/sigma`, `crates/fault/src`, `crates/core/src/recovery.rs`, `crates/core/src/checkpoint.rs`, `crates/serve/src` — a scheduler that panics takes every queued tenant down with it — and `crates/sparse/src`, whose solvers must truncate rather than die); the mutex idiom `.lock().unwrap()` is allowed |
//! | `println`  | no `println!` outside bins, tests, and the bench harness (library output goes through the tracer or return values) |
//! | `alloc`    | no heap allocation (`vec!`, `Vec::new`, `Vec::with_capacity`, `Box::new`, `.to_vec()`, `.collect()`, `.reserve(`) in the zero-alloc kernel modules (`crates/linalg/src/gemm.rs`, `crates/linalg/src/arena.rs`, `crates/linalg/src/tridiag.rs`, `crates/linalg/src/cholqr.rs`, `crates/sparse/src/kernel.rs`) outside tests — the σ, eigensolver, and sparse-engine hot paths must not touch the heap after warm-up |
//! | `metric-name` | literal metric names passed to the metrics plane (`.observe("…")`, `.counter_add(`, `.counter_incr(`, `.gauge_set(`, `.incr(`) must match `[a-z0-9_.]+` — the text exposition mangles anything else, and two spellings of one metric split its series |
//! | `metric-wallclock` | on simulated-path crates (`crates/ddi`, `crates/core`, `crates/fault`, `crates/xsim`), a metric-recording call must not read host time (`now_us(`, `Instant::now`, `SystemTime`) in the same statement or on the same line — simulated metrics must come from the cost model, or the histogram mixes host jitter into X1 numbers |
//!
//! A violation can be waived in place with a trailing comment
//! `lint: allow(<rule>)` on the offending line or the line above — the
//! waiver is greppable, reviewable, and local. [`lint_workspace_report`]
//! counts waivers per rule so CI can flag growth, and
//! [`LintReport::to_json`] emits the machine-readable report
//! `fcix-lint --format json` prints.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{lex, Tok, TokKind};
use fci_obs::JsonValue;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`unsafe`, `wallclock`, `unwrap`, `println`,
    /// `alloc`, `metric-name`, `metric-wallclock`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Scanner configuration. The defaults encode this repository's layout;
/// tests point `root` at fixture directories.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Directory whose `.rs` files are scanned (recursively).
    pub root: PathBuf,
    /// Path fragments where `.unwrap()`/`.expect(` are forbidden.
    pub hot_paths: Vec<String>,
    /// Path fragment where wall-clock reads are allowed.
    pub clock_crate: String,
    /// Path fragments (files or directories) where heap allocation is
    /// forbidden outside tests — the zero-alloc GEMM hot path.
    pub zero_alloc_paths: Vec<String>,
    /// Path fragments running under the simulated clock, where metric
    /// recording must not read host time in the same statement.
    pub sim_paths: Vec<String>,
}

impl LintConfig {
    /// Defaults for a workspace rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            hot_paths: vec![
                "crates/ddi/src".into(),
                "crates/linalg/src".into(),
                "crates/core/src/sigma".into(),
                // Recovery code must not panic: a fault plane that
                // unwraps its way out of a fault defeats the point.
                "crates/fault/src".into(),
                "crates/core/src/recovery.rs".into(),
                "crates/core/src/checkpoint.rs".into(),
                // The serving layer runs many tenants' jobs in one
                // process; a panic in the scheduler or cache is a
                // multi-tenant outage, not a single failed solve.
                "crates/serve/src".into(),
                // The sparse engines run unbounded coordinate/growth
                // loops; error paths must degrade (drop, truncate), not
                // panic mid-solve.
                "crates/sparse/src".into(),
            ],
            clock_crate: "crates/obs".into(),
            zero_alloc_paths: vec![
                "crates/linalg/src/gemm.rs".into(),
                "crates/linalg/src/arena.rs".into(),
                // The eigensolver kernels run inside the Davidson loop:
                // after warm-up they must work out of the arena too.
                "crates/linalg/src/tridiag.rs".into(),
                "crates/linalg/src/cholqr.rs".into(),
                // The sparse engines' per-iteration kernels (gradient
                // scan, CSR mat-vec, step solve) run millions of times
                // per solve and must stay off the heap.
                "crates/sparse/src/kernel.rs".into(),
            ],
            sim_paths: vec![
                "crates/ddi/src".into(),
                "crates/core/src".into(),
                "crates/fault/src".into(),
                "crates/xsim/src".into(),
            ],
        }
    }
}

/// Method names that record into the metrics plane; the first argument
/// is the metric name.
const METRIC_CALLS: [&str; 5] = [
    "observe",
    "counter_add",
    "counter_incr",
    "gauge_set",
    "incr",
];

/// Tokenized file with the per-line facts every rule needs.
pub(crate) struct FileCtx<'s> {
    pub(crate) src: &'s str,
    pub(crate) toks: Vec<Tok>,
    /// Indices into `toks` of code tokens only.
    pub(crate) code: Vec<usize>,
    /// Per line (0-based): concatenated comment text.
    pub(crate) comments: Vec<String>,
    /// Per line (0-based): the line carries at least one code token.
    pub(crate) has_code: Vec<bool>,
    /// Per line (0-based): inside a `#[cfg(test)]` item.
    pub(crate) in_test: Vec<bool>,
}

impl<'s> FileCtx<'s> {
    pub(crate) fn new(src: &'s str) -> FileCtx<'s> {
        let toks = lex(src);
        let nlines = src.as_bytes().iter().filter(|&&b| b == b'\n').count() + 1;
        let mut comments = vec![String::new(); nlines];
        let mut has_code = vec![false; nlines];
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.is_code())
            .map(|(i, _)| i)
            .collect();
        for t in &toks {
            let text = t.text(src);
            if t.kind.is_comment() {
                for (k, part) in text.split('\n').enumerate() {
                    let l = t.line as usize - 1 + k;
                    if l < nlines {
                        comments[l].push_str(part);
                    }
                }
            } else if t.kind.is_code() {
                let span_lines = text.matches('\n').count();
                for k in 0..=span_lines {
                    let l = t.line as usize - 1 + k;
                    if l < nlines {
                        has_code[l] = true;
                    }
                }
            }
        }
        let mut ctx = FileCtx {
            src,
            toks,
            code,
            comments,
            has_code,
            in_test: vec![false; nlines],
        };
        ctx.mark_test_regions();
        ctx
    }

    /// Text of the code token at code-index `ci` (`""` out of range).
    pub(crate) fn ctext(&self, ci: usize) -> &str {
        self.code
            .get(ci)
            .map_or("", |&i| self.toks[i].text(self.src))
    }

    pub(crate) fn ctok(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }

    /// Whether the code tokens starting at `ci` spell out `pat`.
    pub(crate) fn seq_at(&self, ci: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, want)| self.ctext(ci + k) == *want)
    }

    /// Mark every line inside an item annotated `#[cfg(test)]` (tracked
    /// by brace depth over code tokens from the attribute on).
    fn mark_test_regions(&mut self) {
        let attr = ["#", "[", "cfg", "(", "test", ")", "]"];
        let mut ci = 0;
        while ci < self.code.len() {
            if !self.seq_at(ci, &attr) {
                ci += 1;
                continue;
            }
            let start_line = self.ctok(ci).line as usize;
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = ci + attr.len();
            let mut end_line = self.in_test.len();
            while j < self.code.len() {
                match self.ctext(j) {
                    "{" => {
                        depth += 1;
                        opened = true;
                    }
                    "}" => depth -= 1,
                    _ => {}
                }
                if opened && depth <= 0 {
                    let t = self.ctok(j);
                    end_line = t.line as usize + t.text(self.src).matches('\n').count();
                    break;
                }
                j += 1;
            }
            for l in start_line..=end_line.min(self.in_test.len()) {
                self.in_test[l - 1] = true;
            }
            ci = j + 1;
        }
    }

    /// `lint: allow(<rule>)` waiver in a comment on `line` or the line
    /// above (1-based).
    pub(crate) fn waived(&self, line: usize, rule: &str) -> bool {
        let tag = format!("lint: allow({rule})");
        let hit = |l: usize| {
            l >= 1
                && self
                    .comments
                    .get(l - 1)
                    .is_some_and(|c| c.contains(tag.as_str()))
        };
        hit(line) || hit(line - 1)
    }

    /// Code-index of the first token of the statement containing code
    /// token `ci`: the token after the nearest preceding `;`, `{`, or
    /// `}` (or the first code token of the file).
    pub(crate) fn stmt_start(&self, ci: usize) -> usize {
        let mut s = ci;
        while s > 0 {
            if matches!(self.ctext(s - 1), ";" | "{" | "}") {
                break;
            }
            s -= 1;
        }
        s
    }

    /// Code-index one past the last token of the statement containing
    /// `ci`: up to and including the next `;`, or stopping before the
    /// next `{`/`}` (conservative — block arguments end the walk).
    pub(crate) fn stmt_end(&self, ci: usize) -> usize {
        let mut e = ci;
        while e < self.code.len() {
            match self.ctext(e) {
                ";" => return e + 1,
                "{" | "}" if e > ci => return e,
                _ => e += 1,
            }
        }
        e
    }

    /// Statement-bound SAFETY coverage for the token at code-index `ci`:
    /// a `SAFETY:` comment on any line of the statement up to the token,
    /// or anywhere in the contiguous comment block immediately above the
    /// statement's first line. Unlike the old fixed 3-line window, a
    /// long (reflowed) justification still covers, and a comment pinned
    /// to the `unsafe` block header does *not* cover an access several
    /// statements deeper.
    fn safety_covered(&self, ci: usize) -> bool {
        let tok_line = self.ctok(ci).line as usize;
        let start_line = self.ctok(self.stmt_start(ci)).line as usize;
        for l in start_line..=tok_line {
            if self
                .comments
                .get(l - 1)
                .is_some_and(|c| c.contains("SAFETY:"))
            {
                return true;
            }
        }
        let mut l = start_line;
        while l > 1 {
            l -= 1;
            let idx = l - 1;
            if self.has_code[idx] || self.comments[idx].trim().is_empty() {
                break;
            }
            if self.comments[idx].contains("SAFETY:") {
                return true;
            }
        }
        false
    }

    /// Clock-read pattern (`now_us(`, `Instant::now`, `SystemTime`)
    /// starting at code-index `ci`, with the needle name for messages.
    fn clock_read_at(&self, ci: usize) -> Option<&'static str> {
        if self.ctext(ci) == "now_us" && self.ctext(ci + 1) == "(" {
            Some("now_us(")
        } else if self.seq_at(ci, &["Instant", ":", ":", "now"]) {
            Some("Instant::now")
        } else if self.ctext(ci) == "SystemTime" {
            Some("SystemTime")
        } else {
            None
        }
    }
}

/// Normalize a path to forward slashes relative to `root` (best effort).
fn rel(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn is_test_context(relpath: &str) -> bool {
    relpath.contains("/tests/") || relpath.starts_with("tests/")
}

fn println_allowed(relpath: &str) -> bool {
    relpath.contains("/bin/")
        || relpath.starts_with("src/bin/")
        || is_test_context(relpath)
        || relpath.contains("/benches/")
        || relpath.contains("/examples/")
        || relpath.starts_with("examples/")
        || relpath.starts_with("crates/bench/")
        || relpath.ends_with("build.rs")
}

/// Lint one file's contents. `relpath` is the `/`-separated path relative
/// to the workspace root, which selects which rules apply.
pub fn lint_source(cfg: &LintConfig, relpath: &str, src: &str) -> Vec<Violation> {
    let ctx = FileCtx::new(src);
    let mut out = Vec::new();
    let file = PathBuf::from(relpath);
    let hot = cfg
        .hot_paths
        .iter()
        .any(|h| relpath.starts_with(h.as_str()));
    let clock_ok = relpath.starts_with(cfg.clock_crate.as_str());
    let println_ok = println_allowed(relpath);
    let zero_alloc = cfg
        .zero_alloc_paths
        .iter()
        .any(|h| relpath.starts_with(h.as_str()));
    let sim = cfg
        .sim_paths
        .iter()
        .any(|h| relpath.starts_with(h.as_str()));
    let test_file = is_test_context(relpath);
    let in_test = |line: usize| ctx.in_test.get(line - 1).copied().unwrap_or(false);

    let mut push = |line: usize, rule: &'static str, message: String| {
        if !ctx.waived(line, rule) {
            out.push(Violation {
                file: file.clone(),
                line,
                rule,
                message,
            });
        }
    };

    for ci in 0..ctx.code.len() {
        let tok = ctx.ctok(ci);
        let text = ctx.ctext(ci);
        let line = tok.line as usize;

        match tok.kind {
            TokKind::Ident => match text {
                // Rule: unsafe / unchecked access needs a SAFETY comment
                // bound to its enclosing statement — the covering
                // `unsafe` block may open many lines earlier, so each
                // access must carry (or sit under) a local
                // justification.
                "unsafe" | "get_unchecked" | "get_unchecked_mut" if !ctx.safety_covered(ci) => {
                    push(
                        line,
                        "unsafe",
                        format!(
                            "`{text}` without a `// SAFETY:` comment attached to its \
                             statement (on the statement's lines or the comment block \
                             directly above it)"
                        ),
                    );
                }
                // Rule: wall-clock reads only in the obs crate.
                "SystemTime" if !clock_ok => {
                    push(
                        line,
                        "wallclock",
                        "`SystemTime` outside crates/obs — simulated code must take time \
                         from the cost model, host time from the tracer"
                            .into(),
                    );
                }
                "Instant" if !clock_ok && ctx.seq_at(ci + 1, &[":", ":", "now"]) => {
                    push(
                        line,
                        "wallclock",
                        "`Instant::now` outside crates/obs — simulated code must take time \
                         from the cost model, host time from the tracer"
                            .into(),
                    );
                }
                // Rule: no stray println!.
                "println" if !println_ok && !in_test(line) && ctx.ctext(ci + 1) == "!" => {
                    push(
                        line,
                        "println",
                        "`println!` outside bins/tests — libraries report through \
                         return values or the tracer"
                            .into(),
                    );
                }
                // Rule: no heap allocation in the zero-alloc GEMM
                // modules (tests exempt; the arena's pool-growth site is
                // waived inline).
                "vec" if zero_alloc && !in_test(line) && !test_file && ctx.ctext(ci + 1) == "!" => {
                    push(line, "alloc", alloc_msg("vec!"));
                }
                "Vec" | "Box" if zero_alloc && !in_test(line) && !test_file => {
                    for ctor in ["new", "with_capacity"] {
                        if ctx.seq_at(ci + 1, &[":", ":", ctor]) && (text == "Vec" || ctor == "new")
                        {
                            push(line, "alloc", alloc_msg(&format!("{text}::{ctor}")));
                        }
                    }
                }
                _ => {}
            },
            TokKind::Punct if text == "." => {
                let name = ctx.ctext(ci + 1);
                let call = ctx.ctext(ci + 2) == "(";
                // Rule: no unwrap/expect on hot paths (tests exempt);
                // `.lock().unwrap()` is the one allowed form, including
                // rustfmt's multi-line split of the chain.
                if hot && !in_test(line) && !test_file && call {
                    if name == "unwrap" && ctx.ctext(ci + 3) == ")" {
                        let lock_idiom = ci >= 4 && ctx.seq_at(ci - 4, &[".", "lock", "(", ")"]);
                        if !lock_idiom {
                            push(
                                ctx.ctok(ci + 1).line as usize,
                                "unwrap",
                                "`.unwrap()` in hot-path code — handle the error or use \
                                 `unwrap_or_else`/`total_cmp`; `.lock().unwrap()` is the \
                                 only allowed form"
                                    .into(),
                            );
                        }
                    } else if name == "expect" {
                        push(
                            ctx.ctok(ci + 1).line as usize,
                            "unwrap",
                            "`.expect(…)` in hot-path code — propagate or handle the error".into(),
                        );
                    }
                }
                // Rule: no heap allocation in the zero-alloc modules.
                if zero_alloc && !in_test(line) && !test_file && call {
                    match name {
                        "to_vec" | "collect" if ctx.ctext(ci + 3) == ")" => {
                            push(line, "alloc", alloc_msg(&format!(".{name}()")));
                        }
                        "reserve" => push(line, "alloc", alloc_msg(".reserve(")),
                        _ => {}
                    }
                }
                // Rules on metric-recording calls.
                if call && METRIC_CALLS.contains(&name) && !in_test(line) && !test_file {
                    // Rule: literal metric names match [a-z0-9_.]+.
                    // Dynamic names (non-literal first argument) are
                    // skipped — the registry can't be linted statically.
                    let arg = ctx
                        .code
                        .get(ci + 3)
                        .map(|&i| &ctx.toks[i])
                        .filter(|t| t.kind == TokKind::StrLit);
                    if let Some(lit) = arg {
                        let raw = lit.text(src);
                        let metric = raw.trim_matches('"');
                        let ok = !metric.is_empty()
                            && metric.chars().all(|c| {
                                c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.'
                            });
                        if !ok {
                            push(
                                line,
                                "metric-name",
                                format!(
                                    "metric name `{metric}` — names must match [a-z0-9_.]+ \
                                     so the text exposition and series labels stay stable"
                                ),
                            );
                        }
                    }
                    // Rule: simulated-path metrics must not read host
                    // time in the recording statement (or anywhere on
                    // the recording line — two statements jammed onto
                    // one line are still one audited unit).
                    if sim {
                        let (s, e) = (ctx.stmt_start(ci), ctx.stmt_end(ci));
                        let clocky = (s..e).find_map(|k| ctx.clock_read_at(k)).or_else(|| {
                            (0..ctx.code.len())
                                .filter(|&k| ctx.ctok(k).line as usize == line)
                                .find_map(|k| ctx.clock_read_at(k))
                        });
                        if let Some(n) = clocky {
                            push(
                                line,
                                "metric-wallclock",
                                format!(
                                    "`{n}` inside a metric-recording statement on a \
                                     simulated path — record cost-model time, or split the \
                                     host read into its own audited statement"
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn alloc_msg(needle: &str) -> String {
    format!("`{needle}` in a zero-alloc GEMM module — pack into `arena::acquire` scratch instead")
}

/// Per-rule `lint: allow(...)` waiver counts in one file's comments.
pub fn waivers_in_source(src: &str) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for t in lex(src) {
        if !t.kind.is_comment() {
            continue;
        }
        let text = t.text(src);
        let mut from = 0;
        while let Some(p) = text[from..].find("lint: allow(") {
            let start = from + p + "lint: allow(".len();
            from = start;
            let Some(end) = text[start..].find(')') else {
                break;
            };
            let rule = text[start..start + end].to_string();
            // Identifier-shaped only: documentation spells the pattern
            // with placeholders (`<rule>`, `…`) that are not waivers.
            if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                continue;
            }
            match counts.iter_mut().find(|(r, _)| *r == rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((rule, 1)),
            }
        }
    }
    counts
}

/// Aggregated lint run: violations plus per-rule waiver counts, the
/// payload behind `fcix-lint --format json`.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All violations, in path order.
    pub violations: Vec<Violation>,
    /// Waiver tallies per rule, sorted by rule name. CI diffs these
    /// against the previous run to flag waiver growth.
    pub waivers: Vec<(String, usize)>,
    /// Number of files scanned.
    pub files: usize,
}

impl LintReport {
    /// Machine-readable report:
    /// `{"tool":"fcix-lint","files":N,"violations":[{file,line,rule,message}],
    ///   "waivers":[{rule,count}]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("tool", JsonValue::Str("fcix-lint".into())),
            ("files", JsonValue::Num(self.files as f64)),
            (
                "violations",
                JsonValue::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            JsonValue::obj(vec![
                                (
                                    "file",
                                    JsonValue::Str(v.file.to_string_lossy().replace('\\', "/")),
                                ),
                                ("line", JsonValue::Num(v.line as f64)),
                                ("rule", JsonValue::Str(v.rule.into())),
                                ("message", JsonValue::Str(v.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "waivers",
                JsonValue::Arr(
                    self.waivers
                        .iter()
                        .map(|(rule, n)| {
                            JsonValue::obj(vec![
                                ("rule", JsonValue::Str(rule.clone())),
                                ("count", JsonValue::Num(*n as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Recursively collect `.rs` files under `dir`, skipping build output and
/// VCS internals.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the given files (paths may be absolute; rule selection uses their
/// path relative to `cfg.root`).
pub fn lint_paths(cfg: &LintConfig, files: &[PathBuf]) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(f)?;
        let relpath = rel(&cfg.root, f);
        out.extend(lint_source(cfg, &relpath, &src));
    }
    Ok(out)
}

/// Lint every `.rs` file under `cfg.root`.
pub fn lint_workspace(cfg: &LintConfig) -> std::io::Result<Vec<Violation>> {
    Ok(lint_workspace_report(cfg)?.violations)
}

/// Lint every `.rs` file under `cfg.root` and tally waivers per rule.
pub fn lint_workspace_report(cfg: &LintConfig) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs(&cfg.root, &mut files)?;
    files.sort();
    let mut report = LintReport {
        files: files.len(),
        ..LintReport::default()
    };
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        let relpath = rel(&cfg.root, f);
        report.violations.extend(lint_source(cfg, &relpath, &src));
        for (rule, n) in waivers_in_source(&src) {
            match report.waivers.iter_mut().find(|(r, _)| *r == rule) {
                Some((_, total)) => *total += n,
                None => report.waivers.push((rule, n)),
            }
        }
    }
    report.waivers.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::new(".")
    }

    fn lint(relpath: &str, src: &str) -> Vec<Violation> {
        lint_source(&cfg(), relpath, src)
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        let v = lint("crates/linalg/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe");
        let good = "// SAFETY: bounds checked above.\nfn f() { unsafe { g() } }\n";
        assert!(lint("crates/linalg/src/x.rs", good).is_empty());
        // `forbid(unsafe_code)` is not an unsafe token.
        assert!(lint("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn unsafe_in_string_does_not_count() {
        let src = "fn f() { let s = \"unsafe { }\"; }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        let raw = "fn f() { let s = r#\"unsafe\"#; }\n";
        assert!(lint("crates/core/src/x.rs", raw).is_empty());
        // v2 fix: a *multi-line* raw string can no longer leak tokens —
        // the old per-line scanner saw `unsafe` on the middle line.
        let multi = "fn f() -> &'static str {\n    r#\"line one\nunsafe { }\nx.unwrap()\"#\n}\n";
        assert!(lint("crates/ddi/src/x.rs", multi).is_empty());
    }

    #[test]
    fn get_unchecked_requires_local_safety_comment() {
        // The block-level SAFETY covers the `unsafe` keyword but is
        // pinned to the block header, not the access's own statement.
        let bad = "// SAFETY: block argument.\nunsafe {\n    let a = 1;\n    let b = 2;\n    \
                   let c = 3;\n    let x = *p.get_unchecked(0);\n}\n";
        let v = lint("crates/linalg/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe");
        assert_eq!(v[0].line, 6);
        let good = "// SAFETY: block argument.\nunsafe {\n    // SAFETY: idx < len by loop \
                    bound.\n    let x = *p.get_unchecked_mut(0);\n}\n";
        assert!(lint("crates/linalg/src/x.rs", good).is_empty());
    }

    #[test]
    fn safety_binds_to_statement_not_line_distance() {
        // v2 fix: a reflowed multi-line justification still covers the
        // access even though `SAFETY:` sits more than 3 lines above it —
        // the old fixed window would have flagged this.
        let reflowed = "unsafe {\n    // SAFETY: i < n because the loop bound was\n    \
                        // hoisted above, and the pointer is derived\n    \
                        // from a live slice whose length is checked\n    \
                        // at pack time by debug_assert.\n    let x = *p.get_unchecked(i);\n}\n\
                        // lint: allow(unsafe) — block header demo\n";
        let v: Vec<_> = lint("crates/linalg/src/x.rs", reflowed)
            .into_iter()
            .filter(|v| v.line != 1)
            .collect();
        assert!(v.is_empty(), "{v:?}");
        // A SAFETY comment *inside* the statement (trailing) covers too.
        let trailing = "// SAFETY: covers the block.\nunsafe {\n    let x = *p.get_unchecked(i); \
             // SAFETY: i < n.\n}\n";
        assert!(lint("crates/linalg/src/x.rs", trailing).is_empty());
        // A statement spanning lines is one unit: SAFETY on its first
        // line covers an access on its last.
        let spanning = "// SAFETY: covers the block.\nunsafe {\n    // SAFETY: both in \
                        bounds.\n    let x = p.get_unchecked(0)\n        + \
                        p.get_unchecked(1);\n}\n";
        assert!(lint("crates/linalg/src/x.rs", spanning).is_empty());
    }

    #[test]
    fn alloc_forbidden_in_gemm_modules() {
        let src = "fn f() { let v = vec![0.0; 8]; }\n";
        assert_eq!(lint("crates/linalg/src/gemm.rs", src).len(), 1);
        assert_eq!(lint("crates/linalg/src/gemm.rs", src)[0].rule, "alloc");
        assert_eq!(lint("crates/linalg/src/arena.rs", src).len(), 1);
        // Other modules may allocate freely.
        assert!(lint("crates/linalg/src/matrix.rs", src).is_empty());
        let collect = "fn f() { let v: Vec<f64> = it.collect(); }\n";
        assert_eq!(lint("crates/linalg/src/gemm.rs", collect).len(), 1);
        let grow = "fn f() { buf.reserve(n); }\n";
        assert_eq!(lint("crates/linalg/src/arena.rs", grow).len(), 1);
        let waived =
            "// One-time pool growth.\n// lint: allow(alloc)\nfn f() { buf.reserve(n); }\n";
        assert!(lint("crates/linalg/src/arena.rs", waived).is_empty());
        // Tests inside the module are exempt.
        let test = "#[cfg(test)]\nmod tests {\n    fn g() { let v = vec![1]; }\n}\n";
        assert!(lint("crates/linalg/src/gemm.rs", test).is_empty());
        // v2 fix: a chain split across lines is still an allocation.
        let split = "fn f() {\n    let v: Vec<f64> = it\n        .collect();\n}\n";
        assert_eq!(lint("crates/linalg/src/gemm.rs", split).len(), 1);
    }

    #[test]
    fn wallclock_only_in_obs() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
        assert!(lint("crates/obs/src/tracer.rs", src).is_empty());
        let waived =
            "// lint: allow(wallclock) — real timing harness\nfn f() { let t = Instant::now(); }\n";
        assert!(lint("crates/bench/src/harness.rs", waived).is_empty());
    }

    #[test]
    fn unwrap_rules_on_hot_paths() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint("crates/ddi/src/dist.rs", src).len(), 1);
        // Recovery paths are hot too: they run *because* something broke.
        assert_eq!(lint("crates/fault/src/plan.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/recovery.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/checkpoint.rs", src).len(), 1);
        // The multi-tenant serving layer must not panic either.
        assert_eq!(lint("crates/serve/src/server.rs", src).len(), 1);
        // Cold paths are free to unwrap.
        assert!(lint("crates/core/src/solver.rs", src).is_empty());
        // The mutex idiom is allowed, including rustfmt's line split.
        let lock = "fn f() { m.lock().unwrap(); }\n";
        assert!(lint("crates/ddi/src/dist.rs", lock).is_empty());
        let split = "fn f() {\n    m\n        .lock()\n        .unwrap();\n}\n";
        assert!(lint("crates/ddi/src/dist.rs", split).is_empty());
        let expect = "fn f() { x.expect(\"boom\"); }\n";
        assert_eq!(lint("crates/linalg/src/gemm.rs", expect).len(), 1);
        // v2 fix: `.expect(` split across lines is still caught.
        let expect_split = "fn f() {\n    x\n        .expect(\"boom\");\n}\n";
        assert_eq!(lint("crates/linalg/src/matrix.rs", expect_split).len(), 1);
        // Tests inside the hot file are exempt.
        let test = "#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(lint("crates/ddi/src/dist.rs", test).is_empty());
    }

    #[test]
    fn println_rules() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
        assert!(lint("src/bin/fcix.rs", src).is_empty());
        assert!(lint("crates/check/src/bin/fcix-lint.rs", src).is_empty());
        assert!(lint("crates/core/tests/t.rs", src).is_empty());
        // eprintln is fine anywhere.
        let e = "fn f() { eprintln!(\"x\"); }\n";
        assert!(lint("crates/core/src/x.rs", e).is_empty());
    }

    #[test]
    fn metric_names_must_be_lowercase_dotted() {
        let bad = "fn f() { m.observe(\"Sigma Phase-S\", &[], x); }\n";
        let v = lint("crates/core/src/phase.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "metric-name");
        assert!(v[0].message.contains("Sigma Phase-S"));
        let good = "fn f() { m.observe(\"sigma.phase_s\", &[], x); }\n";
        assert!(lint("crates/core/src/phase.rs", good).is_empty());
        // All recording entry points are covered.
        for call in ["counter_add", "counter_incr", "gauge_set", "incr"] {
            let src = format!("fn f() {{ m.{call}(\"BAD!\", &[]); }}\n");
            assert_eq!(lint("crates/serve/src/server.rs", &src).len(), 1, "{call}");
        }
        // Dynamic names and non-metric calls are skipped.
        let dynamic = "fn f() { m.observe(name, &[], x); }\n";
        assert!(lint("crates/core/src/phase.rs", dynamic).is_empty());
        // A doc-comment mention is not a recording call.
        let doc = "/// e.g. `.observe(\"NOT A NAME\")` would be wrong\nfn f() {}\n";
        assert!(lint("crates/core/src/phase.rs", doc).is_empty());
        // Waivers work; tests are exempt.
        let waived = "fn f() { m.incr(\"WAT\"); } // lint: allow(metric-name)\n";
        assert!(lint("crates/core/src/phase.rs", waived).is_empty());
        assert!(lint("crates/core/tests/t.rs", bad).is_empty());
        // v2 fix: a name pushed to the next line by rustfmt is checked.
        let wrapped = "fn f() {\n    m.observe(\n        \"Sigma Phase-S\",\n        &labels,\n  \
                       x,\n    );\n}\n";
        assert_eq!(lint("crates/core/src/phase.rs", wrapped).len(), 1);
    }

    #[test]
    fn metric_recording_must_not_read_host_time_on_sim_paths() {
        let bad = "fn f() { m.observe(\"davidson.iter_s\", &[], t.now_us()); }\n";
        let v = lint("crates/core/src/diag.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "metric-wallclock");
        // Cost-model time is fine.
        let good = "fn f() { m.observe(\"davidson.iter_s\", &[], ck.total()); }\n";
        assert!(lint("crates/core/src/diag.rs", good).is_empty());
        // Host-side crates (serve, bench, bins) may mix freely.
        assert!(lint("crates/serve/src/server.rs", bad).is_empty());
        // A host read on its own line does not trip this rule (the plain
        // wallclock rule still covers Instant::now).
        let split = "fn f() { let t0 = t.now_us(); m.observe(\"a.b\", &[], x); }\n";
        assert_eq!(
            lint("crates/ddi/src/dist.rs", split)
                .iter()
                .filter(|v| v.rule == "metric-wallclock")
                .count(),
            1,
            "same-line mixing is still one expression"
        );
        let two_lines = "fn f() {\n    let dt = t.now_us() - t0;\n    \
                         m.observe(\"a.b\", &[], dt); // lint: allow(metric-wallclock)\n}\n";
        assert!(lint("crates/ddi/src/dist.rs", two_lines)
            .iter()
            .all(|v| v.rule != "metric-wallclock"));
        // v2 fix: a recording *statement* wrapped across lines is one
        // unit — the old line-local rule missed the host read below.
        let wrapped = "fn f() {\n    m.observe(\n        \"a.b\",\n        &[],\n        \
                       t.now_us(),\n    );\n}\n";
        assert_eq!(
            lint("crates/ddi/src/dist.rs", wrapped)
                .iter()
                .filter(|v| v.rule == "metric-wallclock")
                .count(),
            1
        );
    }

    #[test]
    fn waiver_on_preceding_line() {
        let src = "// lint: allow(unwrap) — guarded above\nfn f() { x.unwrap(); }\n";
        assert!(lint("crates/ddi/src/dist.rs", src).is_empty());
        let trailing = "fn f() { x.unwrap() } // lint: allow(unwrap)\n";
        assert!(lint("crates/ddi/src/dist.rs", trailing).is_empty());
    }

    #[test]
    fn char_literals_do_not_break_scanning() {
        let src = "fn f() { let c = '\"'; let d = '\\n'; x.unwrap(); }\n";
        assert_eq!(lint("crates/ddi/src/dist.rs", src).len(), 1);
        let lifetime = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        assert!(lint("crates/ddi/src/dist.rs", lifetime).is_empty());
    }

    #[test]
    fn block_comments_and_nesting() {
        let src = "/* unsafe { } */\nfn f() {}\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        let nested = "/* a /* unsafe */ b */\nfn f() {}\n";
        assert!(lint("crates/core/src/x.rs", nested).is_empty());
    }

    #[test]
    fn waiver_counting_per_rule() {
        let src = "// lint: allow(unwrap) — reason one\nfn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap() } // lint: allow(unwrap)\n\
                   // lint: allow(alloc) — pool growth\nfn h() {}\n";
        let w = waivers_in_source(src);
        assert_eq!(w, vec![("unwrap".to_string(), 2), ("alloc".to_string(), 1)]);
    }

    #[test]
    fn json_report_shape() {
        let report = LintReport {
            violations: vec![Violation {
                file: PathBuf::from("crates/x/src/a.rs"),
                line: 3,
                rule: "unwrap",
                message: "msg".into(),
            }],
            waivers: vec![("alloc".into(), 2)],
            files: 10,
        };
        let j = report.to_json();
        let text = j.to_string();
        let back = JsonValue::parse(&text).expect("valid json");
        assert_eq!(back.get_f64("files"), Some(10.0));
        let viols = back.get("violations").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(viols.len(), 1);
        assert_eq!(
            viols[0].get("rule").and_then(JsonValue::as_str),
            Some("unwrap")
        );
        let waivers = back.get("waivers").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(waivers[0].get_f64("count"), Some(2.0));
    }
}
