#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Correctness analysis for the fcix stack: `fci-check`.
//!
//! The paper asserts that its one-sided communication protocol
//! (`DDI_ACC` = lock → get → add → put → fence → unlock, §3.1) and its
//! manager/worker task pool produce correct, deterministic σ vectors.
//! This crate *checks* those claims instead of trusting them:
//!
//! * [`race`] — a vector-clock happens-before race detector over the
//!   protocol events `fci-ddi` records, online (attached to a live run
//!   through `CheckConfig`) or offline (replayed from an `fci-obs` JSONL
//!   trace). Validated against deliberately broken protocols
//!   (fault-injected missing fence / missing lock).
//! * [`explore`] — a deterministic, seeded schedule explorer that replays
//!   the mixed-spin task pool of a small FCI case under adversarial worker
//!   interleavings and checks σ and the variational energy are bitwise
//!   identical across schedules.
//! * [`lint`] — a std-only source scanner (`fcix-lint`) enforcing repo
//!   conventions: `// SAFETY:` on `unsafe` blocks, no wall-clock reads
//!   outside `crates/obs`, no `unwrap`/`expect` on hot paths, no stray
//!   `println!`. v2: all rules run on the [`lex`] token stream.
//! * [`lex`] — a lossless std-only Rust lexer (raw strings, nested block
//!   comments, char/lifetime disambiguation, doc comments) with byte
//!   spans; the substrate for every source-level analysis here.
//! * [`graph`] — item parser + workspace call graph with transitive
//!   allocation-freedom and panic-freedom analyses rooted at the σ-task
//!   and GEMM kernels (`fcix-check graph`).
//! * [`locks`] — static lock-order / condvar analysis over the serve and
//!   obs layers, with deadlock-cycle detection and a dynamic-lockset
//!   cross-check against the `fci-obs` lock witness
//!   (`fcix-check locks`).

pub mod explore;
pub mod graph;
pub mod lex;
pub mod lint;
pub mod locks;
pub mod race;

pub use explore::{explore_mixed, ExploreConfig, ExploreOutcome, ExploreReport};
pub use lint::{lint_paths, lint_source, lint_workspace, LintConfig, Violation};
pub use race::{
    analyze, analyze_trace_events, LocksetViolation, RaceDetector, RaceReport, RaceSite,
    VectorClock,
};
