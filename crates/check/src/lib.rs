#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Correctness analysis for the fcix stack: `fci-check`.
//!
//! The paper asserts that its one-sided communication protocol
//! (`DDI_ACC` = lock → get → add → put → fence → unlock, §3.1) and its
//! manager/worker task pool produce correct, deterministic σ vectors.
//! This crate *checks* those claims instead of trusting them:
//!
//! * [`race`] — a vector-clock happens-before race detector over the
//!   protocol events `fci-ddi` records, online (attached to a live run
//!   through `CheckConfig`) or offline (replayed from an `fci-obs` JSONL
//!   trace). Validated against deliberately broken protocols
//!   (fault-injected missing fence / missing lock).
//! * [`explore`] — a deterministic, seeded schedule explorer that replays
//!   the mixed-spin task pool of a small FCI case under adversarial worker
//!   interleavings and checks σ and the variational energy are bitwise
//!   identical across schedules.
//! * [`lint`] — a std-only source scanner (`fcix-lint`) enforcing repo
//!   conventions: `// SAFETY:` on `unsafe` blocks, no wall-clock reads
//!   outside `crates/obs`, no `unwrap`/`expect` on hot paths, no stray
//!   `println!`.

pub mod explore;
pub mod lint;
pub mod race;

pub use explore::{explore_mixed, ExploreConfig, ExploreOutcome, ExploreReport};
pub use lint::{lint_paths, lint_source, lint_workspace, LintConfig, Violation};
pub use race::{analyze, analyze_trace_events, RaceDetector, RaceReport, RaceSite, VectorClock};
