//! A std-only Rust lexer producing a lossless token stream with spans.
//!
//! The v1 lint engine was a per-line character state machine: it blanked
//! string literals in place and could not see across lines, which made
//! multi-line raw strings, attribute-spanning items, and statement-level
//! reasoning (SAFETY coverage, lock guard scopes) either impossible or
//! silently wrong. This lexer replaces it with a real tokenizer:
//!
//! * **Lossless**: tokens tile the input exactly — concatenating every
//!   token's text reproduces the source byte for byte (property-tested
//!   over the whole workspace corpus). Analyses therefore never lose
//!   track of what line or byte they are looking at.
//! * **Raw strings** (`r"…"`, `r#"…"#`, any hash depth, plus `b"…"` /
//!   `br#"…"#`) and **raw identifiers** (`r#match`) are disambiguated.
//! * **Nested block comments** (`/* a /* b */ c */`) are tracked to
//!   arbitrary depth; doc comments (`///`, `//!`, `/** */`, `/*! */`)
//!   are distinguished from plain comments.
//! * **Char literals vs lifetimes** (`'a'` vs `'a`, `'\n'`, `'_`) use
//!   lookahead, not line-local guessing.
//!
//! Everything downstream — the lint rules, the item parser / call graph,
//! and the lock-order analysis — consumes this stream.

/// Classification of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — no closing quote.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `'\n'`, `b'x'`).
    CharLit,
    /// String or byte-string literal (`"…"`, `b"…"`), escapes intact.
    StrLit,
    /// Raw (byte) string literal (`r"…"`, `r#"…"#`, `br"…"`).
    RawStrLit,
    /// Numeric literal (loose: `12`, `0x1f`, `1.5e-3`, `8usize`).
    NumLit,
    /// Plain line comment (`//`), text includes the slashes.
    LineComment,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
    /// Plain block comment (`/* */`, nested).
    BlockComment,
    /// One punctuation byte (`.`, `:`, `{`, …). Multi-byte operators are
    /// emitted as consecutive one-byte tokens; analyses match sequences.
    Punct,
    /// Whitespace run (may contain newlines).
    White,
}

impl TokKind {
    /// Whether the token is code (not comment, not whitespace). String
    /// literals count as code *tokens* but rules that look for source
    /// constructs must check the kind — a keyword inside a string is a
    /// `StrLit`, never an `Ident`.
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokKind::LineComment | TokKind::DocComment | TokKind::BlockComment | TokKind::White
        )
    }

    /// Whether the token is any kind of comment.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokKind::LineComment | TokKind::DocComment | TokKind::BlockComment
        )
    }
}

/// One token: kind + byte span + 1-based line of its first byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Byte offset of the first byte (inclusive).
    pub lo: usize,
    /// Byte offset one past the last byte (exclusive).
    pub hi: usize,
    /// 1-based line number of the first byte.
    pub line: u32,
}

impl Tok {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.lo..self.hi]
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenize `src`. Never fails: unterminated literals/comments run to
/// end of input (the workspace corpus test keeps us honest on real code).
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Number of newlines in b[lo..hi].
    let newlines = |lo: usize, hi: usize| b[lo..hi].iter().filter(|&&c| c == b'\n').count() as u32;

    while i < n {
        let lo = i;
        let start_line = line;
        let c = b[i];
        let kind = if c.is_ascii_whitespace() {
            while i < n && b[i].is_ascii_whitespace() {
                i += 1;
            }
            TokKind::White
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let doc = {
                let rest = &b[i..];
                (rest.len() > 3 && rest[2] == b'/' && rest.get(3) != Some(&b'/'))
                    || (rest.len() >= 3 && rest[2] == b'!')
            };
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            if doc {
                TokKind::DocComment
            } else {
                TokKind::LineComment
            }
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let doc = {
                let rest = &b[i..];
                (rest.len() > 4 && rest[2] == b'*' && rest[3] != b'*' && rest[3] != b'/')
                    || (rest.len() > 3 && rest[2] == b'!')
            };
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if doc {
                TokKind::DocComment
            } else {
                TokKind::BlockComment
            }
        } else if (c == b'r' || c == b'b') && raw_or_str_prefix(b, i).is_some() {
            // r"…" / r#…#"…" / b"…" / br#"…"# / b'…' / r#ident.
            let (kind, end) = raw_or_str_prefix(b, i).unwrap_or((TokKind::Ident, i + 1));
            i = end;
            kind
        } else if is_ident_start(c) {
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if c.is_ascii_digit() {
            i = lex_number(b, i);
            TokKind::NumLit
        } else if c == b'"' {
            i = lex_string(b, i + 1, 0);
            TokKind::StrLit
        } else if c == b'\'' {
            // Lifetime or char literal.
            let next = b.get(i + 1).copied();
            match next {
                Some(x) if is_ident_start(x) => {
                    // 'a' is a char, 'a / 'abc a lifetime: a literal has a
                    // closing quote right after one ident char.
                    if b.get(i + 2) == Some(&b'\'') {
                        i += 3;
                        TokKind::CharLit
                    } else {
                        i += 1;
                        while i < n && is_ident_cont(b[i]) {
                            i += 1;
                        }
                        TokKind::Lifetime
                    }
                }
                Some(b'\\') => {
                    i = lex_char_tail(b, i + 1);
                    TokKind::CharLit
                }
                Some(_) => {
                    i = lex_char_tail(b, i + 1);
                    TokKind::CharLit
                }
                None => {
                    i += 1;
                    TokKind::Punct
                }
            }
        } else {
            i += 1;
            TokKind::Punct
        };
        line += newlines(lo, i);
        toks.push(Tok {
            kind,
            lo,
            hi: i,
            line: start_line,
        });
    }
    toks
}

/// If `b[i..]` starts a raw string / byte string / byte char / raw ident,
/// return its kind and end offset.
fn raw_or_str_prefix(b: &[u8], i: usize) -> Option<(TokKind, usize)> {
    let n = b.len();
    let c = b[i];
    // Identifier boundary: `car"x"` is ident `car` then a string — the
    // caller only reaches us when `i` starts a token, so no check needed.
    if c == b'b' {
        match b.get(i + 1) {
            Some(b'"') => return Some((TokKind::StrLit, lex_string(b, i + 2, 0))),
            Some(b'\'') => return Some((TokKind::CharLit, lex_char_tail(b, i + 2))),
            Some(b'r') => {
                let mut j = i + 2;
                let mut hashes = 0usize;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == b'"' {
                    return Some((TokKind::RawStrLit, lex_raw_tail(b, j + 1, hashes)));
                }
                return None;
            }
            _ => return None,
        }
    }
    // c == 'r'
    let mut j = i + 1;
    let mut hashes = 0usize;
    while j < n && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < n && b[j] == b'"' {
        return Some((TokKind::RawStrLit, lex_raw_tail(b, j + 1, hashes)));
    }
    if hashes == 1 && j < n && is_ident_start(b[j]) {
        // Raw identifier r#match.
        while j < n && is_ident_cont(b[j]) {
            j += 1;
        }
        return Some((TokKind::Ident, j));
    }
    None
}

/// Body of a normal string starting right after the opening quote.
fn lex_string(b: &[u8], mut i: usize, _hashes: usize) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Body of a raw string: scan for `"` followed by `hashes` `#`s.
fn lex_raw_tail(b: &[u8], mut i: usize, hashes: usize) -> usize {
    let n = b.len();
    while i < n {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    n
}

/// Tail of a char literal starting right after the opening quote.
fn lex_char_tail(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Loose numeric literal: digits, `_`, radix/suffix letters, one decimal
/// point when followed by a digit, exponent sign after `e`/`E` (only in
/// decimal floats, where a hex literal cannot have reached a `.`/sign).
fn lex_number(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    let hex = b[i] == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'X'));
    while i < n {
        let c = b[i];
        if c.is_ascii_alphanumeric() || c == b'_' {
            i += 1;
            // Exponent sign: 1e-3 / 2.5E+7 (decimal only — 0x1e-3 is
            // `0x1e` minus `3`).
            if !hex
                && (c == b'e' || c == b'E')
                && matches!(b.get(i), Some(b'+') | Some(b'-'))
                && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                i += 1;
            }
        } else if c == b'.'
            && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            && b.get(i.wrapping_sub(1)).is_some_and(|d| d.is_ascii_digit())
        {
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Re-emit a token stream: exact concatenation of every token's text.
/// `lex` followed by `emit` is the identity on any input (the round-trip
/// property the corpus test asserts for every workspace source file).
pub fn emit(src: &str, toks: &[Tok]) -> String {
    let mut out = String::with_capacity(src.len());
    for t in toks {
        out.push_str(t.text(src));
    }
    out
}

/// Convenience: the code tokens only (comments and whitespace dropped),
/// as indices into the full stream.
pub fn code_indices(toks: &[Tok]) -> Vec<usize> {
    toks.iter()
        .enumerate()
        .filter(|(_, t)| t.kind.is_code())
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .filter(|t| t.kind != TokKind::White)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        assert_eq!(emit(src, &toks), src, "lossless round-trip");
        // Tokens tile the input: no gaps, no overlaps.
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.lo, pos, "gap before {t:?}");
            assert!(t.hi > t.lo, "empty token {t:?}");
            pos = t.hi;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        for src in [
            "let s = r\"unsafe { }\";",
            "let s = r#\"has \" quote\"#;",
            "let s = r##\"has \"# inside\"##;",
            "let s = br#\"bytes\"#;",
            "let s = b\"bytes\";",
        ] {
            roundtrip(src);
            let ks = kinds(src);
            assert!(
                ks.iter()
                    .any(|(k, _)| matches!(k, TokKind::RawStrLit | TokKind::StrLit)),
                "{src}: {ks:?}"
            );
            assert!(
                !ks.iter()
                    .any(|(k, t)| *k == TokKind::Ident && t.contains("unsafe")),
                "keyword inside literal leaked: {ks:?}"
            );
        }
    }

    #[test]
    fn multi_line_raw_string_hides_tokens() {
        let src = "let s = r#\"line one\nx.unwrap()\nline three\"#;\nf();\n";
        roundtrip(src);
        let ks = kinds(src);
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "f"));
        // The token after the raw string knows its real line.
        let toks = lex(src);
        let f = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text(src) == "f")
            .unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* unsafe { } */ b */ fn f() {}";
        roundtrip(src);
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert!(ks[0].1.ends_with("b */"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
    }

    #[test]
    fn doc_comments_distinguished() {
        let src =
            "/// docs\n//! inner\n// plain\n/** block doc */\n/*! inner block */\n/* plain */\n";
        roundtrip(src);
        let ks = kinds(src);
        let seq: Vec<TokKind> = ks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            seq,
            vec![
                TokKind::DocComment,
                TokKind::DocComment,
                TokKind::LineComment,
                TokKind::DocComment,
                TokKind::DocComment,
                TokKind::BlockComment,
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\"'; let e = '\\''; let u = '_'; }";
        roundtrip(src);
        let ks = kinds(src);
        let lifetimes: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = ks.iter().filter(|(k, _)| *k == TokKind::CharLit).count();
        assert_eq!(chars, 4, "{ks:?}");
    }

    #[test]
    fn underscore_lifetime_and_static() {
        let src = "fn f(x: &'_ str, y: &'static str) {}";
        roundtrip(src);
        let ls: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(ls, vec!["'_", "'static"]);
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#match = 1; let r = 2;";
        roundtrip(src);
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#match"));
    }

    #[test]
    fn numbers_stay_loose_but_tiled() {
        for src in [
            "let x = 1..10;",
            "let y = 1.5e-3 + 0x1f + 8usize + 1_000;",
            "let z = v[0].max(1.0);",
            "let w = 0x1e-3;",
        ] {
            roundtrip(src);
        }
        let ks = kinds("let x = 1..10;");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1", "10"], "range must not glue: {ks:?}");
    }

    #[test]
    fn attributes_and_strings_with_escapes() {
        let src = "#[doc = \"has \\\" quote and \\n\"]\nfn f() { let s = \"unsafe\"; }";
        roundtrip(src);
        let ks = kinds(src);
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "// x", "b\"x", "1."] {
            let toks = lex(src);
            assert_eq!(emit(src, &toks), src);
        }
    }

    #[test]
    fn line_numbers_track_every_token() {
        let src = "a\nb /* c\nd */ e\nf\n";
        let toks = lex(src);
        let at = |name: &str| toks.iter().find(|t| t.text(src) == name).unwrap().line;
        assert_eq!(at("a"), 1);
        assert_eq!(at("b"), 2);
        assert_eq!(at("e"), 3);
        assert_eq!(at("f"), 4);
    }
}
