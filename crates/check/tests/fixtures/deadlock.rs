//! Seeded-deadlock fixture for the `fcix-check locks` integration test.
//!
//! Not a compile target: this file lives under `tests/fixtures/`, which
//! cargo does not build, and is read as *source text* by
//! `locks_workspace.rs`. It seeds exactly the hazards the analysis must
//! flag on a codebase that has them:
//!
//! * an AB/BA lock-order cycle split across two functions
//!   (`enqueue` takes `queue` → `stats`, `report` takes `stats` → `queue`),
//! * a condvar wait while a *second* unrelated lock is held
//!   (`drain` parks on `ready` with `stats` still pinned).
//!
//! The companion negative test proves the real serve/obs tree has none
//! of these, so together they show the checker separates the two.

use std::sync::{Condvar, Mutex};

pub struct Broker {
    queue: Mutex<Vec<u64>>,
    stats: Mutex<u64>,
    ready: Condvar,
}

impl Broker {
    pub fn enqueue(&self, job: u64) {
        let mut q = self.queue.lock().unwrap();
        let mut n = self.stats.lock().unwrap();
        q.push(job);
        *n += 1;
        self.ready.notify_one();
    }

    pub fn report(&self) -> u64 {
        let n = self.stats.lock().unwrap();
        let q = self.queue.lock().unwrap();
        *n + q.len() as u64
    }

    pub fn drain(&self) -> Option<u64> {
        let n = self.stats.lock().unwrap();
        let mut q = self.queue.lock().unwrap();
        while q.is_empty() {
            q = self.ready.wait(q).unwrap();
        }
        let job = q.pop();
        drop(q);
        drop(n);
        job
    }
}
