//! `fcix-check` integration on the real workspace: the serve/obs lock
//! graph is cycle-free and the σ/GEMM hot paths are alloc- and
//! panic-free, while a seeded-deadlock fixture is fully flagged — the
//! positive case proving the negative one isn't vacuous.

use fci_check::graph::{analyze_hot_paths, DEFAULT_ROOTS};
use fci_check::locks::{analyze_lock_sources, analyze_locks, CondvarHazard, DEFAULT_LOCK_PATHS};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn seeded_deadlock_fixture_is_flagged() {
    let src = include_str!("fixtures/deadlock.rs");
    let report = analyze_lock_sources(&[("tests/fixtures/deadlock.rs".into(), src.into())]);

    assert!(!report.is_clean(), "fixture must not analyze clean");
    // The AB/BA cycle between the two Broker mutexes.
    assert_eq!(report.cycles.len(), 1, "cycles: {:?}", report.cycles);
    let cycle = &report.cycles[0];
    assert!(
        cycle.contains(&"Broker.queue".to_string()) && cycle.contains(&"Broker.stats".to_string()),
        "cycle names the seeded locks: {cycle:?}"
    );
    // drain() parks on the condvar with Broker.stats still held.
    assert!(
        report.hazards.iter().any(|h| matches!(
            h,
            CondvarHazard::WaitWhileHolding { held, .. }
                if held.contains(&"Broker.stats".to_string())
        )),
        "hazards: {:?}",
        report.hazards
    );
}

#[test]
fn real_serve_obs_lock_graph_is_cycle_free() {
    let report = analyze_locks(&workspace_root(), &DEFAULT_LOCK_PATHS).expect("analyze workspace");
    assert!(
        report.is_clean(),
        "serve/obs lock graph regressed:\n{}",
        report.render_text()
    );
    // The inventory sees the scheduler's real locks — an empty graph
    // would also be "cycle-free", so pin the locks and the load-bearing
    // ordering edge the design relies on.
    let ids: Vec<&str> = report.locks.iter().map(|l| l.id.as_str()).collect();
    for id in [
        "Server.state",
        "Server.results",
        "Server.wal",
        "NetServer.tenants",
        "Store.shards",
        "Inner.cursors",
        "JsonlSink.writer",
        "MemorySink.events",
    ] {
        assert!(ids.contains(&id), "lock {id} missing from {ids:?}");
    }
    assert!(
        report
            .edges
            .iter()
            .any(|e| e.from == "Server.state" && e.to == "Server.results"),
        "submit()'s state→results nesting not found: {:?}",
        report.edges
    );
    // The TCP front-end's tenant registry nests *around* the scheduler
    // (gate → sweep finished jobs via peek_result), never inside it —
    // the ordering the durable-serving design pins.
    assert!(
        report
            .edges
            .iter()
            .any(|e| e.from == "NetServer.tenants" && e.to == "Server.results"),
        "net gate's tenants→results nesting not found: {:?}",
        report.edges
    );
}

#[test]
fn hot_path_roots_are_alloc_and_panic_free() {
    let (_, reports) = analyze_hot_paths(&workspace_root(), &DEFAULT_ROOTS).expect("build graph");
    assert_eq!(
        reports.len(),
        DEFAULT_ROOTS.len(),
        "every default root must resolve"
    );
    for r in &reports {
        assert!(
            r.is_clean(),
            "hot path from {} has findings: alloc={} panic={}",
            r.root,
            r.alloc.len(),
            r.panic.len()
        );
        assert!(r.reachable > 0);
    }
}
