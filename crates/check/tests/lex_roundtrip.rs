//! Corpus property test for the lexer: `lex` → `emit` must reproduce
//! every workspace source file byte for byte, and the token spans must
//! tile the input with no gaps or overlaps. Any construct the lexer
//! mis-scans (a raw string depth, an exotic literal) breaks the
//! round-trip on the real corpus immediately.

use fci_check::lex::{emit, lex, Tok, TokKind};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check has a workspace root two levels up")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_round_trips() {
    let mut files = Vec::new();
    collect_rs(&workspace_root(), &mut files);
    files.sort();
    assert!(
        files.len() > 40,
        "corpus unexpectedly small: {} files",
        files.len()
    );
    for f in &files {
        let src = std::fs::read_to_string(f).expect("readable source");
        let toks = lex(&src);
        assert_eq!(
            emit(&src, &toks),
            src,
            "lex/emit round-trip failed on {}",
            f.display()
        );
        // Spans tile the input exactly.
        let mut pos = 0usize;
        let mut line = 1u32;
        for t in &toks {
            assert_eq!(t.lo, pos, "gap/overlap at byte {pos} in {}", f.display());
            assert!(t.hi > t.lo, "empty token in {}", f.display());
            assert_eq!(t.line, line, "line drift at byte {pos} in {}", f.display());
            line += t.text(&src).matches('\n').count() as u32;
            pos = t.hi;
        }
        assert_eq!(pos, src.len(), "trailing bytes unlexed in {}", f.display());
    }
}

#[test]
fn corpus_has_no_misclassified_keywords() {
    // Sanity on the classification itself: across the whole corpus, no
    // token classified as a string/comment should ever be consumed as an
    // identifier by downstream rules. We approximate by checking that
    // every Ident token's text is a valid identifier shape.
    let mut files = Vec::new();
    collect_rs(&workspace_root(), &mut files);
    let ident_ok = |s: &str| {
        let body = s.strip_prefix("r#").unwrap_or(s);
        !body.is_empty()
            && body.chars().all(|c| c.is_alphanumeric() || c == '_')
            && !body.chars().next().unwrap().is_ascii_digit()
    };
    for f in &files {
        let src = std::fs::read_to_string(f).expect("readable source");
        for t in lex(&src) {
            if t.kind == TokKind::Ident {
                let text = t.text(&src);
                assert!(
                    ident_ok(text),
                    "bad ident token `{text}` at {}:{}",
                    f.display(),
                    t.line
                );
            }
        }
    }
}

#[test]
fn fixture_cases_cover_edge_constructs() {
    // Hand-picked constructs the old per-line scanner got wrong.
    let cases: &[&str] = &[
        // Raw string spanning lines with code-looking content.
        "let s = r#\"\nunsafe { x.unwrap() }\n\"#;",
        // Nested block comment with an apostrophe (can confuse char
        // scanning) and a fake closing quote.
        "/* it's /* nested \" */ still comment */ fn f() {}",
        // #[cfg(test)] attribute split across lines.
        "#[cfg(\n    test\n)]\nmod t { fn g() {} }",
        // Char literal that looks like a lifetime start.
        "let a = 'x'; let b: &'static str = \"y\";",
        // Byte strings and byte chars.
        "let a = b\"raw \\\" bytes\"; let c = b'\\n';",
    ];
    for src in cases {
        let toks = lex(src);
        assert_eq!(&emit(src, &toks), src, "{src}");
    }
    // The split attribute still marks a test region for the lint rules.
    let split_attr = "#[cfg(\n    test\n)]\nmod t {\n    fn g() { let v = vec![1]; }\n}\n";
    let cfg = fci_check::LintConfig::new(".");
    assert!(
        fci_check::lint_source(&cfg, "crates/linalg/src/gemm.rs", split_attr).is_empty(),
        "attribute-spanning cfg(test) must exempt the item"
    );
    let _ = Tok {
        kind: TokKind::White,
        lo: 0,
        hi: 1,
        line: 1,
    };
}
