//! `fcix-lint` integration: the real workspace is clean, and a fixture
//! tree seeded with one violation of each rule is fully flagged.

use fci_check::{lint_workspace, LintConfig};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/check → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn real_workspace_is_lint_clean() {
    let cfg = LintConfig::new(workspace_root());
    let violations = lint_workspace(&cfg).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violations_are_all_caught() {
    let root = std::env::temp_dir().join(format!("fcix-lint-fixture-{}", std::process::id()));
    let hot = root.join("crates/ddi/src");
    std::fs::create_dir_all(&hot).expect("mkdir fixture");
    std::fs::write(
        hot.join("bad.rs"),
        "fn f(x: Option<u32>) -> u32 {\n    let p = &x as *const _;\n    unsafe { g(p) };\n    x.unwrap()\n}\n\
         fn t() { let _ = std::time::Instant::now(); }\n\
         fn p() { println!(\"debug\"); }\n",
    )
    .expect("write fixture");
    let cfg = LintConfig::new(&root);
    let violations = lint_workspace(&cfg).expect("scan fixture");
    std::fs::remove_dir_all(&root).ok();

    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&"unsafe"), "{violations:?}");
    assert!(rules.contains(&"unwrap"), "{violations:?}");
    assert!(rules.contains(&"wallclock"), "{violations:?}");
    assert!(rules.contains(&"println"), "{violations:?}");
    assert_eq!(violations.len(), 4, "{violations:?}");
    // Reports carry file + 1-based line for direct navigation.
    assert!(violations.iter().all(|v| v.line >= 1));
    assert!(violations
        .iter()
        .all(|v| v.file.to_string_lossy().contains("bad.rs")));
}
