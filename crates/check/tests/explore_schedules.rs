//! Schedule-explorer integration: the mixed-spin task pool must produce
//! bitwise-identical σ and energy under adversarial worker schedules.

use fci_check::{explore_mixed, ExploreConfig};

#[test]
fn eight_seeds_plus_dpor_are_bitwise_identical() {
    let cfg = ExploreConfig::default(); // 6 orbitals, 3α/3β, 4 ranks, seeds 1..=8
    assert!(cfg.seeds.len() >= 8);
    let report = explore_mixed(&cfg);
    assert!(
        report.identical,
        "schedule-dependent result: {}",
        report.summary()
    );
    // Negative control: the schedules must genuinely differ — the raw
    // (pre-fold) accumulation order has to vary across interleavings,
    // otherwise the invariance claim is vacuous.
    assert!(
        report.raw_order_varied,
        "all schedules accumulated in the same order; explorer is not adversarial"
    );
    // Seeded schedules + DPOR flips were all exercised.
    assert!(report.outcomes.len() > 8, "{}", report.summary());
    assert!(report.ntasks >= 2);
    assert!(report.conflict_pairs > 0);
    // And the canonical fold agrees with the production σ path.
    assert!(
        report.max_dev_from_reference < 1e-12,
        "{}",
        report.summary()
    );
}
