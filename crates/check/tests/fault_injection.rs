//! Fault-injection validation of the happens-before race detector.
//!
//! The detector is only trustworthy if it (a) reports nothing on the
//! correct DDI_ACC protocol and (b) catches deliberately broken variants.
//! Broken protocols are injected through the one fault mechanism — a
//! [`FaultPlan`] carrying a [`ProtocolFault`] attached to the world — so
//! ordinary `acc_col` call sites exercise the broken path with no
//! test-only entry points. These tests assert both broken variants are
//! flagged with actionable two-site reports while the unmodified protocol
//! passes cleanly, online and offline, up to a full FCI solve.

use fci_check::{analyze, RaceDetector};
use fci_ddi::{
    protocol_events, AccFault, Backend, CheckConfig, Ddi, DistMatrix, FaultConfig, FaultPlan,
    ProtocolFault, TraceRecorder,
};
use fci_ints::EriTensor;
use fci_linalg::Matrix;
use fci_obs::Tracer;
use fci_scf::MoIntegrals;
use std::sync::Arc;

/// A plan whose only fault is the given broken accumulate protocol.
fn protocol_plan(pf: Option<ProtocolFault>) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(FaultConfig {
        protocol: pf,
        ..FaultConfig::quiet(1)
    }))
}

/// All-ranks-accumulate-into-all-columns, the σ pattern, with a chosen
/// protocol fault injected via the fault plan; returns the race reports.
fn run_with_fault(pf: Option<ProtocolFault>) -> Vec<fci_check::RaceReport> {
    let nproc = 4;
    let detector = Arc::new(RaceDetector::new());
    let ddi = Ddi::new(nproc, Backend::Threads);
    ddi.attach_recorder(detector.clone());
    ddi.attach_faults(protocol_plan(pf));
    let m = DistMatrix::zeros(16, 8, nproc);
    ddi.adopt(&m);
    ddi.run(|rank, stats| {
        let buf = vec![1.0; 16];
        for col in 0..8 {
            m.acc_col(rank, col, &buf, stats);
        }
    });
    detector.races()
}

#[test]
fn correct_protocol_passes_cleanly() {
    let races = run_with_fault(None);
    assert!(races.is_empty(), "false positives: {races:?}");
}

#[test]
fn skipped_fence_is_flagged() {
    let races = run_with_fault(Some(ProtocolFault::SkipFence));
    assert!(!races.is_empty(), "missing fence went undetected");
    // Actionable report: both access sites named, with ranks and columns.
    let msg = races[0].to_string();
    assert!(msg.contains("RACE on mat"), "{msg}");
    assert!(msg.contains("rank"), "{msg}");
    assert!(msg.contains("ddi_acc"), "{msg}");
    assert_ne!(races[0].first.rank, races[0].second.rank);
}

#[test]
fn skipped_lock_is_flagged() {
    let races = run_with_fault(Some(ProtocolFault::SkipLock));
    assert!(!races.is_empty(), "missing lock went undetected");
    let msg = races[0].to_string();
    assert!(msg.contains("no lock/fence/barrier edge"), "{msg}");
    assert_ne!(races[0].first.rank, races[0].second.rank);
}

/// The legacy [`AccFault`] entry point is a shim over the same mechanism:
/// it must reach the identical broken protocols.
#[test]
fn legacy_shim_matches_fault_plan_routing() {
    for (legacy, pf) in [
        (AccFault::None, None),
        (AccFault::SkipFence, Some(ProtocolFault::SkipFence)),
        (AccFault::SkipLock, Some(ProtocolFault::SkipLock)),
    ] {
        assert_eq!(legacy.protocol(), pf);
        let detector = Arc::new(RaceDetector::new());
        let ddi = Ddi::new(4, Backend::Threads);
        ddi.attach_recorder(detector.clone());
        let m = DistMatrix::zeros(16, 8, 4);
        ddi.adopt(&m);
        ddi.run(|rank, stats| {
            let buf = vec![1.0; 16];
            for col in 0..8 {
                m.acc_col_faulty(rank, col, &buf, legacy, stats);
            }
        });
        assert_eq!(
            !detector.races().is_empty(),
            pf.is_some(),
            "shim verdict diverged for {legacy:?}"
        );
    }
}

/// Offline path: record protocol events into an fci-obs trace, replay the
/// trace through the analyzer, and reach the same verdicts.
#[test]
fn offline_trace_analysis_matches_online() {
    for (pf, expect_races) in [
        (None, false),
        (Some(ProtocolFault::SkipFence), true),
        (Some(ProtocolFault::SkipLock), true),
    ] {
        let nproc = 3;
        let tracer = Tracer::in_memory();
        let recorder = Arc::new(TraceRecorder::new(tracer.clone()));
        let ddi = Ddi::new(nproc, Backend::Serial);
        ddi.attach_recorder(recorder);
        ddi.attach_faults(protocol_plan(pf));
        let m = DistMatrix::zeros(8, 6, nproc);
        ddi.adopt(&m);
        ddi.run(|rank, stats| {
            let buf = vec![1.0; 8];
            for col in 0..6 {
                m.acc_col(rank, col, &buf, stats);
            }
        });
        let events = tracer.events().expect("in-memory tracer");
        let accesses = protocol_events(&events);
        assert!(!accesses.is_empty());
        let races = analyze(&accesses);
        assert_eq!(
            !races.is_empty(),
            expect_races,
            "fault {pf:?}: wrong offline verdict ({} reports)",
            races.len()
        );
    }
}

fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n.saturating_sub(1) {
        h[(i, i + 1)] = -t;
        h[(i + 1, i)] = -t;
    }
    let mut eri = EriTensor::zeros(n);
    for i in 0..n {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    }
}

/// The production solver, threads backend, online detector: the full
/// DDI_GET/DDI_ACC traffic of a real (small) FCI run must be race-free,
/// and checking must not perturb the physics.
#[test]
fn full_solve_is_race_free_online() {
    let detector = Arc::new(RaceDetector::new());
    let mo = hubbard(4, 1.0, 2.0);
    let opts = fci_core::FciOptions {
        nproc: 4,
        backend: Backend::Threads,
        method: fci_core::DiagMethod::Davidson,
        check: CheckConfig::online(detector.clone()),
        ..Default::default()
    };
    let checked = fci_core::solve(&mo, 2, 2, 0, &opts);
    let plain = fci_core::solve(
        &mo,
        2,
        2,
        0,
        &fci_core::FciOptions {
            nproc: 4,
            backend: Backend::Threads,
            method: fci_core::DiagMethod::Davidson,
            ..Default::default()
        },
    );
    assert!(checked.converged);
    let races = detector.races();
    assert!(races.is_empty(), "production protocol raced: {races:?}");
    assert!(detector.nevents() > 0, "detector saw no protocol events");
    assert_eq!(
        checked.energy.to_bits(),
        plain.energy.to_bits(),
        "attaching the detector changed the answer"
    );
}
