//! Combinatorial (graphical) string addressing.
//!
//! Determinant CI codes of the Knowles–Handy lineage address strings
//! through a *weight graph*: the lexical rank of an N-subset of n orbitals
//! is a sum of binomial weights, computable in O(N) without any lookup
//! table of the strings themselves. This module provides that ranking for
//! the plain (no-symmetry) string ordering by ascending mask value, plus
//! the inverse (unrank). `SpinStrings` keeps its hash map because its
//! symmetry-blocked order interleaves irreps, but the graphical rank is
//! exposed for C1 spaces and used as a cross-check (and is how a
//! memory-tight production code would address strings).

use crate::space::binomial;

/// Lexical rank of the occupation mask among all `C(n, N)` masks with the
/// same popcount, ordered by ascending numeric value.
///
/// Ascending mask order coincides with colexicographic order of the
/// occupied-orbital lists, so
/// `rank = Σ_k C(p_k, k+1)` over occupied orbitals `p_0 < p_1 < …`.
pub fn rank_colex(mask: u64) -> usize {
    let mut r = 0usize;
    let mut m = mask;
    let mut k = 0usize;
    while m != 0 {
        let p = m.trailing_zeros() as usize;
        m &= m - 1;
        k += 1;
        r += binomial(p, k);
    }
    r
}

/// Inverse of [`rank_colex`]: the `rank`-th mask (0-based) with `n_elec`
/// bits among `n_orb` orbitals, in ascending mask order.
pub fn unrank_colex(n_orb: usize, n_elec: usize, rank: usize) -> u64 {
    assert!(rank < binomial(n_orb, n_elec), "rank out of range");
    let mut mask = 0u64;
    let mut r = rank;
    let mut k = n_elec;
    let mut p = n_orb;
    while k > 0 {
        // Find the largest p' < p with C(p', k) <= r.
        p -= 1;
        while binomial(p, k) > r {
            p -= 1;
        }
        r -= binomial(p, k);
        mask |= 1u64 << p;
        k -= 1;
        p += 1; // next orbital strictly below this one; loop decrements
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpinStrings;

    #[test]
    fn rank_matches_c1_space_ordering() {
        for (n, ne) in [(6usize, 3usize), (8, 2), (5, 5), (7, 0), (9, 4)] {
            let sp = SpinStrings::c1(n, ne);
            for i in 0..sp.len() {
                assert_eq!(rank_colex(sp.mask(i)), i, "n={n} ne={ne} i={i}");
            }
        }
    }

    #[test]
    fn unrank_is_inverse() {
        for (n, ne) in [(6usize, 3usize), (10, 4), (4, 1)] {
            for r in 0..binomial(n, ne) {
                let m = unrank_colex(n, ne, r);
                assert_eq!(m.count_ones() as usize, ne);
                assert!(m < (1u64 << n));
                assert_eq!(rank_colex(m), r);
            }
        }
    }

    #[test]
    fn rank_of_extremes() {
        // Lowest mask (bits 0..N) has rank 0; highest has rank C(n,N)−1.
        let n = 8;
        let ne = 3;
        assert_eq!(rank_colex(0b111), 0);
        let top = 0b111u64 << (n - ne);
        assert_eq!(rank_colex(top), binomial(n, ne) - 1);
    }

    #[test]
    #[should_panic]
    fn unrank_out_of_range_panics() {
        let _ = unrank_colex(5, 2, binomial(5, 2));
    }
}
