//! Bit-mask strings and fermionic phase conventions.
//!
//! A string `|J⟩` with occupied orbitals `j1 < j2 < … < jN` denotes the
//! ordered product of creation operators
//!
//! ```text
//! |J⟩ = a†_{j1} a†_{j2} … a†_{jN} |vac⟩
//! ```
//!
//! With that convention:
//!
//! * `a_q |J⟩ = (−1)^{#occ(J) below q} |J ∖ q⟩` if `q ∈ J`, else 0;
//! * `a†_p |J⟩ = (−1)^{#occ(J) below p} |J ∪ p⟩` if `p ∉ J`, else 0.
//!
//! Everything else (excitation operators, pair creations) composes from
//! these two primitives, so signs are correct by construction.

/// Build the mask with the given occupied orbitals.
///
/// Panics (debug) on duplicate orbitals or orbitals ≥ 64.
pub fn string_from_occ(occ: &[usize]) -> u64 {
    let mut m = 0u64;
    for &p in occ {
        debug_assert!(p < 64, "orbital index out of range");
        debug_assert!(m & (1u64 << p) == 0, "duplicate orbital in occupation list");
        m |= 1u64 << p;
    }
    m
}

/// Number of occupied orbitals strictly below `p`.
#[inline(always)]
fn count_below(mask: u64, p: usize) -> u32 {
    (mask & ((1u64 << p) - 1)).count_ones()
}

/// Apply `a_q` to the string: returns `(sign, new_mask)`, or `None` if
/// orbital `q` is unoccupied.
#[inline]
pub fn annihilate(mask: u64, q: usize) -> Option<(i8, u64)> {
    if mask & (1u64 << q) == 0 {
        return None;
    }
    let sign = if count_below(mask, q).is_multiple_of(2) {
        1
    } else {
        -1
    };
    Some((sign, mask & !(1u64 << q)))
}

/// Apply `a†_p` to the string: returns `(sign, new_mask)`, or `None` if
/// orbital `p` is already occupied.
#[inline]
pub fn create(mask: u64, p: usize) -> Option<(i8, u64)> {
    if mask & (1u64 << p) != 0 {
        return None;
    }
    let sign = if count_below(mask, p).is_multiple_of(2) {
        1
    } else {
        -1
    };
    Some((sign, mask | (1u64 << p)))
}

/// Apply the excitation operator `E_pq = a†_p a_q`:
/// returns `(sign, new_mask)` or `None` if it annihilates the string.
///
/// Note `E_pp |J⟩ = |J⟩` when p is occupied (occupation-number operator).
#[inline]
pub fn excite(mask: u64, p: usize, q: usize) -> Option<(i8, u64)> {
    let (s1, m1) = annihilate(mask, q)?;
    let (s2, m2) = create(m1, p)?;
    Some((s1 * s2, m2))
}

/// Irrep (XOR product) of a string given per-orbital irreps.
///
/// Abelian point groups up to D2h have irreps labelled 0..8 with the group
/// product equal to bitwise XOR of the labels, so a string's irrep is the
/// XOR over its occupied orbitals.
pub fn irrep_of_mask(mask: u64, orb_sym: &[u8]) -> u8 {
    let mut g = 0u8;
    let mut m = mask;
    while m != 0 {
        let p = m.trailing_zeros() as usize;
        g ^= orb_sym[p];
        m &= m - 1;
    }
    g
}

/// Occupied orbital indices in ascending order.
pub fn occ_list(mask: u64) -> Vec<usize> {
    let mut v = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        v.push(m.trailing_zeros() as usize);
        m &= m - 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_list() {
        let m = string_from_occ(&[0, 2, 5]);
        assert_eq!(m, 0b100101);
        assert_eq!(occ_list(m), vec![0, 2, 5]);
    }

    #[test]
    fn annihilate_signs() {
        // |0,2,5⟩ = a†0 a†2 a†5 |vac⟩
        let m = string_from_occ(&[0, 2, 5]);
        // a_0: no occupied below 0 -> +
        assert_eq!(annihilate(m, 0), Some((1, string_from_occ(&[2, 5]))));
        // a_2: one occupied below (0) -> −
        assert_eq!(annihilate(m, 2), Some((-1, string_from_occ(&[0, 5]))));
        // a_5: two below -> +
        assert_eq!(annihilate(m, 5), Some((1, string_from_occ(&[0, 2]))));
        // unoccupied orbital
        assert_eq!(annihilate(m, 1), None);
    }

    #[test]
    fn create_signs() {
        let m = string_from_occ(&[1, 3]);
        assert_eq!(create(m, 0), Some((1, string_from_occ(&[0, 1, 3]))));
        assert_eq!(create(m, 2), Some((-1, string_from_occ(&[1, 2, 3]))));
        assert_eq!(create(m, 5), Some((1, string_from_occ(&[1, 3, 5]))));
        assert_eq!(create(m, 1), None);
    }

    #[test]
    fn create_annihilate_inverse() {
        // a†_p a_p |J⟩ = |J⟩ when p occupied (number operator), and the
        // signs from the two primitives must cancel.
        let m = string_from_occ(&[1, 4, 6, 9]);
        for p in [1usize, 4, 6, 9] {
            let (s1, m1) = annihilate(m, p).unwrap();
            let (s2, m2) = create(m1, p).unwrap();
            assert_eq!(m2, m);
            assert_eq!(s1 * s2, 1);
        }
    }

    #[test]
    fn excite_identity_and_moves() {
        let m = string_from_occ(&[0, 3]);
        // E_pp = n_p
        assert_eq!(excite(m, 3, 3), Some((1, m)));
        assert_eq!(excite(m, 1, 1), None);
        // E_13: remove 3 (one below: 0 -> sign −), add 1 (one below -> −): net +
        assert_eq!(excite(m, 1, 3), Some((1, string_from_occ(&[0, 1]))));
        // blocked: target occupied
        assert_eq!(excite(m, 0, 3), None);
    }

    #[test]
    fn anticommutation() {
        // a†_p a†_r = − a†_r a†_p for p ≠ r, applied to any string where
        // both are empty.
        let m = string_from_occ(&[2]);
        let (p, r) = (5usize, 0usize);
        let (s1, m1) = create(m, r).unwrap();
        let (s2, m2) = create(m1, p).unwrap();
        let (t1, k1) = create(m, p).unwrap();
        let (t2, k2) = create(k1, r).unwrap();
        assert_eq!(m2, k2);
        assert_eq!(s1 * s2, -(t1 * t2));
    }

    #[test]
    fn irrep_xor() {
        // C2v-ish labels: orbital irreps [0,1,2,3,0]
        let sym = [0u8, 1, 2, 3, 0];
        assert_eq!(irrep_of_mask(string_from_occ(&[0, 4]), &sym), 0);
        assert_eq!(irrep_of_mask(string_from_occ(&[1, 2]), &sym), 3);
        assert_eq!(irrep_of_mask(string_from_occ(&[1, 2, 3]), &sym), 0);
        assert_eq!(irrep_of_mask(0, &sym), 0);
    }
}
