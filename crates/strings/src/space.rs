//! String spaces: the set of all N-electron occupation strings in n
//! orbitals, sorted into symmetry blocks.

use crate::bits::irrep_of_mask;
use std::collections::HashMap;

/// Binomial coefficient `C(n, k)` as usize (panics on overflow in debug).
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc as usize
}

/// All strings of `n_elec` electrons in `n_orb` orbitals for one spin case,
/// sorted by (irrep, mask) so each irrep block is contiguous.
///
/// The paper distributes the CI coefficient matrix by α-string columns; the
/// contiguous-block ordering here is what makes "each symmetry-blocked
/// matrix is distributed separately" (§3.1) a simple range computation.
#[derive(Clone, Debug)]
pub struct SpinStrings {
    n_orb: usize,
    n_elec: usize,
    n_irrep: usize,
    orb_sym: Vec<u8>,
    strings: Vec<u64>,
    /// `irrep_offsets[g]..irrep_offsets[g+1]` is the index range of irrep g.
    irrep_offsets: Vec<usize>,
    index: HashMap<u64, u32>,
}

impl SpinStrings {
    /// Build the full string space with per-orbital irreps.
    ///
    /// `n_irrep` must be a power of two (1, 2, 4 or 8) and every entry of
    /// `orb_sym` must be below it. Use `n_irrep = 1` / all-zero `orb_sym`
    /// for no symmetry.
    pub fn new(n_orb: usize, n_elec: usize, orb_sym: &[u8], n_irrep: usize) -> Self {
        assert!(n_orb <= 64, "at most 64 orbitals");
        assert!(
            n_elec <= n_orb,
            "cannot place {n_elec} electrons in {n_orb} orbitals"
        );
        assert!(
            matches!(n_irrep, 1 | 2 | 4 | 8),
            "n_irrep must be 1, 2, 4 or 8"
        );
        assert_eq!(orb_sym.len(), n_orb, "orb_sym length must equal n_orb");
        assert!(
            orb_sym.iter().all(|&g| (g as usize) < n_irrep),
            "orbital irrep out of range"
        );

        // Enumerate all C(n_orb, n_elec) masks in ascending mask order via
        // Gosper's hack, bucketing by irrep.
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); n_irrep];
        if n_elec == 0 {
            buckets[0].push(0);
        } else {
            let mut v: u64 = (1u64 << n_elec) - 1;
            let limit: u64 = if n_orb == 64 {
                u64::MAX
            } else {
                (1u64 << n_orb) - 1
            };
            loop {
                buckets[irrep_of_mask(v, orb_sym) as usize].push(v);
                if v == 0 {
                    break;
                }
                // Gosper: next mask with the same popcount.
                let c = v & v.wrapping_neg();
                let r = v + c;
                if r > limit || r < v {
                    break;
                }
                v = (((r ^ v) >> 2) / c) | r;
            }
        }

        let mut strings = Vec::with_capacity(binomial(n_orb, n_elec));
        let mut irrep_offsets = Vec::with_capacity(n_irrep + 1);
        irrep_offsets.push(0);
        for b in &buckets {
            strings.extend_from_slice(b);
            irrep_offsets.push(strings.len());
        }
        let index: HashMap<u64, u32> = strings
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i as u32))
            .collect();
        SpinStrings {
            n_orb,
            n_elec,
            n_irrep,
            orb_sym: orb_sym.to_vec(),
            strings,
            irrep_offsets,
            index,
        }
    }

    /// Convenience constructor without symmetry.
    pub fn c1(n_orb: usize, n_elec: usize) -> Self {
        Self::new(n_orb, n_elec, &vec![0u8; n_orb], 1)
    }

    /// Number of orbitals.
    pub fn n_orb(&self) -> usize {
        self.n_orb
    }

    /// Number of electrons.
    pub fn n_elec(&self) -> usize {
        self.n_elec
    }

    /// Number of irreps (1, 2, 4 or 8).
    pub fn n_irrep(&self) -> usize {
        self.n_irrep
    }

    /// Irrep label of each orbital.
    pub fn orb_sym(&self) -> &[u8] {
        &self.orb_sym
    }

    /// Total number of strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when the space holds no strings.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The mask of string `i`.
    #[inline]
    pub fn mask(&self, i: usize) -> u64 {
        self.strings[i]
    }

    /// All masks, in index order.
    pub fn masks(&self) -> &[u64] {
        &self.strings
    }

    /// Global index of a mask, if it belongs to this space.
    #[inline]
    pub fn index_of(&self, mask: u64) -> Option<usize> {
        self.index.get(&mask).map(|&i| i as usize)
    }

    /// Irrep of string `i` (by its block).
    pub fn irrep_of_index(&self, i: usize) -> u8 {
        debug_assert!(i < self.len());
        // Blocks are few; linear scan is fine.
        for g in 0..self.n_irrep {
            if i < self.irrep_offsets[g + 1] {
                return g as u8;
            }
        }
        unreachable!("index beyond last block")
    }

    /// Irrep of an arbitrary mask under this space's orbital symmetry.
    pub fn irrep_of_mask(&self, mask: u64) -> u8 {
        irrep_of_mask(mask, &self.orb_sym)
    }

    /// Index range (start..end) of the block with irrep `g`.
    pub fn block_range(&self, g: u8) -> std::ops::Range<usize> {
        let g = g as usize;
        assert!(g < self.n_irrep);
        self.irrep_offsets[g]..self.irrep_offsets[g + 1]
    }

    /// Number of strings in irrep block `g`.
    pub fn block_len(&self, g: u8) -> usize {
        let r = self.block_range(g);
        r.end - r.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::string_from_occ;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(10, 11), 0);
        assert_eq!(binomial(66, 4), 720_720);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn c1_space_counts() {
        let s = SpinStrings::c1(6, 3);
        assert_eq!(s.len(), binomial(6, 3));
        // Every mask has 3 bits within the first 6 orbitals.
        for i in 0..s.len() {
            let m = s.mask(i);
            assert_eq!(m.count_ones(), 3);
            assert!(m < (1 << 6));
            assert_eq!(s.index_of(m), Some(i));
        }
    }

    #[test]
    fn zero_electrons() {
        let s = SpinStrings::c1(4, 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mask(0), 0);
        assert_eq!(s.index_of(0), Some(0));
    }

    #[test]
    fn all_orbitals_filled() {
        let s = SpinStrings::c1(5, 5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mask(0), 0b11111);
    }

    #[test]
    fn symmetry_blocks_partition() {
        // 6 orbitals with C2v-style irreps.
        let sym = [0u8, 0, 1, 1, 2, 3];
        let s = SpinStrings::new(6, 2, &sym, 4);
        assert_eq!(s.len(), binomial(6, 2));
        let mut total = 0;
        for g in 0..4u8 {
            let r = s.block_range(g);
            total += r.len();
            for i in r {
                assert_eq!(s.irrep_of_mask(s.mask(i)), g);
                assert_eq!(s.irrep_of_index(i), g);
            }
        }
        assert_eq!(total, s.len());
    }

    #[test]
    fn symmetry_block_contents() {
        let sym = [0u8, 1];
        let s = SpinStrings::new(2, 1, &sym, 2);
        // Irrep 0: orbital 0; irrep 1: orbital 1.
        assert_eq!(s.block_len(0), 1);
        assert_eq!(s.block_len(1), 1);
        assert_eq!(s.mask(s.block_range(0).start), string_from_occ(&[0]));
        assert_eq!(s.mask(s.block_range(1).start), string_from_occ(&[1]));
    }

    #[test]
    fn index_of_foreign_mask_is_none() {
        let s = SpinStrings::c1(4, 2);
        assert_eq!(s.index_of(0b111), None); // wrong popcount
        assert_eq!(s.index_of(1 << 10), None); // out of orbital range
    }

    #[test]
    fn boundary_orbital_count() {
        // n_orb == n bits edge: make sure Gosper terminates at the limit.
        let s = SpinStrings::c1(8, 7);
        assert_eq!(s.len(), 8);
    }
}
