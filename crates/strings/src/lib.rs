#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Occupation-string machinery for determinant-based FCI.
//!
//! In the determinant FCI of Olsen/Knowles–Handy lineage that the paper
//! builds on, the N-electron basis is a direct product of α and β
//! *occupation strings*: subsets of the n spatial orbitals holding Nα (Nβ)
//! electrons. The CI coefficient vector is a matrix `C(Iβ, Iα)` and every σ
//! algorithm is driven by precomputed coupling tables between string spaces:
//!
//! * single-excitation tables `⟨I| E_pq |J⟩ = ±1` (the MOC kernel and the
//!   one-electron σ),
//! * N−1 electron intermediate families `I = a†_p K` (the mixed-spin DGEMM
//!   routine, eqs. 4–6 of the paper),
//! * N−2 electron intermediate families `I = a†_p a†_r K`, `p > r` — the
//!   paper's **A** (creation-pair) and **B** (annihilation-pair) coupling
//!   matrices of the same-spin routine (eqs. 7–9), following
//!   Harrison & Zarrabian's (n−2)-electron projection space.
//!
//! Strings are stored as `u64` bit masks (orbital i occupied ⇔ bit i set),
//! with the fermionic phase conventions documented on [`bits`]. Abelian
//! point-group symmetry (D2h and subgroups — every irrep product is a XOR)
//! is supported by sorting each string list by (irrep, mask) so that a
//! symmetry block is a contiguous index range.

pub mod bits;
pub mod rank;
pub mod space;
pub mod tables;

pub use bits::{annihilate, create, excite, irrep_of_mask, occ_list, string_from_occ};
pub use rank::{rank_colex, unrank_colex};
pub use space::{binomial, SpinStrings};
pub use tables::{
    pair_index, CreateEntry, Nm1Families, Nm2Families, PairEntry, SingleEntry, SinglesTable,
};
