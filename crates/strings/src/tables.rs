//! Precomputed coupling tables between string spaces.
//!
//! These tables are the discrete skeleton of every σ algorithm:
//!
//! * [`SinglesTable`] — for each string `J`, all `(p, q, sign, I)` with
//!   `E_pq |J⟩ = sign |I⟩` (including the diagonal `p = q` occupation
//!   entries). Drives the one-electron σ and the MOC kernels.
//! * [`Nm1Families`] — for each N−1 electron string `K`, the family of
//!   `(p, sign, I)` with `|I⟩ = sign · a†_p |K⟩`. The mixed-spin DGEMM
//!   routine loops over these families on *both* spins (eqs. 4–6); they are
//!   also the task units of the dynamic load balancer ("each processor is
//!   assigned different sets of Nα−1 electron alpha occupations", §3.3).
//! * [`Nm2Families`] — for each N−2 electron string `K`, the family of
//!   `(p, r, sign, I)` with `p > r` and `⟨I| a†_p a†_r |K⟩ = sign`. This is
//!   simultaneously the paper's creation-pair matrix **A** and (through
//!   `B^{K,J}_{qs} = ⟨J| a†_q a†_s |K⟩`, the adjoint relation) its
//!   annihilation-pair matrix **B**.

use crate::bits::{annihilate, create};
use crate::space::SpinStrings;

/// One `E_pq` connection from a source string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingleEntry {
    /// Created orbital p.
    pub p: u8,
    /// Annihilated orbital q.
    pub q: u8,
    /// Fermionic phase (±1).
    pub sign: i8,
    /// Global index of the target string `I`.
    pub to: u32,
}

/// For every string `J` of a space: all single excitations `E_pq |J⟩`.
#[derive(Clone, Debug)]
pub struct SinglesTable {
    offsets: Vec<usize>,
    entries: Vec<SingleEntry>,
}

impl SinglesTable {
    /// Build the table for `space`. Cost: O(#strings · N · (n−N+1)).
    pub fn new(space: &SpinStrings) -> Self {
        let n = space.n_orb();
        let nstr = space.len();
        let per = space.n_elec() * (n - space.n_elec() + 1);
        let mut offsets = Vec::with_capacity(nstr + 1);
        let mut entries = Vec::with_capacity(nstr * per);
        offsets.push(0);
        for j in 0..nstr {
            let mask = space.mask(j);
            for q in 0..n {
                let Some((s1, m1)) = annihilate(mask, q) else {
                    continue;
                };
                for p in 0..n {
                    let Some((s2, m2)) = create(m1, p) else {
                        continue;
                    };
                    let to = space
                        .index_of(m2)
                        .expect("E_pq target must stay inside the full string space")
                        as u32;
                    entries.push(SingleEntry {
                        p: p as u8,
                        q: q as u8,
                        sign: s1 * s2,
                        to,
                    });
                }
            }
            offsets.push(entries.len());
        }
        SinglesTable { offsets, entries }
    }

    /// The excitations out of string `j`.
    #[inline]
    pub fn of(&self, j: usize) -> &[SingleEntry] {
        &self.entries[self.offsets[j]..self.offsets[j + 1]]
    }

    /// Total number of stored connections.
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }
}

/// One `a†_p` connection from an N−1 string family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreateEntry {
    /// Created orbital p.
    pub p: u8,
    /// Fermionic phase of `⟨I| a†_p |K⟩`.
    pub sign: i8,
    /// Global index of the N-electron string `I` in the parent space.
    pub to: u32,
}

/// N−1 electron intermediate families.
#[derive(Clone, Debug)]
pub struct Nm1Families {
    /// The N−1 electron string space (same orbitals/symmetry labels).
    space_k: SpinStrings,
    offsets: Vec<usize>,
    entries: Vec<CreateEntry>,
}

impl Nm1Families {
    /// Build the N−1 families of `space` (which must have ≥1 electron).
    pub fn new(space: &SpinStrings) -> Self {
        assert!(
            space.n_elec() >= 1,
            "need at least one electron for N-1 families"
        );
        let space_k = SpinStrings::new(
            space.n_orb(),
            space.n_elec() - 1,
            space.orb_sym(),
            space.n_irrep(),
        );
        let nk = space_k.len();
        // Count, then fill (families are built K-major).
        let mut counts = vec![0usize; nk];
        for i in 0..space.len() {
            let mask = space.mask(i);
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                m &= m - 1;
                let (_, km) = annihilate(mask, p).unwrap();
                counts[space_k.index_of(km).unwrap()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(nk + 1);
        let mut acc = 0;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut fill = offsets.clone();
        let mut entries = vec![
            CreateEntry {
                p: 0,
                sign: 0,
                to: 0
            };
            acc
        ];
        for i in 0..space.len() {
            let mask = space.mask(i);
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                m &= m - 1;
                // sign of ⟨I|a†_p|K⟩ equals the sign of create(K, p),
                // which equals the sign of annihilate(I, p).
                let (sign, km) = annihilate(mask, p).unwrap();
                let k = space_k.index_of(km).unwrap();
                entries[fill[k]] = CreateEntry {
                    p: p as u8,
                    sign,
                    to: i as u32,
                };
                fill[k] += 1;
            }
        }
        // Deterministic order within each family (by created orbital).
        for k in 0..nk {
            entries[offsets[k]..offsets[k + 1]].sort_by_key(|e| e.p);
        }
        Nm1Families {
            space_k,
            offsets,
            entries,
        }
    }

    /// The N−1 electron string space.
    pub fn space_k(&self) -> &SpinStrings {
        &self.space_k
    }

    /// Number of families (= number of N−1 strings).
    pub fn len(&self) -> usize {
        self.space_k.len()
    }

    /// True when there are no families.
    pub fn is_empty(&self) -> bool {
        self.space_k.is_empty()
    }

    /// The family of N-electron strings reachable from `K` by one creation.
    #[inline]
    pub fn of(&self, k: usize) -> &[CreateEntry] {
        &self.entries[self.offsets[k]..self.offsets[k + 1]]
    }
}

/// One `a†_p a†_r` (p > r) connection from an N−2 string family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairEntry {
    /// Higher created orbital (p > r).
    pub p: u8,
    /// Lower created orbital.
    pub r: u8,
    /// Fermionic phase of `⟨I| a†_p a†_r |K⟩`.
    pub sign: i8,
    /// Global index of the N-electron string `I` in the parent space.
    pub to: u32,
}

impl PairEntry {
    /// Row index of the (p, r) pair in a packed p>r triangular matrix.
    #[inline]
    pub fn pair_index(&self) -> usize {
        pair_index(self.p as usize, self.r as usize)
    }
}

/// Packed index of the ordered pair (p, r) with p > r:
/// `(p·(p−1))/2 + r`, enumerating (1,0), (2,0), (2,1), (3,0), …
#[inline]
pub fn pair_index(p: usize, r: usize) -> usize {
    debug_assert!(p > r);
    p * (p - 1) / 2 + r
}

/// N−2 electron intermediate families — the paper's A/B coupling matrices.
#[derive(Clone, Debug)]
pub struct Nm2Families {
    space_k: SpinStrings,
    offsets: Vec<usize>,
    entries: Vec<PairEntry>,
}

impl Nm2Families {
    /// Build the N−2 families of `space` (which must have ≥2 electrons).
    pub fn new(space: &SpinStrings) -> Self {
        assert!(
            space.n_elec() >= 2,
            "need at least two electrons for N-2 families"
        );
        let space_k = SpinStrings::new(
            space.n_orb(),
            space.n_elec() - 2,
            space.orb_sym(),
            space.n_irrep(),
        );
        let nk = space_k.len();
        let mut counts = vec![0usize; nk];
        let visit = |i: usize, mask: u64, record: &mut dyn FnMut(usize, PairEntry)| {
            let occ: Vec<usize> = crate::bits::occ_list(mask);
            for (a, &r) in occ.iter().enumerate() {
                for &p in occ.iter().skip(a + 1) {
                    // p > r both occupied in I. ⟨I|a†_p a†_r|K⟩: remove in
                    // the adjoint order — a_r a_p ... easiest: build from K.
                    let (s1, m1) = annihilate(mask, p).unwrap();
                    let (s2, km) = annihilate(m1, r).unwrap();
                    // ⟨K| a_r a_p |I⟩ = s1·s2 = ⟨I| a†_p a†_r |K⟩ (real).
                    let k = space_k.index_of(km).unwrap();
                    record(
                        k,
                        PairEntry {
                            p: p as u8,
                            r: r as u8,
                            sign: s1 * s2,
                            to: i as u32,
                        },
                    );
                }
            }
        };
        for i in 0..space.len() {
            visit(i, space.mask(i), &mut |k, _| counts[k] += 1);
        }
        let mut offsets = Vec::with_capacity(nk + 1);
        let mut acc = 0;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut fill = offsets.clone();
        let mut entries = vec![
            PairEntry {
                p: 0,
                r: 0,
                sign: 0,
                to: 0
            };
            acc
        ];
        for i in 0..space.len() {
            visit(i, space.mask(i), &mut |k, e| {
                entries[fill[k]] = e;
                fill[k] += 1;
            });
        }
        for k in 0..nk {
            entries[offsets[k]..offsets[k + 1]].sort_by_key(|e| (e.p, e.r));
        }
        Nm2Families {
            space_k,
            offsets,
            entries,
        }
    }

    /// The N−2 electron string space.
    pub fn space_k(&self) -> &SpinStrings {
        &self.space_k
    }

    /// Number of families (= number of N−2 strings).
    pub fn len(&self) -> usize {
        self.space_k.len()
    }

    /// True when there are no families.
    pub fn is_empty(&self) -> bool {
        self.space_k.is_empty()
    }

    /// The family of N-electron strings reachable from `K` by a pair
    /// creation, i.e. one column of the A (equivalently B) matrix.
    #[inline]
    pub fn of(&self, k: usize) -> &[PairEntry] {
        &self.entries[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Total number of stored connections.
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{excite, string_from_occ};
    use crate::space::binomial;

    #[test]
    fn singles_count_and_consistency() {
        let space = SpinStrings::c1(5, 2);
        let t = SinglesTable::new(&space);
        // Each string: N·(n−N) moves + N diagonal entries.
        let per = 2 * (5 - 2) + 2;
        assert_eq!(t.n_entries(), space.len() * per);
        for j in 0..space.len() {
            for e in t.of(j) {
                let (sign, m) = excite(space.mask(j), e.p as usize, e.q as usize).unwrap();
                assert_eq!(sign, e.sign);
                assert_eq!(space.index_of(m), Some(e.to as usize));
            }
        }
    }

    #[test]
    fn singles_diagonal_entries() {
        let space = SpinStrings::c1(4, 2);
        let t = SinglesTable::new(&space);
        let j = space.index_of(string_from_occ(&[1, 3])).unwrap();
        let diag: Vec<_> = t.of(j).iter().filter(|e| e.p == e.q).collect();
        assert_eq!(diag.len(), 2);
        for e in diag {
            assert_eq!(e.sign, 1);
            assert_eq!(e.to as usize, j);
        }
    }

    #[test]
    fn nm1_family_sizes() {
        let space = SpinStrings::c1(6, 3);
        let f = Nm1Families::new(&space);
        assert_eq!(f.len(), binomial(6, 2));
        let total: usize = (0..f.len()).map(|k| f.of(k).len()).sum();
        // Each N string is reachable from N distinct K's.
        assert_eq!(total, space.len() * 3);
        // Each family has n − (N−1) members.
        for k in 0..f.len() {
            assert_eq!(f.of(k).len(), 6 - 2);
        }
    }

    #[test]
    fn nm1_signs_match_primitive() {
        let space = SpinStrings::c1(5, 3);
        let f = Nm1Families::new(&space);
        for k in 0..f.len() {
            let kmask = f.space_k().mask(k);
            for e in f.of(k) {
                let (sign, imask) = crate::bits::create(kmask, e.p as usize).unwrap();
                assert_eq!(sign, e.sign);
                assert_eq!(space.index_of(imask), Some(e.to as usize));
            }
        }
    }

    #[test]
    fn nm2_family_sizes_and_signs() {
        let space = SpinStrings::c1(6, 3);
        let f = Nm2Families::new(&space);
        assert_eq!(f.len(), binomial(6, 1));
        // Every N string contributes C(N,2) pair removals.
        assert_eq!(f.n_entries(), space.len() * binomial(3, 2));
        for k in 0..f.len() {
            let kmask = f.space_k().mask(k);
            for e in f.of(k) {
                assert!(e.p > e.r);
                // ⟨I|a†_p a†_r|K⟩ via the primitives: a†_r then a†_p.
                let (s1, m1) = crate::bits::create(kmask, e.r as usize).unwrap();
                let (s2, imask) = crate::bits::create(m1, e.p as usize).unwrap();
                assert_eq!(s1 * s2, e.sign);
                assert_eq!(space.index_of(imask), Some(e.to as usize));
            }
        }
    }

    #[test]
    fn pair_index_enumeration() {
        assert_eq!(pair_index(1, 0), 0);
        assert_eq!(pair_index(2, 0), 1);
        assert_eq!(pair_index(2, 1), 2);
        assert_eq!(pair_index(3, 0), 3);
        // Bijection onto 0..C(n,2).
        let n = 7;
        let mut seen = vec![false; n * (n - 1) / 2];
        for p in 1..n {
            for r in 0..p {
                let idx = pair_index(p, r);
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn nm2_adjoint_is_b_matrix() {
        // B^{K,J}_{qs} = ⟨K| a_s a_q |J⟩ must equal the stored
        // ⟨J| a†_q a†_s |K⟩ (real matrix elements).
        let space = SpinStrings::c1(5, 2);
        let f = Nm2Families::new(&space);
        for k in 0..f.len() {
            for e in f.of(k) {
                let jmask = space.mask(e.to as usize);
                let (s1, m1) = annihilate(jmask, e.p as usize).unwrap();
                let (s2, kmask) = annihilate(m1, e.r as usize).unwrap();
                assert_eq!(kmask, f.space_k().mask(k));
                assert_eq!(s1 * s2, e.sign);
            }
        }
    }

    #[test]
    fn tables_respect_symmetry_ordering() {
        let sym = [0u8, 1, 0, 1, 2];
        let space = SpinStrings::new(5, 2, &sym, 4);
        let f = Nm1Families::new(&space);
        // K strings also sorted by irrep; spot check irrep arithmetic:
        // creating orbital p changes the irrep by XOR orb_sym[p].
        for k in 0..f.len() {
            let gk = f.space_k().irrep_of_index(k);
            for e in f.of(k) {
                let gi = space.irrep_of_index(e.to as usize);
                assert_eq!(gi, gk ^ sym[e.p as usize]);
            }
        }
    }
}
