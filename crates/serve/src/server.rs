//! The job server: priority queue with tenant fairness, admission
//! control, batching coalescer, and a scoped worker pool.
//!
//! # Determinism
//!
//! The same job set with the same seeds produces bitwise-identical
//! per-job energies at any worker count. Two design rules make that
//! hold without any cross-worker coordination:
//!
//! 1. **Scheduling is a pure function of queue content.** The next unit
//!    of work is `argmin` over pending jobs of `(−priority,
//!    tenant_credit, submit_seq)`, computed under the queue lock, and a
//!    batch takes *every* coalescible pending job at once. For a
//!    preloaded queue the k-th dequeue therefore always sees the same
//!    pending set — `all − first k−1 batches` — no matter which thread
//!    performs it or how long solves take, so the sequence of batches
//!    (and each batch's root count) is identical at T=1 and T=16.
//! 2. **Solves never share mutable state.** Workers read determinant
//!    spaces and Hamiltonians through immutable `Arc`s from the
//!    [`ArtifactCache`], and each solve runs its own virtual DDI world
//!    and seeded fault plan, so a cache hit (or eviction) can change
//!    wall time but never a floating-point result.
//!
//! Host time is read from an [`fci_obs::Tracer`] (the repo's wall-clock
//! rule) and is reported, never consulted for scheduling.

use crate::cache::{Artifact, ArtifactCache, CacheKey};
use crate::result::{percentile, JobResult, JobStatus, RejectReason, ServeReport, ServeSummary};
use crate::spec::JobSpec;
use crate::wal::{Replay, Wal, WalRecord};
use fci_core::{
    build_space, solve_prepared, solve_resilient_prepared, solve_roots_prepared, DetSpace,
    Hamiltonian, RecoveryOptions, SolverKind,
};
use fci_obs::{Category, ObsConfig, Tracer, TrackedCondvar, TrackedMutex};
use fci_sparse::{solve_sparse, SparseOptions};
use fci_strings::binomial;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Artifact-cache byte budget (0 disables caching).
    pub cache_budget: usize,
    /// Admission ceiling: jobs whose estimated working set exceeds this
    /// are rejected at submit.
    pub mem_budget: usize,
    /// Queue capacity; submissions beyond it are rejected (backpressure).
    pub queue_cap: usize,
    /// Coalesce same-space Davidson jobs into multi-root solves.
    pub batching: bool,
    /// Directory for per-job resilient-solve checkpoints.
    pub checkpoint_dir: PathBuf,
    /// Server-level telemetry (job lifecycle + cache instants).
    pub obs: ObsConfig,
    /// When set, each job's solve writes its own trace file here
    /// (`job-<id>.trace.jsonl`).
    pub job_trace_dir: Option<PathBuf>,
    /// When set, accepted jobs and their state transitions are appended
    /// to this write-ahead log before they are acknowledged, and
    /// [`Server::recover`] replays it on startup (crash-exactly-once).
    pub wal_path: Option<PathBuf>,
    /// `fdatasync` the WAL per append (power-loss durability; process
    /// crashes are covered without it).
    pub wal_sync: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            cache_budget: 256 << 20,
            mem_budget: 1 << 30,
            queue_cap: 1024,
            batching: true,
            checkpoint_dir: std::env::temp_dir(),
            obs: ObsConfig::off(),
            job_trace_dir: None,
            wal_path: None,
            wal_sync: false,
        }
    }
}

/// A point-in-time view of the queue for the `STATUS` verb and tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueStats {
    /// Jobs accepted but not yet dispatched.
    pub pending: usize,
    /// Jobs currently in a solve.
    pub running: usize,
    /// Jobs with a terminal result.
    pub completed: usize,
    /// Submissions refused by admission control.
    pub rejected: usize,
    /// No further submissions are accepted.
    pub closed: bool,
    /// Write-ahead log size in bytes (0 when durability is off).
    pub wal_bytes: u64,
}

struct Queued {
    spec: JobSpec,
    seq: u64,
    /// Host µs at submit (reporting only — never drives scheduling).
    submit_us: f64,
    /// Slot in the results vector (submission order).
    out: usize,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<Queued>,
    running: usize,
    /// No further submissions; workers may exit once drained.
    closed: bool,
    /// Abandon queued work (in-flight solves still complete).
    shutdown: bool,
    /// Jobs dispatched per tenant — the fairness currency.
    tenant_credit: HashMap<String, u64>,
    ids: HashSet<String>,
    next_seq: u64,
    batches: usize,
}

/// A running job server. Construct with [`Server::new`], feed it with
/// [`Server::submit`], drain it with [`serve`] / [`serve_with`].
pub struct Server {
    cfg: ServeConfig,
    cache: ArtifactCache,
    /// Event stream (may be disabled).
    trace: Tracer,
    /// Host-time source; always enabled, events discarded.
    clock: Tracer,
    state: TrackedMutex<QueueState>,
    work: TrackedCondvar,
    results: TrackedMutex<Vec<Option<JobResult>>>,
    rejected: TrackedMutex<Vec<(String, RejectReason)>>,
    /// Write-ahead log (absent when `cfg.wal_path` is unset).
    wal: Option<TrackedMutex<Wal>>,
    /// Signalled whenever a result lands; [`Server::wait_result`] parks here.
    done: TrackedCondvar,
}

impl Server {
    /// A server with an empty queue. With `cfg.wal_path` set, an
    /// existing log is replayed exactly as [`Server::recover`] would —
    /// but open failures downgrade to a warning with durability off,
    /// and the replay detail is discarded.
    pub fn new(cfg: ServeConfig) -> Server {
        let fallback = ServeConfig {
            wal_path: None,
            ..cfg.clone()
        };
        match Server::recover(cfg) {
            Ok((server, replay)) => {
                for w in &replay.warnings {
                    eprintln!("warning: WAL recovery: {w}");
                }
                server
            }
            Err(e) => {
                eprintln!("warning: could not open WAL: {e}; durability disabled");
                let (server, _) = Server::recover(fallback).unwrap_or_else(|_| unreachable!());
                server
            }
        }
    }

    /// Open the server against its write-ahead log: replay the log,
    /// pre-fill results for jobs whose completion record survived,
    /// re-enqueue accepted-but-unfinished jobs, and compact the log.
    /// With `cfg.wal_path` unset this is [`Server::new`] with an empty
    /// [`Replay`]. `Err` means the log could not be opened or rewritten
    /// (replayed *damage* is never an error — it is counted in
    /// [`Replay::warnings`]).
    pub fn recover(cfg: ServeConfig) -> std::io::Result<(Server, Replay)> {
        let trace = cfg.obs.tracer().unwrap_or_else(|e| {
            eprintln!("warning: could not open serve trace output: {e}; tracing disabled");
            Tracer::disabled()
        });
        if let Err(e) = std::fs::create_dir_all(&cfg.checkpoint_dir) {
            // Resilient jobs will surface the error per job.
            eprintln!(
                "warning: could not create checkpoint dir {}: {e}",
                cfg.checkpoint_dir.display()
            );
        }
        let (wal, replay) = match &cfg.wal_path {
            Some(path) => {
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir)?;
                }
                let (mut wal, replay) = Wal::open(path)?;
                wal.set_sync(cfg.wal_sync);
                // Rewrite to just the live records so terminal records
                // of past generations never accumulate.
                wal.compact(&replay)?;
                (Some(wal), replay)
            }
            None => (None, Replay::default()),
        };
        // Pre-fill the queue and results as plain values *before* any
        // mutex wraps them: construction acquires no locks, so the lock
        // graph sees only the steady-state orderings.
        let clock = Tracer::in_memory();
        let mut st = QueueState::default();
        let mut results: Vec<Option<JobResult>> = Vec::new();
        for r in &replay.completed {
            st.ids.insert(r.id.clone());
            results.push(Some(r.clone()));
        }
        for spec in &replay.pending {
            st.ids.insert(spec.id.clone());
            let seq = st.next_seq;
            st.next_seq += 1;
            results.push(None);
            st.pending.push(Queued {
                submit_us: clock.now_us(),
                spec: spec.clone(),
                seq,
                out: results.len() - 1,
            });
        }
        let server = Server {
            cache: ArtifactCache::new(cfg.cache_budget),
            trace,
            clock,
            cfg,
            state: TrackedMutex::new("Server.state", st),
            work: TrackedCondvar::new("Server.work"),
            results: TrackedMutex::new("Server.results", results),
            rejected: TrackedMutex::new("Server.rejected", Vec::new()),
            wal: wal.map(|w| TrackedMutex::new("Server.wal", w)),
            done: TrackedCondvar::new("Server.done"),
        };
        if let Some(m) = server.trace.metrics() {
            m.gauge_set(
                "serve.wal_recovered_pending",
                &[],
                replay.pending.len() as f64,
            );
            m.gauge_set(
                "serve.wal_recovered_completed",
                &[],
                replay.completed.len() as f64,
            );
            m.gauge_set("serve.wal_warnings", &[], replay.warnings.len() as f64);
        }
        Ok((server, replay))
    }

    /// The artifact cache (stats inspection).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Server trace events so far (in-memory tracing only).
    pub fn events(&self) -> Option<Vec<fci_obs::Event>> {
        self.trace.events()
    }

    /// The server-level metrics registry, when `cfg.obs` attached one.
    /// Live while the server runs — a snapshot thread can render it
    /// concurrently with workers recording into it.
    pub fn metrics(&self) -> Option<&fci_obs::MetricsRegistry> {
        self.trace.metrics()
    }

    /// Emit the job-completion instant plus per-tenant metrics.
    fn note_job(&self, q: &Queued, done: bool, queue_us: f64, exec_us: f64) {
        self.trace.instant(
            None,
            if done { "job_done" } else { "job_failed" },
            Category::Other,
            &[
                ("seq", q.seq as f64),
                ("queue_us", queue_us),
                ("exec_us", exec_us),
            ],
        );
        if let Some(m) = self.trace.metrics() {
            let tenant = q.spec.tenant.as_str();
            let name = if done {
                "serve.jobs_done"
            } else {
                "serve.jobs_failed"
            };
            m.counter_incr(name, &[("tenant", tenant)]);
            m.observe("serve.queue_wait_us", &[("tenant", tenant)], queue_us);
            m.observe("serve.exec_us", &[("tenant", tenant)], exec_us);
        }
    }

    /// Append to the WAL (no-op without one), tracking size metrics.
    /// Safe to call with the state lock held: `Server.wal` is a leaf of
    /// the lock graph — nothing else is ever acquired while holding it.
    fn wal_append(&self, rec: &WalRecord) -> std::io::Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let mut w = wal.lock();
        w.append(rec)?;
        let len = w.len();
        drop(w);
        if let Some(m) = self.trace.metrics() {
            m.counter_incr("serve.wal_appends", &[]);
            m.gauge_set("serve.wal_bytes", &[], len as f64);
        }
        Ok(())
    }

    /// Record a refused submission (report + trace + WAL) and hand the
    /// reason back. Must be called with no queue locks held.
    fn reject(&self, id: &str, why: RejectReason) -> RejectReason {
        if let Err(e) = self.wal_append(&WalRecord::Rejected {
            id: id.to_string(),
            reason: why.to_string(),
        }) {
            eprintln!("warning: WAL append (reject {id}) failed: {e}");
        }
        self.rejected.lock().push((id.to_string(), why.clone()));
        self.trace
            .instant(None, "job_rejected", Category::Other, &[("count", 1.0)]);
        why
    }

    /// Submit a job. `Err` is the backpressure path: the reason is also
    /// recorded in the final report. With a WAL attached, `Ok` means the
    /// acceptance record is durable — a crash after this returns cannot
    /// lose the job.
    pub fn submit(&self, spec: JobSpec) -> Result<(), RejectReason> {
        if let Err(why) = self.admit(&spec) {
            return Err(self.reject(&spec.id, why));
        }
        let mut st = self.state.lock();
        if st.closed || st.shutdown {
            drop(st);
            let why = RejectReason::Invalid("server is shutting down".into());
            return Err(self.reject(&spec.id, why));
        }
        if st.ids.contains(&spec.id) {
            drop(st);
            return Err(self.reject(&spec.id, RejectReason::DuplicateId));
        }
        if st.pending.len() >= self.cfg.queue_cap {
            drop(st);
            let why = RejectReason::QueueFull {
                capacity: self.cfg.queue_cap,
            };
            return Err(self.reject(&spec.id, why));
        }
        // Durability point: the acceptance record must be on disk before
        // the job becomes visible anywhere (still under the state lock,
        // so the duplicate-id check and the log agree).
        if let Err(e) = self.wal_append(&WalRecord::Submitted {
            spec: Box::new(spec.clone()),
        }) {
            drop(st);
            let why = RejectReason::Invalid(format!("write-ahead log append failed: {e}"));
            self.rejected.lock().push((spec.id.clone(), why.clone()));
            self.trace
                .instant(None, "job_rejected", Category::Other, &[("count", 1.0)]);
            return Err(why);
        }
        st.ids.insert(spec.id.clone());
        let seq = st.next_seq;
        st.next_seq += 1;
        let out = {
            let mut res = self.results.lock();
            res.push(None);
            res.len() - 1
        };
        self.trace
            .instant(None, "job_submit", Category::Other, &[("seq", seq as f64)]);
        st.pending.push(Queued {
            submit_us: self.clock.now_us(),
            spec,
            seq,
            out,
        });
        if let Some(m) = self.trace.metrics() {
            m.gauge_set("serve.queue_depth", &[], st.pending.len() as f64);
        }
        drop(st);
        self.work.notify_all();
        Ok(())
    }

    /// Cancel a queued job. Returns `false` if it already started (or
    /// was never accepted) — running solves are not interrupted.
    pub fn cancel(&self, id: &str) -> bool {
        let mut st = self.state.lock();
        let Some(pos) = st.pending.iter().position(|q| q.spec.id == id) else {
            return false;
        };
        let q = st.pending.remove(pos);
        drop(st);
        self.finish(
            &q,
            JobResult {
                id: q.spec.id.clone(),
                tenant: q.spec.tenant.clone(),
                status: JobStatus::Cancelled,
                energy: f64::NAN,
                converged: false,
                iterations: 0,
                sector_dim: 0,
                batch_size: 0,
                restarts: 0,
                queue_us: self.clock.now_us() - q.submit_us,
                exec_us: 0.0,
            },
        );
        true
    }

    /// No further submissions; workers exit once the queue drains.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.work.notify_all();
    }

    /// Graceful shutdown: queued jobs are abandoned (reported as
    /// `Shutdown`); in-flight solves run to completion.
    pub fn shutdown(&self) {
        let abandoned = {
            let mut st = self.state.lock();
            st.shutdown = true;
            st.closed = true;
            std::mem::take(&mut st.pending)
        };
        for q in &abandoned {
            self.finish(
                q,
                JobResult {
                    id: q.spec.id.clone(),
                    tenant: q.spec.tenant.clone(),
                    status: JobStatus::Shutdown,
                    energy: f64::NAN,
                    converged: false,
                    iterations: 0,
                    sector_dim: 0,
                    batch_size: 0,
                    restarts: 0,
                    queue_us: self.clock.now_us() - q.submit_us,
                    exec_us: 0.0,
                },
            );
        }
        self.work.notify_all();
    }

    /// Admission control: validate the spec and check its estimated
    /// working set against the memory budget.
    fn admit(&self, spec: &JobSpec) -> Result<(), RejectReason> {
        let n = spec.problem.n_orb();
        if n == 0 || n > 64 {
            return Err(RejectReason::Invalid(format!("{n} orbitals unsupported")));
        }
        if spec.n_alpha > n || spec.n_beta > n {
            return Err(RejectReason::Invalid(format!(
                "{}α/{}β electrons in {n} orbitals",
                spec.n_alpha, spec.n_beta
            )));
        }
        if spec.root > 0 && !spec.may_batch() && spec.solver != SolverKind::SparseSelected {
            return Err(RejectReason::Invalid(
                "excited-state jobs must be batchable Davidson or selected CI".into(),
            ));
        }
        let need = estimated_bytes(spec);
        if need > self.cfg.mem_budget {
            return Err(RejectReason::MemoryBudget {
                need,
                budget: self.cfg.mem_budget,
            });
        }
        Ok(())
    }

    /// One worker: dequeue batches until the queue is closed and dry.
    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if !st.pending.is_empty() {
                        break self.take_batch(&mut st);
                    }
                    if st.closed && st.running == 0 {
                        return;
                    }
                    st = self.work.wait(st);
                }
            };
            self.execute(batch);
            self.state.lock().running -= 1;
            self.work.notify_all();
        }
    }

    /// Pick the next unit of work (queue lock held). See the module docs
    /// for why this is deterministic at any worker count.
    fn take_batch(&self, st: &mut QueueState) -> Vec<Queued> {
        let pick = st
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| {
                (
                    -q.spec.priority,
                    st.tenant_credit.get(&q.spec.tenant).copied().unwrap_or(0),
                    q.seq,
                )
            })
            .map(|(i, _)| i)
            .unwrap_or_else(|| unreachable!());
        let mut batch = vec![st.pending.remove(pick)];
        if self.cfg.batching && batch[0].spec.may_batch() {
            let key = batch[0].spec.batch_hash();
            let mut i = 0;
            while i < st.pending.len() {
                if st.pending[i].spec.may_batch() && st.pending[i].spec.batch_hash() == key {
                    batch.push(st.pending.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for q in &batch {
            *st.tenant_credit.entry(q.spec.tenant.clone()).or_insert(0) += 1;
        }
        if batch.len() > 1 {
            st.batches += 1;
        }
        st.running += 1;
        batch
    }

    /// Run one batch (no locks held).
    fn execute(&self, batch: Vec<Queued>) {
        let start_us = self.clock.now_us();
        for q in &batch {
            self.trace
                .instant(None, "job_start", Category::Other, &[("seq", q.seq as f64)]);
            // Progress marker; replay re-runs started-but-unfinished
            // jobs (resilient ones resume from their own checkpoint).
            if let Err(e) = self.wal_append(&WalRecord::Started {
                id: q.spec.id.clone(),
            }) {
                eprintln!("warning: WAL append (start {}) failed: {e}", q.spec.id);
            }
        }
        let spec0 = &batch[0].spec;
        let (space, ham) = self.artifacts(spec0);
        let sector_dim = space.sector_dim();
        if let Some(m) = self.trace.metrics() {
            m.observe("serve.batch_size", &[], batch.len() as f64);
        }
        if batch.len() > 1 {
            self.trace.instant(
                None,
                "batch_solve",
                Category::Other,
                &[("jobs", batch.len() as f64)],
            );
            self.execute_multiroot(&batch, &space, &ham, sector_dim, start_us);
        } else {
            self.execute_single(&batch[0], &space, &ham, sector_dim, start_us);
        }
    }

    /// Resolve the space and Hamiltonian through the artifact cache,
    /// emitting hit/miss instants.
    fn artifacts(&self, spec: &JobSpec) -> (Arc<DetSpace>, Arc<Hamiltonian>) {
        let phash = spec.problem.content_hash();
        let (ints_art, ints_hit) = self.cache.get_or_build(CacheKey::Ints(phash), || {
            Artifact::Ints(Arc::new(spec.problem.build()))
        });
        self.note_cache(ints_hit);
        let Artifact::Ints(ints) = ints_art else {
            unreachable!()
        };
        let (ham_art, ham_hit) = self.cache.get_or_build(CacheKey::Ham(phash), || {
            Artifact::Ham(Arc::new(Hamiltonian::new(&ints)))
        });
        self.note_cache(ham_hit);
        let Artifact::Ham(ham) = ham_art else {
            unreachable!()
        };
        let (space_art, space_hit) =
            self.cache
                .get_or_build(CacheKey::Space(spec.space_hash()), || {
                    Artifact::Space(Arc::new(build_space(
                        &ham,
                        spec.n_alpha,
                        spec.n_beta,
                        spec.target_irrep,
                        spec.excitation_level,
                    )))
                });
        self.note_cache(space_hit);
        let Artifact::Space(space) = space_art else {
            unreachable!()
        };
        (space, ham)
    }

    fn note_cache(&self, hit: bool) {
        let name = if hit { "cache_hit" } else { "cache_miss" };
        self.trace
            .instant(None, name, Category::Other, &[("count", 1.0)]);
        if let Some(m) = self.trace.metrics() {
            let metric = if hit {
                "serve.cache_hits"
            } else {
                "serve.cache_misses"
            };
            m.counter_incr(metric, &[]);
        }
    }

    /// Per-job solver options, including the per-job trace file.
    fn job_options(&self, spec: &JobSpec) -> fci_core::FciOptions {
        let mut opts = spec.fci_options();
        if let Some(dir) = &self.cfg.job_trace_dir {
            let safe: String = spec
                .id
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            opts.obs = ObsConfig::to_file(dir.join(format!("job-{safe}.trace.jsonl")));
        }
        opts
    }

    fn execute_single(
        &self,
        q: &Queued,
        space: &DetSpace,
        ham: &Hamiltonian,
        sector_dim: usize,
        start_us: f64,
    ) {
        let spec = &q.spec;
        let opts = self.job_options(spec);
        let (status, energy, converged, iterations, restarts) = if spec.solver != SolverKind::Dense
        {
            let so = SparseOptions {
                threads: spec.nproc.max(1),
                max_store: spec.sparse_cap,
                eps: spec.eps,
                tol: spec.tol,
                max_outer: spec.max_iter.max(1),
                nroots: spec.root + 1,
                obs: opts.obs.clone(),
                ..SparseOptions::default()
            };
            let r = solve_sparse(space, ham, spec.solver, &so);
            if spec.root < r.energies.len() {
                (
                    JobStatus::Done,
                    r.energies[spec.root],
                    r.converged,
                    r.iterations,
                    0,
                )
            } else {
                (
                    JobStatus::Failed(format!(
                        "sparse solve produced {} roots, job wants root {}",
                        r.energies.len(),
                        spec.root
                    )),
                    f64::NAN,
                    false,
                    0,
                    0,
                )
            }
        } else if spec.root > 0 {
            // An excited-state job that didn't coalesce still needs the
            // block solver — single-vector schemes only reach root 0.
            if spec.root >= sector_dim {
                (
                    JobStatus::Failed(format!(
                        "root {} outside sector of {sector_dim} determinants",
                        spec.root
                    )),
                    f64::NAN,
                    false,
                    0,
                    0,
                )
            } else {
                let r = solve_roots_prepared(space, ham, &opts, spec.root + 1);
                (
                    JobStatus::Done,
                    r.energies[spec.root],
                    r.converged[spec.root],
                    r.iterations,
                    0,
                )
            }
        } else if spec.resilient {
            let rec =
                RecoveryOptions::for_job(&self.cfg.checkpoint_dir, &spec.id, spec.space_hash());
            match solve_resilient_prepared(space, ham, &opts, &rec) {
                Ok(r) => (
                    JobStatus::Done,
                    r.fci.energy,
                    r.fci.converged,
                    r.fci.iterations,
                    r.restarts,
                ),
                Err(e) => (JobStatus::Failed(e.to_string()), f64::NAN, false, 0, 0),
            }
        } else {
            let r = solve_prepared(space, ham, &opts);
            (JobStatus::Done, r.energy, r.converged, r.iterations, 0)
        };
        let done_us = self.clock.now_us();
        self.note_job(
            q,
            status == JobStatus::Done,
            start_us - q.submit_us,
            done_us - start_us,
        );
        self.finish(
            q,
            JobResult {
                id: spec.id.clone(),
                tenant: spec.tenant.clone(),
                status,
                energy,
                converged,
                iterations,
                sector_dim,
                batch_size: 1,
                restarts,
                queue_us: start_us - q.submit_us,
                exec_us: done_us - start_us,
            },
        );
    }

    fn execute_multiroot(
        &self,
        batch: &[Queued],
        space: &DetSpace,
        ham: &Hamiltonian,
        sector_dim: usize,
        start_us: f64,
    ) {
        // Jobs asking for roots beyond the sector fail; the rest share
        // one block solve sized by the highest surviving root.
        let solvable: Vec<&Queued> = batch.iter().filter(|q| q.spec.root < sector_dim).collect();
        let nroots = solvable.iter().map(|q| q.spec.root + 1).max().unwrap_or(0);
        let roots = if nroots > 0 {
            // Batch members share solver knobs by construction (they
            // agree on `batch_hash`), so the first job's options stand
            // for the whole batch.
            let opts = self.job_options(&solvable[0].spec);
            Some(solve_roots_prepared(space, ham, &opts, nroots))
        } else {
            None
        };
        let done_us = self.clock.now_us();
        for q in batch {
            let spec = &q.spec;
            let (status, energy, converged) = match &roots {
                Some(r) if spec.root < sector_dim => (
                    JobStatus::Done,
                    r.energies[spec.root],
                    r.converged[spec.root],
                ),
                _ => (
                    JobStatus::Failed(format!(
                        "root {} outside sector of {} determinants",
                        spec.root, sector_dim
                    )),
                    f64::NAN,
                    false,
                ),
            };
            self.note_job(
                q,
                status == JobStatus::Done,
                start_us - q.submit_us,
                done_us - start_us,
            );
            self.finish(
                q,
                JobResult {
                    id: spec.id.clone(),
                    tenant: spec.tenant.clone(),
                    status,
                    energy,
                    converged,
                    iterations: roots.as_ref().map_or(0, |r| r.iterations),
                    sector_dim,
                    batch_size: batch.len(),
                    restarts: 0,
                    queue_us: start_us - q.submit_us,
                    exec_us: done_us - start_us,
                },
            );
        }
    }

    fn finish(&self, q: &Queued, result: JobResult) {
        // Exactly-once ordering: the completion record (with its result
        // hash) is durable before the result becomes visible. A crash
        // in between replays as "completed" and never re-runs the job;
        // a crash before it replays as "pending" and re-runs it — the
        // in-memory result it shadowed was never observable.
        if let Err(e) = self.wal_append(&WalRecord::Finished {
            rhash: result.result_hash(),
            result: Box::new(result.clone()),
        }) {
            eprintln!("warning: WAL append (finish {}) failed: {e}", result.id);
        }
        self.results.lock()[q.out] = Some(result);
        self.done.notify_all();
    }

    /// The result of job `id`, if it reached a terminal state.
    pub fn peek_result(&self, id: &str) -> Option<JobResult> {
        self.results
            .lock()
            .iter()
            .flatten()
            .find(|r| r.id == id)
            .cloned()
    }

    /// Block until job `id` has a result or `timeout` elapses. Returns
    /// `None` on timeout (the job may still be queued, running, or
    /// simply unknown).
    pub fn wait_result(&self, id: &str, timeout: std::time::Duration) -> Option<JobResult> {
        let start = self.clock.now_us();
        let budget_us = timeout.as_micros() as f64;
        let mut res = self.results.lock();
        loop {
            if let Some(r) = res.iter().flatten().find(|r| r.id == id) {
                return Some(r.clone());
            }
            let left = budget_us - (self.clock.now_us() - start);
            if left <= 0.0 {
                return None;
            }
            // Chunked waits bound the window of a lost wake-up race.
            let chunk = std::time::Duration::from_micros(left.min(50_000.0) as u64);
            let (guard, _) = self.done.wait_timeout(res, chunk);
            res = guard;
        }
    }

    /// Close the queue and block until every accepted job has finished.
    pub fn drain(&self) {
        self.close();
        let mut st = self.state.lock();
        while !(st.pending.is_empty() && st.running == 0) {
            let (guard, _) = self
                .work
                .wait_timeout(st, std::time::Duration::from_millis(100));
            st = guard;
        }
    }

    /// Queue counters for the `STATUS` verb.
    pub fn stats(&self) -> QueueStats {
        let (pending, running, closed) = {
            let st = self.state.lock();
            (st.pending.len(), st.running, st.closed || st.shutdown)
        };
        let completed = self.results.lock().iter().flatten().count();
        let rejected = self.rejected.lock().len();
        let wal_bytes = self.wal.as_ref().map_or(0, |w| w.lock().len());
        QueueStats {
            pending,
            running,
            completed,
            rejected,
            closed,
            wal_bytes,
        }
    }

    /// Drain the queue with `workers` scoped threads. Blocks until the
    /// queue is closed (or shut down) *and* dry — call [`Server::close`]
    /// first, or from another thread, or this never returns.
    pub fn run(&self, workers: usize) {
        std::thread::scope(|s| {
            for _ in 0..workers.max(1) {
                s.spawn(|| self.worker_loop());
            }
        });
    }

    /// Consume the server and roll up the report.
    pub fn into_report(self) -> ServeReport {
        let cache = self.cache.stats();
        self.trace.instant(
            None,
            "cache_evict",
            Category::Other,
            &[("count", cache.evictions as f64)],
        );
        self.trace.flush();
        let results: Vec<JobResult> = self.results.into_inner().into_iter().flatten().collect();
        let rejected = self.rejected.into_inner();
        let batches = self.state.into_inner().batches;
        let jobs_done = results
            .iter()
            .filter(|r| r.status == JobStatus::Done)
            .count();
        let jobs_failed = results
            .iter()
            .filter(|r| matches!(r.status, JobStatus::Failed(_)))
            .count();
        let jobs_cancelled = results.len() - jobs_done - jobs_failed;
        let mut queue_lat: Vec<f64> = results
            .iter()
            .filter(|r| r.status == JobStatus::Done)
            .map(|r| r.queue_us)
            .collect();
        // Elapsed: submit of the earliest job to completion of the last.
        let elapsed_s = results
            .iter()
            .filter(|r| r.status == JobStatus::Done)
            .map(|r| r.queue_us + r.exec_us)
            .fold(0.0_f64, f64::max)
            / 1e6;
        let summary = ServeSummary {
            jobs_done,
            jobs_failed,
            jobs_cancelled,
            jobs_rejected: rejected.len(),
            batches,
            elapsed_s,
            jobs_per_sec: if elapsed_s > 0.0 {
                jobs_done as f64 / elapsed_s
            } else {
                0.0
            },
            queue_p50_us: percentile(&mut queue_lat, 50.0),
            queue_p90_us: percentile(&mut queue_lat, 90.0),
            queue_max_us: queue_lat.iter().fold(0.0_f64, |a, &b| a.max(b)),
            cache,
        };
        ServeReport {
            results,
            rejected,
            summary,
        }
    }
}

/// Estimated working set of one job in bytes: integrals + coupling
/// matrices + string tables + the diagonalizer's CI matrices.
///
/// Sparse jobs never allocate the dense CI vectors — their footprint is
/// bounded by the `sparse_cap` determinant store, not the formal sector
/// dimension, which is exactly what lets a 10⁸-determinant sector pass
/// admission control that would reject the dense job.
pub fn estimated_bytes(spec: &JobSpec) -> usize {
    let n = spec.problem.n_orb();
    let nsa = binomial(n, spec.n_alpha);
    let nsb = binomial(n, spec.n_beta);
    let ham = 8 * (2 * n * n * n * n + n * n);
    let tables = 8 * (nsa + nsb).saturating_mul(1 + n * n);
    if spec.solver != SolverKind::Dense {
        // Open-addressing store: ≤ 33 bytes/slot at ≤ 70% load plus the
        // selected engine's CSR/subspace overhead — 64 bytes/determinant
        // is a safe ceiling for both engines.
        return ham + tables + spec.sparse_cap.saturating_mul(64);
    }
    let dim = nsa.saturating_mul(nsb);
    // Davidson keeps a bounded subspace of CI/σ vectors; single-vector
    // schemes keep ~4. Use the worst case the spec allows.
    let vectors = dim.saturating_mul(8 * 16);
    ham + tables + vectors
}

/// Submit every job, drain the queue with `cfg.workers` scoped threads,
/// and report. Rejected submissions show up in `report.rejected`.
pub fn serve(cfg: ServeConfig, jobs: Vec<JobSpec>) -> ServeReport {
    serve_with(cfg, jobs, |_| {})
}

/// Like [`serve`], but runs `ctl` on the caller thread while workers
/// drain — the hook for cancellation, late submission, and shutdown
/// tests. The queue closes when `ctl` returns.
pub fn serve_with(cfg: ServeConfig, jobs: Vec<JobSpec>, ctl: impl FnOnce(&Server)) -> ServeReport {
    let workers = cfg.workers.max(1);
    let server = Server::new(cfg);
    for job in jobs {
        // Rejections are recorded in the report; nothing to do here.
        let _ = server.submit(job);
    }
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| server.worker_loop());
        }
        ctl(&server);
        server.close();
    });
    server.into_report()
}
