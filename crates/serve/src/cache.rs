//! Shared-artifact cache: build expensive solver state once, hand the
//! same `Arc` to every job that needs it.
//!
//! Three artifact kinds are cached, each keyed by content hash:
//!
//! * **integrals** ([`MoIntegrals`]) — keyed by the problem recipe;
//! * **Hamiltonians** ([`Hamiltonian`]) — the G/V coupling matrices
//!   derived from the integrals (the `n⁴`-sized build);
//! * **determinant spaces** ([`DetSpace`]) — string tables, singles
//!   tables, and N−1/N−2 intermediate families (the per-sector build).
//!
//! Eviction is cost-aware LRU in the GreedyDual-Size family: each entry
//! carries priority `L + cost/bytes` where `L` is a global "inflation"
//! level that rises to the evicted priority whenever space is reclaimed.
//! Recently used, expensive-to-rebuild, small artifacts survive; stale
//! cheap bulky ones go first. Cost is a *deterministic* rebuild-work
//! estimate (not measured wall time) so cache behavior — and therefore
//! the whole server — is reproducible at any worker count.

use fci_core::{DetSpace, Hamiltonian};
use fci_obs::{TrackedCondvar, TrackedMutex};
use fci_scf::MoIntegrals;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: artifact kind + content hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// MO integral set, keyed by problem content hash.
    Ints(u64),
    /// Hamiltonian coupling matrices, keyed by problem content hash.
    Ham(u64),
    /// Determinant space, keyed by [`crate::JobSpec::space_hash`].
    Space(u64),
}

/// A cached artifact (all immutable once built).
#[derive(Clone)]
pub enum Artifact {
    /// MO integrals.
    Ints(Arc<MoIntegrals>),
    /// Hamiltonian.
    Ham(Arc<Hamiltonian>),
    /// Determinant space.
    Space(Arc<DetSpace>),
}

impl Artifact {
    /// Resident size estimate in bytes (dominant dense payloads only).
    pub fn bytes(&self) -> usize {
        match self {
            Artifact::Ints(mo) => 8 * (mo.h.len() + mo.eri.n_unique()) + mo.orb_sym.len(),
            Artifact::Ham(h) => {
                8 * (h.h.len() + h.eri.n_unique() + h.v.len() + h.g.len()) + h.orb_sym.len()
            }
            Artifact::Space(s) => {
                // Strings + per-string tables; the singles/N−1/N−2 tables
                // all scale with (string count × orbital pairs).
                let nstr = s.alpha.len() + s.beta.len();
                let n = s.alpha.n_orb();
                8 * nstr * (1 + n * n)
            }
        }
    }

    /// Deterministic rebuild-cost estimate (arbitrary work units).
    pub fn cost(&self) -> f64 {
        match self {
            // Integrals are a recipe evaluation: cheap, O(n⁴) values.
            Artifact::Ints(mo) => (mo.n_orb as f64).powi(4),
            // G/V assembly touches n⁴ entries a few times.
            Artifact::Ham(h) => 4.0 * (h.n as f64).powi(4),
            // Table generation walks every (string, excitation) pair.
            Artifact::Space(s) => {
                let nstr = (s.alpha.len() + s.beta.len()) as f64;
                let n = s.alpha.n_orb() as f64;
                8.0 * nstr * n * n
            }
        }
    }
}

/// Monotone hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts rejected because the artifact alone exceeds the budget.
    pub oversize_rejects: u64,
    /// Bytes currently resident.
    pub bytes_used: usize,
}

impl CacheStats {
    /// Hits over lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    art: Artifact,
    bytes: usize,
    /// GreedyDual-Size priority at last touch.
    prio: f64,
    /// Monotone touch sequence — deterministic LRU tie-break.
    seq: u64,
}

struct CacheState {
    map: HashMap<CacheKey, Entry>,
    /// Keys currently being built by some worker; others wait.
    building: Vec<CacheKey>,
    used: usize,
    /// GreedyDual "inflation" level L.
    level: f64,
    seq: u64,
    stats: CacheStats,
}

/// Thread-safe shared-artifact cache with a hard byte budget.
pub struct ArtifactCache {
    budget: usize,
    state: TrackedMutex<CacheState>,
    built: TrackedCondvar,
}

impl ArtifactCache {
    /// Cache bounded by `budget` bytes. A zero budget disables caching
    /// (every lookup is a miss that builds privately) — useful as the
    /// control arm of cache-neutrality tests.
    pub fn new(budget: usize) -> ArtifactCache {
        ArtifactCache {
            budget,
            state: TrackedMutex::new(
                "ArtifactCache.state",
                CacheState {
                    map: HashMap::new(),
                    building: Vec::new(),
                    used: 0,
                    level: 0.0,
                    seq: 0,
                    stats: CacheStats::default(),
                },
            ),
            built: TrackedCondvar::new("ArtifactCache.built"),
        }
    }

    /// Byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Look up `key`, building via `build` on a miss. Returns the
    /// artifact and whether it was a hit. Hits return a clone of the
    /// stored `Arc` — pointer-identical to every other holder.
    ///
    /// The build runs *outside* the cache lock; concurrent requests for
    /// the same key wait on the builder instead of duplicating the work
    /// (and instead of racing to insert divergent copies).
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Artifact,
    ) -> (Artifact, bool) {
        {
            let mut st = self.state.lock();
            loop {
                if st.map.contains_key(&key) {
                    st.stats.hits += 1;
                    let seq = st.seq;
                    st.seq += 1;
                    let level = st.level;
                    let e = st.map.get_mut(&key).unwrap_or_else(|| unreachable!());
                    e.seq = seq;
                    // Touch: refresh the priority against the current L.
                    e.prio = priority(level, &e.art, e.bytes);
                    return (e.art.clone(), true);
                }
                if st.building.contains(&key) {
                    // Someone else is building it; wait for the insert.
                    st = self.built.wait(st);
                    continue;
                }
                st.stats.misses += 1;
                st.building.push(key);
                break;
            }
        }
        let art = build();
        let bytes = art.bytes();
        let mut st = self.state.lock();
        st.building.retain(|k| *k != key);
        if bytes <= self.budget {
            self.make_room(&mut st, bytes);
            let prio = priority(st.level, &art, bytes);
            let seq = st.seq;
            st.seq += 1;
            st.used += bytes;
            st.stats.bytes_used = st.used;
            st.map.insert(
                key,
                Entry {
                    art: art.clone(),
                    bytes,
                    prio,
                    seq,
                },
            );
        } else {
            st.stats.oversize_rejects += 1;
        }
        drop(st);
        self.built.notify_all();
        (art, false)
    }

    /// Evict lowest-priority entries until `incoming` bytes fit.
    fn make_room(&self, st: &mut CacheState, incoming: usize) {
        while st.used + incoming > self.budget {
            // argmin over (priority, insertion seq): deterministic.
            let victim = st
                .map
                .iter()
                .min_by(|a, b| a.1.prio.total_cmp(&b.1.prio).then(a.1.seq.cmp(&b.1.seq)))
                .map(|(k, e)| (*k, e.prio));
            match victim {
                Some((k, prio)) => {
                    let e = st.map.remove(&k).unwrap_or_else(|| unreachable!());
                    st.used -= e.bytes;
                    st.stats.bytes_used = st.used;
                    st.stats.evictions += 1;
                    // GreedyDual: inflate L to the evicted priority so
                    // long-resident entries age relative to new ones.
                    st.level = st.level.max(prio);
                }
                None => break,
            }
        }
    }
}

fn priority(level: f64, art: &Artifact, bytes: usize) -> f64 {
    level + art.cost() / (bytes.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;
    use std::sync::Mutex;

    fn ints_artifact(seed: u64, n_orb: usize) -> Artifact {
        Artifact::Ints(Arc::new(ProblemSpec::Random { n_orb, seed }.build()))
    }

    #[test]
    fn hit_returns_pointer_identical_arc() {
        let cache = ArtifactCache::new(1 << 20);
        let (a, hit_a) = cache.get_or_build(CacheKey::Ints(1), || ints_artifact(1, 4));
        let (b, hit_b) = cache.get_or_build(CacheKey::Ints(1), || ints_artifact(1, 4));
        assert!(!hit_a);
        assert!(hit_b);
        match (a, b) {
            (Artifact::Ints(x), Artifact::Ints(y)) => assert!(Arc::ptr_eq(&x, &y)),
            _ => panic!("wrong artifact kind"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn eviction_respects_budget_property() {
        // Property: after any deterministic pseudo-random access stream,
        // resident bytes never exceed the budget and every lookup is
        // still answered.
        let one = ints_artifact(0, 4).bytes();
        let budget = 3 * one + one / 2; // room for 3 entries, not 4
        let cache = ArtifactCache::new(budget);
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        for step in 0..500u64 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let key = rng % 8; // working set of 8 keys > capacity 3
            let (art, _) = cache.get_or_build(CacheKey::Ints(key), || ints_artifact(key, 4));
            assert!(matches!(art, Artifact::Ints(_)));
            let s = cache.stats();
            assert!(
                s.bytes_used <= budget,
                "step {step}: {} bytes resident over budget {budget}",
                s.bytes_used
            );
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "working set exceeds capacity: must evict");
        assert!(s.hits > 0, "reuse within the working set: must hit");
        assert_eq!(s.hits + s.misses, 500);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = ArtifactCache::new(0);
        let (_, h1) = cache.get_or_build(CacheKey::Ints(7), || ints_artifact(7, 4));
        let (_, h2) = cache.get_or_build(CacheKey::Ints(7), || ints_artifact(7, 4));
        assert!(!h1 && !h2);
        let s = cache.stats();
        assert_eq!(s.bytes_used, 0);
        assert_eq!(s.oversize_rejects, 2);
    }

    #[test]
    fn greedy_dual_keeps_expensive_artifact_over_cheap_ones() {
        // A space artifact is far costlier per byte than integral sets of
        // similar size; under pressure the cheap ones should go first.
        let mo = Arc::new(
            ProblemSpec::Hubbard {
                sites: 4,
                t: 1.0,
                u: 4.0,
                periodic: false,
            }
            .build(),
        );
        let ham = Arc::new(Hamiltonian::new(&mo));
        let space = Arc::new(fci_core::build_space(&ham, 2, 2, 0, None));
        let space_art = Artifact::Space(space);
        let budget = space_art.bytes() + 2 * ints_artifact(0, 4).bytes();
        let cache = ArtifactCache::new(budget);
        cache.get_or_build(CacheKey::Space(99), || space_art.clone());
        for k in 0..6 {
            cache.get_or_build(CacheKey::Ints(k), || ints_artifact(k, 4));
        }
        // The space is still resident: looking it up is a hit.
        let hits_before = cache.stats().hits;
        let (_, hit) = cache.get_or_build(CacheKey::Space(99), || space_art.clone());
        assert!(hit, "high-cost space artifact was evicted by cheap ints");
        assert_eq!(cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn concurrent_same_key_builds_once_and_shares() {
        let cache = Arc::new(ArtifactCache::new(1 << 20));
        let built = Arc::new(Mutex::new(0usize));
        let mut ptrs = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let built = Arc::clone(&built);
                handles.push(s.spawn(move || {
                    let (art, _) = cache.get_or_build(CacheKey::Ints(3), || {
                        *built.lock().unwrap() += 1;
                        ints_artifact(3, 4)
                    });
                    match art {
                        Artifact::Ints(p) => Arc::as_ptr(&p) as usize,
                        _ => 0,
                    }
                }));
            }
            for h in handles {
                ptrs.push(h.join().unwrap());
            }
        });
        assert_eq!(
            *built.lock().unwrap(),
            1,
            "duplicate build under contention"
        );
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
    }
}
