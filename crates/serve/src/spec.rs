//! Job requests: what a tenant asks the server to solve.
//!
//! A [`JobSpec`] names a [`ProblemSpec`] (a deterministic recipe for MO
//! integrals — the server never receives raw tensors over the wire), a
//! spin/symmetry sector, and solver knobs. Every piece of shared state a
//! job needs is identified by a content hash derived from the spec, so
//! two jobs that describe the same integrals or the same determinant
//! space agree on a cache key without ever comparing tensors.

use fci_core::{DiagMethod, FciOptions, SolverKind};
use fci_ddi::{FaultConfig, RankDeath};
use fci_ints::EriTensor;
use fci_linalg::Matrix;
use fci_obs::JsonValue;
use fci_scf::MoIntegrals;

/// Deterministic recipe for a problem's MO integrals.
///
/// Model problems rather than raw tensors keep job requests small,
/// human-writable, and — crucially for the artifact cache — content
/// addressable: the hash of the recipe is the hash of the integrals.
#[derive(Clone, Debug, PartialEq)]
pub enum ProblemSpec {
    /// 1-D Hubbard chain: hopping `t`, on-site repulsion `u`, optionally
    /// periodic. The workhorse of the test fixtures.
    Hubbard {
        /// Number of lattice sites (= orbitals).
        sites: usize,
        /// Hopping amplitude.
        t: f64,
        /// On-site repulsion.
        u: f64,
        /// Wrap the chain into a ring.
        periodic: bool,
    },
    /// Seeded dense random integrals (symmetric `h`, 8-fold symmetric
    /// ERI): cheap distinct-molecule stand-ins for cache-miss testing.
    Random {
        /// Number of orbitals.
        n_orb: usize,
        /// Seed for the integral stream.
        seed: u64,
    },
}

/// FNV-1a, the repo's standard content hash (no external hash crates).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash_mix(h: &mut Vec<u8>, x: u64) {
    h.extend_from_slice(&x.to_le_bytes());
}

impl ProblemSpec {
    /// Content hash of the integrals this recipe produces. Two specs
    /// with the same hash build byte-identical [`MoIntegrals`].
    pub fn content_hash(&self) -> u64 {
        let mut buf = Vec::new();
        match self {
            ProblemSpec::Hubbard {
                sites,
                t,
                u,
                periodic,
            } => {
                hash_mix(&mut buf, 1);
                hash_mix(&mut buf, *sites as u64);
                hash_mix(&mut buf, t.to_bits());
                hash_mix(&mut buf, u.to_bits());
                hash_mix(&mut buf, *periodic as u64);
            }
            ProblemSpec::Random { n_orb, seed } => {
                hash_mix(&mut buf, 2);
                hash_mix(&mut buf, *n_orb as u64);
                hash_mix(&mut buf, *seed);
            }
        }
        fnv1a(&buf)
    }

    /// Number of orbitals the recipe produces.
    pub fn n_orb(&self) -> usize {
        match self {
            ProblemSpec::Hubbard { sites, .. } => *sites,
            ProblemSpec::Random { n_orb, .. } => *n_orb,
        }
    }

    /// Build the MO integrals. Deterministic: same spec → bitwise-same
    /// tensors, on any thread, at any time.
    pub fn build(&self) -> MoIntegrals {
        match self {
            ProblemSpec::Hubbard {
                sites,
                t,
                u,
                periodic,
            } => {
                let n = *sites;
                let mut h = Matrix::zeros(n, n);
                for i in 0..n.saturating_sub(1) {
                    h[(i, i + 1)] = -t;
                    h[(i + 1, i)] = -t;
                }
                if *periodic && n > 2 {
                    h[(0, n - 1)] = -t;
                    h[(n - 1, 0)] = -t;
                }
                let mut eri = EriTensor::zeros(n);
                for i in 0..n {
                    eri.set(i, i, i, i, *u);
                }
                MoIntegrals {
                    n_orb: n,
                    h,
                    eri,
                    e_core: 0.0,
                    orb_sym: vec![0; n],
                    n_irrep: 1,
                }
            }
            ProblemSpec::Random { n_orb, seed } => {
                let n = *n_orb;
                // splitmix64: tiny, seedable, and identical everywhere.
                let mut state = *seed;
                let mut next = move || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z = z ^ (z >> 31);
                    (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                };
                let mut h = Matrix::zeros(n, n);
                for p in 0..n {
                    for q in 0..=p {
                        let v = if p == q { -1.0 + next() } else { 0.1 * next() };
                        h[(p, q)] = v;
                        h[(q, p)] = v;
                    }
                }
                let mut eri = EriTensor::zeros(n);
                // Walk the canonical 8-fold-unique index set only, so the
                // value stream is independent of iteration redundancy.
                for p in 0..n {
                    for q in 0..=p {
                        for r in 0..=p {
                            let s_max = if r == p { q } else { r };
                            for s in 0..=s_max {
                                let diag = p == q && r == s && p == r;
                                let v = if diag {
                                    0.5 + 0.1 * next()
                                } else {
                                    0.05 * next()
                                };
                                eri.set(p, q, r, s, v);
                            }
                        }
                    }
                }
                MoIntegrals {
                    n_orb: n,
                    h,
                    eri,
                    e_core: 0.0,
                    orb_sym: vec![0; n],
                    n_irrep: 1,
                }
            }
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            ProblemSpec::Hubbard {
                sites,
                t,
                u,
                periodic,
            } => JsonValue::obj(vec![
                ("kind", JsonValue::Str("hubbard".into())),
                ("sites", JsonValue::Num(*sites as f64)),
                ("t", JsonValue::Num(*t)),
                ("u", JsonValue::Num(*u)),
                ("periodic", JsonValue::Bool(*periodic)),
            ]),
            ProblemSpec::Random { n_orb, seed } => JsonValue::obj(vec![
                ("kind", JsonValue::Str("random".into())),
                ("n_orb", JsonValue::Num(*n_orb as f64)),
                ("seed", JsonValue::Num(*seed as f64)),
            ]),
        }
    }

    fn from_json(v: &JsonValue) -> Result<ProblemSpec, String> {
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("problem needs a string `kind`")?;
        match kind {
            "hubbard" => Ok(ProblemSpec::Hubbard {
                sites: v.get_f64("sites").ok_or("hubbard needs `sites`")? as usize,
                t: v.get_f64("t").unwrap_or(1.0),
                u: v.get_f64("u").unwrap_or(4.0),
                periodic: matches!(v.get("periodic"), Some(JsonValue::Bool(true))),
            }),
            "random" => Ok(ProblemSpec::Random {
                n_orb: v.get_f64("n_orb").ok_or("random needs `n_orb`")? as usize,
                seed: v.get_f64("seed").unwrap_or(1.0) as u64,
            }),
            other => Err(format!("unknown problem kind `{other}`")),
        }
    }
}

/// One job request.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Unique job id (also the checkpoint namespace for resilient jobs).
    pub id: String,
    /// Tenant the job is billed to; fairness interleaves across tenants.
    pub tenant: String,
    /// Higher runs first (within the fairness discipline).
    pub priority: i64,
    /// Integral recipe.
    pub problem: ProblemSpec,
    /// α electrons.
    pub n_alpha: usize,
    /// β electrons.
    pub n_beta: usize,
    /// Target spatial irrep.
    pub target_irrep: u8,
    /// CI truncation (`None` = full CI).
    pub excitation_level: Option<u32>,
    /// Which eigenstate the tenant wants (0 = ground). Roots above 0
    /// require a batchable Davidson job.
    pub root: usize,
    /// Eigensolver for unbatched execution.
    pub method: DiagMethod,
    /// Engine choice: the dense DGEMM solver or one of the sparse
    /// engines (`fci-sparse`). Sparse jobs are never batched.
    pub solver: SolverKind,
    /// Selection threshold ε for the selected-CI engine (ignored by the
    /// others).
    pub eps: f64,
    /// Determinant-store cap for the sparse engines — the admission
    /// control memory bound (ignored by the dense engine).
    pub sparse_cap: usize,
    /// Virtual MSP count for the solve.
    pub nproc: usize,
    /// σ-evaluation cap.
    pub max_iter: usize,
    /// Residual convergence threshold.
    pub tol: f64,
    /// Allow coalescing with same-space jobs into one multi-root solve.
    pub batchable: bool,
    /// Run through the checkpointed `solve_resilient` path.
    pub resilient: bool,
    /// Attach a seeded fault plan.
    pub fault_seed: Option<u64>,
    /// Permanent rank death (resilient jobs only).
    pub rank_death: Option<RankDeath>,
}

impl JobSpec {
    /// A plain ground-state job with default solver knobs.
    pub fn new(id: impl Into<String>, problem: ProblemSpec, n_alpha: usize, n_beta: usize) -> Self {
        JobSpec {
            id: id.into(),
            tenant: "default".into(),
            priority: 0,
            problem,
            n_alpha,
            n_beta,
            target_irrep: 0,
            excitation_level: None,
            root: 0,
            method: DiagMethod::Davidson,
            solver: SolverKind::Dense,
            eps: 1e-6,
            sparse_cap: 2_000_000,
            nproc: 1,
            max_iter: 60,
            tol: 1e-9,
            batchable: true,
            resilient: false,
            fault_seed: None,
            rank_death: None,
        }
    }

    /// Content hash of the determinant space this job solves in.
    ///
    /// Full-CI spaces depend only on the orbital count, symmetry
    /// labelling, and sector, so C1 jobs over *different* molecules of
    /// the same size share one space. Truncated spaces additionally
    /// depend on the Hamiltonian (the reference determinant is the
    /// lowest-diagonal one), so the problem hash joins the key.
    pub fn space_hash(&self) -> u64 {
        let mo_dependent = self.excitation_level.is_some();
        let mut buf = Vec::new();
        hash_mix(&mut buf, self.problem.n_orb() as u64);
        hash_mix(&mut buf, self.n_alpha as u64);
        hash_mix(&mut buf, self.n_beta as u64);
        hash_mix(&mut buf, self.target_irrep as u64);
        match self.excitation_level {
            None => hash_mix(&mut buf, u64::MAX),
            Some(l) => hash_mix(&mut buf, l as u64),
        }
        // orb_sym/n_irrep come from the recipe; both model families are
        // C1 today, but hash them anyway so symmetry-aware recipes can't
        // alias.
        for &s in &self.problem.build_sym() {
            buf.push(s);
        }
        if mo_dependent {
            hash_mix(&mut buf, self.problem.content_hash());
        }
        fnv1a(&buf)
    }

    /// Hash identifying the batch a job may join: same integrals, same
    /// sector, same solver shape. Jobs agreeing on this key can be
    /// answered by a single block-Davidson multi-root solve.
    pub fn batch_hash(&self) -> u64 {
        let mut buf = Vec::new();
        hash_mix(&mut buf, self.problem.content_hash());
        hash_mix(&mut buf, self.space_hash());
        hash_mix(&mut buf, self.nproc as u64);
        hash_mix(&mut buf, self.max_iter as u64);
        hash_mix(&mut buf, self.tol.to_bits());
        fnv1a(&buf)
    }

    /// Whether the batching coalescer may take this job: it must opt in,
    /// use the subspace method (single-vector schemes have no multi-root
    /// form), and carry no fault plan (fault streams are per-solve, so
    /// sharing one solve would change injection points).
    pub fn may_batch(&self) -> bool {
        self.batchable
            && self.solver == SolverKind::Dense
            && self.method == DiagMethod::Davidson
            && !self.resilient
            && self.fault_seed.is_none()
    }

    /// Solver options for an unbatched run of this job.
    pub fn fci_options(&self) -> FciOptions {
        let mut opts = FciOptions {
            method: self.method,
            solver: self.solver,
            nproc: self.nproc,
            excitation_level: self.excitation_level,
            ..FciOptions::default()
        };
        opts.diag.max_iter = self.max_iter;
        opts.diag.tol = self.tol;
        if let Some(seed) = self.fault_seed {
            let mut fc = FaultConfig::quiet(seed);
            fc.rank_death = self.rank_death;
            opts.fault = Some(fc);
        }
        opts
    }

    /// Serialize to the wire format (one JSONL object).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("tenant", JsonValue::Str(self.tenant.clone())),
            ("priority", JsonValue::Num(self.priority as f64)),
            ("problem", self.problem.to_json()),
            ("na", JsonValue::Num(self.n_alpha as f64)),
            ("nb", JsonValue::Num(self.n_beta as f64)),
            ("irrep", JsonValue::Num(self.target_irrep as f64)),
            ("root", JsonValue::Num(self.root as f64)),
            ("method", JsonValue::Str(method_name(self.method).into())),
            ("solver", JsonValue::Str(self.solver.name().into())),
            ("eps", JsonValue::Num(self.eps)),
            ("sparse_cap", JsonValue::Num(self.sparse_cap as f64)),
            ("nproc", JsonValue::Num(self.nproc as f64)),
            ("max_iter", JsonValue::Num(self.max_iter as f64)),
            ("tol", JsonValue::Num(self.tol)),
            ("batchable", JsonValue::Bool(self.batchable)),
            ("resilient", JsonValue::Bool(self.resilient)),
        ];
        if let Some(l) = self.excitation_level {
            pairs.push(("excitation_level", JsonValue::Num(l as f64)));
        }
        if let Some(s) = self.fault_seed {
            pairs.push(("fault_seed", JsonValue::Num(s as f64)));
        }
        if let Some(rd) = &self.rank_death {
            pairs.push((
                "rank_death",
                JsonValue::obj(vec![
                    ("rank", JsonValue::Num(rd.rank as f64)),
                    ("after_ops", JsonValue::Num(rd.after_ops as f64)),
                ]),
            ));
        }
        JsonValue::obj(pairs)
    }

    /// Parse one JSONL job object.
    pub fn from_json(v: &JsonValue) -> Result<JobSpec, String> {
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or("job needs a string `id`")?
            .to_string();
        let problem = ProblemSpec::from_json(v.get("problem").ok_or("job needs a `problem`")?)?;
        let mut job = JobSpec::new(
            id,
            problem,
            v.get_f64("na").ok_or("job needs `na`")? as usize,
            v.get_f64("nb").ok_or("job needs `nb`")? as usize,
        );
        if let Some(t) = v.get("tenant").and_then(JsonValue::as_str) {
            job.tenant = t.to_string();
        }
        if let Some(p) = v.get_f64("priority") {
            job.priority = p as i64;
        }
        if let Some(i) = v.get_f64("irrep") {
            job.target_irrep = i as u8;
        }
        if let Some(l) = v.get_f64("excitation_level") {
            job.excitation_level = Some(l as u32);
        }
        if let Some(r) = v.get_f64("root") {
            job.root = r as usize;
        }
        if let Some(m) = v.get("method").and_then(JsonValue::as_str) {
            job.method = method_from_name(m)?;
        }
        // Absent on pre-sparse wire/WAL records: default to the dense
        // engine so old logs replay unchanged.
        if let Some(s) = v.get("solver").and_then(JsonValue::as_str) {
            job.solver = SolverKind::from_name(s).ok_or_else(|| format!("unknown solver `{s}`"))?;
        }
        if let Some(e) = v.get_f64("eps") {
            job.eps = e;
        }
        if let Some(c) = v.get_f64("sparse_cap") {
            job.sparse_cap = c as usize;
        }
        if let Some(n) = v.get_f64("nproc") {
            job.nproc = n as usize;
        }
        if let Some(n) = v.get_f64("max_iter") {
            job.max_iter = n as usize;
        }
        if let Some(t) = v.get_f64("tol") {
            job.tol = t;
        }
        if let Some(JsonValue::Bool(b)) = v.get("batchable") {
            job.batchable = *b;
        }
        if let Some(JsonValue::Bool(b)) = v.get("resilient") {
            job.resilient = *b;
        }
        if let Some(s) = v.get_f64("fault_seed") {
            job.fault_seed = Some(s as u64);
        }
        if let Some(rd) = v.get("rank_death") {
            job.rank_death = Some(RankDeath {
                rank: rd.get_f64("rank").ok_or("rank_death needs `rank`")? as usize,
                after_ops: rd
                    .get_f64("after_ops")
                    .ok_or("rank_death needs `after_ops`")? as u64,
            });
        }
        // Selected CI computes excited roots natively; other unbatched
        // paths cannot.
        if job.root > 0 && !job.may_batch() && job.solver != SolverKind::SparseSelected {
            return Err(format!(
                "job `{}` wants root {} but is not batchable-Davidson; excited \
                 states need the multi-root path or the selected-CI engine",
                job.id, job.root
            ));
        }
        Ok(job)
    }
}

impl ProblemSpec {
    /// Orbital irrep labels without building the tensors.
    fn build_sym(&self) -> Vec<u8> {
        vec![0; self.n_orb()]
    }
}

fn method_name(m: DiagMethod) -> &'static str {
    match m {
        DiagMethod::Davidson => "davidson",
        DiagMethod::TwoVector => "two_vector",
        DiagMethod::Olsen => "olsen",
        DiagMethod::OlsenDamped => "olsen_damped",
        DiagMethod::AutoAdjust => "auto",
    }
}

fn method_from_name(s: &str) -> Result<DiagMethod, String> {
    match s {
        "davidson" => Ok(DiagMethod::Davidson),
        "two_vector" => Ok(DiagMethod::TwoVector),
        "olsen" => Ok(DiagMethod::Olsen),
        "olsen_damped" => Ok(DiagMethod::OlsenDamped),
        "auto" | "auto_adjust" => Ok(DiagMethod::AutoAdjust),
        other => Err(format!("unknown diag method `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hubbard4() -> ProblemSpec {
        ProblemSpec::Hubbard {
            sites: 4,
            t: 1.0,
            u: 4.0,
            periodic: false,
        }
    }

    #[test]
    fn problem_hash_separates_recipes() {
        let a = hubbard4();
        let b = ProblemSpec::Hubbard {
            sites: 4,
            t: 1.0,
            u: 4.5,
            periodic: false,
        };
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), hubbard4().content_hash());
    }

    #[test]
    fn build_is_bitwise_deterministic() {
        let spec = ProblemSpec::Random { n_orb: 4, seed: 17 };
        let (a, b) = (spec.build(), spec.build());
        assert_eq!(a.h.as_slice(), b.h.as_slice());
        for p in 0..4 {
            for q in 0..4 {
                for r in 0..4 {
                    for s in 0..4 {
                        assert_eq!(
                            a.eri.get(p, q, r, s).to_bits(),
                            b.eri.get(p, q, r, s).to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn random_eri_has_eightfold_symmetry() {
        let mo = ProblemSpec::Random { n_orb: 3, seed: 5 }.build();
        for p in 0..3 {
            for q in 0..3 {
                for r in 0..3 {
                    for s in 0..3 {
                        let v = mo.eri.get(p, q, r, s);
                        assert_eq!(v, mo.eri.get(q, p, r, s));
                        assert_eq!(v, mo.eri.get(p, q, s, r));
                        assert_eq!(v, mo.eri.get(r, s, p, q));
                    }
                }
            }
        }
    }

    #[test]
    fn space_hash_shared_across_same_size_c1_molecules() {
        // Full-CI spaces depend only on size/sector, not the integrals…
        let a = JobSpec::new("a", hubbard4(), 2, 2);
        let b = JobSpec::new("b", ProblemSpec::Random { n_orb: 4, seed: 9 }, 2, 2);
        assert_eq!(a.space_hash(), b.space_hash());
        // …but truncated spaces pick a reference determinant from the
        // diagonal, so the problem joins the key.
        let mut at = a.clone();
        let mut bt = b.clone();
        at.excitation_level = Some(2);
        bt.excitation_level = Some(2);
        assert_ne!(at.space_hash(), bt.space_hash());
        // And different sectors never share.
        let c = JobSpec::new("c", hubbard4(), 3, 1);
        assert_ne!(a.space_hash(), c.space_hash());
    }

    #[test]
    fn jobspec_json_roundtrip() {
        let mut job = JobSpec::new("j-1", hubbard4(), 2, 2);
        job.tenant = "alice".into();
        job.priority = 3;
        job.root = 1;
        job.fault_seed = None;
        let text = job.to_json().to_string();
        let back = JobSpec::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back.id, "j-1");
        assert_eq!(back.tenant, "alice");
        assert_eq!(back.priority, 3);
        assert_eq!(back.root, 1);
        assert_eq!(back.problem, job.problem);
        assert_eq!(back.batch_hash(), job.batch_hash());
    }

    #[test]
    fn sparse_solver_roundtrips_and_never_batches() {
        let mut job = JobSpec::new("s", hubbard4(), 2, 2);
        job.solver = SolverKind::SparseCdfci;
        job.eps = 3e-5;
        job.sparse_cap = 123_456;
        let back =
            JobSpec::from_json(&JsonValue::parse(&job.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.solver, SolverKind::SparseCdfci);
        assert_eq!(back.eps.to_bits(), job.eps.to_bits());
        assert_eq!(back.sparse_cap, 123_456);
        assert!(!back.may_batch(), "sparse jobs must not coalesce");
        // Pre-sparse records carry no `solver` key: they parse as dense.
        let legacy = JobSpec::new("old", hubbard4(), 2, 2);
        let mut v = legacy.to_json().to_string();
        v = v.replace("\"solver\":\"dense\",", "");
        let old = JobSpec::from_json(&JsonValue::parse(&v).unwrap()).unwrap();
        assert_eq!(old.solver, SolverKind::Dense);
    }

    #[test]
    fn resilient_fault_job_roundtrips_rank_death() {
        let mut job = JobSpec::new("f", hubbard4(), 2, 2);
        job.resilient = true;
        job.fault_seed = Some(11);
        job.rank_death = Some(RankDeath {
            rank: 1,
            after_ops: 300,
        });
        let back =
            JobSpec::from_json(&JsonValue::parse(&job.to_json().to_string()).unwrap()).unwrap();
        assert!(back.resilient);
        assert_eq!(back.fault_seed, Some(11));
        assert_eq!(
            back.rank_death,
            Some(RankDeath {
                rank: 1,
                after_ops: 300
            })
        );
        assert!(!back.may_batch());
    }
}
