//! Per-job results and the server-level summary.

use crate::cache::CacheStats;
use fci_obs::JsonValue;

/// Terminal state of one job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Solved (converged flag inside).
    Done,
    /// The solve errored (message inside).
    Failed(String),
    /// Cancelled while still queued.
    Cancelled,
    /// Still queued when the server was told to shut down.
    Shutdown,
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Shutdown => "shutdown",
        }
    }
}

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Job id (from the spec).
    pub id: String,
    /// Tenant (from the spec).
    pub tenant: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Total energy of the requested root (NaN unless `Done`).
    pub energy: f64,
    /// Whether the solve converged.
    pub converged: bool,
    /// σ evaluations spent on this job's solve.
    pub iterations: usize,
    /// Determinants in the symmetry sector.
    pub sector_dim: usize,
    /// Jobs coalesced into the solve that answered this one (1 = solo).
    pub batch_size: usize,
    /// World rebuilds survived (resilient jobs; 0 otherwise).
    pub restarts: usize,
    /// Host µs spent queued (submit → dequeue).
    pub queue_us: f64,
    /// Host µs spent solving.
    pub exec_us: f64,
}

impl JobResult {
    /// One JSONL line.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("tenant", JsonValue::Str(self.tenant.clone())),
            ("status", JsonValue::Str(self.status.name().into())),
        ];
        if let JobStatus::Failed(msg) = &self.status {
            pairs.push(("error", JsonValue::Str(msg.clone())));
        }
        if self.status == JobStatus::Done {
            pairs.push(("energy", JsonValue::Num(self.energy)));
            pairs.push(("converged", JsonValue::Bool(self.converged)));
            pairs.push(("iterations", JsonValue::Num(self.iterations as f64)));
            pairs.push(("sector_dim", JsonValue::Num(self.sector_dim as f64)));
            pairs.push(("batch_size", JsonValue::Num(self.batch_size as f64)));
            pairs.push(("restarts", JsonValue::Num(self.restarts as f64)));
        }
        pairs.push(("queue_us", JsonValue::Num(self.queue_us)));
        pairs.push(("exec_us", JsonValue::Num(self.exec_us)));
        JsonValue::obj(pairs)
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// Queue is at capacity — retry later (backpressure).
    QueueFull {
        /// Configured capacity.
        capacity: usize,
    },
    /// Estimated working set exceeds the server memory budget.
    MemoryBudget {
        /// Estimated bytes the job needs.
        need: usize,
        /// Configured budget.
        budget: usize,
    },
    /// A job with this id is already queued or running.
    DuplicateId,
    /// The spec failed validation (message inside).
    Invalid(String),
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::MemoryBudget { need, budget } => write!(
                f,
                "estimated working set {need} B exceeds memory budget {budget} B"
            ),
            RejectReason::DuplicateId => write!(f, "duplicate job id"),
            RejectReason::Invalid(msg) => write!(f, "invalid job: {msg}"),
        }
    }
}

/// Server-level rollup of one serve run.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Jobs that finished `Done`.
    pub jobs_done: usize,
    /// Jobs that finished `Failed`.
    pub jobs_failed: usize,
    /// Jobs cancelled or shut down before running.
    pub jobs_cancelled: usize,
    /// Submissions rejected at admission.
    pub jobs_rejected: usize,
    /// Multi-root batch solves executed.
    pub batches: usize,
    /// Host seconds from first submit to last completion.
    pub elapsed_s: f64,
    /// Completed jobs per host second.
    pub jobs_per_sec: f64,
    /// Queue-latency percentiles over completed jobs, host µs.
    pub queue_p50_us: f64,
    /// 90th percentile queue latency, host µs.
    pub queue_p90_us: f64,
    /// Maximum queue latency, host µs.
    pub queue_max_us: f64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

impl ServeSummary {
    /// JSON object for reports and bench artifacts.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("jobs_done", JsonValue::Num(self.jobs_done as f64)),
            ("jobs_failed", JsonValue::Num(self.jobs_failed as f64)),
            ("jobs_cancelled", JsonValue::Num(self.jobs_cancelled as f64)),
            ("jobs_rejected", JsonValue::Num(self.jobs_rejected as f64)),
            ("batches", JsonValue::Num(self.batches as f64)),
            ("elapsed_s", JsonValue::Num(self.elapsed_s)),
            ("jobs_per_sec", JsonValue::Num(self.jobs_per_sec)),
            ("queue_p50_us", JsonValue::Num(self.queue_p50_us)),
            ("queue_p90_us", JsonValue::Num(self.queue_p90_us)),
            ("queue_max_us", JsonValue::Num(self.queue_max_us)),
            ("cache_hits", JsonValue::Num(self.cache.hits as f64)),
            ("cache_misses", JsonValue::Num(self.cache.misses as f64)),
            (
                "cache_evictions",
                JsonValue::Num(self.cache.evictions as f64),
            ),
            ("cache_hit_rate", JsonValue::Num(self.cache.hit_rate())),
        ])
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        format!(
            "serve: {} done, {} failed, {} cancelled, {} rejected | \
             {} batches | {:.3} s, {:.2} jobs/s\n\
             queue latency µs: p50 {:.0}, p90 {:.0}, max {:.0}\n\
             cache: {} hits, {} misses, {} evictions (hit rate {:.0}%)",
            self.jobs_done,
            self.jobs_failed,
            self.jobs_cancelled,
            self.jobs_rejected,
            self.batches,
            self.elapsed_s,
            self.jobs_per_sec,
            self.queue_p50_us,
            self.queue_p90_us,
            self.queue_max_us,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            100.0 * self.cache.hit_rate(),
        )
    }
}

/// Everything a serve run produces.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-job outcomes, in submission order.
    pub results: Vec<JobResult>,
    /// Rejected submissions: (job id, reason), in submission order.
    pub rejected: Vec<(String, RejectReason)>,
    /// Server-level rollup.
    pub summary: ServeSummary,
}

impl ServeReport {
    /// Result for a job id, if it was accepted.
    pub fn result(&self, id: &str) -> Option<&JobResult> {
        self.results.iter().find(|r| r.id == id)
    }
}

/// `p`-th percentile (0–100) of `xs` by nearest-rank; 0 for empty input.
pub fn percentile(xs: &mut [f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut xs, 50.0), 2.0);
        assert_eq!(percentile(&mut xs, 90.0), 4.0);
        assert_eq!(percentile(&mut xs, 100.0), 4.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn summary_json_has_cache_fields() {
        let mut s = ServeSummary::default();
        s.cache.hits = 3;
        s.cache.misses = 1;
        let j = s.to_json();
        assert_eq!(j.get_f64("cache_hits"), Some(3.0));
        assert_eq!(j.get_f64("cache_hit_rate"), Some(0.75));
        assert!(s.render().contains("75%"));
    }
}
