//! Per-job results and the server-level summary.

use crate::cache::CacheStats;
use fci_obs::JsonValue;

/// Terminal state of one job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Solved (converged flag inside).
    Done,
    /// The solve errored (message inside).
    Failed(String),
    /// Cancelled while still queued.
    Cancelled,
    /// Still queued when the server was told to shut down.
    Shutdown,
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Shutdown => "shutdown",
        }
    }

    /// Parse a wire/WAL status name (`error` carries the message for
    /// `failed`).
    fn from_wire(name: &str, error: Option<&str>) -> Result<JobStatus, String> {
        match name {
            "done" => Ok(JobStatus::Done),
            "failed" => Ok(JobStatus::Failed(error.unwrap_or("unknown error").into())),
            "cancelled" => Ok(JobStatus::Cancelled),
            "shutdown" => Ok(JobStatus::Shutdown),
            other => Err(format!("unknown job status `{other}`")),
        }
    }
}

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Job id (from the spec).
    pub id: String,
    /// Tenant (from the spec).
    pub tenant: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Total energy of the requested root (NaN unless `Done`).
    pub energy: f64,
    /// Whether the solve converged.
    pub converged: bool,
    /// σ evaluations spent on this job's solve.
    pub iterations: usize,
    /// Determinants in the symmetry sector.
    pub sector_dim: usize,
    /// Jobs coalesced into the solve that answered this one (1 = solo).
    pub batch_size: usize,
    /// World rebuilds survived (resilient jobs; 0 otherwise).
    pub restarts: usize,
    /// Host µs spent queued (submit → dequeue).
    pub queue_us: f64,
    /// Host µs spent solving.
    pub exec_us: f64,
}

impl JobResult {
    /// One JSONL line.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("tenant", JsonValue::Str(self.tenant.clone())),
            ("status", JsonValue::Str(self.status.name().into())),
        ];
        if let JobStatus::Failed(msg) = &self.status {
            pairs.push(("error", JsonValue::Str(msg.clone())));
        }
        if self.status == JobStatus::Done {
            pairs.push(("energy", JsonValue::Num(self.energy)));
            pairs.push(("converged", JsonValue::Bool(self.converged)));
            pairs.push(("iterations", JsonValue::Num(self.iterations as f64)));
            pairs.push(("sector_dim", JsonValue::Num(self.sector_dim as f64)));
            pairs.push(("batch_size", JsonValue::Num(self.batch_size as f64)));
            pairs.push(("restarts", JsonValue::Num(self.restarts as f64)));
        }
        pairs.push(("queue_us", JsonValue::Num(self.queue_us)));
        pairs.push(("exec_us", JsonValue::Num(self.exec_us)));
        JsonValue::obj(pairs)
    }

    /// FNV-1a hash over the outcome-defining fields (id, status name,
    /// energy bits, convergence, iteration count). The WAL stores this
    /// beside every completion record; replay recomputes it and treats a
    /// mismatch as corruption of the record.
    pub fn result_hash(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(self.id.as_bytes());
        buf.push(0);
        buf.extend_from_slice(self.status.name().as_bytes());
        buf.push(0);
        buf.extend_from_slice(&self.energy.to_bits().to_le_bytes());
        buf.push(self.converged as u8);
        buf.extend_from_slice(&(self.iterations as u64).to_le_bytes());
        crate::spec::fnv1a(&buf)
    }

    /// Full-fidelity JSON for the write-ahead log. Unlike
    /// [`JobResult::to_json`] (the tenant-facing wire line, which omits
    /// solve fields on failure), this always carries every field and
    /// stores the energy as hex bits so replay is bitwise exact even for
    /// NaN sentinels, which plain JSON cannot represent.
    pub fn to_wal_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("tenant", JsonValue::Str(self.tenant.clone())),
            ("status", JsonValue::Str(self.status.name().into())),
        ];
        if let JobStatus::Failed(msg) = &self.status {
            pairs.push(("error", JsonValue::Str(msg.clone())));
        }
        pairs.push((
            "ebits",
            JsonValue::Str(format!("{:016x}", self.energy.to_bits())),
        ));
        pairs.push(("converged", JsonValue::Bool(self.converged)));
        pairs.push(("iterations", JsonValue::Num(self.iterations as f64)));
        pairs.push(("sector_dim", JsonValue::Num(self.sector_dim as f64)));
        pairs.push(("batch_size", JsonValue::Num(self.batch_size as f64)));
        pairs.push(("restarts", JsonValue::Num(self.restarts as f64)));
        pairs.push(("queue_us", JsonValue::Num(self.queue_us)));
        pairs.push(("exec_us", JsonValue::Num(self.exec_us)));
        JsonValue::obj(pairs)
    }

    /// Parse a WAL completion payload written by [`to_wal_json`].
    pub fn from_wal_json(v: &JsonValue) -> Result<JobResult, String> {
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or("result needs `id`")?
            .to_string();
        let status = JobStatus::from_wire(
            v.get("status")
                .and_then(JsonValue::as_str)
                .ok_or("result needs `status`")?,
            v.get("error").and_then(JsonValue::as_str),
        )?;
        let ebits = v
            .get("ebits")
            .and_then(JsonValue::as_str)
            .ok_or("result needs `ebits`")?;
        let energy = f64::from_bits(
            u64::from_str_radix(ebits, 16).map_err(|_| format!("bad `ebits` {ebits:?}"))?,
        );
        Ok(JobResult {
            id,
            tenant: v
                .get("tenant")
                .and_then(JsonValue::as_str)
                .unwrap_or("default")
                .to_string(),
            status,
            energy,
            converged: matches!(v.get("converged"), Some(JsonValue::Bool(true))),
            iterations: v.get_f64("iterations").unwrap_or(0.0) as usize,
            sector_dim: v.get_f64("sector_dim").unwrap_or(0.0) as usize,
            batch_size: v.get_f64("batch_size").unwrap_or(0.0) as usize,
            restarts: v.get_f64("restarts").unwrap_or(0.0) as usize,
            queue_us: v.get_f64("queue_us").unwrap_or(0.0),
            exec_us: v.get_f64("exec_us").unwrap_or(0.0),
        })
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// Queue is at capacity — retry later (backpressure).
    QueueFull {
        /// Configured capacity.
        capacity: usize,
    },
    /// Estimated working set exceeds the server memory budget.
    MemoryBudget {
        /// Estimated bytes the job needs.
        need: usize,
        /// Configured budget.
        budget: usize,
    },
    /// A job with this id is already queued or running.
    DuplicateId,
    /// The spec failed validation (message inside).
    Invalid(String),
    /// The tenant's token bucket is empty (network front-end rate
    /// limiting) — retry after the hinted backoff.
    RateLimited {
        /// Milliseconds until the bucket refills enough for one job.
        retry_after_ms: u64,
    },
    /// The tenant already has its maximum number of unfinished jobs in
    /// flight (network front-end quota).
    InFlight {
        /// Configured per-tenant in-flight ceiling.
        limit: usize,
    },
    /// The connection ceiling was hit (network front-end overload).
    Overloaded {
        /// Configured connection ceiling.
        max_conns: usize,
    },
}

impl RejectReason {
    /// Stable wire code for the network protocol (`reason` field).
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::MemoryBudget { .. } => "memory_budget",
            RejectReason::DuplicateId => "duplicate_id",
            RejectReason::Invalid(_) => "invalid",
            RejectReason::RateLimited { .. } => "rate_limited",
            RejectReason::InFlight { .. } => "inflight_limit",
            RejectReason::Overloaded { .. } => "overloaded",
        }
    }

    /// Backoff hint: `Some(ms)` when a retry after that delay could
    /// succeed (transient overload), `None` when the rejection is
    /// permanent for this spec (validation, duplicate id, memory).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            RejectReason::QueueFull { .. } => Some(250),
            RejectReason::RateLimited { retry_after_ms } => Some((*retry_after_ms).max(1)),
            RejectReason::InFlight { .. } => Some(100),
            RejectReason::Overloaded { .. } => Some(250),
            RejectReason::MemoryBudget { .. }
            | RejectReason::DuplicateId
            | RejectReason::Invalid(_) => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::MemoryBudget { need, budget } => write!(
                f,
                "estimated working set {need} B exceeds memory budget {budget} B"
            ),
            RejectReason::DuplicateId => write!(f, "duplicate job id"),
            RejectReason::Invalid(msg) => write!(f, "invalid job: {msg}"),
            RejectReason::RateLimited { retry_after_ms } => {
                write!(f, "tenant rate limit hit; retry after {retry_after_ms} ms")
            }
            RejectReason::InFlight { limit } => {
                write!(f, "tenant already has {limit} jobs in flight")
            }
            RejectReason::Overloaded { max_conns } => {
                write!(f, "server at its connection ceiling ({max_conns})")
            }
        }
    }
}

/// Server-level rollup of one serve run.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Jobs that finished `Done`.
    pub jobs_done: usize,
    /// Jobs that finished `Failed`.
    pub jobs_failed: usize,
    /// Jobs cancelled or shut down before running.
    pub jobs_cancelled: usize,
    /// Submissions rejected at admission.
    pub jobs_rejected: usize,
    /// Multi-root batch solves executed.
    pub batches: usize,
    /// Host seconds from first submit to last completion.
    pub elapsed_s: f64,
    /// Completed jobs per host second.
    pub jobs_per_sec: f64,
    /// Queue-latency percentiles over completed jobs, host µs.
    pub queue_p50_us: f64,
    /// 90th percentile queue latency, host µs.
    pub queue_p90_us: f64,
    /// Maximum queue latency, host µs.
    pub queue_max_us: f64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

impl ServeSummary {
    /// JSON object for reports and bench artifacts.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("jobs_done", JsonValue::Num(self.jobs_done as f64)),
            ("jobs_failed", JsonValue::Num(self.jobs_failed as f64)),
            ("jobs_cancelled", JsonValue::Num(self.jobs_cancelled as f64)),
            ("jobs_rejected", JsonValue::Num(self.jobs_rejected as f64)),
            ("batches", JsonValue::Num(self.batches as f64)),
            ("elapsed_s", JsonValue::Num(self.elapsed_s)),
            ("jobs_per_sec", JsonValue::Num(self.jobs_per_sec)),
            ("queue_p50_us", JsonValue::Num(self.queue_p50_us)),
            ("queue_p90_us", JsonValue::Num(self.queue_p90_us)),
            ("queue_max_us", JsonValue::Num(self.queue_max_us)),
            ("cache_hits", JsonValue::Num(self.cache.hits as f64)),
            ("cache_misses", JsonValue::Num(self.cache.misses as f64)),
            (
                "cache_evictions",
                JsonValue::Num(self.cache.evictions as f64),
            ),
            ("cache_hit_rate", JsonValue::Num(self.cache.hit_rate())),
        ])
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        format!(
            "serve: {} done, {} failed, {} cancelled, {} rejected | \
             {} batches | {:.3} s, {:.2} jobs/s\n\
             queue latency µs: p50 {:.0}, p90 {:.0}, max {:.0}\n\
             cache: {} hits, {} misses, {} evictions (hit rate {:.0}%)",
            self.jobs_done,
            self.jobs_failed,
            self.jobs_cancelled,
            self.jobs_rejected,
            self.batches,
            self.elapsed_s,
            self.jobs_per_sec,
            self.queue_p50_us,
            self.queue_p90_us,
            self.queue_max_us,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            100.0 * self.cache.hit_rate(),
        )
    }
}

/// Everything a serve run produces.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-job outcomes, in submission order.
    pub results: Vec<JobResult>,
    /// Rejected submissions: (job id, reason), in submission order.
    pub rejected: Vec<(String, RejectReason)>,
    /// Server-level rollup.
    pub summary: ServeSummary,
}

impl ServeReport {
    /// Result for a job id, if it was accepted.
    pub fn result(&self, id: &str) -> Option<&JobResult> {
        self.results.iter().find(|r| r.id == id)
    }
}

/// `p`-th percentile (0–100) of `xs` by nearest-rank; 0 for empty input.
pub fn percentile(xs: &mut [f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut xs, 50.0), 2.0);
        assert_eq!(percentile(&mut xs, 90.0), 4.0);
        assert_eq!(percentile(&mut xs, 100.0), 4.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn wal_json_roundtrip_is_bitwise_even_for_nan() {
        let r = JobResult {
            id: "j".into(),
            tenant: "t".into(),
            status: JobStatus::Failed("solver diverged".into()),
            energy: f64::NAN,
            converged: false,
            iterations: 7,
            sector_dim: 36,
            batch_size: 1,
            restarts: 2,
            queue_us: 12.5,
            exec_us: 99.0,
        };
        let back =
            JobResult::from_wal_json(&JsonValue::parse(&r.to_wal_json().to_string()).unwrap())
                .unwrap();
        assert_eq!(back.energy.to_bits(), r.energy.to_bits());
        assert_eq!(back.status, r.status);
        assert_eq!(back.restarts, 2);
        assert_eq!(back.result_hash(), r.result_hash());
        // The tenant-facing line still omits solve fields on failure.
        assert!(r.to_json().get("energy").is_none());
    }

    #[test]
    fn reject_reasons_carry_backoff_hints_only_when_retryable() {
        assert_eq!(
            RejectReason::RateLimited { retry_after_ms: 40 }.retry_after_ms(),
            Some(40)
        );
        assert!(RejectReason::QueueFull { capacity: 4 }
            .retry_after_ms()
            .is_some());
        assert!(RejectReason::InFlight { limit: 2 }
            .retry_after_ms()
            .is_some());
        assert!(RejectReason::Overloaded { max_conns: 8 }
            .retry_after_ms()
            .is_some());
        assert_eq!(RejectReason::DuplicateId.retry_after_ms(), None);
        assert_eq!(RejectReason::Invalid("x".into()).retry_after_ms(), None);
        assert_eq!(
            RejectReason::RateLimited { retry_after_ms: 40 }.code(),
            "rate_limited"
        );
    }

    #[test]
    fn summary_json_has_cache_fields() {
        let mut s = ServeSummary::default();
        s.cache.hits = 3;
        s.cache.misses = 1;
        let j = s.to_json();
        assert_eq!(j.get_f64("cache_hits"), Some(3.0));
        assert_eq!(j.get_f64("cache_hit_rate"), Some(0.75));
        assert!(s.render().contains("75%"));
    }
}
