//! Write-ahead job log: the durability plane of the server.
//!
//! Every accepted [`JobSpec`] and every later state transition (started,
//! completed/failed/cancelled with a result hash, rejected) is appended
//! to an on-disk log *before* the transition is acknowledged anywhere
//! else. A server killed mid-workload replays the log on startup,
//! re-enqueues every accepted-but-unfinished job, skips jobs whose
//! completion record is present, and compacts the log — the
//! crash-exactly-once contract the durability tests enforce.
//!
//! # Format
//!
//! The framing reuses the `FCIXCKP2` checkpoint machinery's shape
//! (magic + version byte + CRC32, little-endian throughout):
//!
//! ```text
//! header:  "FCIXWAL1"  version:u8
//! record:  len:u32  payload:[u8; len]  crc32(payload):u32
//! ```
//!
//! Payloads are one JSON object each (`{"t":"submit",...}` etc.), so a
//! log is inspectable with `xxd`/`strings` yet every byte is covered by
//! a checksum. Appends go straight to the file descriptor (no user-space
//! buffering), so a `kill -9` can lose at most the record being written,
//! never a record that was acknowledged.
//!
//! # Recovery
//!
//! [`Wal::open`] scans frames until the first damage — truncated tail,
//! flipped payload byte, over-long length field, wrong-version header —
//! and recovers the **longest valid prefix**, truncating the damage away
//! and counting a warning instead of failing the boot. Semantic damage
//! inside valid frames (duplicated records, completion-hash mismatches)
//! is likewise counted and skipped. The recovered state then drives
//! [`crate::server::Server`] startup, and the log is rewritten
//! (tmp + rename) to just the live records.

use crate::result::JobResult;
use crate::spec::JobSpec;
use fci_fault::crc32;
use fci_obs::JsonValue;
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Log file magic; the trailing `1` is the on-disk generation.
const MAGIC: &[u8; 8] = b"FCIXWAL1";
/// Format version written after the magic.
const VERSION: u8 = 1;
/// Header bytes before the first record.
const HEADER: usize = 9;
/// Upper bound on one payload. A `JobSpec` serializes to well under a
/// KiB; a length field above this is a corrupt frame, not a real record.
const MAX_PAYLOAD: u32 = 1 << 20;

/// One logged state transition.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// A job passed admission and entered the queue.
    Submitted {
        /// The accepted spec, in full (replay rebuilds the queue from it).
        spec: Box<JobSpec>,
    },
    /// A job was dispatched to a worker (informational: replay re-runs
    /// started-but-unfinished jobs from their checkpoint or from scratch).
    Started {
        /// Job id.
        id: String,
    },
    /// A job reached a terminal state; `rhash` must equal
    /// `result.result_hash()` or replay discards the record.
    Finished {
        /// The terminal result (done / failed / cancelled / shutdown).
        result: Box<JobResult>,
        /// Integrity tag over the outcome-defining fields.
        rhash: u64,
    },
    /// A submission was refused at admission.
    Rejected {
        /// Job id.
        id: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl WalRecord {
    /// Payload JSON for this record.
    pub fn to_json(&self) -> JsonValue {
        match self {
            WalRecord::Submitted { spec } => JsonValue::obj(vec![
                ("t", JsonValue::Str("submit".into())),
                ("job", spec.to_json()),
            ]),
            WalRecord::Started { id } => JsonValue::obj(vec![
                ("t", JsonValue::Str("start".into())),
                ("id", JsonValue::Str(id.clone())),
            ]),
            WalRecord::Finished { result, rhash } => JsonValue::obj(vec![
                ("t", JsonValue::Str("finish".into())),
                ("result", result.to_wal_json()),
                ("rhash", JsonValue::Str(format!("{rhash:016x}"))),
            ]),
            WalRecord::Rejected { id, reason } => JsonValue::obj(vec![
                ("t", JsonValue::Str("reject".into())),
                ("id", JsonValue::Str(id.clone())),
                ("reason", JsonValue::Str(reason.clone())),
            ]),
        }
    }

    /// Parse a payload written by [`WalRecord::to_json`].
    pub fn from_json(v: &JsonValue) -> Result<WalRecord, String> {
        let t = v
            .get("t")
            .and_then(JsonValue::as_str)
            .ok_or("record needs `t`")?;
        match t {
            "submit" => Ok(WalRecord::Submitted {
                spec: Box::new(JobSpec::from_json(
                    v.get("job").ok_or("submit record needs `job`")?,
                )?),
            }),
            "start" => Ok(WalRecord::Started {
                id: v
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or("start record needs `id`")?
                    .to_string(),
            }),
            "finish" => {
                let result = JobResult::from_wal_json(
                    v.get("result").ok_or("finish record needs `result`")?,
                )?;
                let rhash = v
                    .get("rhash")
                    .and_then(JsonValue::as_str)
                    .ok_or("finish record needs `rhash`")?;
                let rhash =
                    u64::from_str_radix(rhash, 16).map_err(|_| format!("bad `rhash` {rhash:?}"))?;
                Ok(WalRecord::Finished {
                    result: Box::new(result),
                    rhash,
                })
            }
            "reject" => Ok(WalRecord::Rejected {
                id: v
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or("reject record needs `id`")?
                    .to_string(),
                reason: v
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            other => Err(format!("unknown record type `{other}`")),
        }
    }
}

/// What replaying a log recovers.
#[derive(Debug, Default)]
pub struct Replay {
    /// Accepted jobs without a terminal record, in acceptance order —
    /// the server re-enqueues exactly these.
    pub pending: Vec<JobSpec>,
    /// Jobs whose completion record survived; the server pre-fills its
    /// result table so they are never run again.
    pub completed: Vec<JobResult>,
    /// Rejections that were logged (informational; clients were already
    /// told at submit time).
    pub rejected: Vec<(String, String)>,
    /// Counted-not-fatal recoveries: duplicated records, hash
    /// mismatches, tail truncation, header damage.
    pub warnings: Vec<String>,
    /// Valid frames applied.
    pub records: usize,
    /// Bytes cut from the damaged tail (0 for a clean log).
    pub truncated_bytes: u64,
}

impl Replay {
    /// `true` when the log replayed without a single recovery action.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

/// An open write-ahead log (replayed, truncated to its valid prefix,
/// positioned for append).
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
    /// Current valid length in bytes.
    len: u64,
    /// Durability: `true` adds an `fdatasync` per append (survives power
    /// loss, not just process death). Default off — `kill -9` safety
    /// needs only the write to reach the kernel.
    sync: bool,
    /// Crash-injection hook for the durability harness: abort the
    /// process (no unwinding, no drops — a self-inflicted `kill -9`)
    /// the moment the log reaches this byte offset, truncating the
    /// in-flight record if the offset lands inside one.
    kill_at: Option<u64>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("len", &self.len)
            .finish()
    }
}

/// Encode one record as a CRC-framed byte string.
fn frame(rec: &WalRecord) -> Vec<u8> {
    let payload = rec.to_json().to_string().into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Split raw log bytes into `(records, valid_len, tail_warning)`.
///
/// Scanning stops at the first damaged frame; everything before it is
/// the longest valid prefix.
fn scan_frames(bytes: &[u8]) -> (Vec<(WalRecord, u64)>, u64, Option<String>) {
    let mut recs = Vec::new();
    let mut off = HEADER;
    while off < bytes.len() {
        let rest = bytes.len() - off;
        if rest < 8 {
            return (
                recs,
                off as u64,
                Some(format!("truncated frame header at byte {off} ({rest} B)")),
            );
        }
        let mut b4 = [0u8; 4];
        b4.copy_from_slice(&bytes[off..off + 4]);
        let len = u32::from_le_bytes(b4);
        if len > MAX_PAYLOAD || off + 8 + len as usize > bytes.len() {
            return (
                recs,
                off as u64,
                Some(format!(
                    "frame at byte {off} claims {len} B payload with {rest} B left"
                )),
            );
        }
        let payload = &bytes[off + 4..off + 4 + len as usize];
        b4.copy_from_slice(&bytes[off + 4 + len as usize..off + 8 + len as usize]);
        if u32::from_le_bytes(b4) != crc32(payload) {
            return (
                recs,
                off as u64,
                Some(format!("CRC mismatch in frame at byte {off}")),
            );
        }
        let parsed = std::str::from_utf8(payload)
            .map_err(|e| e.to_string())
            .and_then(JsonValue::parse)
            .and_then(|v| WalRecord::from_json(&v));
        match parsed {
            Ok(rec) => {
                off += 8 + len as usize;
                recs.push((rec, off as u64));
            }
            // A checksummed frame that does not parse is damage the CRC
            // cannot see (e.g. written by a newer build): stop here too.
            Err(e) => {
                return (
                    recs,
                    off as u64,
                    Some(format!("unparseable frame at byte {off}: {e}")),
                );
            }
        }
    }
    (recs, bytes.len() as u64, None)
}

/// Fold scanned records into the recovered server state.
fn apply(recs: Vec<(WalRecord, u64)>, replay: &mut Replay) {
    // id → index into replay.pending (live) or None (finished).
    let mut seen: HashMap<String, bool> = HashMap::new(); // id → finished?
    for (rec, _) in recs {
        replay.records += 1;
        match rec {
            WalRecord::Submitted { spec } => match seen.get(spec.id.as_str()) {
                Some(_) => replay
                    .warnings
                    .push(format!("duplicate submit record for job `{}`", spec.id)),
                None => {
                    seen.insert(spec.id.clone(), false);
                    replay.pending.push(*spec);
                }
            },
            WalRecord::Started { id } => {
                // Progress marker only; unknown ids are harmless on a
                // compacted log, dispatch order is rebuilt from scratch.
                let _ = id;
            }
            WalRecord::Finished { result, rhash } => {
                if rhash != result.result_hash() {
                    replay.warnings.push(format!(
                        "completion record for job `{}` fails its result hash; job will re-run",
                        result.id
                    ));
                    continue;
                }
                match seen.get(result.id.as_str()) {
                    Some(true) => {
                        replay.warnings.push(format!(
                            "duplicate completion record for job `{}`",
                            result.id
                        ));
                        continue;
                    }
                    Some(false) => {
                        // Normal life cycle: retire the pending entry.
                        replay.pending.retain(|j| j.id != result.id);
                    }
                    // No submit record: the log was compacted (completed
                    // jobs keep only their finish record). Not a warning.
                    None => {}
                }
                seen.insert(result.id.clone(), true);
                replay.completed.push(*result);
            }
            WalRecord::Rejected { id, reason } => replay.rejected.push((id, reason)),
        }
    }
}

impl Wal {
    /// Open (creating if absent) the log at `path`: replay it, truncate
    /// damage to the longest valid prefix, and return the writer plus
    /// the recovered state.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Wal, Replay)> {
        let path = path.into();
        let mut replay = Replay::default();
        let mut valid_len = HEADER as u64;
        let mut fresh_header = true;
        match std::fs::read(&path) {
            Ok(bytes) => {
                if bytes.len() < HEADER || &bytes[..8] != MAGIC || bytes[8] != VERSION {
                    replay.warnings.push(format!(
                        "log {} has a damaged or wrong-version header; starting a fresh log \
                         (previous contents unrecoverable)",
                        path.display()
                    ));
                    replay.truncated_bytes = bytes.len() as u64;
                } else {
                    fresh_header = false;
                    let (recs, len, tail) = scan_frames(&bytes);
                    valid_len = len;
                    if let Some(warning) = tail {
                        replay.truncated_bytes = bytes.len() as u64 - len;
                        replay.warnings.push(format!(
                            "{warning}; recovered {} valid records, dropped {} damaged tail bytes",
                            recs.len(),
                            replay.truncated_bytes
                        ));
                    }
                    apply(recs, &mut replay);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        if fresh_header {
            file.set_len(0)?;
            write_header(&file)?;
            valid_len = HEADER as u64;
        } else {
            // Cut the damaged tail so appends extend the valid prefix.
            file.set_len(valid_len)?;
        }
        let kill_at = std::env::var("FCIX_WAL_KILL_AT")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        let mut wal = Wal {
            file,
            path,
            len: valid_len,
            sync: false,
            kill_at,
        };
        wal.seek_end()?;
        Ok((wal, replay))
    }

    /// Enable per-append `fdatasync` (power-loss durability).
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Bytes in the valid log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= HEADER as u64
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn seek_end(&mut self) -> io::Result<()> {
        use std::io::Seek;
        self.file.seek(io::SeekFrom::Start(self.len))?;
        Ok(())
    }

    /// Append one record; returns only after the bytes reached the
    /// kernel (and the disk, with [`Wal::set_sync`]). This is the
    /// ordering point the exactly-once property rests on: callers must
    /// not acknowledge a transition before this returns.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let bytes = frame(rec);
        if let Some(kill) = self.kill_at {
            let end = self.len + bytes.len() as u64;
            if end >= kill {
                // Crash-injection: emulate kill -9 at an exact log
                // offset, mid-record when the offset lands inside the
                // frame. abort() runs no destructors and no cleanup.
                let keep = kill.saturating_sub(self.len).min(bytes.len() as u64) as usize;
                let _ = self.file.write_all(&bytes[..keep]);
                let _ = self.file.sync_data();
                std::process::abort();
            }
        }
        self.file.write_all(&bytes)?;
        if self.sync {
            self.file.sync_data()?;
        }
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Rewrite the log to just the live records (tmp + rename): one
    /// submit per still-pending job, one finish per completed job.
    /// Bounds log growth across restarts — terminal records of one
    /// generation never accumulate into the next.
    pub fn compact(&mut self, replay: &Replay) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        {
            let file = std::fs::File::create(&tmp)?;
            write_header(&file)?;
            let mut w = io::BufWriter::new(file);
            for result in &replay.completed {
                let rec = WalRecord::Finished {
                    rhash: result.result_hash(),
                    result: Box::new(result.clone()),
                };
                w.write_all(&frame(&rec))?;
            }
            for spec in &replay.pending {
                let rec = WalRecord::Submitted {
                    spec: Box::new(spec.clone()),
                };
                w.write_all(&frame(&rec))?;
            }
            w.flush()?;
            w.into_inner().map_err(|e| e.into_error())?.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)?;
        self.len = self.file.metadata()?.len();
        self.seek_end()
    }
}

fn write_header(mut file: &std::fs::File) -> io::Result<()> {
    file.write_all(MAGIC)?;
    file.write_all(&[VERSION])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::JobStatus;
    use crate::spec::ProblemSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fcix-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn job(id: &str) -> JobSpec {
        JobSpec::new(
            id,
            ProblemSpec::Hubbard {
                sites: 4,
                t: 1.0,
                u: 4.0,
                periodic: false,
            },
            2,
            2,
        )
    }

    fn done(id: &str, energy: f64) -> JobResult {
        JobResult {
            id: id.into(),
            tenant: "default".into(),
            status: JobStatus::Done,
            energy,
            converged: true,
            iterations: 9,
            sector_dim: 36,
            batch_size: 1,
            restarts: 0,
            queue_us: 1.0,
            exec_us: 2.0,
        }
    }

    fn append_all(path: &Path, recs: &[WalRecord]) {
        let (mut wal, replay) = Wal::open(path).unwrap();
        assert!(replay.is_clean());
        for r in recs {
            wal.append(r).unwrap();
        }
    }

    #[test]
    fn replay_reenqueues_unfinished_and_skips_finished() {
        let path = tmp("basic.wal");
        let _ = std::fs::remove_file(&path);
        let r = done("a", -1.5);
        append_all(
            &path,
            &[
                WalRecord::Submitted {
                    spec: Box::new(job("a")),
                },
                WalRecord::Submitted {
                    spec: Box::new(job("b")),
                },
                WalRecord::Started { id: "a".into() },
                WalRecord::Finished {
                    rhash: r.result_hash(),
                    result: Box::new(r),
                },
                WalRecord::Rejected {
                    id: "z".into(),
                    reason: "queue full".into(),
                },
            ],
        );
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(replay.is_clean(), "{:?}", replay.warnings);
        assert_eq!(replay.records, 5);
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].id, "b");
        assert_eq!(replay.completed.len(), 1);
        assert_eq!(replay.completed[0].id, "a");
        assert_eq!(replay.completed[0].energy, -1.5);
        assert_eq!(replay.rejected, vec![("z".into(), "queue full".into())]);
    }

    #[test]
    fn compaction_drops_dead_records_and_replays_identically() {
        let path = tmp("compact.wal");
        let _ = std::fs::remove_file(&path);
        let r = done("a", -2.25);
        append_all(
            &path,
            &[
                WalRecord::Submitted {
                    spec: Box::new(job("a")),
                },
                WalRecord::Started { id: "a".into() },
                WalRecord::Finished {
                    rhash: r.result_hash(),
                    result: Box::new(r),
                },
                WalRecord::Submitted {
                    spec: Box::new(job("b")),
                },
                WalRecord::Rejected {
                    id: "z".into(),
                    reason: "invalid".into(),
                },
            ],
        );
        let (mut wal, replay) = Wal::open(&path).unwrap();
        let before = wal.len();
        wal.compact(&replay).unwrap();
        assert!(wal.len() < before, "compaction must shrink the log");
        let (_, again) = Wal::open(&path).unwrap();
        assert!(again.is_clean());
        assert_eq!(again.pending.len(), 1);
        assert_eq!(again.pending[0].id, "b");
        assert_eq!(again.completed.len(), 1);
        assert_eq!(
            again.completed[0].energy.to_bits(),
            (-2.25f64).to_bits(),
            "completion survives compaction bitwise"
        );
        // Rejections are dead weight; compaction drops them.
        assert!(again.rejected.is_empty());
    }

    #[test]
    fn appends_after_recovery_extend_the_valid_prefix() {
        let path = tmp("extend.wal");
        let _ = std::fs::remove_file(&path);
        append_all(
            &path,
            &[WalRecord::Submitted {
                spec: Box::new(job("a")),
            }],
        );
        // Damage the tail with half a record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, b'{', b'"']);
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.warnings.len(), 1);
        wal.append(&WalRecord::Submitted {
            spec: Box::new(job("b")),
        })
        .unwrap();
        let (_, again) = Wal::open(&path).unwrap();
        assert!(again.is_clean(), "{:?}", again.warnings);
        assert_eq!(
            again
                .pending
                .iter()
                .map(|j| j.id.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn result_hash_mismatch_reruns_the_job() {
        let path = tmp("rhash.wal");
        let _ = std::fs::remove_file(&path);
        let r = done("a", -1.0);
        append_all(
            &path,
            &[
                WalRecord::Submitted {
                    spec: Box::new(job("a")),
                },
                WalRecord::Finished {
                    rhash: r.result_hash() ^ 1,
                    result: Box::new(r),
                },
            ],
        );
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.warnings.len(), 1);
        assert!(replay.completed.is_empty());
        assert_eq!(replay.pending.len(), 1, "job must re-run");
    }
}
