#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # fci-serve — a multi-tenant job server over the FCI solver
//!
//! The paper's manager/worker task pool (Fig. 3) load-balances *within*
//! one solve. This crate is the level above: many FCI jobs, from many
//! tenants, pushed through the machine as fast as shared state allows.
//!
//! * [`spec`] — job requests: content-addressed problem recipes, spin
//!   sectors, solver knobs, fault plans;
//! * [`cache`] — the shared-artifact cache (integrals, Hamiltonians,
//!   determinant spaces) with cost-aware GreedyDual-Size eviction;
//! * [`server`] — priority queue with per-tenant fairness, admission
//!   control and backpressure, the batching coalescer that turns
//!   same-space jobs into one multi-root solve, and the scoped worker
//!   pool (deterministic at any worker count — see the module docs);
//! * [`result`] — per-job JSONL results and the server [`ServeSummary`];
//! * [`wal`] — the write-ahead job log: accepted jobs and their state
//!   transitions survive `kill -9`, and a restarted server resumes with
//!   crash-exactly-once semantics;
//! * [`net`] — a std-only TCP/JSONL front-end with per-tenant
//!   token-bucket rate limits, in-flight caps, timeouts, and explicit
//!   overload rejects carrying backoff hints.
//!
//! ```
//! use fci_serve::{serve, JobSpec, ProblemSpec, ServeConfig};
//! // Two different "molecules" of the same size: integrals differ, but
//! // the (4 orbital, 2α2β) determinant space is shared through the cache.
//! let a = ProblemSpec::Hubbard { sites: 4, t: 1.0, u: 4.0, periodic: false };
//! let b = ProblemSpec::Hubbard { sites: 4, t: 1.0, u: 2.0, periodic: false };
//! let jobs = vec![JobSpec::new("a", a, 2, 2), JobSpec::new("b", b, 2, 2)];
//! let report = serve(ServeConfig { workers: 2, ..Default::default() }, jobs);
//! assert_eq!(report.summary.jobs_done, 2);
//! assert!(report.summary.cache.hits >= 1); // the shared string tables
//! ```

pub mod cache;
pub mod net;
pub mod result;
pub mod server;
pub mod spec;
pub mod wal;

pub use cache::{Artifact, ArtifactCache, CacheKey, CacheStats};
pub use net::{NetClient, NetConfig, NetServer};
pub use result::{JobResult, JobStatus, RejectReason, ServeReport, ServeSummary};
pub use server::{estimated_bytes, serve, serve_with, QueueStats, ServeConfig, Server};
pub use spec::{fnv1a, JobSpec, ProblemSpec};
pub use wal::{Replay, Wal, WalRecord};
