//! std-only TCP front-end: a line-JSONL protocol over
//! [`std::net::TcpListener`] with per-tenant quotas and backpressure.
//!
//! # Protocol
//!
//! One JSON object per `\n`-terminated line in each direction; requests
//! carry a verb in `"v"`, responses always carry `"ok"`:
//!
//! ```text
//! request  := { "v": verb, ... }                one line
//! verb     := "submit" | "wait" | "result" | "status"
//!           | "cancel" | "metrics" | "drain" | "ping"
//! submit   := { "v":"submit", "job": <JobSpec JSON> }
//! wait     := { "v":"wait", "id": s, "timeout_ms": n }
//! result   := { "v":"result", "id": s }
//! cancel   := { "v":"cancel", "id": s }
//! response := { "ok": true, ... }
//!           | { "ok": false, "reason": code,
//!               "detail": s, ["retry_after_ms": n] }
//! ```
//!
//! A submit `ok` is sent only after the job's acceptance record is in
//! the write-ahead log — the client may crash immediately and the job
//! still completes. On reconnect, resubmitting an accepted id yields a
//! `duplicate_id` reject, which idempotent clients treat as "already
//! accepted" (see [`NetClient::submit_idempotent`]).
//!
//! # Backpressure, not buffering
//!
//! Every overload path answers with an explicit reject carrying a
//! `Retry-After`-style hint instead of queueing without bound:
//!
//! * per-tenant **token bucket** ([`NetConfig::rate_per_s`] /
//!   [`NetConfig::burst`]) → `rate_limited` + exact refill time;
//! * per-tenant **in-flight cap** ([`NetConfig::max_inflight`]) →
//!   `inflight_limit`;
//! * **connection cap** ([`NetConfig::max_conns`]) → `overloaded`,
//!   written once, then the socket closes;
//! * the queue's own capacity → `queue_full` (from admission control);
//! * request lines above [`NetConfig::max_line_bytes`] are refused and
//!   the connection dropped, so a hostile client cannot balloon memory;
//! * reads and writes carry timeouts, so a stalled peer frees its
//!   thread within [`NetConfig::read_timeout_ms`].
//!
//! Rate and in-flight gates sit *in front of* the fair-share queue, so
//! a greedy tenant saturating its bucket cannot starve another tenant's
//! submissions (property-tested in `tests/net.rs`).

use crate::result::RejectReason;
use crate::server::Server;
use crate::spec::JobSpec;
use fci_obs::{JsonValue, Tracer, TrackedMutex};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Front-end tuning. Defaults are safe for loopback tests; production
/// callers should size `max_conns` and the tenant quotas deliberately.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Per-connection read timeout; a silent peer is disconnected.
    pub read_timeout_ms: u64,
    /// Per-connection write timeout; a non-draining peer is disconnected.
    pub write_timeout_ms: u64,
    /// Concurrent connections; beyond this, accepts get `overloaded`.
    pub max_conns: usize,
    /// Token-bucket refill per tenant in submissions/second
    /// (`<= 0` disables rate limiting).
    pub rate_per_s: f64,
    /// Token-bucket capacity (burst size).
    pub burst: f64,
    /// Outstanding (accepted, unfinished) jobs per tenant
    /// (`0` disables the cap).
    pub max_inflight: usize,
    /// Longest request line accepted, in bytes.
    pub max_line_bytes: usize,
    /// Ceiling on a `wait` verb's `timeout_ms`.
    pub max_wait_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".into(),
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            max_conns: 64,
            rate_per_s: 0.0,
            burst: 8.0,
            max_inflight: 0,
            max_line_bytes: 1 << 20,
            max_wait_ms: 120_000,
        }
    }
}

/// Per-tenant admission gate: token bucket + outstanding-job ledger.
struct TenantGate {
    tokens: f64,
    last_us: f64,
    outstanding: Vec<String>,
}

/// The TCP front-end. [`NetServer::bind`], then [`NetServer::run`] on a
/// thread of its own (worker threads drain the queue separately).
pub struct NetServer {
    server: Arc<Server>,
    cfg: NetConfig,
    listener: TcpListener,
    /// Host-time source for the token buckets (repo wall-clock rule).
    clock: Tracer,
    stop: AtomicBool,
    conns: AtomicUsize,
    tenants: TrackedMutex<HashMap<String, TenantGate>>,
}

impl NetServer {
    /// Bind the listener (non-blocking accept loop; `run` polls it).
    pub fn bind(server: Arc<Server>, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            server,
            cfg,
            listener,
            clock: Tracer::in_memory(),
            stop: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            tenants: TrackedMutex::new("NetServer.tenants", HashMap::new()),
        })
    }

    /// The bound address (the real port when `addr` ended in `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Ask the accept loop to exit. Idempotent; also triggered by a
    /// client `drain`.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// `true` once [`NetServer::stop`] was called (or `drain` arrived).
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Accept and serve connections until [`NetServer::stop`]. Each
    /// connection gets a scoped thread; the call returns once every
    /// live connection has wound down (bounded by the read timeout).
    pub fn run(&self) {
        std::thread::scope(|s| {
            while !self.stopped() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.conns.load(Ordering::SeqCst) >= self.cfg.max_conns {
                            self.refuse_overloaded(stream);
                            continue;
                        }
                        self.conns.fetch_add(1, Ordering::SeqCst);
                        s.spawn(move || {
                            self.handle(stream);
                            self.conns.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        eprintln!("warning: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            }
        });
    }

    /// Connection-cap overload: one explicit reject, then close.
    fn refuse_overloaded(&self, mut stream: TcpStream) {
        let why = RejectReason::Overloaded {
            max_conns: self.cfg.max_conns,
        };
        let _ = stream.set_write_timeout(Some(Duration::from_millis(self.cfg.write_timeout_ms)));
        let _ = write_line(&mut stream, &reject_json(None, &why));
        self.note_reject(why.code());
    }

    fn note_verb(&self, verb: &str) {
        if let Some(m) = self.server.metrics() {
            m.counter_incr("net.requests", &[("verb", verb)]);
        }
    }

    fn note_reject(&self, code: &str) {
        if let Some(m) = self.server.metrics() {
            m.counter_incr("net.rejects", &[("reason", code)]);
        }
    }

    /// Serve one connection until EOF, error, timeout, or `drain`.
    fn handle(&self, stream: TcpStream) {
        // Reads poll in short chunks so a `stop`/`drain` tears idle
        // connections down promptly; the configured timeout is the
        // cumulative idle budget per request line.
        let chunk_ms = self.cfg.read_timeout_ms.clamp(10, 500);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(chunk_ms)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(self.cfg.write_timeout_ms)));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut out = stream;
        let cap = self.cfg.max_line_bytes;
        loop {
            let mut line = Vec::new();
            let mut idle_ms = 0u64;
            let mut eof = false;
            loop {
                if line.len() > cap {
                    let _ = write_line(
                        &mut out,
                        &error_json(
                            "line_too_long",
                            &format!("request exceeds {cap} bytes"),
                            None,
                        ),
                    );
                    return;
                }
                // `take` bounds what one line can buffer: a peer cannot
                // make this thread allocate more than `cap` bytes.
                let room = (cap + 1 - line.len()) as u64;
                match (&mut reader).take(room).read_until(b'\n', &mut line) {
                    Ok(0) if line.is_empty() => return, // EOF between requests
                    Ok(0) => {
                        eof = true; // EOF mid-line: serve it, then hang up
                        break;
                    }
                    Ok(_) if line.last() == Some(&b'\n') => break,
                    Ok(_) => {} // hit the cap boundary; loop re-checks it
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        idle_ms += chunk_ms;
                        if self.stopped() || idle_ms >= self.cfg.read_timeout_ms {
                            return;
                        }
                    }
                    Err(_) => return, // hard I/O error
                }
            }
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let req = match JsonValue::parse(text) {
                Ok(v) => v,
                Err(e) => {
                    if write_line(&mut out, &error_json("bad_json", &e, None)).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let verb = req
                .get("v")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string();
            let resp = self.dispatch(&verb, &req);
            if write_line(&mut out, &resp).is_err() {
                return;
            }
            if verb == "drain" || eof {
                return;
            }
        }
    }

    fn dispatch(&self, verb: &str, req: &JsonValue) -> JsonValue {
        self.note_verb(if verb.is_empty() { "unknown" } else { verb });
        match verb {
            "ping" => JsonValue::obj(vec![("ok", JsonValue::Bool(true))]),
            "submit" => self.do_submit(req),
            "wait" => self.do_wait(req),
            "result" => self.do_result(req),
            "status" => self.do_status(),
            "cancel" => self.do_cancel(req),
            "metrics" => self.do_metrics(),
            "drain" => self.do_drain(),
            other => error_json("unknown_verb", &format!("no verb `{other}`"), None),
        }
    }

    /// The tenant gate: refill + charge the token bucket, enforce the
    /// in-flight cap. Runs before the queue ever sees the job.
    fn gate(&self, tenant: &str) -> Result<(), RejectReason> {
        let now = self.clock.now_us();
        let mut map = self.tenants.lock();
        let burst = self.cfg.burst.max(1.0);
        let g = map.entry(tenant.to_string()).or_insert_with(|| TenantGate {
            tokens: burst,
            last_us: now,
            outstanding: Vec::new(),
        });
        if self.cfg.rate_per_s > 0.0 {
            let dt = ((now - g.last_us) / 1e6).max(0.0);
            g.tokens = (g.tokens + dt * self.cfg.rate_per_s).min(burst);
            g.last_us = now;
            if g.tokens < 1.0 {
                let retry_after_ms =
                    (((1.0 - g.tokens) / self.cfg.rate_per_s) * 1000.0).ceil() as u64;
                return Err(RejectReason::RateLimited {
                    retry_after_ms: retry_after_ms.max(1),
                });
            }
        }
        if self.cfg.max_inflight > 0 {
            // Lazy sweep: an id leaves the ledger once it has a result.
            let server = &self.server;
            g.outstanding.retain(|id| server.peek_result(id).is_none());
            if g.outstanding.len() >= self.cfg.max_inflight {
                return Err(RejectReason::InFlight {
                    limit: self.cfg.max_inflight,
                });
            }
        }
        if self.cfg.rate_per_s > 0.0 {
            g.tokens -= 1.0;
        }
        Ok(())
    }

    fn do_submit(&self, req: &JsonValue) -> JsonValue {
        let spec = match req.get("job").ok_or("submit needs `job`".to_string()) {
            Ok(j) => match JobSpec::from_json(j) {
                Ok(s) => s,
                Err(e) => return error_json("invalid", &e, None),
            },
            Err(e) => return error_json("invalid", &e, None),
        };
        let id = spec.id.clone();
        if let Err(why) = self.gate(&spec.tenant) {
            self.note_reject(why.code());
            return reject_json(Some(&id), &why);
        }
        let tenant = spec.tenant.clone();
        match self.server.submit(spec) {
            Ok(()) => {
                if self.cfg.max_inflight > 0 {
                    self.tenants
                        .lock()
                        .entry(tenant)
                        .and_modify(|g| g.outstanding.push(id.clone()));
                }
                JsonValue::obj(vec![
                    ("ok", JsonValue::Bool(true)),
                    ("id", JsonValue::Str(id)),
                ])
            }
            Err(why) => {
                self.note_reject(why.code());
                reject_json(Some(&id), &why)
            }
        }
    }

    fn do_wait(&self, req: &JsonValue) -> JsonValue {
        let Some(id) = req.get("id").and_then(JsonValue::as_str) else {
            return error_json("invalid", "wait needs `id`", None);
        };
        let timeout_ms = req
            .get_f64("timeout_ms")
            .map(|x| x.max(0.0) as u64)
            .unwrap_or(self.cfg.max_wait_ms)
            .min(self.cfg.max_wait_ms);
        match self
            .server
            .wait_result(id, Duration::from_millis(timeout_ms))
        {
            Some(r) => JsonValue::obj(vec![("ok", JsonValue::Bool(true)), ("result", r.to_json())]),
            None => error_json(
                "timeout",
                &format!("job `{id}` has no result after {timeout_ms} ms"),
                Some(timeout_ms.max(1)),
            ),
        }
    }

    fn do_result(&self, req: &JsonValue) -> JsonValue {
        let Some(id) = req.get("id").and_then(JsonValue::as_str) else {
            return error_json("invalid", "result needs `id`", None);
        };
        match self.server.peek_result(id) {
            Some(r) => JsonValue::obj(vec![("ok", JsonValue::Bool(true)), ("result", r.to_json())]),
            None => error_json("pending", &format!("job `{id}` has no result yet"), None),
        }
    }

    fn do_status(&self) -> JsonValue {
        let st = self.server.stats();
        JsonValue::obj(vec![
            ("ok", JsonValue::Bool(true)),
            ("pending", JsonValue::Num(st.pending as f64)),
            ("running", JsonValue::Num(st.running as f64)),
            ("completed", JsonValue::Num(st.completed as f64)),
            ("rejected", JsonValue::Num(st.rejected as f64)),
            ("closed", JsonValue::Bool(st.closed)),
            ("wal_bytes", JsonValue::Num(st.wal_bytes as f64)),
            (
                "connections",
                JsonValue::Num(self.conns.load(Ordering::SeqCst) as f64),
            ),
        ])
    }

    fn do_cancel(&self, req: &JsonValue) -> JsonValue {
        let Some(id) = req.get("id").and_then(JsonValue::as_str) else {
            return error_json("invalid", "cancel needs `id`", None);
        };
        if self.server.cancel(id) {
            JsonValue::obj(vec![("ok", JsonValue::Bool(true))])
        } else {
            error_json(
                "not_cancellable",
                &format!("job `{id}` is not queued (running, finished, or unknown)"),
                None,
            )
        }
    }

    fn do_metrics(&self) -> JsonValue {
        match self.server.metrics() {
            Some(m) => JsonValue::obj(vec![
                ("ok", JsonValue::Bool(true)),
                ("text", JsonValue::Str(m.render_text())),
            ]),
            None => error_json(
                "no_metrics",
                "server has no metrics registry attached",
                None,
            ),
        }
    }

    fn do_drain(&self) -> JsonValue {
        // Close the queue, run it dry, then stop the accept loop: the
        // response is written only after every accepted job finished.
        self.server.drain();
        self.stop();
        let st = self.server.stats();
        JsonValue::obj(vec![
            ("ok", JsonValue::Bool(true)),
            ("completed", JsonValue::Num(st.completed as f64)),
            ("rejected", JsonValue::Num(st.rejected as f64)),
        ])
    }
}

/// Serialize one response line (`\n`-terminated, flushed).
fn write_line(out: &mut TcpStream, v: &JsonValue) -> io::Result<()> {
    let mut text = v.to_string();
    text.push('\n');
    out.write_all(text.as_bytes())?;
    out.flush()
}

/// A generic failure response.
fn error_json(code: &str, detail: &str, retry_after_ms: Option<u64>) -> JsonValue {
    let mut pairs = vec![
        ("ok", JsonValue::Bool(false)),
        ("reason", JsonValue::Str(code.into())),
        ("detail", JsonValue::Str(detail.into())),
    ];
    if let Some(ms) = retry_after_ms {
        pairs.push(("retry_after_ms", JsonValue::Num(ms as f64)));
    }
    JsonValue::obj(pairs)
}

/// A failure response from a [`RejectReason`], with its backoff hint.
fn reject_json(id: Option<&str>, why: &RejectReason) -> JsonValue {
    let mut pairs = vec![
        ("ok", JsonValue::Bool(false)),
        ("reason", JsonValue::Str(why.code().into())),
        ("detail", JsonValue::Str(why.to_string())),
    ];
    if let Some(id) = id {
        pairs.insert(1, ("id", JsonValue::Str(id.into())));
    }
    if let Some(ms) = why.retry_after_ms() {
        pairs.push(("retry_after_ms", JsonValue::Num(ms as f64)));
    }
    JsonValue::obj(pairs)
}

/// A small blocking client for the line-JSONL protocol — what the
/// `fcix-served --client` mode and the CI smoke test drive.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    out: TcpStream,
}

impl NetClient {
    /// Connect with symmetric read/write timeouts.
    pub fn connect(addr: &str, timeout_ms: u64) -> io::Result<NetClient> {
        let out = TcpStream::connect(addr)?;
        out.set_read_timeout(Some(Duration::from_millis(timeout_ms)))?;
        out.set_write_timeout(Some(Duration::from_millis(timeout_ms)))?;
        let reader = BufReader::new(out.try_clone()?);
        Ok(NetClient { reader, out })
    }

    /// One request/response round trip.
    pub fn request(&mut self, req: &JsonValue) -> io::Result<JsonValue> {
        let mut text = req.to_string();
        text.push('\n');
        self.out.write_all(text.as_bytes())?;
        self.out.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        JsonValue::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Submit a job; the response carries `ok` or a reject.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<JsonValue> {
        self.request(&JsonValue::obj(vec![
            ("v", JsonValue::Str("submit".into())),
            ("job", spec.to_json()),
        ]))
    }

    /// Submit treating a `duplicate_id` reject as success — the
    /// at-least-once client loop: after a reconnect, a duplicate means
    /// the previous attempt's acceptance record survived the crash.
    pub fn submit_idempotent(&mut self, spec: &JobSpec) -> io::Result<bool> {
        let resp = self.submit(spec)?;
        let ok = resp.get("ok") == Some(&JsonValue::Bool(true));
        let dup = resp.get("reason").and_then(JsonValue::as_str) == Some("duplicate_id");
        Ok(ok || dup)
    }

    /// Block server-side until `id` has a result or `timeout_ms` passes.
    pub fn wait(&mut self, id: &str, timeout_ms: u64) -> io::Result<JsonValue> {
        self.request(&JsonValue::obj(vec![
            ("v", JsonValue::Str("wait".into())),
            ("id", JsonValue::Str(id.into())),
            ("timeout_ms", JsonValue::Num(timeout_ms as f64)),
        ]))
    }

    /// Non-blocking result fetch.
    pub fn result(&mut self, id: &str) -> io::Result<JsonValue> {
        self.request(&JsonValue::obj(vec![
            ("v", JsonValue::Str("result".into())),
            ("id", JsonValue::Str(id.into())),
        ]))
    }

    /// Queue counters.
    pub fn status(&mut self) -> io::Result<JsonValue> {
        self.request(&JsonValue::obj(vec![(
            "v",
            JsonValue::Str("status".into()),
        )]))
    }

    /// Cancel a queued job.
    pub fn cancel(&mut self, id: &str) -> io::Result<JsonValue> {
        self.request(&JsonValue::obj(vec![
            ("v", JsonValue::Str("cancel".into())),
            ("id", JsonValue::Str(id.into())),
        ]))
    }

    /// The Prometheus-shaped metrics exposition, if the server has one.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        let resp = self.request(&JsonValue::obj(vec![(
            "v",
            JsonValue::Str("metrics".into()),
        )]))?;
        Ok(resp
            .get("text")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string())
    }

    /// Drain the server: every accepted job completes, then it stops.
    pub fn drain(&mut self) -> io::Result<JsonValue> {
        self.request(&JsonValue::obj(vec![("v", JsonValue::Str("drain".into()))]))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<bool> {
        let resp = self.request(&JsonValue::obj(vec![("v", JsonValue::Str("ping".into()))]))?;
        Ok(resp.get("ok") == Some(&JsonValue::Bool(true)))
    }
}
