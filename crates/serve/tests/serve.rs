//! End-to-end server tests: determinism across worker counts, batching,
//! fairness, admission control, cancellation, cache neutrality, and the
//! resilient fault path.

use fci_ddi::RankDeath;
use fci_serve::{serve, serve_with, JobSpec, JobStatus, ProblemSpec, RejectReason, ServeConfig};

fn hubbard(sites: usize, u: f64) -> ProblemSpec {
    ProblemSpec::Hubbard {
        sites,
        t: 1.0,
        u,
        periodic: false,
    }
}

/// The ISSUE's mixed workload: 6+ jobs over several spaces, two tenants,
/// excited states, a truncated-CI job, and one resilient fault job.
fn mixed_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    let mut a0 = JobSpec::new("a0", hubbard(4, 4.0), 2, 2);
    a0.tenant = "alice".into();
    let mut a1 = JobSpec::new("a1", hubbard(4, 4.0), 2, 2);
    a1.tenant = "alice".into();
    a1.root = 1;
    let mut b0 = JobSpec::new("b0", hubbard(4, 2.0), 2, 2);
    b0.tenant = "bob".into();
    let mut b1 = JobSpec::new("b1", hubbard(6, 4.0), 3, 3);
    b1.tenant = "bob".into();
    b1.max_iter = 80;
    let mut c0 = JobSpec::new("c0", ProblemSpec::Random { n_orb: 5, seed: 7 }, 2, 2);
    c0.tenant = "alice".into();
    c0.excitation_level = Some(2);
    c0.batchable = false;
    let mut f0 = JobSpec::new("f0", hubbard(4, 4.0), 2, 2);
    f0.tenant = "bob".into();
    f0.resilient = true;
    f0.fault_seed = Some(11);
    f0.nproc = 2;
    f0.rank_death = Some(RankDeath {
        rank: 1,
        after_ops: 400,
    });
    jobs.extend([a0, a1, b0, b1, c0, f0]);
    jobs
}

/// Per-(test, worker-count) checkpoint dir, wiped up front: a stale
/// checkpoint from an earlier run would let a resilient job resume a
/// converged vector and skip the very fault it is meant to survive.
fn cfg(tag: &str, workers: usize) -> ServeConfig {
    let dir = std::env::temp_dir().join(format!("fci-serve-test-{tag}-{workers}"));
    let _ = std::fs::remove_dir_all(&dir);
    ServeConfig {
        workers,
        checkpoint_dir: dir,
        ..Default::default()
    }
}

#[test]
fn mixed_workload_bitwise_identical_across_worker_counts() {
    let runs: Vec<Vec<(String, u64)>> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            let report = serve(cfg("det", t), mixed_jobs());
            assert_eq!(report.summary.jobs_done, 6, "T={t}: all jobs must finish");
            assert_eq!(report.summary.jobs_failed, 0);
            let mut e: Vec<(String, u64)> = report
                .results
                .iter()
                .map(|r| (r.id.clone(), r.energy.to_bits()))
                .collect();
            e.sort();
            e
        })
        .collect();
    assert_eq!(runs[0], runs[1], "T=1 vs T=2 energies differ");
    assert_eq!(runs[0], runs[2], "T=1 vs T=4 energies differ");
}

#[test]
fn batching_coalesces_same_space_jobs_and_matches_solo_solves() {
    // Three tenants ask for roots 0, 1, 2 of the same problem.
    let mut jobs = Vec::new();
    for root in 0..3usize {
        let mut j = JobSpec::new(format!("r{root}"), hubbard(4, 4.0), 2, 2);
        j.root = root;
        jobs.push(j);
    }
    let report = serve(cfg("batch", 2), jobs.clone());
    assert_eq!(report.summary.jobs_done, 3);
    assert_eq!(report.summary.batches, 1, "three jobs, one block solve");
    for r in &report.results {
        assert_eq!(r.batch_size, 3);
        assert!(r.converged);
    }
    // Energies must match the unbatched path to tight tolerance.
    let solo = serve(
        ServeConfig {
            batching: false,
            ..cfg("batch", 1)
        },
        jobs,
    );
    assert_eq!(solo.summary.batches, 0);
    for (id, want) in [("r0", &solo), ("r1", &solo), ("r2", &solo)]
        .iter()
        .map(|(id, rep)| (*id, rep.result(id).unwrap().energy))
    {
        let got = report.result(id).unwrap().energy;
        assert!(
            (got - want).abs() < 1e-8,
            "{id}: batched {got} vs solo {want}"
        );
    }
    // Ordering sanity: E0 ≤ E1 ≤ E2.
    let e: Vec<f64> = (0..3)
        .map(|r| report.result(&format!("r{r}")).unwrap().energy)
        .collect();
    assert!(e[0] <= e[1] && e[1] <= e[2]);
}

#[test]
fn cache_on_off_energies_bitwise_identical() {
    let with_cache = serve(cfg("cache-on", 2), mixed_jobs());
    let without = serve(
        ServeConfig {
            cache_budget: 0,
            ..cfg("cache-off", 2)
        },
        mixed_jobs(),
    );
    assert!(
        with_cache.summary.cache.hits > 0,
        "workload must share artifacts"
    );
    assert_eq!(without.summary.cache.hits, 0);
    for r in &with_cache.results {
        let other = without.result(&r.id).unwrap();
        assert_eq!(
            r.energy.to_bits(),
            other.energy.to_bits(),
            "job {}: cache changed the answer",
            r.id
        );
    }
}

#[test]
fn tenant_fairness_interleaves_a_flood() {
    // alice floods 4 jobs, bob submits 2 late; credits force alternation
    // so bob's first job runs second, not fifth. With one worker the
    // dispatch order is exactly the credit-fair order, observable
    // through queue latencies.
    let mut jobs = Vec::new();
    for i in 0..4 {
        let mut j = JobSpec::new(format!("alice-{i}"), hubbard(4, 4.0 + i as f64), 2, 2);
        j.tenant = "alice".into();
        j.batchable = false;
        jobs.push(j);
    }
    for i in 0..2 {
        let mut j = JobSpec::new(format!("bob-{i}"), hubbard(4, 10.0 + i as f64), 2, 2);
        j.tenant = "bob".into();
        j.batchable = false;
        jobs.push(j);
    }
    let report = serve(cfg("fair", 1), jobs);
    assert_eq!(report.summary.jobs_done, 6);
    let lat = |id: &str| report.result(id).unwrap().queue_us;
    // bob-0 must start before alice's second job (fair share), and both
    // of bob's before alice's fourth.
    assert!(lat("bob-0") < lat("alice-1"), "fairness: flood starves bob");
    assert!(lat("bob-1") < lat("alice-3"));
}

#[test]
fn priority_beats_fifo() {
    let mut low = JobSpec::new("low", hubbard(4, 4.0), 2, 2);
    low.batchable = false;
    let mut high = JobSpec::new("high", hubbard(4, 8.0), 2, 2);
    high.priority = 5;
    high.batchable = false;
    let report = serve(cfg("prio", 1), vec![low, high]);
    assert!(
        report.result("high").unwrap().queue_us < report.result("low").unwrap().queue_us,
        "priority 5 should dispatch before priority 0"
    );
}

#[test]
fn backpressure_and_admission_reject_with_reason() {
    let tight = ServeConfig {
        queue_cap: 2,
        mem_budget: 64 << 20,
        ..cfg("bp", 1)
    };
    let jobs = vec![
        JobSpec::new("ok-1", hubbard(4, 4.0), 2, 2),
        // 14 orbitals, 7α7β: working-set estimate far beyond 64 MiB.
        JobSpec::new("huge", hubbard(14, 4.0), 7, 7),
        JobSpec::new("ok-2", hubbard(4, 5.0), 2, 2),
        JobSpec::new("ok-2", hubbard(4, 5.0), 2, 2), // duplicate id
        JobSpec::new("spill", hubbard(4, 6.0), 2, 2), // queue full
    ];
    let report = serve(tight, jobs);
    assert_eq!(report.summary.jobs_done, 2);
    assert_eq!(report.summary.jobs_rejected, 3);
    let reason = |id: &str| {
        report
            .rejected
            .iter()
            .find(|(rid, _)| rid == id)
            .map(|(_, why)| why.clone())
            .unwrap()
    };
    assert!(matches!(reason("huge"), RejectReason::MemoryBudget { .. }));
    assert_eq!(reason("ok-2"), RejectReason::DuplicateId);
    assert!(matches!(reason("spill"), RejectReason::QueueFull { .. }));
}

#[test]
fn sparse_job_passes_admission_where_dense_is_rejected() {
    use fci_core::SolverKind;
    use fci_serve::estimated_bytes;
    // Same sector, two engines. The sparse estimate is bounded by its
    // determinant-store cap, not the formal dimension…
    let mut dense = JobSpec::new("dense", hubbard(6, 4.0), 3, 3);
    dense.batchable = false;
    let mut sparse = dense.clone();
    sparse.id = "sparse".into();
    sparse.solver = SolverKind::SparseSelected;
    sparse.sparse_cap = 500; // ≥ the 400-determinant sector: exact
    sparse.eps = 1e-10;
    let (need_dense, need_sparse) = (estimated_bytes(&dense), estimated_bytes(&sparse));
    assert!(
        need_sparse < need_dense,
        "sparse estimate {need_sparse} must undercut dense {need_dense}"
    );
    // …so a budget between the two admits the sparse job and rejects the
    // dense one. This is the regression the sparse branch exists for.
    let tight = ServeConfig {
        mem_budget: need_sparse,
        ..cfg("sparse-admit", 1)
    };
    let report = serve(tight, vec![dense.clone(), sparse]);
    assert_eq!(report.summary.jobs_done, 1);
    assert_eq!(report.summary.jobs_rejected, 1);
    assert!(matches!(
        report.rejected[0].1,
        RejectReason::MemoryBudget { .. }
    ));
    let r = report.result("sparse").unwrap();
    assert_eq!(r.status, JobStatus::Done);
    assert!(r.converged);
    // And the admitted sparse solve is the real answer: it matches the
    // dense engine run under an unconstrained budget to μHa accuracy.
    let reference = serve(cfg("sparse-admit-ref", 1), vec![dense]);
    let e_ref = reference.result("dense").unwrap().energy;
    assert!(
        (r.energy - e_ref).abs() < 1e-6,
        "sparse {} vs dense {e_ref}",
        r.energy
    );
}

#[test]
fn cdfci_job_runs_end_to_end() {
    use fci_core::SolverKind;
    let mut j = JobSpec::new("cd", hubbard(6, 4.0), 3, 3);
    j.solver = SolverKind::SparseCdfci;
    j.tol = 1e-10;
    let reference = serve(
        cfg("cdfci-ref", 1),
        vec![JobSpec::new("d", hubbard(6, 4.0), 3, 3)],
    );
    let report = serve(cfg("cdfci", 2), vec![j]);
    let r = report.result("cd").unwrap();
    assert_eq!(r.status, JobStatus::Done);
    let e_ref = reference.result("d").unwrap().energy;
    assert!(
        (r.energy - e_ref).abs() < 1e-6,
        "cdfci {} vs dense {e_ref}",
        r.energy
    );
}

#[test]
fn cancellation_and_graceful_shutdown() {
    // Deterministic lifecycle: everything happens before workers start.
    let server = fci_serve::Server::new(cfg("cancel", 1));
    for i in 0..5 {
        let mut j = JobSpec::new(format!("j{i}"), hubbard(4, 3.0 + i as f64), 2, 2);
        j.batchable = false;
        server.submit(j).unwrap();
    }
    assert!(server.cancel("j4"), "queued job should cancel");
    assert!(!server.cancel("nope"), "unknown id cannot cancel");
    assert!(!server.cancel("j4"), "double cancel is a no-op");
    server.shutdown();
    // Post-shutdown submissions bounce.
    assert!(server
        .submit(JobSpec::new("late", hubbard(4, 4.0), 2, 2))
        .is_err());
    server.run(1); // returns immediately: nothing left to do
    let report = server.into_report();
    let status = |id: &str| report.result(id).unwrap().status.clone();
    assert_eq!(status("j4"), JobStatus::Cancelled);
    for i in 0..4 {
        assert_eq!(status(&format!("j{i}")), JobStatus::Shutdown);
    }
    assert_eq!(report.summary.jobs_done, 0);
    assert_eq!(report.summary.jobs_cancelled, 5);
    assert_eq!(report.summary.jobs_rejected, 1);
}

#[test]
fn shutdown_mid_drain_completes_in_flight_work() {
    // Racy by nature (ctl runs while a worker drains), so assert the
    // invariants that must hold at *any* interleaving: every job ends
    // Done or Shutdown, nothing fails, nothing is lost.
    let mut jobs = Vec::new();
    for i in 0..5 {
        let mut j = JobSpec::new(format!("j{i}"), hubbard(6, 3.0 + i as f64), 3, 3);
        j.batchable = false;
        jobs.push(j);
    }
    let report = serve_with(cfg("mid-drain", 1), jobs, |server| server.shutdown());
    let abandoned = report
        .results
        .iter()
        .filter(|r| r.status == JobStatus::Shutdown)
        .count();
    assert_eq!(report.summary.jobs_done + abandoned, 5);
    assert_eq!(report.summary.jobs_failed, 0);
    for r in &report.results {
        if r.status == JobStatus::Done {
            assert!(r.converged, "{} completed but did not converge", r.id);
        }
    }
}

#[test]
fn resilient_fault_job_survives_and_matches_reference() {
    // Reference: clean solve of the same problem.
    let clean = serve(
        cfg("resil-ref", 1),
        vec![JobSpec::new("ref", hubbard(4, 4.0), 2, 2)],
    );
    let e_ref = clean.result("ref").unwrap().energy;
    let mut f = JobSpec::new("fault", hubbard(4, 4.0), 2, 2);
    f.resilient = true;
    f.nproc = 2;
    f.fault_seed = Some(11);
    f.rank_death = Some(RankDeath {
        rank: 1,
        after_ops: 400,
    });
    let report = serve(cfg("resil", 2), vec![f]);
    let r = report.result("fault").unwrap();
    assert_eq!(r.status, JobStatus::Done);
    assert!(r.converged);
    assert!(r.restarts >= 1, "rank death must force a restart");
    assert!(
        (r.energy - e_ref).abs() < 1e-9,
        "resilient {} vs clean {e_ref}",
        r.energy
    );
}

#[test]
fn serve_events_roll_up_into_run_summary() {
    let config = ServeConfig {
        obs: fci_obs::ObsConfig::in_memory(),
        ..cfg("events", 2)
    };
    let report = serve_with(config, mixed_jobs(), |server| {
        // Drain happens via scope exit; nothing to control here — but
        // grab the live event stream to prove it is wired.
        assert!(server.events().is_some());
    });
    assert_eq!(report.summary.jobs_done, 6);
    assert!(report.summary.cache.hits > 0);
    assert!(report.summary.queue_p90_us >= report.summary.queue_p50_us);
    assert!(report.summary.jobs_per_sec > 0.0);
}
