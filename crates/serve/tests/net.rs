//! TCP front-end integration: quotas, backpressure, and the fair-share
//! invariant under the network path.

use fci_obs::JsonValue;
use fci_serve::{JobSpec, NetClient, NetConfig, NetServer, ProblemSpec, ServeConfig, Server};
use std::sync::Arc;

fn job(id: &str, tenant: &str) -> JobSpec {
    let mut spec = JobSpec::new(
        id,
        ProblemSpec::Hubbard {
            sites: 4,
            t: 1.0,
            u: 4.0,
            periodic: false,
        },
        2,
        2,
    );
    spec.tenant = tenant.into();
    spec
}

/// A live server + front-end on a loopback port; dropped via `drain`.
struct Stack {
    addr: String,
    net: Arc<NetServer>,
    workers: Option<std::thread::JoinHandle<()>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    server: Arc<Server>,
}

fn stack(tag: &str, cfg_net: NetConfig, workers: usize) -> Stack {
    let dir = std::env::temp_dir().join(format!("fcix-nettest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Arc::new(Server::new(ServeConfig {
        workers,
        checkpoint_dir: dir,
        ..Default::default()
    }));
    let net = Arc::new(NetServer::bind(server.clone(), cfg_net).expect("bind loopback"));
    let addr = net.local_addr().expect("local addr").to_string();
    let srv = server.clone();
    let workers = std::thread::spawn(move || srv.run(workers));
    let acc = net.clone();
    let acceptor = std::thread::spawn(move || acc.run());
    Stack {
        addr,
        net,
        workers: Some(workers),
        acceptor: Some(acceptor),
        server,
    }
}

impl Stack {
    fn client(&self) -> NetClient {
        NetClient::connect(&self.addr, 30_000).expect("connect")
    }
    fn teardown(mut self) {
        self.server.drain();
        self.net.stop();
        if let Some(h) = self.acceptor.take() {
            h.join().expect("acceptor join");
        }
        if let Some(h) = self.workers.take() {
            h.join().expect("workers join");
        }
    }
}

fn is_ok(resp: &JsonValue) -> bool {
    resp.get("ok") == Some(&JsonValue::Bool(true))
}

fn reason(resp: &JsonValue) -> &str {
    resp.get("reason").and_then(JsonValue::as_str).unwrap_or("")
}

#[test]
fn greedy_tenant_at_its_rate_limit_cannot_starve_another() {
    // Tight bucket: 2-deep burst, slow refill — the greedy flood runs
    // dry almost immediately.
    let st = stack(
        "fair",
        NetConfig {
            rate_per_s: 2.0,
            burst: 2.0,
            ..Default::default()
        },
        2,
    );
    let mut greedy = st.client();
    let mut accepted = 0usize;
    let mut rate_limited = 0usize;
    for i in 0..30 {
        let resp = greedy
            .submit(&job(&format!("g{i}"), "greedy"))
            .expect("submit");
        if is_ok(&resp) {
            accepted += 1;
        } else {
            assert_eq!(reason(&resp), "rate_limited", "resp: {resp}");
            let hint = resp.get_f64("retry_after_ms").expect("backoff hint");
            assert!(hint >= 1.0, "hint must be actionable: {hint}");
            rate_limited += 1;
        }
    }
    assert!(rate_limited >= 20, "flood mostly refused: {rate_limited}");
    assert!(accepted >= 2, "burst admitted: {accepted}");

    // The fair-share invariant under the network path: with the greedy
    // tenant pinned at its limit, a second tenant's submissions are
    // admitted instantly (its bucket is its own) and all complete.
    let mut polite = st.client();
    for i in 0..2 {
        let resp = polite
            .submit(&job(&format!("p{i}"), "polite"))
            .expect("submit");
        assert!(is_ok(&resp), "polite tenant refused: {resp}");
    }
    for i in 0..2 {
        let resp = polite.wait(&format!("p{i}"), 60_000).expect("wait");
        assert!(is_ok(&resp), "polite job starved: {resp}");
        let r = resp.get("result").expect("result");
        assert_eq!(
            r.get("status").and_then(JsonValue::as_str),
            Some("done"),
            "polite job must complete: {r}"
        );
    }
    st.teardown();
}

#[test]
fn inflight_cap_rejects_with_hint_and_releases_as_jobs_finish() {
    let st = stack(
        "inflight",
        NetConfig {
            max_inflight: 2,
            ..Default::default()
        },
        2,
    );
    let mut c = st.client();
    for i in 0..2 {
        assert!(is_ok(
            &c.submit(&job(&format!("j{i}"), "t")).expect("submit")
        ));
    }
    // Third concurrent job trips the cap.
    let resp = c.submit(&job("j2", "t")).expect("submit");
    assert_eq!(reason(&resp), "inflight_limit", "resp: {resp}");
    assert!(resp.get_f64("retry_after_ms").is_some(), "hint: {resp}");
    // Once the first two finish, the ledger sweeps and j2 is admitted.
    for i in 0..2 {
        assert!(is_ok(&c.wait(&format!("j{i}"), 60_000).expect("wait")));
    }
    let resp = c.submit(&job("j2", "t")).expect("resubmit");
    assert!(is_ok(&resp), "cap must release: {resp}");
    assert!(is_ok(&c.wait("j2", 60_000).expect("wait")));
    st.teardown();
}

#[test]
fn connection_cap_refuses_with_explicit_overload() {
    let st = stack(
        "conncap",
        NetConfig {
            max_conns: 1,
            ..Default::default()
        },
        1,
    );
    let mut first = st.client();
    assert!(first.ping().expect("ping"));
    // Second connection: one overload line, then the socket closes.
    let mut second = st.client();
    let resp = second.request(&JsonValue::obj(vec![("v", JsonValue::Str("ping".into()))]));
    match resp {
        Ok(v) => {
            assert_eq!(reason(&v), "overloaded", "resp: {v}");
            assert!(v.get_f64("retry_after_ms").is_some(), "hint: {v}");
        }
        // The server may close before our request line is read — the
        // overload notice was already written at accept time.
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}"),
    }
    st.teardown();
}

#[test]
fn protocol_errors_and_verbs_round_trip() {
    let st = stack("verbs", NetConfig::default(), 2);
    let mut c = st.client();

    // Unknown verb and malformed JSON are per-line errors, not hangups.
    let resp = c
        .request(&JsonValue::obj(vec![(
            "v",
            JsonValue::Str("frobnicate".into()),
        )]))
        .expect("request");
    assert_eq!(reason(&resp), "unknown_verb");
    assert!(c.ping().expect("connection survives"));

    // Duplicate submission: reject, but idempotent-submit treats it as won.
    assert!(is_ok(&c.submit(&job("dup", "t")).expect("submit")));
    let resp = c.submit(&job("dup", "t")).expect("resubmit");
    assert_eq!(reason(&resp), "duplicate_id");
    assert!(c.submit_idempotent(&job("dup", "t")).expect("idempotent"));

    // STATUS sees the queue; CANCEL on a finished job is refused.
    assert!(is_ok(&c.wait("dup", 60_000).expect("wait")));
    let status = c.status().expect("status");
    assert!(is_ok(&status));
    assert!(status.get_f64("completed").unwrap_or(0.0) >= 1.0);
    let resp = c.cancel("dup").expect("cancel");
    assert_eq!(reason(&resp), "not_cancellable");

    // RESULT returns the identical energy WAIT saw (bitwise).
    let e1 = c
        .wait("dup", 1_000)
        .expect("wait")
        .get("result")
        .and_then(|r| r.get_f64("energy"))
        .expect("energy");
    let e2 = c
        .result("dup")
        .expect("result")
        .get("result")
        .and_then(|r| r.get_f64("energy"))
        .expect("energy");
    assert_eq!(e1.to_bits(), e2.to_bits());
    st.teardown();
}

#[test]
fn oversized_request_line_is_refused_and_connection_dropped() {
    let st = stack(
        "linecap",
        NetConfig {
            max_line_bytes: 256,
            ..Default::default()
        },
        1,
    );
    use std::io::{BufRead, BufReader, Write};
    let mut raw = std::net::TcpStream::connect(&st.addr).expect("connect");
    raw.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    let huge = format!("{{\"v\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(1024));
    raw.write_all(huge.as_bytes()).expect("write");
    let mut line = String::new();
    BufReader::new(raw.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("read");
    let resp = JsonValue::parse(line.trim()).expect("parse");
    assert_eq!(reason(&resp), "line_too_long", "resp: {resp}");
    // The connection is gone: the next read sees EOF.
    let mut rest = String::new();
    let n = BufReader::new(raw).read_line(&mut rest).expect("read eof");
    assert_eq!(n, 0, "server must drop an abusive connection");
    st.teardown();
}

#[test]
fn drain_completes_accepted_work_then_stops_the_listener() {
    let st = stack("drain", NetConfig::default(), 2);
    let mut c = st.client();
    for i in 0..3 {
        assert!(is_ok(
            &c.submit(&job(&format!("d{i}"), "t")).expect("submit")
        ));
    }
    let resp = c.drain().expect("drain");
    assert!(is_ok(&resp), "drain: {resp}");
    assert_eq!(
        resp.get_f64("completed"),
        Some(3.0),
        "drain returns only after every accepted job finished: {resp}"
    );
    assert!(st.net.stopped(), "drain stops the accept loop");
    // Post-drain submissions are refused server-side.
    assert!(
        st.server.submit(job("late", "t")).is_err(),
        "queue must be closed after drain"
    );
    st.teardown();
}
