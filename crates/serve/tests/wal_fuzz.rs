//! Fuzz-style corruption matrix for the write-ahead log: every damage
//! class must recover to the longest valid prefix with a counted
//! warning — never a panic, never an `Err`, never silent data loss
//! beyond the damaged bytes.

use fci_serve::wal::{Wal, WalRecord};
use fci_serve::{JobResult, JobSpec, JobStatus, ProblemSpec};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fcix-walfuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn job(id: &str) -> JobSpec {
    JobSpec::new(
        id,
        ProblemSpec::Hubbard {
            sites: 4,
            t: 1.0,
            u: 4.0,
            periodic: false,
        },
        2,
        2,
    )
}

fn done(id: &str, energy: f64) -> JobResult {
    JobResult {
        id: id.into(),
        tenant: "default".into(),
        status: JobStatus::Done,
        energy,
        converged: true,
        iterations: 7,
        sector_dim: 36,
        batch_size: 1,
        restarts: 0,
        queue_us: 1.0,
        exec_us: 2.0,
    }
}

/// Build a 3-record log (submit a, finish a, submit b) and return its
/// bytes plus the byte offset where each record starts.
fn seed_log(path: &PathBuf) -> (Vec<u8>, Vec<usize>) {
    let (mut wal, _) = Wal::open(path).unwrap();
    let mut offsets = Vec::new();
    let r = done("a", -2.5);
    for rec in [
        WalRecord::Submitted {
            spec: Box::new(job("a")),
        },
        WalRecord::Finished {
            rhash: r.result_hash(),
            result: Box::new(r.clone()),
        },
        WalRecord::Submitted {
            spec: Box::new(job("b")),
        },
    ] {
        offsets.push(wal.len() as usize);
        wal.append(&rec).unwrap();
    }
    drop(wal);
    (std::fs::read(path).unwrap(), offsets)
}

#[test]
fn truncated_tail_record_recovers_prefix() {
    let path = tmp("trunc.wal");
    let (bytes, offsets) = seed_log(&path);
    // Keep only half of the last record.
    let cut = offsets[2] + (bytes.len() - offsets[2]) / 2;
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let (wal, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.warnings.len(), 1, "{:?}", replay.warnings);
    assert_eq!(replay.records, 2, "the two whole records survive");
    assert!(
        replay.pending.is_empty(),
        "submit b was in the damaged tail"
    );
    assert_eq!(replay.completed.len(), 1);
    assert_eq!(
        wal.len() as usize,
        offsets[2],
        "file truncated to the prefix"
    );
}

#[test]
fn flipped_crc_byte_stops_at_the_damaged_frame() {
    let path = tmp("crcflip.wal");
    let (mut bytes, offsets) = seed_log(&path);
    // The CRC trailer is the last 4 bytes of record 1; flip one bit.
    let crc_byte = offsets[2] - 2;
    bytes[crc_byte] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    let (_, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.warnings.len(), 1, "{:?}", replay.warnings);
    assert!(
        replay.warnings[0].contains("CRC"),
        "warning names the CRC: {}",
        replay.warnings[0]
    );
    // Damage in record 1 drops records 1 and 2 (prefix semantics): job
    // `a` re-runs rather than trusting a frame that failed its checksum.
    assert_eq!(replay.records, 1);
    assert_eq!(replay.pending.len(), 1);
    assert_eq!(replay.pending[0].id, "a");
    assert!(replay.completed.is_empty());
}

#[test]
fn flipped_payload_byte_is_equally_fatal_for_that_frame() {
    let path = tmp("payloadflip.wal");
    let (mut bytes, offsets) = seed_log(&path);
    bytes[offsets[1] + 10] ^= 0x01; // inside record 1's JSON payload
    std::fs::write(&path, &bytes).unwrap();
    let (_, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.warnings.len(), 1);
    assert_eq!(replay.records, 1);
    assert_eq!(replay.pending.len(), 1);
}

#[test]
fn duplicated_record_is_skipped_with_a_warning_not_truncated() {
    let path = tmp("dup.wal");
    let (bytes, offsets) = seed_log(&path);
    // Splice a byte-exact copy of record 0 (submit a) after itself: the
    // frame is valid, so this is semantic damage, not framing damage.
    let mut doctored = bytes[..offsets[1]].to_vec();
    doctored.extend_from_slice(&bytes[offsets[0]..offsets[1]]);
    doctored.extend_from_slice(&bytes[offsets[1]..]);
    std::fs::write(&path, &doctored).unwrap();
    let (wal, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.warnings.len(), 1, "{:?}", replay.warnings);
    assert!(
        replay.warnings[0].contains("duplicate"),
        "warning names the duplicate: {}",
        replay.warnings[0]
    );
    // Everything after the duplicate still applies — no truncation.
    assert_eq!(replay.records, 4);
    assert_eq!(replay.completed.len(), 1);
    assert_eq!(replay.pending.len(), 1);
    assert_eq!(replay.pending[0].id, "b");
    assert_eq!(wal.len() as usize, doctored.len());
}

#[test]
fn wrong_version_header_starts_fresh_with_a_warning() {
    let path = tmp("version.wal");
    let (mut bytes, _) = seed_log(&path);
    bytes[8] = 99; // version byte
    std::fs::write(&path, &bytes).unwrap();
    let (wal, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.warnings.len(), 1, "{:?}", replay.warnings);
    assert!(replay.pending.is_empty() && replay.completed.is_empty());
    assert!(wal.is_empty(), "fresh log after an unreadable header");
    // And the fresh log is usable.
    let (mut wal, _) = Wal::open(&path).unwrap();
    wal.append(&WalRecord::Submitted {
        spec: Box::new(job("c")),
    })
    .unwrap();
    let (_, again) = Wal::open(&path).unwrap();
    assert!(again.is_clean());
    assert_eq!(again.pending.len(), 1);
}

#[test]
fn random_byte_flips_never_panic_and_never_fail_open() {
    let path = tmp("sweep.wal");
    let (bytes, _) = seed_log(&path);
    // Deterministic xorshift sweep: 64 single-byte corruptions anywhere
    // in the file, including the header.
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let pos = (x as usize) % bytes.len();
        let bit = 1u8 << ((x >> 32) % 8);
        let mut doctored = bytes.clone();
        doctored[pos] ^= bit;
        std::fs::write(&path, &doctored).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        // Whatever was recovered must replay as a consistent state: a
        // completed job is never also pending.
        for r in &replay.completed {
            assert!(
                replay.pending.iter().all(|p| p.id != r.id),
                "job {} both completed and pending after flipping byte {pos}",
                r.id
            );
        }
        // And reopening the (now truncated/repaired) log is clean or at
        // least stable: a second replay recovers the same record count.
        let (_, second) = Wal::open(&path).unwrap();
        assert_eq!(second.records, replay.records, "repair must be stable");
    }
}
