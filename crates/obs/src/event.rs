//! The trace event model.

use crate::json::JsonValue;

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: a slice of one virtual MSP's timeline.
    Span,
    /// A point event (task grab, iteration marker, …).
    Instant,
    /// A counter sample (bytes moved by one DDI op, …).
    Counter,
}

impl EventKind {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        }
    }

    /// Parse a wire name.
    pub fn from_wire(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "instant" => Some(EventKind::Instant),
            "counter" => Some(EventKind::Counter),
            _ => None,
        }
    }
}

/// Cost category of a span — mirrors the simulated [`Clock`]'s time split
/// and therefore the rows of the paper's Table 3.
///
/// [`Clock`]: https://docs.rs/fci-xsim
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// DGEMM-class compute.
    Dgemm,
    /// DAXPY/indexed + scalar-unit compute.
    Daxpy,
    /// Vector gather/scatter and local copies.
    Gather,
    /// Network transfers.
    Net,
    /// Remote mutex acquisition.
    Lock,
    /// Disk I/O.
    Io,
    /// Anything else (markers, solver structure, DDI ops).
    Other,
}

impl Category {
    /// All clock-backed categories, in Table 3 row order.
    pub const CLOCKED: [Category; 6] = [
        Category::Dgemm,
        Category::Daxpy,
        Category::Gather,
        Category::Net,
        Category::Lock,
        Category::Io,
    ];

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Dgemm => "dgemm",
            Category::Daxpy => "daxpy",
            Category::Gather => "gather",
            Category::Net => "net",
            Category::Lock => "lock",
            Category::Io => "io",
            Category::Other => "other",
        }
    }

    /// Parse a wire name (unknown names map to [`Category::Other`]).
    pub fn from_wire(s: &str) -> Category {
        match s {
            "dgemm" => Category::Dgemm,
            "daxpy" => Category::Daxpy,
            "gather" => Category::Gather,
            "net" => Category::Net,
            "lock" => Category::Lock,
            "io" => Category::Io,
            _ => Category::Other,
        }
    }
}

/// One trace record with **dual timestamps**: host wall-clock microseconds
/// since the trace epoch, and simulated seconds from the active `Clock`.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Record kind.
    pub kind: EventKind,
    /// Name, e.g. `"beta_beta"`, `"task_grab"`, `"ddi_acc"`.
    pub name: String,
    /// Cost category.
    pub cat: Category,
    /// Virtual MSP (rank); `None` = run-global.
    pub rank: Option<usize>,
    /// Host wall-clock timestamp, µs since the tracer epoch.
    pub host_us: f64,
    /// Host duration, µs (spans only; 0 otherwise).
    pub host_dur_us: f64,
    /// Simulated start time, seconds since the start of the run.
    pub sim_s: f64,
    /// Simulated duration, seconds (spans only; 0 otherwise).
    pub sim_dur_s: f64,
    /// Numeric payload (bytes, flops, task ids/sizes, energies, …).
    pub args: Vec<(String, f64)>,
}

impl Event {
    /// Value of a named argument.
    pub fn arg(&self, name: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Serialize as one JSONL record.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("ev".to_string(), JsonValue::Str(self.kind.as_str().into())),
            ("name".to_string(), JsonValue::Str(self.name.clone())),
            ("cat".to_string(), JsonValue::Str(self.cat.as_str().into())),
        ];
        if let Some(r) = self.rank {
            pairs.push(("rank".to_string(), JsonValue::Num(r as f64)));
        }
        pairs.push(("host_us".to_string(), JsonValue::Num(self.host_us)));
        if self.kind == EventKind::Span {
            pairs.push(("host_dur_us".to_string(), JsonValue::Num(self.host_dur_us)));
        }
        pairs.push(("sim_s".to_string(), JsonValue::Num(self.sim_s)));
        if self.kind == EventKind::Span {
            pairs.push(("sim_dur_s".to_string(), JsonValue::Num(self.sim_dur_s)));
        }
        if !self.args.is_empty() {
            pairs.push((
                "args".to_string(),
                JsonValue::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                        .collect(),
                ),
            ));
        }
        JsonValue::Obj(pairs)
    }

    /// Parse one JSONL record.
    pub fn from_json(v: &JsonValue) -> Result<Event, String> {
        let kind = v
            .get("ev")
            .and_then(JsonValue::as_str)
            .and_then(EventKind::from_wire)
            .ok_or("missing/bad 'ev'")?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing 'name'")?
            .to_string();
        let cat = Category::from_wire(v.get("cat").and_then(JsonValue::as_str).unwrap_or("other"));
        let rank = v.get_f64("rank").map(|r| r as usize);
        let args = match v.get("args") {
            Some(JsonValue::Obj(pairs)) => pairs
                .iter()
                .filter_map(|(k, val)| val.as_f64().map(|x| (k.clone(), x)))
                .collect(),
            _ => Vec::new(),
        };
        Ok(Event {
            kind,
            name,
            cat,
            rank,
            host_us: v.get_f64("host_us").unwrap_or(0.0),
            host_dur_us: v.get_f64("host_dur_us").unwrap_or(0.0),
            sim_s: v.get_f64("sim_s").unwrap_or(0.0),
            sim_dur_s: v.get_f64("sim_dur_s").unwrap_or(0.0),
            args,
        })
    }
}

/// Parse a whole JSONL trace (empty lines skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(Event::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Like [`parse_jsonl`], but tolerates a truncated final record — the
/// common shape of a trace from a crashed or killed run, where the last
/// buffered line was cut mid-write.
///
/// A parse error on the *last* non-empty line yields the events parsed so
/// far plus a warning string; an error anywhere earlier is still a hard
/// error (the file is corrupt, not merely truncated).
pub fn parse_jsonl_lenient(text: &str) -> Result<(Vec<Event>, Option<String>), String> {
    let last_nonempty = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .last()
        .map(|(i, _)| i);
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = JsonValue::parse(line)
            .map_err(|e| e.to_string())
            .and_then(|v| Event::from_json(&v));
        match parsed {
            Ok(e) => out.push(e),
            Err(e) if Some(i) == last_nonempty => {
                return Ok((out, Some(format!("line {}: {e} (truncated trace?)", i + 1))));
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok((out, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            kind: EventKind::Span,
            name: "beta_beta".into(),
            cat: Category::Dgemm,
            rank: Some(7),
            host_us: 1234.5,
            host_dur_us: 99.0,
            sim_s: 0.25,
            sim_dur_s: 1.5,
            args: vec![("flops".into(), 2.0e9), ("bytes".into(), 0.0)],
        }
    }

    #[test]
    fn event_json_roundtrip() {
        let e = sample();
        let back = Event::from_json(&e.to_json()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn jsonl_roundtrip() {
        let evs = vec![
            sample(),
            Event {
                kind: EventKind::Instant,
                name: "task_grab".into(),
                cat: Category::Other,
                rank: None,
                host_us: 1.0,
                host_dur_us: 0.0,
                sim_s: 0.0,
                sim_dur_s: 0.0,
                args: vec![],
            },
        ];
        let text: String = evs.iter().map(|e| e.to_json().to_string() + "\n").collect();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(evs, back);
    }

    #[test]
    fn lenient_parse_tolerates_truncated_tail() {
        let good = sample().to_json().to_string();
        let text = format!("{good}\n{good}\n{{\"ev\":\"span\",\"na");
        let (events, warn) = parse_jsonl_lenient(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert!(warn.unwrap().contains("truncated"));
        // A corrupt line in the middle is still fatal.
        let text = format!("{good}\nnot json\n{good}\n");
        assert!(parse_jsonl_lenient(&text).is_err());
        // Clean input: no warning.
        let (events, warn) = parse_jsonl_lenient(&format!("{good}\n")).unwrap();
        assert_eq!(events.len(), 1);
        assert!(warn.is_none());
        // Empty input: no events, no warning, no error.
        let (events, warn) = parse_jsonl_lenient("").unwrap();
        assert!(events.is_empty() && warn.is_none());
    }

    #[test]
    fn category_names_roundtrip() {
        for c in Category::CLOCKED {
            assert_eq!(Category::from_wire(c.as_str()), c);
        }
        assert_eq!(Category::from_wire("nonsense"), Category::Other);
    }
}
