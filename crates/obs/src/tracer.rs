//! The tracer: dual-timestamp span/event emission.
//!
//! # Span model
//!
//! The simulator charges costs to per-MSP `Clock`s as category totals, not
//! as timestamped intervals. The tracer reconstructs a timeline from those
//! totals: each virtual MSP (rank) owns a **simulated-time cursor**, and a
//! phase's category segments are stacked at the cursor back-to-back, in
//! Table 3 row order. After every parallel phase the caller invokes
//! [`Tracer::barrier`], which advances all cursors to the slowest rank —
//! exactly the barrier semantics `RunReport::elapsed` assumes.
//!
//! Two invariants fall out of this construction and are tested below:
//!
//! 1. the sum of a rank's span durations equals the owning
//!    `Clock::total()` (durations *are* the clock's category totals), and
//! 2. per-category totals over the whole trace equal the merged
//!    `RunReport` aggregates.
//!
//! Every record also carries host wall-clock microseconds since the tracer
//! epoch, so the same trace shows what the real hardware did.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Category, Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::sink::{MemorySink, NullSink, Sink};

/// One category slice of a phase, in simulated seconds, with its numeric
/// payload (flops, bytes, message counts, …).
#[derive(Clone, Debug)]
pub struct Segment {
    /// Cost category.
    pub cat: Category,
    /// Simulated duration, seconds.
    pub sim_s: f64,
    /// Payload forwarded to the span's `args`.
    pub args: Vec<(String, f64)>,
}

impl Segment {
    /// Convenience constructor.
    pub fn new(cat: Category, sim_s: f64, args: Vec<(String, f64)>) -> Self {
        Segment { cat, sim_s, args }
    }
}

struct Inner {
    sink: Arc<dyn Sink>,
    /// Typed handle kept only for in-memory tracers so tests and the
    /// in-process summarizer can read events back.
    memory: Option<Arc<MemorySink>>,
    epoch: Instant,
    /// Per-rank simulated-time cursors, seconds.
    cursors: Mutex<Vec<f64>>,
    /// The metrics plane riding along with this tracer, if any.
    metrics: Option<MetricsRegistry>,
}

/// Handle for emitting trace events. Cheap to clone; cloning shares the
/// sink and the cursors. A disabled tracer is a single `None` — every
/// emission method is one branch and a return.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that drops everything at zero cost.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer writing to the given sink, with a fresh metrics plane
    /// attached.
    pub fn new(sink: Arc<dyn Sink>) -> Tracer {
        Tracer::with_sink(sink, Some(MetricsRegistry::new()))
    }

    /// A tracer writing to the given sink with an explicit (possibly
    /// absent, possibly shared) metrics registry.
    pub fn with_sink(sink: Arc<dyn Sink>, metrics: Option<MetricsRegistry>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                sink,
                memory: None,
                epoch: Instant::now(),
                cursors: Mutex::new(Vec::new()),
                metrics,
            })),
        }
    }

    /// A tracer collecting events in memory (with a metrics plane); read
    /// events back with [`Tracer::events`].
    pub fn in_memory() -> Tracer {
        Tracer::in_memory_with(Some(MetricsRegistry::new()))
    }

    /// [`Tracer::in_memory`] with an explicit (possibly absent, possibly
    /// shared) metrics registry.
    pub fn in_memory_with(metrics: Option<MetricsRegistry>) -> Tracer {
        let mem = Arc::new(MemorySink::new());
        Tracer {
            inner: Some(Arc::new(Inner {
                sink: mem.clone(),
                memory: Some(mem),
                epoch: Instant::now(),
                cursors: Mutex::new(Vec::new()),
                metrics,
            })),
        }
    }

    /// A tracer that records *only* metrics: span/instant emission is
    /// disabled (the sink is null) but [`Tracer::metrics`] is live, so
    /// instrumented layers feed the shared registry without paying for
    /// event serialization.
    pub fn metrics_only(metrics: MetricsRegistry) -> Tracer {
        Tracer::with_sink(Arc::new(NullSink), Some(metrics))
    }

    /// The metrics registry riding along with this tracer, if any.
    /// Instrumented hot paths guard their recording on this being `Some`.
    #[inline]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().and_then(|i| i.metrics.as_ref())
    }

    /// Whether events will actually be recorded. Guard hot loops on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.sink.enabled(),
            None => false,
        }
    }

    /// Events collected so far (in-memory tracers only).
    pub fn events(&self) -> Option<Vec<Event>> {
        self.inner
            .as_ref()
            .and_then(|i| i.memory.as_ref())
            .map(|m| m.events())
    }

    /// Host microseconds since the tracer epoch (0 when disabled).
    pub fn now_us(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64() * 1e6,
            None => 0.0,
        }
    }

    /// Current simulated-time cursor of a rank, seconds.
    pub fn cursor(&self, rank: usize) -> f64 {
        match &self.inner {
            Some(inner) => inner
                .cursors
                .lock()
                .unwrap()
                .get(rank)
                .copied()
                .unwrap_or(0.0),
            None => 0.0,
        }
    }

    /// Advance every cursor (growing the set to `nranks`) to the slowest
    /// rank — the simulated barrier at the end of a parallel phase.
    pub fn barrier(&self, nranks: usize) {
        let Some(inner) = &self.inner else { return };
        let mut cursors = inner.cursors.lock().unwrap();
        if cursors.len() < nranks {
            cursors.resize(nranks, 0.0);
        }
        let max = cursors.iter().copied().fold(0.0, f64::max);
        for c in cursors.iter_mut() {
            *c = max;
        }
    }

    fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&event);
        }
    }

    /// Emit a point event at the rank's current simulated time.
    pub fn instant(&self, rank: Option<usize>, name: &str, cat: Category, args: &[(&str, f64)]) {
        if !self.enabled() {
            return;
        }
        let sim_s = rank.map_or(0.0, |r| self.cursor(r));
        self.emit(Event {
            kind: EventKind::Instant,
            // lint: allow(alloc) — behind the `enabled()` gate above; tracing is off in production hot loops
            name: name.to_string(),
            cat,
            rank,
            host_us: self.now_us(),
            host_dur_us: 0.0,
            sim_s,
            sim_dur_s: 0.0,
            // lint: allow(alloc) — behind the `enabled()` gate above; tracing is off in production hot loops
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Emit a counter sample at the rank's current simulated time.
    pub fn counter(&self, rank: Option<usize>, name: &str, args: &[(&str, f64)]) {
        if !self.enabled() {
            return;
        }
        let sim_s = rank.map_or(0.0, |r| self.cursor(r));
        self.emit(Event {
            kind: EventKind::Counter,
            name: name.to_string(),
            cat: Category::Other,
            rank,
            host_us: self.now_us(),
            host_dur_us: 0.0,
            sim_s,
            sim_dur_s: 0.0,
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Record one rank's share of a phase: stack `segments` at the rank's
    /// cursor as back-to-back spans and advance the cursor by their total.
    ///
    /// Host time: the phase's measured host interval
    /// (`host_start_us`..`+host_dur_us`) is split across the spans in
    /// proportion to their simulated durations, so both timelines nest the
    /// same way. Segments with zero duration *and* an all-zero payload are
    /// skipped.
    pub fn record_phase(
        &self,
        rank: usize,
        phase: &str,
        segments: &[Segment],
        host_start_us: f64,
        host_dur_us: f64,
    ) {
        if !self.enabled() {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let mut cursors = inner.cursors.lock().unwrap();
        if cursors.len() <= rank {
            cursors.resize(rank + 1, 0.0);
        }
        let sim_total: f64 = segments.iter().map(|s| s.sim_s).sum();
        let mut sim_at = cursors[rank];
        let mut host_at = host_start_us;
        for seg in segments {
            let keep = seg.sim_s != 0.0 || seg.args.iter().any(|(_, v)| *v != 0.0);
            if !keep {
                continue;
            }
            let host_share = if sim_total > 0.0 {
                host_dur_us * seg.sim_s / sim_total
            } else {
                0.0
            };
            inner.sink.record(&Event {
                kind: EventKind::Span,
                name: phase.to_string(),
                cat: seg.cat,
                rank: Some(rank),
                host_us: host_at,
                host_dur_us: host_share,
                sim_s: sim_at,
                sim_dur_s: seg.sim_s,
                args: seg.args.clone(),
            });
            sim_at += seg.sim_s;
            host_at += host_share;
        }
        cursors[rank] += sim_total;
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(cat: Category, s: f64) -> Segment {
        Segment::new(cat, s, vec![])
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.instant(Some(0), "x", Category::Other, &[]);
        t.record_phase(0, "p", &[seg(Category::Dgemm, 1.0)], 0.0, 0.0);
        t.barrier(4);
        assert_eq!(t.cursor(0), 0.0);
        assert!(t.events().is_none());
    }

    #[test]
    fn spans_stack_and_cursor_advances() {
        let t = Tracer::in_memory();
        t.record_phase(
            0,
            "p1",
            &[seg(Category::Dgemm, 1.0), seg(Category::Net, 0.5)],
            0.0,
            30.0,
        );
        let evs = t.events().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].sim_s, 0.0);
        assert_eq!(evs[0].sim_dur_s, 1.0);
        assert_eq!(evs[1].sim_s, 1.0);
        assert_eq!(evs[1].sim_dur_s, 0.5);
        // Host interval split 2:1.
        assert!((evs[0].host_dur_us - 20.0).abs() < 1e-9);
        assert!((evs[1].host_us - 20.0).abs() < 1e-9);
        assert_eq!(t.cursor(0), 1.5);
    }

    #[test]
    fn barrier_aligns_cursors_to_max() {
        let t = Tracer::in_memory();
        t.record_phase(0, "p", &[seg(Category::Dgemm, 2.0)], 0.0, 0.0);
        t.record_phase(1, "p", &[seg(Category::Dgemm, 5.0)], 0.0, 0.0);
        t.barrier(3);
        assert_eq!(t.cursor(0), 5.0);
        assert_eq!(t.cursor(1), 5.0);
        assert_eq!(t.cursor(2), 5.0);
        // Next phase starts at the barrier.
        t.record_phase(0, "q", &[seg(Category::Io, 1.0)], 0.0, 0.0);
        let evs = t.events().unwrap();
        assert_eq!(evs.last().unwrap().sim_s, 5.0);
    }

    #[test]
    fn span_durations_sum_to_segment_total() {
        let t = Tracer::in_memory();
        let segs = [
            seg(Category::Dgemm, 0.1),
            seg(Category::Daxpy, 0.2),
            seg(Category::Gather, 0.0), // dropped
            seg(Category::Net, 0.3),
        ];
        t.record_phase(2, "p", &segs, 0.0, 0.0);
        let evs = t.events().unwrap();
        assert_eq!(evs.len(), 3);
        let sum: f64 = evs.iter().map(|e| e.sim_dur_s).sum();
        assert_eq!(sum, 0.1 + 0.2 + 0.3);
        assert_eq!(t.cursor(2), sum);
    }

    #[test]
    fn zero_duration_segment_with_payload_kept() {
        let t = Tracer::in_memory();
        t.record_phase(
            0,
            "p",
            &[Segment::new(
                Category::Net,
                0.0,
                vec![("bytes".into(), 64.0)],
            )],
            0.0,
            0.0,
        );
        assert_eq!(t.events().unwrap().len(), 1);
    }

    #[test]
    fn metrics_plane_attaches() {
        assert!(Tracer::disabled().metrics().is_none());
        let t = Tracer::in_memory();
        t.metrics().unwrap().counter_incr("x", &[]);
        assert_eq!(t.metrics().unwrap().value("x", &[]), Some(1.0));
        // Metrics-only: events off, registry shared and live.
        let shared = MetricsRegistry::new();
        let mo = Tracer::metrics_only(shared.clone());
        assert!(!mo.enabled());
        mo.instant(Some(0), "dropped", Category::Other, &[]);
        mo.metrics().unwrap().counter_incr("y", &[]);
        assert_eq!(shared.value("y", &[]), Some(1.0));
    }

    #[test]
    fn instants_carry_cursor_time() {
        let t = Tracer::in_memory();
        t.record_phase(1, "p", &[seg(Category::Dgemm, 4.0)], 0.0, 0.0);
        t.instant(Some(1), "task_grab", Category::Other, &[("task", 7.0)]);
        let evs = t.events().unwrap();
        let last = evs.last().unwrap();
        assert_eq!(last.kind, EventKind::Instant);
        assert_eq!(last.sim_s, 4.0);
        assert_eq!(last.arg("task"), Some(7.0));
    }
}
