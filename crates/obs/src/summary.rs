//! Table-3-style run summaries.
//!
//! [`RunSummary`] is the per-category rollup the paper prints as Table 3:
//! compute / network / lock / I/O rows, load imbalance, sustained GF/s per
//! MSP, aggregate TFlop/s. It can be built from a trace
//! ([`RunSummary::from_events`]) or filled directly from clock data (the
//! `fci-xsim` crate does this for `RunReport`), and round-trips through
//! JSON for the `BENCH_*.json` artifacts.

use crate::event::{Category, Event, EventKind};
use crate::hist::HistStats;
use crate::json::JsonValue;

/// Aggregate per-category telemetry of one run (or one phase).
///
/// All times are *aggregate seconds across MSPs* (divide by [`nproc`] for
/// the per-MSP averages the table prints). `elapsed` is the wall-clock of
/// the run: the busy time of the slowest MSP.
///
/// [`nproc`]: RunSummary::nproc
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Number of virtual MSPs.
    pub nproc: usize,
    /// Aggregate seconds in DGEMM-class compute.
    pub t_dgemm: f64,
    /// Aggregate seconds in DAXPY/indexed + scalar compute.
    pub t_daxpy: f64,
    /// Aggregate seconds in gather/scatter and local copies.
    pub t_gather: f64,
    /// Aggregate seconds in network transfers.
    pub t_net: f64,
    /// Aggregate seconds acquiring remote mutexes.
    pub t_lock: f64,
    /// Aggregate seconds of disk I/O.
    pub t_io: f64,
    /// Wall-clock seconds (busy time of the slowest MSP).
    pub elapsed: f64,
    /// **Host** wall-clock seconds the traced spans actually took (first
    /// span start to last span end on the host clock). Zero when the
    /// trace carries no host timestamps. Sits next to `elapsed` so real
    /// and modeled throughput diverge visibly when a kernel regresses.
    pub host_elapsed: f64,
    /// Mean busy seconds per MSP.
    pub mean_busy: f64,
    /// DGEMM flops (aggregate).
    pub flops_dgemm: f64,
    /// DAXPY-class flops (aggregate).
    pub flops_daxpy: f64,
    /// Network bytes moved (aggregate).
    pub net_bytes: f64,
    /// One-sided messages sent (aggregate).
    pub net_msgs: f64,
    /// Remote mutex acquisitions (aggregate).
    pub lock_acquires: f64,
    /// `nxtval` counter messages (aggregate).
    pub nxtval_msgs: f64,
    /// Faults injected by the fault plane (`fault_injected` instants).
    pub faults_injected: f64,
    /// Message resends performed by DDI recovery loops (aggregate).
    pub retries: f64,
    /// σ tasks recomputed after failing a column guard
    /// (`task_recompute` instants).
    pub recomputes: f64,
    /// Serving layer: jobs completed (`job_done` instants).
    pub jobs_done: f64,
    /// Serving layer: jobs failed (`job_failed` instants).
    pub jobs_failed: f64,
    /// Serving layer: batched multi-state solves (`batch_solve` instants).
    pub serve_batches: f64,
    /// Shared-artifact cache hits (`cache_hit` instants).
    pub cache_hits: f64,
    /// Shared-artifact cache misses (`cache_miss` instants).
    pub cache_misses: f64,
    /// Shared-artifact cache evictions (`cache_evict` instants; each may
    /// carry a `count` payload covering several entries).
    pub cache_evictions: f64,
    /// **Host** wall-clock seconds spanned by the serving layer's
    /// instants (first `job_submit` to last `job_done`/`job_failed`).
    /// Zero for non-server traces. Kept separate from
    /// [`RunSummary::host_elapsed`], which is defined over spans only.
    pub serve_elapsed: f64,
    /// Retry backoff delays in simulated seconds (the `backoff_s` payload
    /// of `fault_injected` instants). Empty for traces written before the
    /// payload existed.
    pub backoff: HistStats,
    /// Rank-death recovery times in simulated seconds (the `lost_s`
    /// payload of `rank_death_recovery` instants).
    pub recovery: HistStats,
}

impl RunSummary {
    /// Aggregate time of a category.
    pub fn time(&self, cat: Category) -> f64 {
        match cat {
            Category::Dgemm => self.t_dgemm,
            Category::Daxpy => self.t_daxpy,
            Category::Gather => self.t_gather,
            Category::Net => self.t_net,
            Category::Lock => self.t_lock,
            Category::Io => self.t_io,
            Category::Other => 0.0,
        }
    }

    fn time_mut(&mut self, cat: Category) -> &mut f64 {
        match cat {
            Category::Dgemm => &mut self.t_dgemm,
            Category::Daxpy => &mut self.t_daxpy,
            Category::Gather => &mut self.t_gather,
            Category::Net => &mut self.t_net,
            Category::Lock => &mut self.t_lock,
            Category::Io => &mut self.t_io,
            Category::Other => &mut self.t_gather, // unreachable by construction
        }
    }

    /// Load imbalance = elapsed − mean busy (the Table 3 residual row).
    pub fn load_imbalance(&self) -> f64 {
        self.elapsed - self.mean_busy
    }

    /// Total flops (aggregate).
    pub fn flops(&self) -> f64 {
        self.flops_dgemm + self.flops_daxpy
    }

    /// Sustained GFlop/s per MSP over the wall-clock.
    pub fn gflops_per_msp(&self) -> f64 {
        if self.elapsed == 0.0 || self.nproc == 0 {
            0.0
        } else {
            self.flops() / self.elapsed / self.nproc as f64 / 1e9
        }
    }

    /// Aggregate sustained TFlop/s over the wall-clock.
    pub fn tflops(&self) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.flops() / self.elapsed / 1e12
        }
    }

    /// Serving-layer throughput: jobs completed per **host** second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.serve_elapsed == 0.0 {
            0.0
        } else {
            self.jobs_done / self.serve_elapsed
        }
    }

    /// Shared-artifact cache hit rate in [0, 1] (0 when the cache was
    /// never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0.0 {
            0.0
        } else {
            self.cache_hits / total
        }
    }

    /// Sustained GFlop/s over the **host** wall-clock (aggregate flops /
    /// real seconds this process spent in the traced spans). The
    /// simulated [`RunSummary::gflops_per_msp`] answers "how fast would
    /// the X1 run this"; this answers "how fast did the host actually
    /// run it" — the number the GEMM-engine benches track.
    pub fn host_gflops(&self) -> f64 {
        if self.host_elapsed == 0.0 {
            0.0
        } else {
            self.flops() / self.host_elapsed / 1e9
        }
    }

    /// Build a summary from a trace.
    ///
    /// Span durations accumulate into the category rows; the standard
    /// payload keys (`flops`, `bytes`, `msgs`, `acquires`, `nxtval`)
    /// accumulate into the counters. Wall-clock is the busy time (span
    /// duration sum) of the slowest rank, matching `RunReport::elapsed`.
    pub fn from_events(events: &[Event]) -> RunSummary {
        let mut s = RunSummary::default();
        let mut busy: Vec<f64> = Vec::new();
        let mut host_first = f64::INFINITY;
        let mut host_last = f64::NEG_INFINITY;
        let mut serve_first = f64::INFINITY;
        let mut serve_last = f64::NEG_INFINITY;
        let mut backoffs: Vec<f64> = Vec::new();
        let mut recoveries: Vec<f64> = Vec::new();
        for e in events {
            if e.kind != EventKind::Span {
                // Fault-plane and serving-layer instants carry tallies.
                if e.kind == EventKind::Instant {
                    let n = e.arg("count").unwrap_or(1.0);
                    match e.name.as_str() {
                        "fault_injected" => {
                            s.faults_injected += 1.0;
                            if let Some(b) = e.arg("backoff_s") {
                                backoffs.push(b);
                            }
                        }
                        "rank_death_recovery" => {
                            if let Some(t) = e.arg("lost_s") {
                                recoveries.push(t);
                            }
                        }
                        "task_recompute" => s.recomputes += 1.0,
                        "job_done" => s.jobs_done += n,
                        "job_failed" => s.jobs_failed += n,
                        "batch_solve" => s.serve_batches += n,
                        "cache_hit" => s.cache_hits += n,
                        "cache_miss" => s.cache_misses += n,
                        "cache_evict" => s.cache_evictions += n,
                        _ => {}
                    }
                    if matches!(
                        e.name.as_str(),
                        "job_submit" | "job_start" | "job_done" | "job_failed"
                    ) {
                        serve_first = serve_first.min(e.host_us);
                        serve_last = serve_last.max(e.host_us);
                    }
                }
                continue;
            }
            *s.time_mut(e.cat) += e.sim_dur_s;
            if e.host_us != 0.0 || e.host_dur_us != 0.0 {
                host_first = host_first.min(e.host_us);
                host_last = host_last.max(e.host_us + e.host_dur_us);
            }
            if let Some(r) = e.rank {
                if busy.len() <= r {
                    busy.resize(r + 1, 0.0);
                }
                busy[r] += e.sim_dur_s;
            }
            match e.cat {
                Category::Dgemm => s.flops_dgemm += e.arg("flops").unwrap_or(0.0),
                Category::Daxpy => s.flops_daxpy += e.arg("flops").unwrap_or(0.0),
                Category::Net => {
                    s.net_bytes += e.arg("bytes").unwrap_or(0.0);
                    s.net_msgs += e.arg("msgs").unwrap_or(0.0);
                    s.nxtval_msgs += e.arg("nxtval").unwrap_or(0.0);
                    s.retries += e.arg("retries").unwrap_or(0.0);
                }
                Category::Lock => s.lock_acquires += e.arg("acquires").unwrap_or(0.0),
                _ => {}
            }
        }
        s.nproc = busy.len();
        s.elapsed = busy.iter().copied().fold(0.0, f64::max);
        s.mean_busy = if busy.is_empty() {
            0.0
        } else {
            busy.iter().sum::<f64>() / busy.len() as f64
        };
        if host_last > host_first {
            s.host_elapsed = (host_last - host_first) / 1e6;
        }
        if serve_last > serve_first {
            s.serve_elapsed = (serve_last - serve_first) / 1e6;
        }
        s.backoff = HistStats::from_samples(&backoffs);
        s.recovery = HistStats::from_samples(&recoveries);
        s
    }

    /// Serialize for the `BENCH_*.json` artifacts.
    pub fn to_json(&self) -> JsonValue {
        fn stats_json(s: &HistStats) -> JsonValue {
            JsonValue::obj(vec![
                ("count", JsonValue::Num(s.count as f64)),
                ("sum", JsonValue::Num(s.sum)),
                ("p50", JsonValue::Num(s.p50)),
                ("p95", JsonValue::Num(s.p95)),
                ("p99", JsonValue::Num(s.p99)),
                ("max", JsonValue::Num(s.max)),
            ])
        }
        JsonValue::obj(vec![
            ("nproc", JsonValue::Num(self.nproc as f64)),
            ("t_dgemm", JsonValue::Num(self.t_dgemm)),
            ("t_daxpy", JsonValue::Num(self.t_daxpy)),
            ("t_gather", JsonValue::Num(self.t_gather)),
            ("t_net", JsonValue::Num(self.t_net)),
            ("t_lock", JsonValue::Num(self.t_lock)),
            ("t_io", JsonValue::Num(self.t_io)),
            ("elapsed", JsonValue::Num(self.elapsed)),
            ("host_elapsed", JsonValue::Num(self.host_elapsed)),
            ("mean_busy", JsonValue::Num(self.mean_busy)),
            ("load_imbalance", JsonValue::Num(self.load_imbalance())),
            ("flops_dgemm", JsonValue::Num(self.flops_dgemm)),
            ("flops_daxpy", JsonValue::Num(self.flops_daxpy)),
            ("net_bytes", JsonValue::Num(self.net_bytes)),
            ("net_msgs", JsonValue::Num(self.net_msgs)),
            ("lock_acquires", JsonValue::Num(self.lock_acquires)),
            ("nxtval_msgs", JsonValue::Num(self.nxtval_msgs)),
            ("faults_injected", JsonValue::Num(self.faults_injected)),
            ("retries", JsonValue::Num(self.retries)),
            ("recomputes", JsonValue::Num(self.recomputes)),
            ("jobs_done", JsonValue::Num(self.jobs_done)),
            ("jobs_failed", JsonValue::Num(self.jobs_failed)),
            ("serve_batches", JsonValue::Num(self.serve_batches)),
            ("cache_hits", JsonValue::Num(self.cache_hits)),
            ("cache_misses", JsonValue::Num(self.cache_misses)),
            ("cache_evictions", JsonValue::Num(self.cache_evictions)),
            ("serve_elapsed", JsonValue::Num(self.serve_elapsed)),
            ("backoff", stats_json(&self.backoff)),
            ("recovery", stats_json(&self.recovery)),
            ("jobs_per_sec", JsonValue::Num(self.jobs_per_sec())),
            ("cache_hit_rate", JsonValue::Num(self.cache_hit_rate())),
            ("gflops_per_msp", JsonValue::Num(self.gflops_per_msp())),
            ("tflops", JsonValue::Num(self.tflops())),
            ("host_gflops", JsonValue::Num(self.host_gflops())),
        ])
    }

    /// Parse a summary previously written by [`RunSummary::to_json`].
    /// Derived quantities (`load_imbalance`, rates) are recomputed, not read.
    pub fn from_json(v: &JsonValue) -> Result<RunSummary, String> {
        let f = |k: &str| v.get_f64(k).ok_or_else(|| format!("missing '{k}'"));
        // Absent in artifacts written before the fault-plane histograms.
        fn stats_from(v: &JsonValue, key: &str) -> HistStats {
            match v.get(key) {
                Some(o) => HistStats {
                    count: o.get_f64("count").unwrap_or(0.0) as u64,
                    sum: o.get_f64("sum").unwrap_or(0.0),
                    p50: o.get_f64("p50").unwrap_or(0.0),
                    p95: o.get_f64("p95").unwrap_or(0.0),
                    p99: o.get_f64("p99").unwrap_or(0.0),
                    max: o.get_f64("max").unwrap_or(0.0),
                },
                None => HistStats::default(),
            }
        }
        Ok(RunSummary {
            nproc: f("nproc")? as usize,
            t_dgemm: f("t_dgemm")?,
            t_daxpy: f("t_daxpy")?,
            t_gather: f("t_gather")?,
            t_net: f("t_net")?,
            t_lock: f("t_lock")?,
            t_io: f("t_io")?,
            elapsed: f("elapsed")?,
            // Absent in summaries written before the host-time rollup.
            host_elapsed: v.get_f64("host_elapsed").unwrap_or(0.0),
            mean_busy: f("mean_busy")?,
            flops_dgemm: f("flops_dgemm")?,
            flops_daxpy: f("flops_daxpy")?,
            net_bytes: f("net_bytes")?,
            net_msgs: v.get_f64("net_msgs").unwrap_or(0.0),
            lock_acquires: v.get_f64("lock_acquires").unwrap_or(0.0),
            nxtval_msgs: v.get_f64("nxtval_msgs").unwrap_or(0.0),
            faults_injected: v.get_f64("faults_injected").unwrap_or(0.0),
            retries: v.get_f64("retries").unwrap_or(0.0),
            recomputes: v.get_f64("recomputes").unwrap_or(0.0),
            // Absent in summaries written before the serving layer.
            jobs_done: v.get_f64("jobs_done").unwrap_or(0.0),
            jobs_failed: v.get_f64("jobs_failed").unwrap_or(0.0),
            serve_batches: v.get_f64("serve_batches").unwrap_or(0.0),
            cache_hits: v.get_f64("cache_hits").unwrap_or(0.0),
            cache_misses: v.get_f64("cache_misses").unwrap_or(0.0),
            cache_evictions: v.get_f64("cache_evictions").unwrap_or(0.0),
            serve_elapsed: v.get_f64("serve_elapsed").unwrap_or(0.0),
            backoff: stats_from(v, "backoff"),
            recovery: stats_from(v, "recovery"),
        })
    }

    /// Render the Table-3-style breakdown as text.
    pub fn render(&self, title: &str) -> String {
        let n = self.nproc.max(1) as f64;
        let per_msp = |t: f64| t / n;
        let pct = |t: f64| {
            if self.elapsed > 0.0 {
                100.0 * per_msp(t) / self.elapsed
            } else {
                0.0
            }
        };
        let mut out = String::new();
        out.push_str(&format!("{title}  ({} MSPs)\n", self.nproc));
        out.push_str(&format!(
            "  {:<24} {:>12}  {:>6}\n",
            "row", "time/MSP (s)", "%"
        ));
        let rows: [(&str, f64); 7] = [
            ("compute: DGEMM", self.t_dgemm),
            ("compute: DAXPY/scalar", self.t_daxpy),
            ("gather/scatter", self.t_gather),
            ("network", self.t_net),
            ("lock wait", self.t_lock),
            ("disk I/O", self.t_io),
            ("load imbalance", self.load_imbalance() * n),
        ];
        for (name, t) in rows {
            out.push_str(&format!(
                "  {:<24} {:>12.4}  {:>5.1}%\n",
                name,
                per_msp(t),
                pct(t)
            ));
        }
        out.push_str(&format!(
            "  {:<24} {:>12.4}  {:>5.1}%\n",
            "total (wall)", self.elapsed, 100.0
        ));
        out.push_str(&format!(
            "  sustained: {:.2} GF/s per MSP, {:.4} TFlop/s aggregate\n",
            self.gflops_per_msp(),
            self.tflops()
        ));
        if self.host_elapsed > 0.0 {
            out.push_str(&format!(
                "  host: {:.4} s wall, {:.2} GF/s actual\n",
                self.host_elapsed,
                self.host_gflops()
            ));
        }
        out.push_str(&format!(
            "  traffic: {:.3e} bytes in {} msgs; nxtval {}; lock acquires {}\n",
            self.net_bytes, self.net_msgs, self.nxtval_msgs, self.lock_acquires
        ));
        if self.faults_injected > 0.0 || self.retries > 0.0 || self.recomputes > 0.0 {
            out.push_str(&format!(
                "  fault plane: {} injected; {} retries; {} recomputes\n",
                self.faults_injected, self.retries, self.recomputes
            ));
        }
        let quartiles = |label: &str, h: &HistStats| {
            format!(
                "  {label}: n={} p50={:.6} p95={:.6} p99={:.6} max={:.6} s\n",
                h.count, h.p50, h.p95, h.p99, h.max
            )
        };
        if !self.backoff.is_empty() {
            out.push_str(&quartiles("retry backoff", &self.backoff));
        }
        if !self.recovery.is_empty() {
            out.push_str(&quartiles("rank-death recovery", &self.recovery));
        }
        if self.jobs_done > 0.0 || self.jobs_failed > 0.0 {
            out.push_str(&format!(
                "  serve: {} jobs done, {} failed, {} batched solves; {:.2} jobs/s (host)\n",
                self.jobs_done,
                self.jobs_failed,
                self.serve_batches,
                self.jobs_per_sec()
            ));
        }
        if self.cache_hits > 0.0 || self.cache_misses > 0.0 {
            out.push_str(&format!(
                "  artifact cache: {} hits / {} misses ({:.1}% hit rate), {} evictions\n",
                self.cache_hits,
                self.cache_misses,
                100.0 * self.cache_hit_rate(),
                self.cache_evictions
            ));
        }
        out
    }

    /// Render a side-by-side diff of two summaries (for `fcix-trace diff`).
    pub fn render_diff(&self, other: &RunSummary) -> String {
        let rel = |a: f64, b: f64| {
            if a == 0.0 && b == 0.0 {
                0.0
            } else if a == 0.0 {
                f64::INFINITY
            } else {
                100.0 * (b - a) / a
            }
        };
        let rows: [(&str, f64, f64); 10] = [
            ("t_dgemm", self.t_dgemm, other.t_dgemm),
            ("t_daxpy", self.t_daxpy, other.t_daxpy),
            ("t_gather", self.t_gather, other.t_gather),
            ("t_net", self.t_net, other.t_net),
            ("t_lock", self.t_lock, other.t_lock),
            ("t_io", self.t_io, other.t_io),
            ("elapsed", self.elapsed, other.elapsed),
            (
                "load_imbalance",
                self.load_imbalance(),
                other.load_imbalance(),
            ),
            ("net_bytes", self.net_bytes, other.net_bytes),
            ("flops", self.flops(), other.flops()),
        ];
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<16} {:>14} {:>14} {:>9}\n",
            "metric", "A", "B", "Δ%"
        ));
        for (name, a, b) in rows {
            out.push_str(&format!(
                "  {:<16} {:>14.6} {:>14.6} {:>+8.2}%\n",
                name,
                a,
                b,
                rel(a, b)
            ));
        }
        out.push_str(&format!(
            "  {:<16} {:>14.3} {:>14.3} {:>+8.2}%\n",
            "GF/s per MSP",
            self.gflops_per_msp(),
            other.gflops_per_msp(),
            rel(self.gflops_per_msp(), other.gflops_per_msp())
        ));
        out.push_str(&format!(
            "  {:<16} {:>14.3} {:>14.3} {:>+8.2}%\n",
            "host GF/s",
            self.host_gflops(),
            other.host_gflops(),
            rel(self.host_gflops(), other.host_gflops())
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Segment, Tracer};

    fn traced() -> Vec<Event> {
        let t = Tracer::in_memory();
        // Rank 0: 1.0 s dgemm (2e9 flops) + 0.25 s net (1e6 bytes, 10 msgs).
        t.record_phase(
            0,
            "sigma",
            &[
                Segment::new(Category::Dgemm, 1.0, vec![("flops".into(), 2.0e9)]),
                Segment::new(
                    Category::Net,
                    0.25,
                    vec![("bytes".into(), 1e6), ("msgs".into(), 10.0)],
                ),
            ],
            0.0,
            0.0,
        );
        // Rank 1: 0.5 s dgemm (1e9 flops) + 0.1 s lock (3 acquires).
        t.record_phase(
            1,
            "sigma",
            &[
                Segment::new(Category::Dgemm, 0.5, vec![("flops".into(), 1.0e9)]),
                Segment::new(Category::Lock, 0.1, vec![("acquires".into(), 3.0)]),
            ],
            0.0,
            0.0,
        );
        t.barrier(2);
        t.events().unwrap()
    }

    #[test]
    fn from_events_aggregates() {
        let s = RunSummary::from_events(&traced());
        assert_eq!(s.nproc, 2);
        assert!((s.t_dgemm - 1.5).abs() < 1e-12);
        assert!((s.t_net - 0.25).abs() < 1e-12);
        assert!((s.t_lock - 0.1).abs() < 1e-12);
        assert!((s.elapsed - 1.25).abs() < 1e-12);
        assert!((s.mean_busy - (1.25 + 0.6) / 2.0).abs() < 1e-12);
        assert!((s.flops() - 3.0e9).abs() < 1.0);
        assert_eq!(s.net_msgs, 10.0);
        assert_eq!(s.lock_acquires, 3.0);
        // 3e9 flops / 1.25 s / 2 MSPs = 1.2 GF/s per MSP.
        assert!((s.gflops_per_msp() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn host_time_rollup_and_rate() {
        let t = Tracer::in_memory();
        // 2e9 flops over 0.5 host seconds → 4 GF/s actual.
        t.record_phase(
            0,
            "sigma",
            &[Segment::new(
                Category::Dgemm,
                1.0,
                vec![("flops".into(), 2.0e9)],
            )],
            1_000_000.0,
            500_000.0,
        );
        let s = RunSummary::from_events(&t.events().unwrap());
        assert!((s.host_elapsed - 0.5).abs() < 1e-12);
        assert!((s.host_gflops() - 4.0).abs() < 1e-9);
        let text = s.render("t");
        assert!(text.contains("GF/s actual"), "missing host line:\n{text}");
        // Round-trips, including through JSON lacking the new key.
        let back = RunSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        let mut legacy = s.clone();
        legacy.host_elapsed = 0.0;
        let lv = legacy.to_json();
        // Simulate a pre-host-rollup artifact by rebuilding from it.
        let parsed = RunSummary::from_json(&lv).unwrap();
        assert_eq!(parsed.host_elapsed, 0.0);
        assert_eq!(parsed.host_gflops(), 0.0);
        assert!(!parsed.render("t").contains("GF/s actual"));
    }

    #[test]
    fn serve_instants_roll_up() {
        // A server trace is instants-only: job lifecycle + cache events.
        // The summary must count them, window the host time over the job
        // instants, and render a serve section — without perturbing the
        // span-based host_elapsed (zero here: no spans).
        let t = Tracer::in_memory();
        t.instant(None, "job_submit", Category::Other, &[]);
        t.instant(None, "cache_miss", Category::Other, &[]);
        t.instant(None, "cache_hit", Category::Other, &[("count", 3.0)]);
        t.instant(None, "cache_evict", Category::Other, &[("count", 2.0)]);
        t.instant(None, "batch_solve", Category::Other, &[("jobs", 2.0)]);
        t.instant(None, "job_done", Category::Other, &[]);
        t.instant(None, "job_done", Category::Other, &[]);
        t.instant(None, "job_failed", Category::Other, &[]);
        let mut events = t.events().unwrap();
        // Pin host timestamps so jobs/s is deterministic: 0.5 s window.
        let n = events.len();
        for (i, e) in events.iter_mut().enumerate() {
            e.host_us = 1_000.0 + 500_000.0 * i as f64 / (n - 1) as f64;
        }
        let s = RunSummary::from_events(&events);
        assert_eq!(s.jobs_done, 2.0);
        assert_eq!(s.jobs_failed, 1.0);
        assert_eq!(s.serve_batches, 1.0);
        assert_eq!(s.cache_hits, 3.0);
        assert_eq!(s.cache_misses, 1.0);
        assert_eq!(s.cache_evictions, 2.0);
        assert_eq!(s.host_elapsed, 0.0);
        assert!((s.serve_elapsed - 0.5).abs() < 1e-9);
        assert!((s.jobs_per_sec() - 4.0).abs() < 1e-9);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        let text = s.render("serve");
        assert!(text.contains("jobs/s"), "missing serve section:\n{text}");
        assert!(text.contains("hit rate"), "missing cache line:\n{text}");
        // Round-trips; legacy artifacts without the serve keys parse.
        let back = RunSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        let legacy = RunSummary::from_events(&traced());
        assert!(!legacy.render("t").contains("jobs/s"));
    }

    #[test]
    fn json_roundtrip() {
        let s = RunSummary::from_events(&traced());
        let back = RunSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn fault_plane_histograms_roll_up() {
        let t = Tracer::in_memory();
        for b in [0.001, 0.002, 0.004, 0.008] {
            t.instant(
                Some(0),
                "fault_injected",
                Category::Other,
                &[("kind", 0.0), ("backoff_s", b)],
            );
        }
        // A legacy fault instant without the payload still counts.
        t.instant(Some(0), "fault_injected", Category::Other, &[("kind", 1.0)]);
        t.instant(
            None,
            "rank_death_recovery",
            Category::Other,
            &[("survivors", 3.0), ("lost_s", 0.75)],
        );
        let s = RunSummary::from_events(&t.events().unwrap());
        assert_eq!(s.faults_injected, 5.0);
        assert_eq!(s.backoff.count, 4);
        assert_eq!(s.backoff.p50, 0.002);
        assert_eq!(s.backoff.max, 0.008);
        assert_eq!(s.recovery.count, 1);
        assert_eq!(s.recovery.max, 0.75);
        let text = s.render("faulty");
        assert!(text.contains("retry backoff"), "missing backoff:\n{text}");
        assert!(text.contains("rank-death recovery"), "missing:\n{text}");
        // Round-trips through JSON; legacy artifacts without the nested
        // objects parse with empty stats.
        let back = RunSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        let legacy = RunSummary::from_events(&traced());
        assert!(legacy.backoff.is_empty() && legacy.recovery.is_empty());
        assert!(!legacy.render("t").contains("retry backoff"));
    }

    #[test]
    fn render_mentions_all_rows() {
        let s = RunSummary::from_events(&traced());
        let text = s.render("Table 3");
        for needle in [
            "DGEMM",
            "DAXPY",
            "network",
            "lock wait",
            "disk I/O",
            "load imbalance",
            "TFlop/s",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn diff_renders() {
        let s = RunSummary::from_events(&traced());
        let text = s.render_diff(&s);
        assert!(text.contains("elapsed"));
        assert!(text.contains("+0.00%"));
    }
}
