//! Collapsed-stack (flamegraph) export of span traces.
//!
//! Folds the tracer's span events into Brendan Gregg's collapsed-stack
//! text format — one line per unique frame stack,
//!
//! ```text
//! rank 0;alpha_alpha;dgemm 143221
//! ```
//!
//! where the trailing integer is the stack's total weight in
//! microseconds of either simulated or host time ([`TimeBase`]). The
//! output feeds `flamegraph.pl` / speedscope / `inferno` unchanged, and
//! round-trips through [`parse_collapsed`] (which the test suite uses to
//! check that folded totals reproduce the per-category run summary).

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Which duration a span contributes to the fold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeBase {
    /// Simulated seconds (scaled to µs) — the Cray-X1 cost model.
    Sim,
    /// Host wall-clock microseconds — what this machine actually did.
    Host,
}

/// Fold span events into collapsed-stack lines, sorted by stack.
///
/// Each span becomes the stack `rank N;<phase>;<category>`; spans
/// without a rank fold under `rank ?`. Weights are rounded to whole
/// microseconds and identical stacks are summed; zero-weight stacks are
/// dropped.
pub fn to_collapsed(events: &[Event], base: TimeBase) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if e.kind != EventKind::Span {
            continue;
        }
        let us = match base {
            TimeBase::Sim => e.sim_dur_s * 1e6,
            TimeBase::Host => e.host_dur_us,
        };
        let weight = us.round() as u64;
        if weight == 0 {
            continue;
        }
        let rank = match e.rank {
            Some(r) => format!("rank {r}"),
            None => "rank ?".to_string(),
        };
        let stack = format!("{rank};{};{}", e.name, e.cat.as_str());
        *stacks.entry(stack).or_insert(0) += weight;
    }
    let mut out = String::new();
    for (stack, weight) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

/// Parse collapsed-stack text back into `(frames, weight)` pairs.
///
/// Accepts exactly the format [`to_collapsed`] emits (and the wider
/// ecosystem convention): `frame;frame;... <integer>` per line, blank
/// lines ignored.
pub fn parse_collapsed(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight field", lineno + 1))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("line {}: bad weight `{weight}`", lineno + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", lineno + 1));
        }
        out.push((stack.split(';').map(str::to_string).collect(), weight));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::tracer::{Segment, Tracer};

    fn traced_run() -> Vec<Event> {
        let t = Tracer::in_memory();
        for rank in 0..2 {
            t.record_phase(
                rank,
                "alpha_alpha",
                &[
                    Segment::new(Category::Dgemm, 1.5 + rank as f64, vec![]),
                    Segment::new(Category::Net, 0.25, vec![]),
                ],
                0.0,
                100.0,
            );
        }
        t.barrier(2);
        for rank in 0..2 {
            t.record_phase(
                rank,
                "alpha_alpha",
                &[Segment::new(Category::Dgemm, 0.5, vec![])],
                100.0,
                50.0,
            );
        }
        t.events().unwrap()
    }

    #[test]
    fn fold_aggregates_identical_stacks() {
        let events = traced_run();
        let folded = to_collapsed(&events, TimeBase::Sim);
        // rank 0 dgemm: 1.5 s + 0.5 s = 2 000 000 µs on one line.
        assert!(folded.contains("rank 0;alpha_alpha;dgemm 2000000\n"));
        assert!(folded.contains("rank 1;alpha_alpha;dgemm 3000000\n"));
        assert!(folded.contains("rank 0;alpha_alpha;net 250000\n"));
    }

    #[test]
    fn round_trip_preserves_totals() {
        let events = traced_run();
        for base in [TimeBase::Sim, TimeBase::Host] {
            let folded = to_collapsed(&events, base);
            let parsed = parse_collapsed(&folded).unwrap();
            let total: u64 = parsed.iter().map(|(_, w)| w).sum();
            let want: f64 = events
                .iter()
                .filter(|e| e.kind == EventKind::Span)
                .map(|e| match base {
                    TimeBase::Sim => e.sim_dur_s * 1e6,
                    TimeBase::Host => e.host_dur_us,
                })
                .sum();
            // Each span rounds to whole µs once.
            let slack = events.len() as f64;
            assert!((total as f64 - want).abs() <= slack, "{total} vs {want}");
            for (frames, _) in &parsed {
                assert_eq!(frames.len(), 3);
                assert!(frames[0].starts_with("rank "));
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_collapsed("no-weight-here\n").is_err());
        assert!(parse_collapsed("a;b notanumber\n").is_err());
        assert!(parse_collapsed(" 5\n").is_err());
        assert_eq!(parse_collapsed("\n\n").unwrap().len(), 0);
    }
}
