#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Observability for the fcix stack (`fci-obs`).
//!
//! The paper's headline results — Table 3's per-phase breakdown, the
//! Fig. 4/5 scaling curves, the 3.4 TFlop/s sustained-rate claim — are
//! *observability artifacts*: they come from per-MSP instrumentation of
//! σ = H·C. This crate provides the machinery to produce the same
//! artifacts from any run of the reproduction:
//!
//! * [`Tracer`] — a span/event tracing layer. Every span carries **dual
//!   timestamps**: host wall-clock (what the real hardware did) and
//!   simulated seconds from the active `fci_xsim::Clock` (what the
//!   modelled Cray-X1 would have done), so one trace explains both real
//!   profiling and the X1 cost model.
//! * [`MetricsRegistry`] — the metrics plane: a sharded, hash-indexed
//!   registry of labelled counters, gauges, and log-linear
//!   ([`Histogram`]) percentile histograms, with a Prometheus-shaped
//!   text exposition ([`MetricsRegistry::render_text`]).
//! * [`flame`] — collapsed-stack (flamegraph) export of span traces,
//!   keyed by host or simulated time.
//! * Sinks — [`JsonlSink`] (one JSON event per line), [`MemorySink`]
//!   (tests), and a no-op [`NullSink`]; tracing is zero-cost when
//!   disabled (one branch on [`Tracer::enabled`]).
//! * [`RunSummary`] — the Table-3-style per-category rollup (compute /
//!   network / lock / I/O / load imbalance, sustained GF/s per MSP,
//!   aggregate TFlop/s), buildable from a trace or from clock data.
//! * [`chrome`] — Chrome Trace Event Format export (`chrome://tracing` /
//!   Perfetto), one lane per virtual MSP.
//!
//! The crate is dependency-free by design: the build environment has no
//! registry access, so serde/tracing/metrics are off the table. A small
//! hand-rolled JSON layer ([`json`]) covers serialization both ways.

pub mod chrome;
pub mod config;
pub mod event;
pub mod flame;
pub mod hist;
pub mod json;
pub mod lockwitness;
pub mod metrics;
pub mod sink;
pub mod summary;
pub mod tracer;

pub use chrome::to_chrome;
pub use config::{MetricsMode, ObsConfig};
pub use event::{parse_jsonl, parse_jsonl_lenient, Category, Event, EventKind};
pub use flame::{parse_collapsed, to_collapsed, TimeBase};
pub use hist::{HistStats, Histogram};
pub use json::JsonValue;
pub use lockwitness::{TrackedCondvar, TrackedGuard, TrackedMutex};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};
pub use summary::RunSummary;
pub use tracer::Tracer;
