//! Log-linear (HDR-style) histograms with bounded relative error.
//!
//! # Bucketing math
//!
//! A positive finite `f64` is bucketed by truncating its bit pattern:
//! the 11 exponent bits select the octave `[2^e, 2^(e+1))` and the top
//! [`SUB_BITS`] mantissa bits select one of `2^SUB_BITS` equal-width
//! linear sub-buckets inside it. Equivalently,
//!
//! ```text
//! index(v) = v.to_bits() >> (52 - SUB_BITS)
//! ```
//!
//! which is monotone in `v`, needs no `log()` call, and costs one shift.
//! Within an octave every bucket spans `2^e / 2^SUB_BITS`, so reporting a
//! bucket's **upper edge** overestimates any member value by at most a
//! factor of `1 + 2^-SUB_BITS` — the relative-error bound [`REL_ERR`]
//! that the property tests assert against an exact sorted reference.
//!
//! # Determinism
//!
//! Buckets are unsigned counts and min/max are exact, so merging shards
//! is associative and commutative; every derived statistic (percentiles,
//! `sum()`, `mean()`) is computed from the merged counts in fixed index
//! order. The rendered output is therefore bitwise identical no matter
//! which order shards were merged in.

/// Mantissa bits kept per octave: `2^5 = 32` linear sub-buckets.
pub const SUB_BITS: u32 = 5;

/// Bound on the relative error of bucket-edge percentiles: `2^-SUB_BITS`.
pub const REL_ERR: f64 = 1.0 / (1u64 << SUB_BITS) as f64;

const SHIFT: u32 = 52 - SUB_BITS;

#[inline]
fn index_of(v: f64) -> usize {
    (v.to_bits() >> SHIFT) as usize
}

/// Smallest value strictly above every value in bucket `idx`.
#[inline]
fn upper_edge(idx: usize) -> f64 {
    let bits = ((idx as u64) + 1) << SHIFT;
    if bits >= f64::INFINITY.to_bits() {
        f64::MAX
    } else {
        f64::from_bits(bits)
    }
}

/// Smallest value in bucket `idx`.
#[inline]
fn lower_edge(idx: usize) -> f64 {
    f64::from_bits((idx as u64) << SHIFT)
}

/// A mergeable log-linear histogram of non-negative `f64` samples.
///
/// Recording is O(1); memory is proportional to the *span* of touched
/// buckets (a contiguous window), which for real metric streams (latency,
/// bytes, GF/s) is a few dozen slots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    zeros: u64,
    dropped: u64,
    min: f64,
    max: f64,
    /// Global bucket index of `buckets[0]`; meaningless when empty.
    base: usize,
    buckets: Vec<u64>,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Negative, NaN and infinite values are counted
    /// in [`Histogram::dropped`] and otherwise ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            self.dropped += 1;
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        if v == 0.0 {
            self.zeros += 1;
            return;
        }
        let idx = index_of(v);
        if self.buckets.is_empty() {
            self.base = idx;
            self.buckets.push(0);
        } else if idx < self.base {
            let grow = self.base - idx;
            self.buckets.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = idx;
        } else if idx >= self.base + self.buckets.len() {
            self.buckets.resize(idx - self.base + 1, 0);
        }
        self.buckets[idx - self.base] += 1;
    }

    /// Number of recorded (non-dropped) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples rejected as negative or non-finite.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact minimum, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate sum: each bucket contributes its midpoint × count
    /// (±[`REL_ERR`]/2 per sample). Computed in fixed bucket order, so the
    /// result is independent of recording or merge order.
    pub fn sum(&self) -> f64 {
        let mut s = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let idx = self.base + i;
                s += 0.5 * (lower_edge(idx) + upper_edge(idx)) * c as f64;
            }
        }
        s
    }

    /// Approximate mean (see [`Histogram::sum`]); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum() / self.count as f64)
    }

    /// Bucket-bounded percentile `q` in `[0, 100]`, `None` when empty.
    ///
    /// Returns the upper edge of the bucket holding the nearest-rank
    /// sample, clamped to the exact recorded maximum — so the result
    /// never under-reports the true order statistic and over-reports it
    /// by at most a factor of `1 +` [`REL_ERR`].
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zeros {
            return Some(0.0);
        }
        let mut cum = self.zeros;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(upper_edge(self.base + i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one. Associative and
    /// commutative; see the module docs on bitwise stability.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.zeros += other.zeros;
        self.dropped += other.dropped;
        if other.buckets.is_empty() {
            return;
        }
        if self.buckets.is_empty() {
            self.base = other.base;
            self.buckets = other.buckets.clone();
            return;
        }
        let new_base = self.base.min(other.base);
        let new_end = (self.base + self.buckets.len()).max(other.base + other.buckets.len());
        if new_base < self.base {
            let grow = self.base - new_base;
            self.buckets.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = new_base;
        }
        if new_end > self.base + self.buckets.len() {
            self.buckets.resize(new_end - self.base, 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[other.base + i - self.base] += c;
        }
    }

    /// Compact summary statistics of this histogram.
    pub fn stats(&self) -> HistStats {
        HistStats {
            count: self.count,
            sum: self.sum(),
            p50: self.percentile(50.0).unwrap_or(0.0),
            p95: self.percentile(95.0).unwrap_or(0.0),
            p99: self.percentile(99.0).unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// Compact percentile summary of a sample stream — the fixed
/// p50/p95/p99/max cut that run summaries carry and render.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (exact for [`HistStats::from_samples`], midpoint
    /// approximation for [`Histogram::stats`]).
    pub sum: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl HistStats {
    /// Exact nearest-rank statistics of a raw sample set.
    pub fn from_samples(samples: &[f64]) -> HistStats {
        if samples.is_empty() {
            return HistStats::default();
        }
        let mut s: Vec<f64> = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = s.len();
        let pick = |q: f64| {
            let rank = ((q / 100.0 * n as f64).ceil() as usize).clamp(1, n);
            s[rank - 1]
        };
        HistStats {
            count: n as u64,
            sum: s.iter().sum(),
            p50: pick(50.0),
            p95: pick(95.0),
            p99: pick(99.0),
            max: s[n - 1],
        }
    }

    /// Whether any samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn bucket_edges_bracket_values() {
        for &v in &[1e-9, 0.37, 1.0, 1.5, 3.25, 1e6, 7.7e12] {
            let idx = index_of(v);
            assert!(lower_edge(idx) <= v, "lower edge above {v}");
            assert!(upper_edge(idx) > v, "upper edge not above {v}");
            let width = upper_edge(idx) - lower_edge(idx);
            assert!(width / lower_edge(idx) <= REL_ERR * (1.0 + 1e-12));
        }
    }

    #[test]
    fn percentiles_within_relative_error() {
        let mut h = Histogram::new();
        let mut vals = Vec::new();
        // Deterministic log-uniform-ish spread over 9 decades.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 1e-6 * ((x % 1_000_000_000) as f64 + 1.0);
            vals.push(v);
            h.record(v);
        }
        let exact = HistStats::from_samples(&vals);
        for (q, want) in [(50.0, exact.p50), (95.0, exact.p95), (99.0, exact.p99)] {
            let got = h.percentile(q).unwrap();
            assert!(got >= want * (1.0 - 1e-12), "p{q}: {got} < exact {want}");
            assert!(
                got <= want * (1.0 + REL_ERR + 1e-12),
                "p{q}: {got} >> {want}"
            );
        }
        assert_eq!(h.percentile(100.0), Some(exact.max));
        assert_eq!(h.max(), Some(exact.max));
    }

    #[test]
    fn zeros_and_dropped() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.0);
        h.record(4.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.dropped(), 3);
        assert_eq!(h.percentile(50.0), Some(0.0));
        assert_eq!(h.percentile(100.0), Some(4.0));
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..1000 {
            let v = (i as f64 + 1.0) * 0.013;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn merge_order_is_bitwise_stable() {
        let shards: Vec<Histogram> = (0..4)
            .map(|s| {
                let mut h = Histogram::new();
                for i in 0..500 {
                    h.record(((s * 811 + i * 97) % 100_000) as f64 * 1e-3 + 1e-9);
                }
                h
            })
            .collect();
        let fold = |order: &[usize]| {
            let mut m = Histogram::new();
            for &i in order {
                m.merge(&shards[i]);
            }
            m
        };
        let a = fold(&[0, 1, 2, 3]);
        let b = fold(&[3, 1, 0, 2]);
        // Nested merge: (0+1) + (2+3).
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        let mut right = shards[2].clone();
        right.merge(&shards[3]);
        left.merge(&right);
        for h in [&b, &left] {
            assert_eq!(a, *h);
            assert_eq!(a.sum().to_bits(), h.sum().to_bits());
            for q in [50.0, 95.0, 99.0, 100.0] {
                assert_eq!(
                    a.percentile(q).unwrap().to_bits(),
                    h.percentile(q).unwrap().to_bits()
                );
            }
        }
    }

    #[test]
    fn stats_summarize() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let s = h.stats();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100.0);
        assert!(s.p50 >= 50.0 && s.p50 <= 50.0 * (1.0 + REL_ERR));
        assert!((s.sum - 5050.0).abs() / 5050.0 <= REL_ERR);
    }

    #[test]
    fn exact_hist_stats_from_samples() {
        let s = HistStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.sum, 15.0);
        assert!(HistStats::from_samples(&[]).is_empty());
    }
}
